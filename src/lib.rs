//! # mammoth
//!
//! A columnar, BAT-algebra database engine in Rust, reproducing the system
//! described in *Database Architecture Evolution: Mammals Flourished long
//! before Dinosaurs became Extinct* (Manegold, Kersten & Boncz, VLDB 2009)
//! — the MonetDB retrospective.
//!
//! This crate is the umbrella: it re-exports every subsystem under one
//! namespace. Most users want [`Database`]:
//!
//! ```
//! use mammoth::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE people (name VARCHAR, age INT)").unwrap();
//! db.execute("INSERT INTO people VALUES ('Roger Moore', 1927)").unwrap();
//! let out = db.execute("SELECT name FROM people WHERE age = 1927").unwrap();
//! assert!(out.to_text().contains("Roger Moore"));
//! ```
//!
//! The subsystems, one per crate (see `DESIGN.md` for the full map):
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | values, schemas, errors |
//! | [`storage`] | BATs, heaps, deltas, catalog, persistence |
//! | [`algebra`] | the BAT Algebra: selects, joins, radix-cluster/-decluster |
//! | [`index`] | hash table, B+-tree, CSS-tree, zone maps |
//! | [`cache`] | cache simulator + the §4.4 cost model |
//! | [`compression`] | RLE, dictionary, PFOR, PFOR-DELTA |
//! | [`bufferpool`] | buffer manager + cooperative scans |
//! | [`cracking`] | self-organizing cracker columns |
//! | [`recycler`] | intermediate-result cache |
//! | [`volcano`] | the tuple-at-a-time NSM baseline |
//! | [`vectorized`] | the X100-style vectorized engine |
//! | [`mal`] | MAL programs, optimizer pipeline, interpreter |
//! | [`parallel`] | multi-core dataflow execution of MAL plans |
//! | [`sql`] | the SQL front-end |
//! | [`server`] | the MAPI-style network server + client |
//! | [`shard`] | hash-partitioned scale-out: scatter-gather coordinator |
//! | [`xpath`] | pre/post XML encoding + staircase join |
//! | [`workload`] | deterministic data/query generators |

pub use mammoth_core::{Database, Engine};
pub use mammoth_sql::QueryOutput;

pub use mammoth_algebra as algebra;
pub use mammoth_bufferpool as bufferpool;
pub use mammoth_cache as cache;
pub use mammoth_compression as compression;
pub use mammoth_core as engine;
pub use mammoth_cracking as cracking;
pub use mammoth_index as index;
pub use mammoth_mal as mal;
pub use mammoth_parallel as parallel;
pub use mammoth_recycler as recycler;
pub use mammoth_server as server;
pub use mammoth_shard as shard;
pub use mammoth_sql as sql;
pub use mammoth_storage as storage;
pub use mammoth_stream as stream;
pub use mammoth_types as types;
pub use mammoth_vectorized as vectorized;
pub use mammoth_volcano as volcano;
pub use mammoth_workload as workload;
pub use mammoth_xpath as xpath;
