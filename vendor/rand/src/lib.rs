//! Hermetic stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! provides the (small) subset of the `rand` API the workspace actually
//! uses: `StdRng` seeded via [`SeedableRng::seed_from_u64`], the
//! [`RngExt::random`] / [`RngExt::random_range`] sampling methods, and
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — fast,
//! deterministic, and statistically solid for test-data generation (it is
//! the seeding generator of the xoshiro family). It is **not** a
//! cryptographic RNG.

#![deny(unsafe_code)]

/// The raw-entropy trait: everything samples through `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

/// Types samplable uniformly over their whole domain via [`RngExt::random`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling methods (rand 0.10 spelling).
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: u32 = rng.random_range(10..=20);
            assert!((10..=20).contains(&y));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<i32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
