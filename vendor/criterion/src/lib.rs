//! Hermetic stand-in for `criterion`.
//!
//! Implements the bench-definition API the workspace's benches use
//! (`benchmark_group`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) over a simple median-of-samples
//! timer. No statistical analysis, plots, or baseline comparison — just
//! stable, dependency-free numbers on stderr.
//!
//! When invoked with `--test` (as `cargo test` does for bench targets) each
//! benchmark body runs exactly once, so benches double as smoke tests.

#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement configuration and output sink.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// Units of work per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `group/function/parameter` label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.into() }
    }
}

pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.label, |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.label.clone(), |b| f(b, input));
        self
    }

    fn run_one(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let samples = if self.c.test_mode {
            1
        } else {
            self.sample_size.unwrap_or(self.c.sample_size)
        };
        let mut b = Bencher {
            samples,
            best: Duration::MAX,
            iters: 0,
        };
        f(&mut b);
        if !self.c.test_mode && b.iters > 0 {
            let per_iter = b.best;
            let rate = self.throughput.map(|t| match t {
                Throughput::Elements(n) => {
                    format!(", {:.0} elem/s", n as f64 / per_iter.as_secs_f64())
                }
                Throughput::Bytes(n) => {
                    format!(", {:.0} B/s", n as f64 / per_iter.as_secs_f64())
                }
            });
            eprintln!(
                "bench {}/{label}: {per_iter:?}/iter{}",
                self.name,
                rate.unwrap_or_default()
            );
        }
    }

    pub fn finish(&mut self) {}
}

/// Runs the benchmark body; `iter`'s best-of-samples wall time is reported.
pub struct Bencher {
    samples: usize,
    best: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed();
            if dt < self.best {
                self.best = dt;
            }
            self.iters += 1;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2).throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
                b.iter(|| {
                    ran += 1;
                    x * 2
                });
            });
            g.finish();
        }
        assert_eq!(ran, 2);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 50,
            test_mode: true,
        };
        let mut ran = 0u64;
        let mut g = c.benchmark_group("g");
        g.bench_function(BenchmarkId::from_parameter("x"), |b| b.iter(|| ran += 1));
        g.finish();
        assert_eq!(ran, 1);
    }
}
