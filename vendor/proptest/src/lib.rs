//! Hermetic stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! implements the subset of proptest the workspace's tests rely on:
//!
//! * the [`proptest!`] macro (multiple `#[test]` functions, `pat in strategy`
//!   bindings, trailing commas);
//! * range strategies over the integer types, tuple strategies, and
//!   [`collection::vec`], [`option::of`], [`num`]'s `ANY` constants;
//! * string strategies written as simple character-class regexes like
//!   `"[a-z]{0,12}"`;
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics with
//! the generated inputs left to `Debug`-print by the assertion itself. Case
//! generation is deterministic per test-function name, so failures reproduce.

#![deny(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

/// Number of random cases each `proptest!` test runs.
pub const CASES: usize = 64;

/// The per-test deterministic RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed derived from the test name so each test gets a stable,
    /// distinct stream.
    pub fn for_test(name: &str) -> TestRng {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values: the (shrink-free) core of proptest's trait.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// String strategies written as a character-class regex: `"[a-z]{0,12}"`,
/// `"[ab]{1,2}"`, `"[abc]{5}"`, or a bare class `"[xyz]"` (one char).
/// Anything without a leading `[` is treated as a literal string.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let Some(rest) = self.strip_prefix('[') else {
            return (*self).to_string();
        };
        let Some(close) = rest.find(']') else {
            return (*self).to_string();
        };
        let class: Vec<char> = expand_class(&rest[..close]);
        let quant = &rest[close + 1..];
        let (lo, hi) = parse_quantifier(quant);
        let n = if lo == hi {
            lo
        } else {
            rng.random_range(lo..=hi)
        };
        (0..n)
            .map(|_| class[rng.random_range(0..class.len())])
            .collect()
    }
}

/// `a-z` style ranges inside a class; everything else is literal.
fn expand_class(class: &str) -> Vec<char> {
    let chars: Vec<char> = class.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            for c in a..=b {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty character class in string strategy");
    out
}

fn parse_quantifier(q: &str) -> (usize, usize) {
    let Some(inner) = q.strip_prefix('{').and_then(|s| s.strip_suffix('}')) else {
        return (1, 1); // bare class: one char
    };
    match inner.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("bad quantifier"),
            hi.trim().parse().expect("bad quantifier"),
        ),
        None => {
            let n = inner.trim().parse().expect("bad quantifier");
            (n, n)
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Sizes accepted by [`vec`]: an exact length or a half-open range.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.random_range(self.clone())
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: Box<dyn IntoSizeRange>,
    }

    /// `proptest::collection::vec(strategy, len)`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: Box::new(size),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(strategy)` — `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.random_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod num {
    macro_rules! any_mod {
        ($($m:ident => $t:ty),*) => {$(
            pub mod $m {
                /// Uniform over the type's whole domain.
                pub struct Any;
                pub const ANY: Any = Any;

                impl crate::Strategy for Any {
                    type Value = $t;
                    fn generate(&self, rng: &mut crate::TestRng) -> $t {
                        use rand::RngExt;
                        rng.random()
                    }
                }
            }
        )*};
    }

    any_mod!(i8 => i8, i16 => i16, i32 => i32, i64 => i64,
             u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize);
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// The test-definition macro. Each enclosed function runs [`CASES`] times
/// with fresh deterministically-generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        #[test]
        fn $name() {
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..$crate::CASES {
                $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
    )+};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(v in crate::collection::vec(-5i64..5, 0..40), x in 0u32..10) {
            prop_assert!(v.len() < 40);
            prop_assert!(v.iter().all(|e| (-5..5).contains(e)));
            prop_assert!(x < 10);
        }

        #[test]
        fn strings_and_options(s in crate::option::of("[a-z]{0,12}"), t in "[ab]{1,2}") {
            if let Some(s) = &s {
                prop_assert!(s.len() <= 12);
                prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            }
            prop_assert!(!t.is_empty() && t.len() <= 2);
            prop_assert!(t.chars().all(|c| c == 'a' || c == 'b'));
        }

        #[test]
        fn tuples_and_any(p in (0usize..100, crate::num::i64::ANY)) {
            prop_assert!(p.0 < 100);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let s: String = Strategy::generate(&"[a-z]{0,12}", &mut a);
        let t: String = Strategy::generate(&"[a-z]{0,12}", &mut b);
        assert_eq!(s, t);
    }
}
