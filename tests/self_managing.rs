//! Integration tests for the §6.1 "new species": cracking and recycling
//! working inside the full engine, at a scale unit tests don't reach.

use mammoth::cracking::{Bound, CrackerColumn};
use mammoth::recycler::{EvictPolicy, Recycler};
use mammoth::types::Value;
use mammoth::workload::{range_query_log, skyserver_log, uniform_i64, QueryPattern};
use mammoth::{Database, QueryOutput};

/// Cracking answers every query of a realistic log exactly like a scan,
/// while physically reorganizing the column — and converges: late queries
/// touch almost nothing.
#[test]
fn cracking_converges_on_a_query_log() {
    let n = 200_000;
    let data = uniform_i64(n, 0, 1_000_000, 5);
    let queries = range_query_log(150, 1_000_000, 0.002, QueryPattern::Random, 6);
    let mut cracker = CrackerColumn::new(data.clone());

    let mut touched_first_half = 0u64;
    let mut touched_second_half = 0u64;
    for (i, q) in queries.iter().enumerate() {
        let before = cracker.stats().tuples_touched;
        let got = cracker.select_count(Bound::Incl(q.lo), Bound::Excl(q.hi));
        let expect = data.iter().filter(|&&v| v >= q.lo && v < q.hi).count();
        assert_eq!(got, expect, "query {i}");
        let delta = cracker.stats().tuples_touched - before;
        if i < queries.len() / 2 {
            touched_first_half += delta;
        } else {
            touched_second_half += delta;
        }
    }
    assert!(
        touched_second_half * 4 < touched_first_half,
        "later queries must touch far less: {touched_first_half} vs {touched_second_half}"
    );
    assert!(cracker.check_invariant());
}

/// Cracking under a mixed read/write workload stays exact.
#[test]
fn cracking_with_interleaved_updates() {
    let n = 50_000;
    let data = uniform_i64(n, 0, 100_000, 9);
    let mut cracker = CrackerColumn::new(data.clone()).with_merge_threshold(512);
    // oracle state
    let mut live: Vec<(u32, i64, bool)> = data
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as u32, v, true))
        .collect();
    let inserts = uniform_i64(2000, 0, 100_000, 10);
    let queries = range_query_log(100, 100_000, 0.01, QueryPattern::Random, 11);
    for (i, q) in queries.iter().enumerate() {
        // every other query, mutate: 20 inserts + 10 deletes
        if i % 2 == 0 {
            for k in 0..20 {
                let v = inserts[(i * 20 + k) % inserts.len()];
                let row = cracker.insert(v);
                live.push((row, v, true));
            }
            for k in 0..10 {
                let idx = (i * 37 + k * 101) % live.len();
                let (row, _, alive) = live[idx];
                assert_eq!(cracker.delete(row), alive);
                live[idx].2 = false;
            }
        }
        let got = cracker.select_count(Bound::Incl(q.lo), Bound::Excl(q.hi));
        let expect = live
            .iter()
            .filter(|(_, v, alive)| *alive && *v >= q.lo && *v < q.hi)
            .count();
        assert_eq!(got, expect, "query {i}");
    }
    assert!(cracker.check_invariant());
}

/// The recycler pays off on a Skyserver-like log and never serves stale
/// results across DML, inside the full SQL engine.
#[test]
fn recycler_on_skyserver_log_with_dml() {
    let mut db = Database::with_recycler(64 << 20);
    db.execute("CREATE TABLE sky (ra BIGINT, dec BIGINT)")
        .unwrap();
    // moderate table so the test stays quick
    let ra = uniform_i64(20_000, 0, 100_000, 1);
    let dec = uniform_i64(20_000, 0, 100_000, 2);
    use mammoth::storage::{Bat, Table};
    use mammoth::types::{ColumnDef, LogicalType, TableSchema};
    db.catalog_mut().drop_table("sky").unwrap();
    db.catalog_mut()
        .create_table(
            Table::from_bats(
                TableSchema::new(
                    "sky",
                    vec![
                        ColumnDef::new("ra", LogicalType::I64),
                        ColumnDef::new("dec", LogicalType::I64),
                    ],
                ),
                vec![Bat::from_vec(ra.clone()), Bat::from_vec(dec.clone())],
            )
            .unwrap(),
        )
        .unwrap();

    let log = skyserver_log(120, 2, 15, 1.1, 100_000, 3);
    let mut answers: Vec<i64> = Vec::new();
    for q in &log {
        let col = if q.column == 0 { "ra" } else { "dec" };
        let out = db
            .execute(&format!(
                "SELECT COUNT({col}) FROM sky WHERE {col} >= {} AND {col} <= {}",
                q.range.lo, q.range.hi
            ))
            .unwrap();
        let QueryOutput::Table { rows, .. } = out else {
            panic!()
        };
        answers.push(rows[0][0].as_i64().unwrap());
    }
    let stats = db.recycler_stats().unwrap().clone();
    assert!(
        stats.exact_hits > 50,
        "a zipf log must hit the recycler hard: {stats:?}"
    );

    // oracle check on a few queries
    for (q, &got) in log.iter().zip(&answers).take(20) {
        let col = if q.column == 0 { &ra } else { &dec };
        let expect = col
            .iter()
            .filter(|&&v| v >= q.range.lo && v <= q.range.hi)
            .count() as i64;
        assert_eq!(got, expect);
    }

    // DML must invalidate: the repeated query now sees the new row
    let q = &log[0];
    let col = if q.column == 0 { "ra" } else { "dec" };
    let out1 = db
        .execute(&format!(
            "SELECT COUNT({col}) FROM sky WHERE {col} >= {} AND {col} <= {}",
            q.range.lo, q.range.hi
        ))
        .unwrap();
    db.execute(&format!(
        "INSERT INTO sky VALUES ({}, {})",
        q.range.lo, q.range.lo
    ))
    .unwrap();
    let out2 = db
        .execute(&format!(
            "SELECT COUNT({col}) FROM sky WHERE {col} >= {} AND {col} <= {}",
            q.range.lo, q.range.hi
        ))
        .unwrap();
    let (QueryOutput::Table { rows: r1, .. }, QueryOutput::Table { rows: r2, .. }) = (out1, out2)
    else {
        panic!()
    };
    let expected_increase = if q.column == 0 { 1 } else { 0 };
    assert_eq!(
        r2[0][0].as_i64().unwrap(),
        r1[0][0].as_i64().unwrap() + expected_increase,
        "recycler must not serve stale counts after INSERT"
    );
}

/// Recycler subsumption: a narrow range can be refined from a cached wide
/// range without touching the base column.
#[test]
fn recycler_subsumption_path() {
    use mammoth::storage::Bat;
    let mut rec = Recycler::new(1 << 20, EvictPolicy::Lru);
    let wide = Bat::from_vec((0..1000i64).collect::<Vec<_>>());
    rec.admit_range(
        "t.a",
        Some(0),
        Some(999),
        "wide",
        wide,
        vec!["t.a".into()],
        100,
    );
    let hit = rec.lookup_covering("t.a", Some(100), Some(200));
    assert!(hit.is_some());
    assert_eq!(rec.stats().subsumption_hits, 1);
    // refine on the hit instead of the base column
    let cached = hit.unwrap();
    let refined = mammoth::algebra::select_range(
        &cached,
        Some(&Value::I64(100)),
        Some(&Value::I64(200)),
        true,
        true,
    )
    .unwrap();
    assert_eq!(refined.len(), 101);
}

mod recycler_equivalence {
    use super::*;
    use mammoth::algebra::{AggKind, CmpOp};
    use mammoth::mal::{Arg, Interpreter, MalValue, OpCode, Program};
    use mammoth::storage::{Bat, Catalog, Table};
    use mammoth::types::{ColumnDef, LogicalType, TableSchema};
    use mammoth::workload::uniform_i64 as gen_i64;
    use proptest::prelude::*;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let t = Table::from_bats(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("a", LogicalType::I64),
                    ColumnDef::new("b", LogicalType::I64),
                ],
            ),
            vec![
                Bat::from_vec(gen_i64(2000, 0, 50, 21)),
                Bat::from_vec(gen_i64(2000, 0, 1000, 22)),
            ],
        )
        .unwrap();
        cat.create_table(t).unwrap();
        cat
    }

    /// `SELECT b, SUM(b), COUNT(b) FROM t WHERE a > cut` as MAL — with
    /// `cut` drawn from a tiny domain, a query log repeats subplans and
    /// the recycler gets real hits.
    fn plan(cut: i64) -> Program {
        let mut p = Program::new();
        let a = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("a".into())),
            ],
        )[0];
        let c = p.push(
            OpCode::ThetaSelect(CmpOp::Gt),
            vec![Arg::Var(a), Arg::Const(Value::I64(cut))],
        )[0];
        let b = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("b".into())),
            ],
        )[0];
        let f = p.push(OpCode::Projection, vec![Arg::Var(c), Arg::Var(b)])[0];
        let s = p.push(OpCode::Aggr(AggKind::Sum), vec![Arg::Var(f)])[0];
        let n = p.push(OpCode::Count, vec![Arg::Var(f)])[0];
        p.push_result(&[f, s, n]);
        p
    }

    /// Outputs compare bit-exactly: BATs by their i64 tails, scalars by
    /// value.
    fn flatten(vals: &[MalValue]) -> (Vec<i64>, Vec<Value>) {
        let mut bats = Vec::new();
        let mut scalars = Vec::new();
        for v in vals {
            match v.as_bat() {
                Some(b) => bats.extend_from_slice(b.tail_slice::<i64>().unwrap()),
                None => scalars.push(v.as_scalar().unwrap().clone()),
            }
        }
        (bats, scalars)
    }

    proptest! {
        // The recycler is pure memoization: over any query log, results
        // with the cache are bit-identical to results without it, and the
        // hit counters only ever grow.
        #[test]
        fn prop_recycler_is_transparent(
            cuts in proptest::collection::vec(0i64..12, 1..24),
        ) {
            let cat = catalog();
            let mut rec = Recycler::new(32 << 20, EvictPolicy::Lru);
            let mut last_hits = 0u64;
            let mut last_lookups = 0u64;
            for &cut in &cuts {
                let prog = plan(cut);
                let plain = Interpreter::new(&cat).run(&prog).unwrap();
                let cached = Interpreter::with_recycler(&cat, &mut rec)
                    .run(&prog)
                    .unwrap();
                prop_assert_eq!(flatten(&plain), flatten(&cached));
                let stats = rec.stats();
                prop_assert!(stats.exact_hits >= last_hits, "hit counter went backwards");
                prop_assert!(stats.lookups >= last_lookups, "lookup counter went backwards");
                prop_assert!(stats.exact_hits <= stats.lookups);
                last_hits = stats.exact_hits;
                last_lookups = stats.lookups;
            }
            // every distinct cut was computed once; repeats must hit
            let distinct = cuts.iter().collect::<std::collections::HashSet<_>>().len();
            if cuts.len() > distinct {
                prop_assert!(last_hits > 0, "repeated subplans never hit the recycler");
            }
        }
    }
}
