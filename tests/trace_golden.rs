//! Golden-file test for the JSON trace schema.
//!
//! A fixed two-join plan over a fixed four-row catalog is profiled on the
//! serial interpreter; with timestamps zeroed, every other field of the
//! trace — opcodes, argument renderings, row counts, heap bytes, the run
//! header — is fully deterministic. The serialized trace must match
//! `tests/golden/two_join_trace.jsonl` byte for byte.
//!
//! If an intentional schema change lands, regenerate the golden file with
//! `BLESS=1 cargo test --test trace_golden` and review the diff like any
//! other code change: every field that moved is a consumer you may have
//! broken.

use mammoth::mal::{Arg, Interpreter, OpCode, Program};
use mammoth::storage::{Bat, Catalog, Table};
use mammoth::types::{validate_trace, ColumnDef, LogicalType, TableSchema, Value};

use mammoth::algebra::AggKind;

const GOLDEN: &str = "tests/golden/two_join_trace.jsonl";

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    let t = Table::from_bats(
        TableSchema::new("ages", vec![ColumnDef::new("age", LogicalType::I64)]),
        vec![Bat::from_vec(vec![1907i64, 1927, 1927, 1968])],
    )
    .unwrap();
    cat.create_table(t).unwrap();
    cat
}

/// The fixture: two self-joins on `ages.age` feeding a SUM — the same
/// shape the interpreter's liveness tests use.
fn two_join_plan() -> Program {
    let mut p = Program::new();
    let bind = |p: &mut Program| {
        p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("ages".into())),
                Arg::Const(Value::Str("age".into())),
            ],
        )[0]
    };
    let age1 = bind(&mut p);
    let age2 = bind(&mut p);
    let j1 = p.push(OpCode::Join, vec![Arg::Var(age1), Arg::Var(age2)]);
    let f1 = p.push(OpCode::Projection, vec![Arg::Var(j1[0]), Arg::Var(age1)])[0];
    let j2 = p.push(OpCode::Join, vec![Arg::Var(f1), Arg::Var(age2)]);
    let f2 = p.push(OpCode::Projection, vec![Arg::Var(j2[0]), Arg::Var(f1)])[0];
    let s = p.push(OpCode::Aggr(AggKind::Sum), vec![Arg::Var(f2)])[0];
    p.push_result(&[s]);
    p
}

#[test]
fn two_join_trace_matches_golden_file() {
    let cat = catalog();
    let mut interp = Interpreter::new(&cat).profiled(true);
    interp.run(&two_join_plan()).unwrap();
    let mut run = interp.profiled_run("serial");
    run.zero_timestamps();
    let got = run.to_json_lines();

    // whatever we compare against, the trace must self-validate
    let (runs, events) = validate_trace(&got).expect("trace must pass its own schema");
    assert_eq!(runs, 1);
    assert_eq!(events as u64, run.executed);

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {GOLDEN} ({e}); run with BLESS=1"));
    assert_eq!(
        got, want,
        "trace schema drifted from {GOLDEN}; if intentional, re-bless with BLESS=1"
    );
}
