//! The chaos tier: a sharded cluster under deterministic network faults
//! and primary death must never lie.
//!
//! The invariants under test:
//!
//! * **Typed degradation under FaultNet** — with a seeded schedule of
//!   transient network faults armed (`MAMMOTH_NET_FAULT_SEED` selects
//!   it), every statement through the coordinator either succeeds or
//!   fails with a typed `CoordError` — never a panic, never a hang past
//!   the deadline budget, never a truncated result table. Acknowledged
//!   writes are never lost: after the schedule is disarmed the cluster
//!   holds `acked <= total <= attempted` rows (an unacked statement may
//!   have landed before its OK frame was torn — that is the only slack).
//! * **Replica failover** — killing one shard primary under a live
//!   health monitor degrades that shard's reads to its replica (the
//!   cluster keeps answering fan-out SELECTs throughout the outage),
//!   fails its writes fast with `SHARD_UNAVAILABLE` (never silently
//!   stale), then drives `PROMOTE` and restores write availability with
//!   `acked <= recovered <= acked + 1` per shard. `EXPLAIN SHARDING`
//!   reports the promoted replica as the shard's healthy new primary.
//!
//! Both tests serialize on `netfault::test_lock()`: FaultNet's schedule
//! and operation counters are process-global, so a second arming test on
//! a parallel test thread would steal the first one's faults.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mammoth_replica::{Replica, ReplicaConfig};
use mammoth_server::{RetryPolicy, Server, ServerConfig, SessionSpec};
use mammoth_shard::{shard_of, CoordError, Coordinator, CoordinatorConfig};
use mammoth_sql::{QueryOutput, Session};
use mammoth_types::netfault;
use mammoth_types::Value;

const NSHARDS: usize = 3;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mammoth-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn chaos_seed() -> u64 {
    std::env::var(netfault::NET_FAULT_SEED_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1)
}

fn quick_retry(seed: u64) -> RetryPolicy {
    RetryPolicy {
        attempts: 3,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(25),
        seed,
    }
}

fn count_all(coord: &Coordinator) -> Result<i64, CoordError> {
    match coord.execute("SELECT COUNT(*) FROM t")? {
        QueryOutput::Table { rows, .. } => match rows[0][0] {
            Value::I64(n) => Ok(n),
            ref other => panic!("COUNT(*) returned {other:?}"),
        },
        other => panic!("COUNT(*) returned {other:?}"),
    }
}

/// Poll `f` until it returns `Some`, panicking with `what` on timeout.
fn wait_for<T>(deadline: Duration, what: &str, mut f: impl FnMut() -> Option<T>) -> T {
    let t0 = Instant::now();
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------- FaultNet differential

/// A seeded workload through the coordinator with FaultNet armed: every
/// statement fails typed or succeeds, nothing hangs, and once the
/// schedule is disarmed the cluster's row count brackets between what
/// was acked and what was attempted.
#[test]
fn seeded_net_faults_degrade_typed_and_lose_no_acked_write() {
    let _g = netfault::test_lock()
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    netfault::clear();
    let seed = chaos_seed();

    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..NSHARDS {
        let srv = Server::start(ServerConfig {
            spec: SessionSpec::in_memory(),
            ..ServerConfig::default()
        })
        .unwrap();
        addrs.push(srv.local_addr().to_string());
        servers.push(srv);
    }
    let mut cfg = CoordinatorConfig::new(addrs);
    cfg.deadline = Duration::from_millis(1500);
    cfg.retry = quick_retry(seed);
    let coord = Coordinator::new(cfg);

    // Clean setup, then arm the seeded schedule for the workload proper.
    coord
        .execute("CREATE TABLE t (id BIGINT NOT NULL, v BIGINT)")
        .unwrap();
    let mut next_id = 0i64;
    for _ in 0..10 {
        coord
            .execute(&format!("INSERT INTO t VALUES ({next_id}, {next_id})"))
            .unwrap();
        next_id += 1;
    }
    let baseline = next_id;

    netfault::install(netfault::plan_from_seed(seed));
    let mut acked = 0i64;
    let mut attempted = 0i64;
    let budget = Duration::from_secs(60);
    let t0 = Instant::now();
    for step in 0..120 {
        // Writes and fan-out reads interleave so scheduled faults land on
        // routed DML, scatter legs, and gather frames alike.
        if step % 3 == 2 {
            let started = Instant::now();
            match coord.execute("SELECT COUNT(*), MIN(v), MAX(v) FROM t") {
                Ok(QueryOutput::Table { rows, .. }) => {
                    assert_eq!(rows.len(), 1, "aggregate row count (seed {seed})");
                }
                Ok(other) => panic!("aggregate answered {other:?} (seed {seed})"),
                // Typed failure is the contract under faults; a truncated
                // Ok table would have tripped the arm above.
                Err(CoordError::Unavailable(_)) | Err(CoordError::Remote { .. }) => {}
                Err(e) => panic!("untyped read failure under seed {seed}: {e}"),
            }
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "read leg blew the bounded-failure budget (seed {seed})"
            );
        } else {
            let id = next_id;
            next_id += 1;
            attempted += 1;
            match coord.execute(&format!("INSERT INTO t VALUES ({id}, {id})")) {
                Ok(QueryOutput::Affected(1)) => acked += 1,
                Ok(other) => panic!("INSERT answered {other:?} (seed {seed})"),
                Err(CoordError::Unavailable(_)) | Err(CoordError::Remote { .. }) => {}
                Err(e) => panic!("untyped write failure under seed {seed}: {e}"),
            }
        }
        assert!(
            t0.elapsed() < budget,
            "chaos workload hung: {step} steps ate {budget:?} (seed {seed})"
        );
    }
    let fired = netfault::fired();
    netfault::clear();
    assert!(
        fired > 0,
        "seed {seed} scheduled no fault inside the workload"
    );

    // Disarmed, the cluster must converge and answer cleanly again; the
    // only acceptable drift is a write that landed without its ack.
    let total = wait_for(Duration::from_secs(10), "post-chaos convergence", || {
        count_all(&coord).ok()
    });
    assert!(
        baseline + acked <= total && total <= baseline + attempted,
        "seed {seed}: acked {acked} of {attempted} over baseline {baseline}, but counted {total}"
    );
    for s in servers {
        s.shutdown().unwrap();
    }
}

// --------------------------------------------------------------- failover

/// Kill one shard primary under a live health monitor: reads keep
/// flowing (degraded to the replica, then to the promoted primary),
/// writes fail typed until promotion restores them, and no shard loses
/// an acked statement.
#[test]
fn primary_death_degrades_reads_then_promotes_the_replica() {
    let _g = netfault::test_lock()
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    netfault::clear();

    let pdirs: Vec<_> = (0..NSHARDS).map(|i| tmpdir(&format!("ha-p{i}"))).collect();
    let rdirs: Vec<_> = (0..NSHARDS).map(|i| tmpdir(&format!("ha-r{i}"))).collect();
    let mut servers: Vec<Option<Server>> = Vec::new();
    let mut addrs = Vec::new();
    for dir in &pdirs {
        let srv = Server::start(ServerConfig {
            spec: SessionSpec::durable(dir),
            ..ServerConfig::default()
        })
        .unwrap();
        addrs.push(srv.local_addr().to_string());
        servers.push(Some(srv));
    }
    let mut replicas: Vec<Option<Replica>> = Vec::new();
    let mut raddrs = Vec::new();
    for (i, rdir) in rdirs.iter().enumerate() {
        let mut rcfg = ReplicaConfig::new(&addrs[i], rdir);
        rcfg.poll_interval = Duration::from_millis(5);
        rcfg.retry = quick_retry(11);
        // The replica can see its primary's disk: promotion drains the
        // unreplicated WAL tail, which is what makes `acked <=
        // recovered` hold exactly, not just up to replication lag.
        rcfg.primary_data = Some(pdirs[i].clone());
        let r = Replica::start(rcfg).unwrap();
        raddrs.push(r.local_addr().to_string());
        replicas.push(Some(r));
    }

    let mut cfg = CoordinatorConfig::new(addrs.clone());
    cfg.deadline = Duration::from_millis(1500);
    cfg.retry = quick_retry(23);
    cfg.replicas = raddrs.iter().cloned().map(Some).collect();
    cfg.probe_interval = Duration::from_millis(25);
    cfg.suspect_after = 2;
    cfg.promote_timeout = Duration::from_secs(10);
    let coord = Arc::new(Coordinator::new(cfg));
    coord.start_health_monitor();

    coord
        .execute("CREATE TABLE t (id BIGINT NOT NULL, v BIGINT)")
        .unwrap();
    let mut acked = [0u64; NSHARDS];
    let mut next_id = 0i64;
    for _ in 0..30 {
        let id = next_id;
        next_id += 1;
        coord
            .execute(&format!("INSERT INTO t VALUES ({id}, {})", id * 7))
            .unwrap();
        acked[shard_of(&Value::I64(id), NSHARDS)] += 1;
    }
    let pre_kill: i64 = next_id;
    // `caught_up` latches at the first empty poll, so ask each replica's
    // own server when it actually *serves* every acked row — that is the
    // state a degraded read will be judged against.
    for (i, raddr) in raddrs.iter().enumerate() {
        use mammoth_server::{Client, Response};
        wait_for(Duration::from_secs(20), "replica convergence", || {
            let mut c = Client::connect(raddr, "chaos-check", "").ok()?;
            let served = match c.query("SELECT COUNT(*) FROM t").ok()? {
                Response::Table { rows, .. } => match rows[0][0] {
                    Value::I64(n) => n as u64,
                    ref other => panic!("COUNT(*) returned {other:?}"),
                },
                other => panic!("COUNT(*) returned {other:?}"),
            };
            let _ = c.quit();
            (served == acked[i]).then_some(())
        });
    }
    assert_eq!(coord.shard_health(), vec!["healthy"; NSHARDS]);

    // Kill shard 1's primary. Its listener closes, so the monitor's next
    // probes miss and confirm the death.
    let victim = 1usize;
    servers[victim].take().unwrap().shutdown().unwrap();

    // Reads must flow during the outage: first typed-or-correct while
    // the monitor converges, then correct. A succeeding fan-out count is
    // exact — the replica was caught up and no writes have raced it.
    let t0 = Instant::now();
    let mut degraded_reads = 0u32;
    let total = wait_for(
        Duration::from_secs(15),
        "a degraded read",
        || match count_all(&coord) {
            Ok(n) => Some(n),
            Err(CoordError::Unavailable(_)) | Err(CoordError::Remote { .. }) => {
                degraded_reads += 1;
                None
            }
            Err(e) => panic!("untyped read failure during outage: {e}"),
        },
    );
    assert_eq!(
        total, pre_kill,
        "degraded read must not lose or invent rows"
    );
    let _ = (t0, degraded_reads); // observability only; timing is env-dependent

    // Writes: victim-owned keys fail *typed* until promotion restores
    // the shard; live shards keep acking throughout. Loop until a
    // victim-owned write lands — that is write availability restored.
    let mut victim_write_failures = 0u32;
    let t_promote = Instant::now();
    'restored: loop {
        assert!(
            t_promote.elapsed() < Duration::from_secs(20),
            "promotion never restored victim writes \
             ({victim_write_failures} typed failures observed)"
        );
        let id = next_id;
        next_id += 1;
        let owner = shard_of(&Value::I64(id), NSHARDS);
        match coord.execute(&format!("INSERT INTO t VALUES ({id}, 0)")) {
            Ok(QueryOutput::Affected(1)) => {
                acked[owner] += 1;
                if owner == victim {
                    break 'restored;
                }
            }
            Err(CoordError::Unavailable(msg)) => {
                assert_eq!(
                    owner, victim,
                    "only the dead shard may refuse a write: {msg}"
                );
                victim_write_failures += 1;
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("INSERT during outage answered {other:?}"),
        }
    }

    // The control plane must agree: every shard healthy again, the
    // victim's primary address swapped to the promoted replica, and its
    // replica slot consumed.
    wait_for(
        Duration::from_secs(10),
        "all-healthy EXPLAIN SHARDING",
        || (coord.shard_health() == vec!["healthy"; NSHARDS]).then_some(()),
    );
    match coord.execute("EXPLAIN SHARDING").unwrap() {
        QueryOutput::Table { columns, rows } => {
            assert_eq!(columns[3], "addr");
            for r in &rows {
                let Value::I64(shard) = r[2] else {
                    panic!("unexpected row shape {r:?}")
                };
                if shard as usize == victim {
                    assert_eq!(r[3], Value::Str(raddrs[victim].clone()), "addr not swapped");
                    assert_eq!(r[6], Value::Str(String::new()), "replica slot not consumed");
                }
                assert_eq!(r[5], Value::Str("healthy".into()));
            }
        }
        other => panic!("EXPLAIN SHARDING answered {other:?}"),
    }
    let final_total = count_all(&coord).unwrap();
    assert_eq!(final_total as u64, acked.iter().sum::<u64>());

    // Audit durable state per shard: survivors from their own
    // directories, the victim from the promoted replica's mirror.
    coord.stop_health_monitor();
    drop(coord);
    for r in replicas.into_iter().flatten() {
        r.shutdown().unwrap();
    }
    for s in servers.iter_mut() {
        if let Some(srv) = s.take() {
            srv.shutdown().unwrap();
        }
    }
    for i in 0..NSHARDS {
        let dir = if i == victim { &rdirs[i] } else { &pdirs[i] };
        let mut session = Session::open_durable(dir).unwrap();
        let recovered = match session.execute("SELECT COUNT(*) FROM t").unwrap() {
            QueryOutput::Table { rows, .. } => match rows[0][0] {
                Value::I64(n) => n as u64,
                ref other => panic!("COUNT(*) returned {other:?}"),
            },
            other => panic!("COUNT(*) returned {other:?}"),
        };
        assert!(
            acked[i] <= recovered && recovered <= acked[i] + 1,
            "shard {i}: acked {} recovered {recovered}",
            acked[i]
        );
    }
    for d in pdirs.iter().chain(rdirs.iter()) {
        let _ = std::fs::remove_dir_all(d);
    }
}
