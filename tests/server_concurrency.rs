//! mammoth-server under concurrent load.
//!
//! Two claims, both seed-deterministic in their workloads:
//!
//! * **Serializable equivalence** — 16 client threads issue a mixed
//!   DDL/DML/SELECT stream against one server. Every per-thread-private
//!   observation must be *exact* (each thread owns a private table whose
//!   state is deterministic), shared-table counts must be monotone while
//!   only inserts run, and the final shared state must equal the sum of
//!   everything acknowledged. No deadlock: the test simply finishes.
//! * **Kill recovery** — a durable server is "killed" mid-load with a
//!   [`FaultFs`] crash schedule (every disk op after the Nth fails).
//!   Reopening the store with a healthy filesystem must recover every
//!   acknowledged INSERT; only the one statement in flight at the crash
//!   may appear beyond that (fsync'd but never acknowledged).

use mammoth_server::{Client, ClientError, Response, Server, ServerConfig, SessionSpec};
use mammoth_sql::{QueryOutput, Session};
use mammoth_storage::{FaultFs, FaultKind, FaultPlan};
use mammoth_types::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mammoth-srvtest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// xorshift64* — the same seedable generator the durability tests use.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn count(resp: Response) -> i64 {
    match resp {
        Response::Table { rows, .. } => match rows[0][0] {
            Value::I64(n) => n,
            ref v => panic!("COUNT came back as {v:?}"),
        },
        other => panic!("expected a count table, got {other:?}"),
    }
}

#[test]
fn mixed_load_sixteen_threads_is_serializable_equivalent() {
    let seed: u64 = std::env::var("MAMMOTH_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let srv = Server::start(ServerConfig {
        workers: 16,
        backlog: 32,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = srv.local_addr().to_string();
    {
        let mut c = Client::connect(&addr, "setup", "").unwrap();
        assert_eq!(
            c.query("CREATE TABLE shared (a INT NOT NULL)").unwrap(),
            Response::Ok
        );
        c.quit().unwrap();
    }

    const THREADS: u64 = 16;
    const STEPS: u64 = 30;
    let shared_inserted = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..THREADS)
        .map(|ti| {
            let addr = addr.clone();
            let shared_inserted = shared_inserted.clone();
            std::thread::spawn(move || {
                let mut rng = Rng::new(seed ^ (ti + 1));
                let mut c = Client::connect(&addr, &format!("mix-{ti}"), "").unwrap();
                // DDL: a private table whose whole history this thread owns.
                c.query(&format!("CREATE TABLE own_{ti} (a INT NOT NULL)"))
                    .unwrap();
                let mut own_rows: Vec<u64> = Vec::new();
                let mut last_shared_count = 0i64;
                for k in 0..STEPS {
                    match rng.below(5) {
                        // 2-in-5: shared insert (globally counted)
                        0 | 1 => {
                            let v = ti * 10_000 + k;
                            assert_eq!(
                                c.query(&format!("INSERT INTO shared VALUES ({v})"))
                                    .unwrap(),
                                Response::Affected(1)
                            );
                            shared_inserted.fetch_add(1, Ordering::SeqCst);
                        }
                        // private insert: state fully deterministic
                        2 => {
                            let v = rng.below(1000);
                            c.query(&format!("INSERT INTO own_{ti} VALUES ({v})"))
                                .unwrap();
                            own_rows.push(v);
                        }
                        // private delete of a value we know about
                        3 if !own_rows.is_empty() => {
                            let v = own_rows[rng.below(own_rows.len() as u64) as usize];
                            let expect = own_rows.iter().filter(|&&x| x == v).count();
                            assert_eq!(
                                c.query(&format!("DELETE FROM own_{ti} WHERE a = {v}"))
                                    .unwrap(),
                                Response::Affected(expect as u64),
                                "private DELETE saw foreign rows"
                            );
                            own_rows.retain(|&x| x != v);
                        }
                        // reads: private count exact, shared count monotone
                        _ => {
                            let own =
                                count(c.query(&format!("SELECT COUNT(*) FROM own_{ti}")).unwrap());
                            assert_eq!(own as usize, own_rows.len(), "private count drifted");
                            let sh = count(c.query("SELECT COUNT(*) FROM shared").unwrap());
                            assert!(
                                sh >= last_shared_count,
                                "shared count went backwards under insert-only load"
                            );
                            last_shared_count = sh;
                        }
                    }
                }
                // Half the threads drop their table (DDL churn); the other
                // half verify and leave it for the final sweep.
                if ti % 2 == 0 {
                    c.query(&format!("DROP TABLE own_{ti}")).unwrap();
                } else {
                    let own = count(c.query(&format!("SELECT COUNT(*) FROM own_{ti}")).unwrap());
                    assert_eq!(own as usize, own_rows.len());
                }
                c.quit().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Global serializable-equivalence check: nothing lost, nothing doubled.
    let mut c = Client::connect(&addr, "verify", "").unwrap();
    let total = count(c.query("SELECT COUNT(*) FROM shared").unwrap());
    assert_eq!(total as u64, shared_inserted.load(Ordering::SeqCst));
    // Dropped tables are gone; kept tables remain queryable.
    assert!(c.query("SELECT COUNT(*) FROM own_0").is_err());
    assert!(c.query("SELECT COUNT(*) FROM own_1").is_ok());
    c.quit().unwrap();
    let stats = srv.shutdown().unwrap();
    assert_eq!(stats.accepted, 18); // setup + 16 mixers + verify
}

#[test]
fn killed_server_recovers_every_acknowledged_statement() {
    let dir = tmpdir("kill");
    // Let setup (store creation + CREATE TABLE) through, then crash the
    // "disk" a couple hundred mutating operations into the load.
    let fs = Arc::new(FaultFs::new(FaultPlan {
        at_op: 220,
        kind: FaultKind::CrashAfter,
    }));
    let srv = Server::start(ServerConfig {
        workers: 4,
        backlog: 16,
        spec: SessionSpec::durable_with(fs.clone(), dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = srv.local_addr().to_string();
    {
        let mut c = Client::connect(&addr, "setup", "").unwrap();
        c.query("CREATE TABLE t (a INT NOT NULL)").unwrap();
        c.quit().unwrap();
    }

    let acked = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..4u64)
        .map(|wi| {
            let addr = addr.clone();
            let acked = acked.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, &format!("w{wi}"), "").unwrap();
                for k in 0..2000u64 {
                    match c.query(&format!("INSERT INTO t VALUES ({})", wi * 10_000 + k)) {
                        Ok(Response::Affected(1)) => {
                            acked.fetch_add(1, Ordering::SeqCst);
                        }
                        Ok(other) => panic!("INSERT acked oddly: {other:?}"),
                        // The injected crash surfaces as SQL_ERROR frames
                        // (or a torn connection); the "process" is dead.
                        Err(_) => return,
                    }
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    let acked = acked.load(Ordering::SeqCst);
    assert!(
        fs.fired_on().is_some(),
        "the workload never reached the crash point — raise the load"
    );
    assert!(acked > 0, "nothing was acknowledged before the crash");

    // Graceful-drain machinery still works, but the shutdown checkpoint
    // hits the dead disk; that error is the expected outcome of a kill.
    let _ = srv.shutdown();

    // Reopen with a healthy filesystem: the committed prefix must be back.
    let mut s = Session::open_durable(dir.clone()).expect("recovery after kill");
    let QueryOutput::Table { rows, .. } = s.execute("SELECT COUNT(*) FROM t").unwrap() else {
        panic!("COUNT did not return a table")
    };
    let Value::I64(recovered) = rows[0][0] else {
        panic!("COUNT returned a non-integer")
    };
    let recovered = recovered as u64;
    // Every acknowledged statement is durable (the WAL fsyncs before the
    // ack frame). Writes serialize on the session, so at most ONE extra
    // statement — in flight at the crash, durable but never acknowledged —
    // may appear on top.
    assert!(
        recovered >= acked,
        "kill lost {} acknowledged statements",
        acked - recovered
    );
    assert!(
        recovered <= acked + 1,
        "recovered {recovered} rows but only {acked} were acknowledged (+1 allowed)"
    );
    // And the store is live again: new statements commit.
    s.execute("INSERT INTO t VALUES (424242)").unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shed_connections_get_busy_not_hangs() {
    // Regression guard at the integration level: a burst against a tiny
    // server resolves every connect — served, shed, or refused — without
    // any client blocking forever.
    let srv = Server::start(ServerConfig {
        workers: 2,
        backlog: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = srv.local_addr().to_string();
    {
        let mut c = Client::connect(&addr, "setup", "").unwrap();
        c.query("CREATE TABLE t (a INT)").unwrap();
        c.quit().unwrap();
    }
    let handles: Vec<_> = (0..32)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || match Client::connect(&addr, &format!("b{i}"), "") {
                Ok(mut c) => {
                    c.query("SELECT COUNT(*) FROM t").unwrap();
                    let _ = c.quit();
                    true
                }
                Err(ClientError::Busy(_)) => false,
                Err(e) => panic!("hard failure instead of shed: {e}"),
            })
        })
        .collect();
    let served = handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .filter(|&ok| ok)
        .count();
    assert!(served >= 1, "nobody was served");
    srv.shutdown().unwrap();
}
