//! Integration test: the execution paradigms — tuple-at-a-time (volcano),
//! column-at-a-time (BAT algebra via SQL), vectorized (X100-style), and the
//! multi-core dataflow engine — must return identical answers on the same
//! generated data. This is the correctness backbone of experiments E08 and
//! E19.

use mammoth::storage::{Bat, Table};
use mammoth::types::{ColumnDef, LogicalType, TableSchema, Value};
use mammoth::vectorized::{
    AggSpec, CmpOp as VCmp, ColRef, Column, ColumnSet, MapOp, Operand, Pipeline, QueryResult, Sink,
    Stage,
};
use mammoth::volcano::{
    expr::CmpOp as ExprCmp, iter::AggFn, Expr, FilterOp, HashAggOp, NsmTable, SeqScanOp,
};
use mammoth::workload::LineitemSlice;
use mammoth::{Database, Engine, QueryOutput};

const N: usize = 20_000;
const CUTOFF: i64 = 10_000;
const QTY: i64 = 25;

fn slice() -> LineitemSlice {
    LineitemSlice::generate(N, 99)
}

/// The oracle: a plain loop.
fn oracle() -> (i64, i64) {
    let s = slice();
    let (count, _sq, sp) = s.q1_reference(CUTOFF, QTY);
    // our query sums qty*price instead of price: recompute
    let mut spq = 0;
    for i in 0..s.len() {
        if s.shipdate[i] <= CUTOFF && s.quantity[i] < QTY {
            spq += s.quantity[i] * s.extendedprice[i];
        }
    }
    let _ = sp;
    (count, spq)
}

#[test]
fn volcano_engine_matches_oracle() {
    let s = slice();
    let table = NsmTable::from_columns(
        TableSchema::new(
            "lineitem",
            vec![
                ColumnDef::new("qty", LogicalType::I64),
                ColumnDef::new("price", LogicalType::I64),
                ColumnDef::new("shipdate", LogicalType::I64),
            ],
        ),
        &[
            s.quantity.iter().map(|&x| Value::I64(x)).collect(),
            s.extendedprice.iter().map(|&x| Value::I64(x)).collect(),
            s.shipdate.iter().map(|&x| Value::I64(x)).collect(),
        ],
    )
    .unwrap();
    let pred = Expr::and(
        Expr::cmp(ExprCmp::Le, Expr::col(2), Expr::lit(CUTOFF)),
        Expr::cmp(ExprCmp::Lt, Expr::col(0), Expr::lit(QTY)),
    );
    // project qty*price then aggregate
    let plan = HashAggOp::new(
        mammoth::volcano::ProjectOp::new(
            FilterOp::new(SeqScanOp::new(&table.file), pred),
            vec![Expr::arith(
                mammoth::volcano::expr::ArithOp::Mul,
                Expr::col(0),
                Expr::col(1),
            )],
        ),
        vec![],
        vec![AggFn::CountStar, AggFn::Sum(0)],
    );
    let rows = mammoth::volcano::iter::collect_all(plan).unwrap();
    let (count, sum) = oracle();
    assert_eq!(rows[0][0], Value::I64(count));
    assert_eq!(rows[0][1], Value::F64(sum as f64));
}

#[test]
fn column_engine_matches_oracle() {
    let s = slice();
    let mut db = Database::new();
    let table = Table::from_bats(
        TableSchema::new(
            "lineitem",
            vec![
                ColumnDef::new("qty", LogicalType::I64),
                ColumnDef::new("price", LogicalType::I64),
                ColumnDef::new("shipdate", LogicalType::I64),
            ],
        ),
        vec![
            Bat::from_vec(s.quantity.clone()),
            Bat::from_vec(s.extendedprice.clone()),
            Bat::from_vec(s.shipdate.clone()),
        ],
    )
    .unwrap();
    db.catalog_mut().create_table(table).unwrap();
    // SQL can't express qty*price yet, so drive the MAL program directly
    let out = db
        .execute_mal(&format!(
            r#"
            qty   := sql.bind("lineitem", "qty");
            price := sql.bind("lineitem", "price");
            ship  := sql.bind("lineitem", "shipdate");
            c1    := algebra.thetaselect[<=](ship, {CUTOFF});
            qty1  := algebra.projection(c1, qty);
            c2l   := algebra.thetaselect[<](qty1, {QTY});
            c2    := algebra.projection(c2l, c1);
            qty2  := algebra.projection(c2, qty);
            pr2   := algebra.projection(c2, price);
            prod  := batcalc.*(qty2, pr2);
            total := aggr.sum(prod);
            n     := aggr.count(prod);
            io.result(n, total);
        "#
        ))
        .unwrap();
    let (count, sum) = oracle();
    assert_eq!(out[0].as_scalar().unwrap(), &Value::I64(count));
    assert_eq!(out[1].as_scalar().unwrap(), &Value::I64(sum));
}

#[test]
fn vectorized_engine_matches_oracle_at_all_vector_sizes() {
    let s = slice();
    let cols = ColumnSet::new(vec![
        Column::I64(s.quantity.clone()),
        Column::I64(s.extendedprice.clone()),
        Column::I64(s.shipdate.clone()),
    ])
    .unwrap();
    let pipeline = Pipeline {
        stages: vec![
            Stage::FilterI64 {
                col: ColRef::Source(2),
                op: VCmp::Le,
                c: CUTOFF,
            },
            Stage::FilterI64 {
                col: ColRef::Source(0),
                op: VCmp::Lt,
                c: QTY,
            },
            Stage::MapI64 {
                op: MapOp::Mul,
                l: ColRef::Source(0),
                r: Operand::Col(ColRef::Source(1)),
                out: 0,
            },
        ],
        sink: Sink::Aggregate(vec![
            AggSpec::CountStar,
            AggSpec::SumI64(ColRef::Computed(0)),
        ]),
        computed_slots: 1,
    };
    let (count, sum) = oracle();
    for vs in [1usize, 13, 128, 1024, N] {
        let r = pipeline.run(&cols, vs).unwrap();
        let QueryResult::Aggregates(aggs) = r else {
            panic!()
        };
        assert_eq!(
            aggs,
            vec![
                mammoth::vectorized::pipeline::AggOut::I64(count),
                mammoth::vectorized::pipeline::AggOut::I64(sum)
            ],
            "vector size {vs}"
        );
    }
}

/// And plain SQL agrees with everything for a simpler filter+count.
#[test]
fn sql_count_agrees_with_volcano() {
    let s = slice();
    let expect = s.quantity.iter().filter(|&&q| q < QTY).count() as i64;

    let mut db = Database::new();
    db.catalog_mut()
        .create_table(
            Table::from_bats(
                TableSchema::new("li", vec![ColumnDef::new("qty", LogicalType::I64)]),
                vec![Bat::from_vec(s.quantity.clone())],
            )
            .unwrap(),
        )
        .unwrap();
    let out = db
        .execute(&format!("SELECT COUNT(qty) FROM li WHERE qty < {QTY}"))
        .unwrap();
    let QueryOutput::Table { rows, .. } = out else {
        panic!()
    };
    assert_eq!(rows[0][0], Value::I64(expect));

    let table = NsmTable::from_columns(
        TableSchema::new("li", vec![ColumnDef::new("qty", LogicalType::I64)]),
        &[s.quantity.iter().map(|&x| Value::I64(x)).collect()],
    )
    .unwrap();
    let plan = HashAggOp::new(
        FilterOp::new(
            SeqScanOp::new(&table.file),
            Expr::cmp(ExprCmp::Lt, Expr::col(0), Expr::lit(QTY)),
        ),
        vec![],
        vec![AggFn::CountStar],
    );
    let rows = mammoth::volcano::iter::collect_all(plan).unwrap();
    assert_eq!(rows[0][0], Value::I64(expect));
}

/// Build the lineitem slice as a columnar table in `db`.
fn load_lineitem(db: &mut Database, s: &LineitemSlice) {
    let table = Table::from_bats(
        TableSchema::new(
            "lineitem",
            vec![
                ColumnDef::new("qty", LogicalType::I64),
                ColumnDef::new("price", LogicalType::I64),
                ColumnDef::new("shipdate", LogicalType::I64),
            ],
        ),
        vec![
            Bat::from_vec(s.quantity.clone()),
            Bat::from_vec(s.extendedprice.clone()),
            Bat::from_vec(s.shipdate.clone()),
        ],
    )
    .unwrap();
    db.catalog_mut().create_table(table).unwrap();
}

/// The parallel dataflow engine must agree with the serial interpreter on
/// every compiled query, at every thread count.
#[test]
fn parallel_engine_matches_serial_at_every_thread_count() {
    let s = slice();
    let queries = [
        format!("SELECT COUNT(qty) FROM lineitem WHERE qty < {QTY}"),
        format!("SELECT SUM(price), COUNT(price) FROM lineitem WHERE shipdate <= {CUTOFF}"),
        format!("SELECT price FROM lineitem WHERE shipdate <= {CUTOFF} AND qty < {QTY} LIMIT 7"),
        format!("SELECT qty, COUNT(*) FROM lineitem WHERE shipdate <= {CUTOFF} GROUP BY qty ORDER BY qty"),
        "SELECT AVG(price) FROM lineitem WHERE qty > 10".to_string(),
        "SELECT MIN(shipdate), MAX(shipdate) FROM lineitem".to_string(),
    ];
    let mut serial = Database::new();
    load_lineitem(&mut serial, &s);
    for threads in [1usize, 2, 4, 8] {
        let mut par = Database::with_engine(Engine::Parallel { threads });
        load_lineitem(&mut par, &s);
        for q in &queries {
            let a = serial.execute(q).unwrap();
            let b = par.execute(q).unwrap();
            assert_eq!(a, b, "threads={threads}, query={q}");
        }
    }
}

/// `Engine::Parallel { threads: 0 }` resolves via MAMMOTH_THREADS (the
/// knob the CI matrix turns); it must agree with serial too.
#[test]
fn parallel_engine_default_thread_resolution_agrees() {
    let s = slice();
    let mut serial = Database::new();
    load_lineitem(&mut serial, &s);
    let mut par = Database::with_engine(Engine::Parallel { threads: 0 });
    load_lineitem(&mut par, &s);
    let q = format!("SELECT SUM(qty), COUNT(qty) FROM lineitem WHERE shipdate <= {CUTOFF}");
    assert_eq!(serial.execute(&q).unwrap(), par.execute(&q).unwrap());
}

mod props_compat {
    use super::*;
    use mammoth::algebra::{AggKind, CmpOp};
    use mammoth::mal::{
        analyze_props, column_facts, column_types, default_pipeline_with_props,
        parallel_pipeline_with_props, Arg, Interpreter, OpCode, Program,
    };
    use mammoth::storage::Catalog;

    fn catalog(n: i64) -> Catalog {
        let mut cat = Catalog::new();
        let t = Table::from_bats(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("v", LogicalType::I64),
                    ColumnDef::new("w", LogicalType::I64),
                ],
            ),
            vec![
                Bat::from_vec((0..n).collect::<Vec<_>>()), // sorted
                Bat::from_vec((0..n).map(|i| (i * 131) % n).collect::<Vec<_>>()), // scrambled
            ],
        )
        .unwrap();
        cat.create_table(t).unwrap();
        cat
    }

    fn plan(col: &str, cut: i64) -> Program {
        let mut p = Program::new();
        let b = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str(col.into())),
            ],
        )[0];
        let c = p.push(
            OpCode::ThetaSelect(CmpOp::Lt),
            vec![Arg::Var(b), Arg::Const(Value::I64(cut))],
        )[0];
        let v = p.push(OpCode::Projection, vec![Arg::Var(c), Arg::Var(b)])[0];
        let s = p.push(OpCode::Aggr(AggKind::Sum), vec![Arg::Var(v)])[0];
        let n = p.push(OpCode::Count, vec![Arg::Var(v)])[0];
        p.push_result(&[s, n]);
        p
    }

    /// The serial and the mitosis/mergetable plan for the same query must
    /// infer *compatible* properties: both pass the property walk (every
    /// `bat.setprops` claim confirmed), and executing either plan under
    /// the runtime property checker reports zero violations — including
    /// the fragments `algebra.slice` makes and the `mat.pack`
    /// re-assemblies, whose transfer functions restore the parent's facts.
    /// Answers must of course still agree.
    #[test]
    fn serial_and_parallel_plans_infer_compatible_props() {
        let n = 4096;
        let cat = catalog(n);
        let facts = column_facts(&cat);
        for col in ["v", "w"] {
            for cut in [-1, 100, n / 2, n + 50] {
                let p = plan(col, cut);
                let serial = default_pipeline_with_props(facts.clone()).optimize(p.clone());
                analyze_props(&serial, &cat).expect("serial plan claims confirmed");
                let a = Interpreter::new(&cat)
                    .check_props(true)
                    .run(&serial)
                    .expect("serial: zero property violations");
                for pieces in [2usize, 3, 7] {
                    let par =
                        parallel_pipeline_with_props(pieces, column_types(&cat), facts.clone())
                            .try_optimize(p.clone())
                            .unwrap();
                    analyze_props(&par, &cat).expect("parallel plan claims confirmed");
                    let b = Interpreter::new(&cat)
                        .check_props(true)
                        .run(&par)
                        .expect("parallel: zero property violations");
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(&b) {
                        assert_eq!(
                            x.as_scalar().unwrap(),
                            y.as_scalar().unwrap(),
                            "col={col} cut={cut} pieces={pieces}"
                        );
                    }
                }
            }
        }
    }
}

mod pack_props {
    use super::*;
    use proptest::prelude::*;

    // The mitosis/mergetable soundness core: re-assembling the k range
    // fragments of any BAT reproduces it exactly, for any k.
    proptest! {
        #[test]
        fn prop_pack_of_slices_is_identity(
            vals in proptest::collection::vec(-1000i64..1000, 0..200),
            k in 1usize..12,
        ) {
            let b = Bat::from_vec(vals);
            let n = b.len();
            let parts: Vec<Bat> = (0..k)
                .map(|i| b.slice(i * n / k, (i + 1) * n / k).unwrap())
                .collect();
            let refs: Vec<&Bat> = parts.iter().collect();
            let packed = mammoth::algebra::pack(&refs).unwrap();
            prop_assert_eq!(packed.len(), b.len());
            prop_assert_eq!(
                packed.tail_slice::<i64>().unwrap(),
                b.tail_slice::<i64>().unwrap()
            );
            // heads re-assemble to the parent's void head
            prop_assert_eq!(packed.head(), b.head());
        }
    }
}
