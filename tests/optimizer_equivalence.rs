//! The optimizer pipeline must never change results — only plans.
//!
//! Random-ish SQL queries over generated tables run twice: once through the
//! raw compiled plan and once through the default optimizer pipeline
//! (constant folding, CSE, dead code). Outputs must be identical, the plan
//! after every individual pass must satisfy the MAL verifier, and the
//! textual MAL round-trip (render → parse → run) must agree too.
//! Deliberately malformed plans must be *rejected* by the verifier with an
//! error naming the offending instruction.

use mammoth::mal::{default_pipeline, parse_program, Interpreter};
use mammoth::sql::{compile_select, parse_sql, Statement};
use mammoth::storage::{Bat, Catalog, Table};
use mammoth::types::{ColumnDef, LogicalType, TableSchema};
use mammoth::workload::{strings_low_card, uniform_i64};

fn catalog(rows: usize) -> Catalog {
    let mut cat = Catalog::new();
    let names = strings_low_card(rows, 8, 5);
    let t = Table::from_bats(
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", LogicalType::I64),
                ColumnDef::new("b", LogicalType::I64),
                ColumnDef::new("s", LogicalType::Str),
            ],
        ),
        vec![
            Bat::from_vec(uniform_i64(rows, 0, 100, 1)),
            Bat::from_vec(uniform_i64(rows, -50, 50, 2)),
            Bat::from_strings(names.iter().map(|s| Some(s.as_str()))),
        ],
    )
    .unwrap();
    cat.create_table(t).unwrap();

    let u = Table::from_bats(
        TableSchema::new(
            "u",
            vec![
                ColumnDef::new("a", LogicalType::I64),
                ColumnDef::new("w", LogicalType::I64),
            ],
        ),
        vec![
            Bat::from_vec(uniform_i64(rows / 2, 0, 100, 3)),
            Bat::from_vec(uniform_i64(rows / 2, 0, 10, 4)),
        ],
    )
    .unwrap();
    cat.create_table(u).unwrap();
    cat
}

const QUERIES: &[&str] = &[
    "SELECT a FROM t WHERE a > 50",
    "SELECT a, b FROM t WHERE a >= 10 AND a <= 60 AND b > 0",
    "SELECT s, COUNT(*), SUM(a) FROM t GROUP BY s ORDER BY s",
    "SELECT COUNT(*), MIN(b), MAX(b), AVG(a) FROM t WHERE s <> 'val_0'",
    "SELECT a FROM t WHERE a BETWEEN 20 AND 30 ORDER BY a DESC LIMIT 7",
    "SELECT t.s, u.w FROM t JOIN u ON t.a = u.a WHERE b > 0 ORDER BY s LIMIT 50",
    "SELECT b, COUNT(*) FROM t GROUP BY b ORDER BY b LIMIT 5",
    "SELECT s FROM t WHERE s = 'val_3' AND a < 90",
];

fn render(values: Vec<mammoth::mal::MalValue>) -> Vec<String> {
    values
        .iter()
        .map(|v| match v {
            mammoth::mal::MalValue::Scalar(s) => format!("scalar:{s:?}"),
            mammoth::mal::MalValue::Bat(b) => {
                let mut s = String::new();
                for i in 0..b.len() {
                    s.push_str(&format!("{:?};", b.value_at(i)));
                }
                s
            }
        })
        .collect()
}

#[test]
fn optimized_plans_return_identical_results() {
    let cat = catalog(2000);
    let pipeline = default_pipeline();
    for sql in QUERIES {
        let Statement::Select(stmt) = parse_sql(sql).unwrap() else {
            panic!()
        };
        let (raw, _names) = compile_select(&cat, &stmt).unwrap();
        let optimized = pipeline.optimize(raw.clone());
        assert!(
            optimized.instrs.len() <= raw.instrs.len(),
            "optimizer must not grow plans: {sql}"
        );
        let out_raw = Interpreter::new(&cat).run(&raw).unwrap();
        let out_opt = Interpreter::new(&cat).run(&optimized).unwrap();
        assert_eq!(render(out_raw), render(out_opt), "query: {sql}");
    }
}

#[test]
fn textual_mal_roundtrip_preserves_semantics() {
    let cat = catalog(500);
    for sql in QUERIES {
        let Statement::Select(stmt) = parse_sql(sql).unwrap() else {
            panic!()
        };
        let (prog, _) = compile_select(&cat, &stmt).unwrap();
        let text = prog.to_string();
        let reparsed =
            parse_program(&text).unwrap_or_else(|e| panic!("reparse of {sql}: {e}\n{text}"));
        let out_a = Interpreter::new(&cat).run(&prog).unwrap();
        let out_b = Interpreter::new(&cat).run(&reparsed).unwrap();
        assert_eq!(render(out_a), render(out_b), "query: {sql}");
    }
}

#[test]
fn cse_actually_fires_on_shared_binds() {
    let cat = catalog(100);
    let Statement::Select(stmt) = parse_sql("SELECT a, b FROM t WHERE a > 10 AND a < 90").unwrap()
    else {
        panic!()
    };
    let (raw, _) = compile_select(&cat, &stmt).unwrap();
    let optimized = default_pipeline().optimize(raw.clone());
    // the compiler binds t.a for both predicates and the projection; CSE
    // must collapse those binds
    let binds = |p: &mammoth::mal::Program| {
        p.instrs
            .iter()
            .filter(|i| i.op == mammoth::mal::OpCode::Bind)
            .count()
    };
    assert!(
        binds(&optimized) < binds(&raw),
        "CSE should deduplicate binds: {} -> {}",
        binds(&raw),
        binds(&optimized)
    );
}

#[test]
fn recycled_and_cold_runs_agree_per_value() {
    use mammoth::recycler::{EvictPolicy, Recycler};
    let cat = catalog(1000);
    let mut rec = Recycler::new(64 << 20, EvictPolicy::Lru);
    for sql in QUERIES {
        let Statement::Select(stmt) = parse_sql(sql).unwrap() else {
            panic!()
        };
        let (prog, _) = compile_select(&cat, &stmt).unwrap();
        let cold = Interpreter::new(&cat).run(&prog).unwrap();
        // twice through the recycler: second run is fully cached
        let warm1 = Interpreter::with_recycler(&cat, &mut rec)
            .run(&prog)
            .unwrap();
        let warm2 = Interpreter::with_recycler(&cat, &mut rec)
            .run(&prog)
            .unwrap();
        assert_eq!(render(cold.clone()), render(warm1), "{sql}");
        assert_eq!(render(cold), render(warm2), "{sql}");
    }
}

#[test]
fn every_pass_alone_is_sound_and_verifier_clean() {
    use mammoth::mal::analysis::verify_with_catalog;
    use mammoth::mal::optimizer::{
        CommonSubexpr, ConstantFold, DeadCode, GarbageCollect, OptimizerPass,
    };
    let cat = catalog(800);
    let passes: Vec<Box<dyn OptimizerPass>> = vec![
        Box::new(ConstantFold),
        Box::new(CommonSubexpr),
        Box::new(DeadCode),
        Box::new(GarbageCollect),
    ];
    for sql in QUERIES {
        let Statement::Select(stmt) = parse_sql(sql).unwrap() else {
            panic!()
        };
        let (raw, _) = compile_select(&cat, &stmt).unwrap();
        let baseline = render(Interpreter::new(&cat).run(&raw).unwrap());
        for pass in &passes {
            let rewritten = pass.run(raw.clone());
            verify_with_catalog(&rewritten, &cat)
                .unwrap_or_else(|e| panic!("pass {} broke the plan for {sql}: {e}", pass.name()));
            let out = Interpreter::new(&cat).run(&rewritten).unwrap();
            assert_eq!(baseline, render(out), "pass {}: {sql}", pass.name());
        }
    }
}

#[test]
fn checked_pipeline_accepts_all_compiler_output() {
    use mammoth::mal::analysis::verify_with_catalog;
    use mammoth::mal::GarbageCollect;
    let cat = catalog(600);
    let pipeline = default_pipeline().with(GarbageCollect).checked();
    for sql in QUERIES {
        let Statement::Select(stmt) = parse_sql(sql).unwrap() else {
            panic!()
        };
        let (raw, _) = compile_select(&cat, &stmt).unwrap();
        verify_with_catalog(&raw, &cat)
            .unwrap_or_else(|e| panic!("compiler output failed to verify for {sql}: {e}"));
        let optimized = pipeline
            .try_optimize(raw.clone())
            .unwrap_or_else(|e| panic!("checked pipeline rejected {sql}: {e}"));
        verify_with_catalog(&optimized, &cat).unwrap();
        let out_raw = Interpreter::new(&cat).run(&raw).unwrap();
        let out_opt = Interpreter::new(&cat).run(&optimized).unwrap();
        assert_eq!(render(out_raw), render(out_opt), "query: {sql}");
    }
}

#[test]
fn malformed_plans_are_rejected_with_targeted_errors() {
    use mammoth::mal::analysis::{verify, verify_with_catalog, VerifyErrorKind};
    let cat = catalog(100);
    // (plan text, expected instruction index) — one per malformation class
    let cases: &[(&str, usize)] = &[
        // use before def
        ("c := algebra.thetaselect[==](ghost, 1);\nio.result(c);", 0),
        // argument arity
        (
            "a := sql.bind(\"t\", \"a\");\nf := algebra.projection(a);\nio.result(f);",
            1,
        ),
        // kind mismatch: scalar into a bat slot
        (
            "a := sql.bind(\"t\", \"a\");\nn := aggr.count(a);\nm := bat.mirror(n);\nio.result(m);",
            2,
        ),
        // use after free
        (
            "a := sql.bind(\"t\", \"a\");\nlanguage.pass(a);\nm := bat.mirror(a);\nio.result(m);",
            2,
        ),
        // code after io.result
        (
            "a := sql.bind(\"t\", \"a\");\nio.result(a);\nb := sql.bind(\"t\", \"b\");\nio.result(b);",
            2,
        ),
    ];
    for (src, at) in cases {
        let prog = parse_program(src).unwrap();
        let err = verify(&prog).unwrap_err();
        assert_eq!(err.instr, Some(*at), "wrong location for:\n{src}\n{err}");
    }

    // type mismatches surface once the catalog pins the column types
    let typed = parse_program(
        "s := sql.bind(\"t\", \"s\");\nc := algebra.thetaselect[==](s, 7);\nio.result(c);",
    )
    .unwrap();
    verify(&typed).unwrap(); // without a catalog the string column is opaque
    let err = verify_with_catalog(&typed, &cat).unwrap_err();
    assert_eq!(err.instr, Some(1));
    assert!(matches!(
        err.kind,
        VerifyErrorKind::TypeMismatch { arg: 1, .. }
    ));

    let join = parse_program(
        "s := sql.bind(\"t\", \"s\");\nw := sql.bind(\"u\", \"w\");\n(l, r) := algebra.join(s, w);\nio.result(l);",
    )
    .unwrap();
    let err = verify_with_catalog(&join, &cat).unwrap_err();
    assert!(matches!(err.kind, VerifyErrorKind::TypeMismatch { .. }));

    // plans with no io.result are rejected as structurally incomplete
    let noresult = parse_program("a := sql.bind(\"t\", \"a\");").unwrap();
    let err = verify(&noresult).unwrap_err();
    assert!(matches!(err.kind, VerifyErrorKind::MissingResult));
}

#[test]
fn eager_release_shrinks_peak_live_bats_on_join_plans() {
    let cat = catalog(1000);
    let sql = "SELECT t.s, u.w FROM t JOIN u ON t.a = u.a WHERE b > 0 ORDER BY s LIMIT 50";
    let Statement::Select(stmt) = parse_sql(sql).unwrap() else {
        panic!()
    };
    let (prog, _) = compile_select(&cat, &stmt).unwrap();

    let mut plain = Interpreter::new(&cat);
    let out_plain = plain.run(&prog).unwrap();
    let mut eager = Interpreter::new(&cat).eager_release(true);
    let out_eager = eager.run(&prog).unwrap();

    assert_eq!(render(out_plain), render(out_eager), "query: {sql}");
    assert!(
        eager.stats().peak_live_bats < plain.stats().peak_live_bats,
        "eager release should lower the peak: {} -> {}",
        plain.stats().peak_live_bats,
        eager.stats().peak_live_bats
    );
    assert!(eager.stats().released_early > 0);

    // the garbage_collect pass achieves the same effect for a plain run
    let gcd = default_pipeline()
        .with(mammoth::mal::GarbageCollect)
        .optimize(prog.clone());
    let mut gc_run = Interpreter::new(&cat);
    let out_gc = gc_run.run(&gcd).unwrap();
    assert_eq!(
        render(Interpreter::new(&cat).run(&prog).unwrap()),
        render(out_gc)
    );
    assert!(gc_run.stats().peak_live_bats < plain.stats().peak_live_bats);
}
