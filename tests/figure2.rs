//! Integration test: Figure 2 — partitioned hash-join with two-pass
//! radix-cluster, H = 8 ⇔ B = 3, on the exact values printed in the paper.
//!
//! Figure 2 shows relations L and R clustered on the lowest 3 bits of the
//! values (first pass: the 2 leftmost of those bits; second pass: the
//! remaining bit), after which corresponding clusters are hash-joined. The
//! figure highlights the matching ("black") tuples.

use mammoth::algebra::{hash_join, partitioned_hash_join, radix_cluster};
use mammoth::storage::Bat;
use mammoth::types::Oid;

/// Relation L from the figure (left column, top to bottom).
const L: [i64; 12] = [57, 17, 3, 47, 92, 81, 20, 6, 96, 75, 3, 66];
/// Relation R from the figure.
const R: [i64; 8] = [17, 35, 32, 47, 20, 96, 10, 66];

#[test]
fn two_pass_cluster_groups_on_low_3_bits() {
    let keys: Vec<u64> = L.iter().map(|&x| x as u64).collect();
    let oids: Vec<Oid> = (0..L.len() as u64).collect();
    // 2-pass: 2 leftmost bits of the low-3 window, then the last bit
    let cc = radix_cluster(&keys, &oids, &[2, 1]);
    assert_eq!(cc.cluster_count(), 8);
    // clusters are in ascending order of the 3-bit value, and every value
    // sits in the cluster of its low 3 bits — the figure's invariant
    for c in 0..8 {
        let (cluster, _) = cc.cluster(c);
        for &v in cluster {
            assert_eq!(
                (v & 0b111) as usize,
                c,
                "value {v} (bits {:03b}) in cluster {c}",
                v & 0b111
            );
        }
    }
    // nothing lost, nothing invented
    assert_eq!(cc.keys.len(), L.len());
    let mut sorted: Vec<u64> = cc.keys.clone();
    sorted.sort_unstable();
    let mut orig: Vec<u64> = keys;
    orig.sort_unstable();
    assert_eq!(sorted, orig);
}

#[test]
fn one_and_two_pass_clustering_agree() {
    let keys: Vec<u64> = L.iter().map(|&x| x as u64).collect();
    let oids: Vec<Oid> = (0..L.len() as u64).collect();
    let one = radix_cluster(&keys, &oids, &[3]);
    let two = radix_cluster(&keys, &oids, &[2, 1]);
    assert_eq!(one.keys, two.keys);
    assert_eq!(one.oids, two.oids);
    assert_eq!(one.bounds, two.bounds);
}

#[test]
fn partitioned_join_finds_the_black_tuples() {
    let l = Bat::from_vec(L.to_vec());
    let r = Bat::from_vec(R.to_vec());
    let ji = partitioned_hash_join(&l, &r, 3, 2).unwrap().sorted();
    // the figure's matches: values present in both relations
    let mut matched_values: Vec<i64> = ji.left.iter().map(|&o| L[o as usize]).collect();
    matched_values.sort_unstable();
    assert_eq!(matched_values, vec![17, 20, 47, 66, 96]);
    // and the partitioned join agrees with the plain hash join
    let plain = hash_join(&l, &r).unwrap().sorted();
    assert_eq!(ji, plain);
}

#[test]
fn join_pairs_point_at_matching_tuples() {
    let l = Bat::from_vec(L.to_vec());
    let r = Bat::from_vec(R.to_vec());
    let ji = partitioned_hash_join(&l, &r, 3, 2).unwrap();
    assert_eq!(ji.len(), 5);
    for (lo, ro) in ji.left.iter().zip(&ji.right) {
        assert_eq!(
            L[*lo as usize], R[*ro as usize],
            "join index pairs equal values"
        );
    }
}
