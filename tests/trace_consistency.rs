//! Differential testing of the profiler: every engine that runs a plan
//! must agree on the *answers* and tell a mutually consistent *story*
//! about how it got them.
//!
//! A corpus of randomized scan/select/project/calc/join/aggregate plans
//! (i64 columns only, scalar outputs, so results compare bit-exactly)
//! runs on:
//!
//! * the serial interpreter,
//! * the serial interpreter with a recycler, twice (cold, then warm),
//! * the dataflow worker pool at 1, 2 and 4 threads — on the *same*
//!   unrewritten plan, so the executed-opcode multiset must match the
//!   serial one exactly.
//!
//! Checked invariants per plan:
//!
//! * all engines return identical scalar results;
//! * `events.len() == executed + recycled` in every trace;
//! * every event nests inside the run: `start_ns + dur_ns <= elapsed_ns`;
//! * the multiset of executed opcodes is identical across serial and
//!   dataflow runs, and identical modulo the `recycled` flag for the warm
//!   recycler run (`warm.executed + warm.recycled == serial.executed`);
//! * every serialized trace passes the schema validator.

use mammoth::mal::{Arg, Interpreter, MalValue, OpCode, Program};
use mammoth::parallel::run_dataflow_profiled;
use mammoth::recycler::{EvictPolicy, Recycler};
use mammoth::storage::{Bat, Catalog, Table};
use mammoth::types::{ColumnDef, LogicalType, ProfiledRun, TableSchema, Value};
use mammoth::workload::uniform_i64;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use mammoth::algebra::{AggKind, ArithOp, CmpOp};

const ROWS: usize = 4096;
const DIM_ROWS: usize = 64;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    let fact = Table::from_bats(
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("c0", LogicalType::I64),
                ColumnDef::new("c1", LogicalType::I64),
                ColumnDef::new("c2", LogicalType::I64),
            ],
        ),
        vec![
            Bat::from_vec(uniform_i64(ROWS, 0, 1000, 11)),
            Bat::from_vec(uniform_i64(ROWS, 0, 1000, 12)),
            Bat::from_vec(uniform_i64(ROWS, 0, DIM_ROWS as i64, 13)),
        ],
    )
    .unwrap();
    cat.create_table(fact).unwrap();
    let dim = Table::from_bats(
        TableSchema::new("d", vec![ColumnDef::new("k", LogicalType::I64)]),
        vec![Bat::from_vec((0..DIM_ROWS as i64).collect::<Vec<_>>())],
    )
    .unwrap();
    cat.create_table(dim).unwrap();
    cat
}

fn bind(p: &mut Program, table: &str, col: &str) -> usize {
    p.push(
        OpCode::Bind,
        vec![
            Arg::Const(Value::Str(table.into())),
            Arg::Const(Value::Str(col.into())),
        ],
    )[0]
}

/// One randomized plan: select on a random column, project a random
/// payload, an optional calc chain, an optional join against the
/// dimension, scalar aggregates at the end.
fn random_plan(rng: &mut StdRng) -> Program {
    let cols = ["c0", "c1", "c2"];
    let mut p = Program::new();
    let sel_col = cols[rng.random_range(0..cols.len())];
    let a = bind(&mut p, "t", sel_col);
    let cmp = [CmpOp::Gt, CmpOp::Lt, CmpOp::Ge, CmpOp::Le][rng.random_range(0..4usize)];
    let cut = rng.random_range(0..1000i64);
    let cands = p.push(
        OpCode::ThetaSelect(cmp),
        vec![Arg::Var(a), Arg::Const(Value::I64(cut))],
    )[0];
    let pay_col = cols[rng.random_range(0..cols.len())];
    let b = bind(&mut p, "t", pay_col);
    let mut v = p.push(OpCode::Projection, vec![Arg::Var(cands), Arg::Var(b)])[0];
    for _ in 0..rng.random_range(0..3usize) {
        let op = [ArithOp::Add, ArithOp::Mul][rng.random_range(0..2usize)];
        let k = rng.random_range(1..10i64);
        v = p.push(
            OpCode::Calc(op),
            vec![Arg::Var(v), Arg::Const(Value::I64(k))],
        )[0];
    }
    let mut outs = Vec::new();
    if rng.random_bool(0.5) {
        let fk = bind(&mut p, "t", "c2");
        let keys = p.push(OpCode::Projection, vec![Arg::Var(cands), Arg::Var(fk)])[0];
        let dk = bind(&mut p, "d", "k");
        let j = p.push(OpCode::Join, vec![Arg::Var(keys), Arg::Var(dk)]);
        outs.push(p.push(OpCode::Count, vec![Arg::Var(j[0])])[0]);
    }
    outs.push(p.push(OpCode::Aggr(AggKind::Sum), vec![Arg::Var(v)])[0]);
    outs.push(p.push(OpCode::Count, vec![Arg::Var(v)])[0]);
    p.push_result(&outs);
    p
}

fn scalars(vals: &[MalValue]) -> Vec<Value> {
    vals.iter()
        .map(|v| v.as_scalar().expect("scalar output").clone())
        .collect()
}

/// Sorted multiset of executed opcode names; with `include_recycled`, hits
/// served from the recycler count too (they stand in for an execution).
fn op_multiset(run: &ProfiledRun, include_recycled: bool) -> Vec<String> {
    let mut ops: Vec<String> = run
        .events
        .iter()
        .filter(|e| include_recycled || !e.recycled)
        .map(|e| e.op.clone())
        .collect();
    ops.sort();
    ops
}

/// The shared trace invariants every profiled run must satisfy.
fn check_run(run: &ProfiledRun, ctx: &str) {
    assert_eq!(
        run.events.len() as u64,
        run.executed + run.recycled,
        "{ctx}: one event per executed-or-recycled instruction"
    );
    for (i, e) in run.events.iter().enumerate() {
        assert!(
            e.start_ns + e.dur_ns <= run.elapsed_ns,
            "{ctx}: event {i} ({}) [{}..{}] escapes run wall time {}",
            e.op,
            e.start_ns,
            e.start_ns + e.dur_ns,
            run.elapsed_ns
        );
    }
    mammoth::types::validate_trace(&run.to_json_lines())
        .unwrap_or_else(|e| panic!("{ctx}: trace fails schema validation: {e}"));
}

#[test]
fn engines_agree_on_results_and_traces() {
    let cat = catalog();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for plan_no in 0..25 {
        let prog = random_plan(&mut rng);
        let ctx = format!("plan {plan_no}");

        // serial reference
        let mut serial = Interpreter::new(&cat).profiled(true);
        let expected = scalars(&serial.run(&prog).unwrap());
        let serial_run = serial.profiled_run("serial");
        check_run(&serial_run, &format!("{ctx} serial"));
        assert_eq!(serial_run.engine, "serial");
        assert_eq!(serial_run.threads, 1);
        assert_eq!(serial_run.recycled, 0, "{ctx}: no recycler, no hits");
        let reference_ops = op_multiset(&serial_run, true);

        // serial + recycler: cold, then warm on the same cache
        let mut rec = Recycler::new(16 << 20, EvictPolicy::Lru);
        let cold_run = {
            let mut i = Interpreter::with_recycler(&cat, &mut rec).profiled(true);
            assert_eq!(scalars(&i.run(&prog).unwrap()), expected, "{ctx} cold");
            i.profiled_run("serial+recycler")
        };
        check_run(&cold_run, &format!("{ctx} cold"));
        let warm_run = {
            let mut i = Interpreter::with_recycler(&cat, &mut rec).profiled(true);
            assert_eq!(scalars(&i.run(&prog).unwrap()), expected, "{ctx} warm");
            i.profiled_run("serial+recycler")
        };
        check_run(&warm_run, &format!("{ctx} warm"));
        assert_eq!(
            warm_run.executed + warm_run.recycled,
            serial_run.executed,
            "{ctx}: recycler hits must stand in 1:1 for executions"
        );
        assert!(
            warm_run.recycled >= cold_run.recycled,
            "{ctx}: a warm cache cannot hit less than a cold one"
        );
        assert_eq!(
            op_multiset(&warm_run, true),
            reference_ops,
            "{ctx}: warm recycler run must tell the same story modulo hits"
        );

        // dataflow on the same (unrewritten) plan: same opcode multiset
        for threads in [1usize, 2, 4] {
            let (vals, stats, events) = run_dataflow_profiled(&cat, &prog, threads).unwrap();
            assert_eq!(scalars(&vals), expected, "{ctx} @ {threads} threads");
            let run = stats.fold_into("dataflow", events);
            check_run(&run, &format!("{ctx} dataflow x{threads}"));
            assert_eq!(run.engine, "dataflow");
            assert_eq!(run.threads, threads);
            assert_eq!(run.recycled, 0, "{ctx}: the pool has no recycler");
            assert_eq!(
                op_multiset(&run, true),
                reference_ops,
                "{ctx}: dataflow x{threads} must execute the same multiset"
            );
            for e in &run.events {
                assert!(
                    e.worker < threads,
                    "{ctx}: worker id {} out of range for {threads} threads",
                    e.worker
                );
            }
        }
    }
}
