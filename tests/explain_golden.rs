//! Golden-file test for `EXPLAIN`'s cost-annotated output.
//!
//! A fixed single-table workload is loaded, then a small set of EXPLAIN
//! statements is rendered — MAL text, inferred properties, and the
//! planner's per-instruction `est_rows`/`est_cost` columns. The estimates
//! derive from the statistics catalog, which is fully deterministic for a
//! fixed insert order, so the rendering is byte-stable.
//!
//! If a cost-model or optimizer change intentionally moves an estimate,
//! regenerate with `BLESS=1 cargo test --test explain_golden` and review
//! the diff: every number that moved is a planning decision that may have
//! changed with it.

use mammoth_sql::{QueryOutput, Session};

const GOLDEN: &str = "tests/golden/explain_estimates.golden";

fn seeded() -> Session {
    let mut s = Session::new();
    s.execute("CREATE TABLE orders (k INT, qty BIGINT)")
        .unwrap();
    // Deterministic skew: k cycles 0..20, qty walks a fixed LCG.
    let mut x: i64 = 7;
    let mut rows = Vec::new();
    for i in 0..1000i64 {
        x = (x.wrapping_mul(1103515245).wrapping_add(12345)) % 10_000;
        rows.push(format!("({}, {})", i % 20, x.abs()));
    }
    for chunk in rows.chunks(250) {
        s.execute(&format!("INSERT INTO orders VALUES {}", chunk.join(", ")))
            .unwrap();
    }
    s
}

#[test]
fn explain_estimates_match_golden_file() {
    let mut s = seeded();
    let mut got = String::new();
    for q in [
        "SELECT qty FROM orders WHERE k = 7",
        "SELECT qty FROM orders WHERE qty < 2500",
        "SELECT COUNT(*), SUM(qty) FROM orders WHERE k = 7 AND qty < 2500",
        "SELECT k FROM orders WHERE qty >= 9000 ORDER BY k LIMIT 5",
    ] {
        let QueryOutput::Table { columns, rows } = s.execute(&format!("EXPLAIN {q}")).unwrap()
        else {
            panic!("EXPLAIN must return a table");
        };
        assert_eq!(columns, vec!["mal", "props", "est_rows", "est_cost"]);
        got.push_str(&format!("-- EXPLAIN {q}\n"));
        for row in rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| match v {
                    mammoth_types::Value::Str(s) => s.clone(),
                    other => format!("{other:?}"),
                })
                .collect();
            got.push_str(&cells.join(" | "));
            got.push('\n');
        }
        got.push('\n');
    }

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {GOLDEN} ({e}); run with BLESS=1"));
    assert_eq!(
        got, want,
        "EXPLAIN estimates drifted from {GOLDEN}; if intentional, re-bless with BLESS=1"
    );
}
