//! Integration test: Figure 1 of the paper, reproduced at every layer.
//!
//! The figure shows the `people(name, age)` table decomposed into two BATs
//! with virtual dense heads, three front-ends compiling to the same BAT
//! Algebra back-end, and the query `select(age, 1927)` returning oids 1,2.

use mammoth::algebra;
use mammoth::storage::Bat;
use mammoth::types::{Oid, Value};
use mammoth::Database;

/// Layer 1: the BAT Algebra directly, exactly the C-level loop of §3.
#[test]
fn figure1_bat_algebra() {
    let age = Bat::from_vec(vec![1907i32, 1927, 1927, 1968]);
    let name = Bat::from_strings([
        Some("John Wayne"),
        Some("Roger Moore"),
        Some("Bob Fosse"),
        Some("Will Smith"),
    ]);
    // R:bat[:oid,:oid] := select(B:bat[:oid,:int], V:int)
    let r = algebra::select_eq(&age, &Value::I32(1927)).unwrap();
    assert_eq!(r.tail_slice::<Oid>().unwrap(), &[1, 2]);
    // tuple reconstruction via O(1) positional fetch
    let names = algebra::fetch_join(&r, &name).unwrap();
    assert_eq!(names.value_at(0), Value::Str("Roger Moore".into()));
    assert_eq!(names.value_at(1), Value::Str("Bob Fosse".into()));
}

/// Layer 2: the MAL virtual machine, programmed textually.
#[test]
fn figure1_mal_program() {
    let mut db = Database::new();
    db.execute("CREATE TABLE people (name VARCHAR, age INT)")
        .unwrap();
    db.execute(
        "INSERT INTO people VALUES ('John Wayne', 1907), ('Roger Moore', 1927), \
         ('Bob Fosse', 1927), ('Will Smith', 1968)",
    )
    .unwrap();
    let out = db
        .execute_mal(
            r#"
            age  := sql.bind("people", "age");
            c    := algebra.thetaselect[==](age, 1927);
            name := sql.bind("people", "name");
            out  := algebra.projection(c, name);
            io.result(c, out);
        "#,
        )
        .unwrap();
    let cands = out[0].as_bat().unwrap();
    assert_eq!(cands.tail_slice::<Oid>().unwrap(), &[1, 2]);
    let names = out[1].as_bat().unwrap();
    assert_eq!(names.value_at(0), Value::Str("Roger Moore".into()));
}

/// Layer 3: the SQL front-end compiles to the same back-end.
#[test]
fn figure1_sql_front_end() {
    let mut db = Database::new();
    db.execute("CREATE TABLE people (name VARCHAR, age INT)")
        .unwrap();
    db.execute(
        "INSERT INTO people VALUES ('John Wayne', 1907), ('Roger Moore', 1927), \
         ('Bob Fosse', 1927), ('Will Smith', 1968)",
    )
    .unwrap();
    let out = db
        .execute("SELECT name FROM people WHERE age = 1927")
        .unwrap();
    let mammoth::QueryOutput::Table { rows, .. } = out else {
        panic!()
    };
    assert_eq!(
        rows,
        vec![
            vec![Value::Str("Roger Moore".into())],
            vec![Value::Str("Bob Fosse".into())],
        ]
    );
}

/// The void head really is O(1): positional lookup equals direct indexing.
#[test]
fn void_head_positional_lookup() {
    let age = Bat::from_vec((0..100_000i32).collect::<Vec<_>>());
    assert!(age.head().is_void());
    for oid in [0u64, 1, 50_000, 99_999] {
        assert_eq!(age.find_oid(oid), Some(oid as usize));
    }
    assert_eq!(age.find_oid(100_000), None);
}
