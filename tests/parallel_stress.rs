//! Scheduler stress: randomized DAG-shaped MAL programs — wide fan-out
//! (every variable may feed many consumers) and wide fan-in (variadic
//! `mat.pack` / `mat.packsum` nodes) — executed on the dataflow worker pool
//! at several thread counts. For every seeded program the parallel engine
//! must return exactly the serial interpreter's answer, release every slot
//! exactly once, and be deterministic across repeated runs.

use mammoth::mal::{
    verify_with_catalog, Arg, GarbageCollect, Interpreter, OpCode, OptimizerPass, Program, VarId,
};
use mammoth::parallel::run_dataflow;
use mammoth::storage::{Bat, Catalog, Table};
use mammoth::types::{ColumnDef, LogicalType, TableSchema, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const ROWS: usize = 256;
/// Packing concatenates, so lengths can grow; keep programs bounded.
const MAX_PACK_ROWS: usize = 50_000;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    let vals: Vec<i64> = (0..ROWS as i64).map(|i| (i * 7) % 13 - 6).collect();
    let t = Table::from_bats(
        TableSchema::new("t", vec![ColumnDef::new("v", LogicalType::I64)]),
        vec![Bat::from_vec(vals)],
    )
    .unwrap();
    cat.create_table(t).unwrap();
    cat
}

/// A random straight-line program whose dependency graph is a wide DAG:
/// every step picks its operands uniformly among all live variables.
fn build_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Program::new();
    // (var, length) of every BAT-valued variable
    let mut bats: Vec<(VarId, usize)> = Vec::new();
    let mut scalars: Vec<VarId> = Vec::new();

    for _ in 0..3 {
        let b = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("v".into())),
            ],
        )[0];
        bats.push((b, ROWS));
    }
    scalars.push(p.push(OpCode::Count, vec![Arg::Var(bats[0].0)])[0]);

    let steps = 40 + (seed as usize % 21);
    for _ in 0..steps {
        let pick =
            |rng: &mut StdRng, bats: &[(VarId, usize)]| bats[rng.random_range(0..bats.len())];
        match rng.random_range(0..6u32) {
            // element-wise arithmetic: keeps length, fans out freely
            0 | 1 => {
                let (b, len) = pick(&mut rng, &bats);
                let op = if rng.random_bool(0.5) {
                    mammoth::algebra::ArithOp::Add
                } else {
                    mammoth::algebra::ArithOp::Sub
                };
                let c = rng.random_range(-9i64..10);
                let r = p.push(
                    OpCode::Calc(op),
                    vec![Arg::Var(b), Arg::Const(Value::I64(c))],
                )[0];
                bats.push((r, len));
            }
            // variadic fan-in: concatenate 2..=5 random fragments
            2 => {
                let n = rng.random_range(2usize..6);
                let picked: Vec<(VarId, usize)> = (0..n).map(|_| pick(&mut rng, &bats)).collect();
                let total: usize = picked.iter().map(|&(_, l)| l).sum();
                if total > MAX_PACK_ROWS {
                    continue;
                }
                let r = p.push(
                    OpCode::Pack,
                    picked.iter().map(|&(v, _)| Arg::Var(v)).collect(),
                )[0];
                bats.push((r, total));
            }
            // horizontal fragmentation: shrinks length
            3 => {
                let (b, len) = pick(&mut rng, &bats);
                let k = rng.random_range(2i64..5);
                let i = rng.random_range(0..k);
                let r = p.push(
                    OpCode::PartSlice,
                    vec![
                        Arg::Var(b),
                        Arg::Const(Value::I64(i)),
                        Arg::Const(Value::I64(k)),
                    ],
                )[0];
                bats.push((r, len / k as usize));
            }
            // scalar sinks: more fan-out targets for packsum
            4 => {
                let (b, _) = pick(&mut rng, &bats);
                scalars.push(p.push(OpCode::Count, vec![Arg::Var(b)])[0]);
            }
            _ => {
                let (b, _) = pick(&mut rng, &bats);
                scalars.push(
                    p.push(
                        OpCode::Aggr(mammoth::algebra::AggKind::Sum),
                        vec![Arg::Var(b)],
                    )[0],
                );
            }
        }
    }

    // fan-in finale: merge up to 8 scalars and 3 fragments
    let take = scalars.len().min(8);
    let s = p.push(
        OpCode::PackSum,
        scalars[scalars.len() - take..]
            .iter()
            .map(|&v| Arg::Var(v))
            .collect(),
    )[0];
    let finale: Vec<Arg> = (0..3)
        .map(|_| Arg::Var(bats[rng.random_range(0..bats.len())].0))
        .collect();
    let big = p.push(OpCode::Pack, finale)[0];
    let n = p.push(OpCode::Count, vec![Arg::Var(big)])[0];
    p.push_result(&[s, n]);
    p
}

fn assert_same(a: &[mammoth::mal::MalValue], b: &[mammoth::mal::MalValue], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}");
    for (x, y) in a.iter().zip(b) {
        match (x, y) {
            (mammoth::mal::MalValue::Scalar(x), mammoth::mal::MalValue::Scalar(y)) => {
                assert_eq!(x, y, "{ctx}")
            }
            (mammoth::mal::MalValue::Bat(x), mammoth::mal::MalValue::Bat(y)) => {
                assert_eq!(x.head(), y.head(), "{ctx}");
                assert_eq!(
                    x.tail_slice::<i64>().unwrap(),
                    y.tail_slice::<i64>().unwrap(),
                    "{ctx}"
                );
            }
            _ => panic!("{ctx}: value kind mismatch"),
        }
    }
}

#[test]
fn random_dags_agree_with_serial_and_release_exactly_once() {
    let cat = catalog();
    for seed in 0..100u64 {
        let prog = build_program(seed);
        verify_with_catalog(&prog, &cat).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // language.pass markers exercise slot release under concurrency
        let prog = GarbageCollect.run(prog);
        verify_with_catalog(&prog, &cat).unwrap_or_else(|e| panic!("seed {seed}: {e}"));

        let serial = Interpreter::new(&cat).run(&prog).unwrap();
        for threads in [2usize, 8] {
            let ctx = format!("seed {seed}, threads {threads}");
            let (first, stats) = run_dataflow(&cat, &prog, threads).unwrap();
            assert_eq!(stats.double_releases, 0, "{ctx}: a slot was released twice");
            assert_same(&serial, &first, &ctx);
            // a second run must be byte-for-byte deterministic
            let (second, stats2) = run_dataflow(&cat, &prog, threads).unwrap();
            assert_same(&first, &second, &ctx);
            assert_eq!(stats2.double_releases, 0, "{ctx}");
        }
    }
}
