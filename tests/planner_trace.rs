//! The coordinator one-compile regression: a scatter plan is compiled
//! once per coordinator lifetime and every repeat — ad-hoc re-issue or
//! `EXECUTE` of a prepared statement that binds to the same text — is a
//! `plan.cache_hit`, never a second `plan.compile`.
//!
//! This file holds exactly one test on purpose: it mutates the
//! process-global `MAMMOTH_TRACE` environment variable, which would race
//! with any other test in the same binary. Cargo gives every
//! integration-test file its own process, so isolation comes from the
//! file boundary (same discipline as `trace_export.rs`).

use mammoth_server::{Server, ServerConfig, SessionSpec};
use mammoth_shard::{Coordinator, CoordinatorConfig};
use mammoth_sql::QueryOutput;
use mammoth_types::{validate_trace, TRACE_ENV};
use std::time::Duration;

#[test]
fn coordinator_compiles_each_statement_once_per_lifetime() {
    let path = std::env::temp_dir().join(format!(
        "mammoth_planner_trace_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    std::env::set_var(TRACE_ENV, &path);

    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..3 {
        let srv = Server::start(ServerConfig {
            spec: SessionSpec::in_memory(),
            ..ServerConfig::default()
        })
        .unwrap();
        addrs.push(srv.local_addr().to_string());
        servers.push(srv);
    }
    let mut cfg = CoordinatorConfig::new(addrs);
    cfg.deadline = Duration::from_millis(2000);
    let coord = Coordinator::new(cfg);

    coord.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    coord
        .execute("INSERT INTO t VALUES (1, 10), (7, 70), (9, 90)")
        .unwrap();

    // The same ad-hoc statement five times: one compile, four hits.
    for _ in 0..5 {
        let out = coord.execute("SELECT v FROM t WHERE k = 7").unwrap();
        let QueryOutput::Table { rows, .. } = out else {
            panic!("expected a table");
        };
        assert_eq!(rows.len(), 1);
    }
    // EXECUTE binds to the *same* statement text, so the prepared path
    // rides the very same cache entry: three more hits, zero compiles.
    coord
        .execute("PREPARE pv AS SELECT v FROM t WHERE k = ?")
        .unwrap();
    for _ in 0..3 {
        let out = coord.execute("EXECUTE pv (7)").unwrap();
        let QueryOutput::Table { rows, .. } = out else {
            panic!("expected a table");
        };
        assert_eq!(rows[0][0].as_i64(), Some(70));
    }

    coord.flush_trace().unwrap();
    for srv in servers {
        srv.shutdown().unwrap();
    }
    std::env::remove_var(TRACE_ENV);

    let text = std::fs::read_to_string(&path).expect("trace file must exist");
    // The whole export — coordinator run, shard server runs, any session
    // profiles — must stay tracecheck-clean with the plan events in it.
    validate_trace(&text).expect("trace with plan events must validate");
    let compiles = text
        .lines()
        .filter(|l| l.contains("\"kind\":\"plan.compile\""))
        .count();
    let hits = text
        .lines()
        .filter(|l| l.contains("\"kind\":\"plan.cache_hit\""))
        .count();
    assert_eq!(
        compiles, 1,
        "the coordinator must compile the scatter plan exactly once"
    );
    assert_eq!(hits, 7, "4 ad-hoc repeats + 3 EXECUTEs are all cache hits");
    let _ = std::fs::remove_file(&path);
}
