//! End-to-end SQL workout: DDL, bulk DML, joins, grouping, ordering,
//! persistence — the downstream-user path through the whole stack.

use mammoth::types::Value;
use mammoth::{Database, QueryOutput};

fn rows(out: QueryOutput) -> Vec<Vec<Value>> {
    match out {
        QueryOutput::Table { rows, .. } => rows,
        other => panic!("expected a table, got {other:?}"),
    }
}

#[test]
fn orders_and_customers() {
    let mut db = Database::new();
    db.execute("CREATE TABLE customers (id INT NOT NULL, name VARCHAR, city VARCHAR)")
        .unwrap();
    db.execute("CREATE TABLE orders (cust INT NOT NULL, amount BIGINT, item VARCHAR)")
        .unwrap();
    db.execute(
        "INSERT INTO customers VALUES (1, 'ada', 'amsterdam'), (2, 'bob', 'berlin'), \
         (3, 'cleo', 'amsterdam'), (4, 'dan', 'paris')",
    )
    .unwrap();
    db.execute(
        "INSERT INTO orders VALUES (1, 120, 'keyboard'), (1, 80, 'mouse'), \
         (2, 500, 'monitor'), (3, 40, 'cable'), (3, 60, 'hub'), (3, 10, 'tape')",
    )
    .unwrap();

    // join + filter + order
    let r = rows(
        db.execute(
            "SELECT name, amount FROM customers JOIN orders ON customers.id = orders.cust \
             WHERE amount >= 60 ORDER BY amount DESC",
        )
        .unwrap(),
    );
    assert_eq!(
        r,
        vec![
            vec![Value::Str("bob".into()), Value::I64(500)],
            vec![Value::Str("ada".into()), Value::I64(120)],
            vec![Value::Str("ada".into()), Value::I64(80)],
            vec![Value::Str("cleo".into()), Value::I64(60)],
        ]
    );

    // grouped aggregates over a join
    let r = rows(
        db.execute(
            "SELECT name, COUNT(*), SUM(amount) FROM customers \
             JOIN orders ON customers.id = orders.cust GROUP BY name ORDER BY name",
        )
        .unwrap(),
    );
    assert_eq!(
        r,
        vec![
            vec![Value::Str("ada".into()), Value::I64(2), Value::I64(200)],
            vec![Value::Str("bob".into()), Value::I64(1), Value::I64(500)],
            vec![Value::Str("cleo".into()), Value::I64(3), Value::I64(110)],
        ]
    );

    // multi-column GROUP BY
    db.execute("INSERT INTO orders VALUES (4, 70, 'keyboard'), (4, 70, 'keyboard')")
        .unwrap();
    let r = rows(
        db.execute(
            "SELECT city, COUNT(*) FROM customers JOIN orders ON customers.id = orders.cust \
             GROUP BY city ORDER BY city",
        )
        .unwrap(),
    );
    assert_eq!(
        r,
        vec![
            vec![Value::Str("amsterdam".into()), Value::I64(5)],
            vec![Value::Str("berlin".into()), Value::I64(1)],
            vec![Value::Str("paris".into()), Value::I64(2)],
        ]
    );

    // DELETE + re-query
    db.execute("DELETE FROM orders WHERE amount < 50").unwrap();
    let r = rows(db.execute("SELECT COUNT(*) FROM orders").unwrap());
    assert_eq!(r[0][0], Value::I64(6));
}

#[test]
fn persistence_survives_restart_mid_workload() {
    let dir = std::env::temp_dir().join(format!("mammoth-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut db = Database::new();
        db.execute("CREATE TABLE kv (k INT NOT NULL, v VARCHAR)")
            .unwrap();
        for batch in 0..10 {
            let values: Vec<String> = (0..100)
                .map(|i| format!("({}, 'v{}')", batch * 100 + i, batch * 100 + i))
                .collect();
            db.execute(&format!("INSERT INTO kv VALUES {}", values.join(", ")))
                .unwrap();
        }
        db.execute("DELETE FROM kv WHERE k >= 900").unwrap();
        db.save(&dir).unwrap();
    }
    let mut db = Database::open(&dir).unwrap();
    let r = rows(db.execute("SELECT COUNT(*) FROM kv").unwrap());
    assert_eq!(r[0][0], Value::I64(900));
    let r = rows(db.execute("SELECT v FROM kv WHERE k = 555").unwrap());
    assert_eq!(r, vec![vec![Value::Str("v555".into())]]);
    // keep writing after reopen
    db.execute("INSERT INTO kv VALUES (900, 'again')").unwrap();
    let r = rows(db.execute("SELECT COUNT(*) FROM kv").unwrap());
    assert_eq!(r[0][0], Value::I64(901));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn between_limit_and_floats() {
    let mut db = Database::new();
    db.execute("CREATE TABLE m (x INT, y DOUBLE)").unwrap();
    db.execute("INSERT INTO m VALUES (1, 0.5), (2, 1.5), (3, 2.5), (4, NULL)")
        .unwrap();
    let r = rows(
        db.execute("SELECT x FROM m WHERE x BETWEEN 2 AND 3 ORDER BY x LIMIT 1")
            .unwrap(),
    );
    assert_eq!(r, vec![vec![Value::I32(2)]]);
    let r = rows(
        db.execute("SELECT SUM(y), COUNT(y), AVG(y) FROM m")
            .unwrap(),
    );
    assert_eq!(r[0][0], Value::F64(4.5));
    assert_eq!(r[0][1], Value::I64(3), "COUNT(col) skips NULL");
    assert_eq!(r[0][2], Value::F64(1.5));
}

#[test]
fn error_paths_are_clean() {
    let mut db = Database::new();
    assert!(db.execute("SELECT * FROM nowhere").is_err());
    db.execute("CREATE TABLE t (a INT)").unwrap();
    assert!(db.execute("CREATE TABLE t (a INT)").is_err());
    assert!(db.execute("INSERT INTO t VALUES ('wrong type')").is_err());
    assert!(db.execute("SELECT b FROM t").is_err());
    assert!(db.execute("SELEKT a FROM t").is_err());
    // the failed statements must not have corrupted anything
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let r = rows(db.execute("SELECT COUNT(*) FROM t").unwrap());
    assert_eq!(r[0][0], Value::I64(1));
}
