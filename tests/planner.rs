//! The planner differential tier (PR 10).
//!
//! Invariants under test:
//!
//! * **Prepared == ad-hoc** — for a seeded randomized workload of point,
//!   range, BETWEEN, conjunctive, aggregate and ORDER BY selects, running
//!   the statement ad-hoc and running it as `PREPARE`/`EXECUTE` with the
//!   constants bound as parameters produces *identical* result tables —
//!   under both the serial interpreter and the parallel dataflow engine,
//!   and identically on the cold (first) and warm (cached-plan) execution.
//! * **Histogram laws** (property tests) — equi-depth histograms keep
//!   their bucket counts summing to the row count, bounds sorted, and
//!   min/max containment, through any interleaving of incremental
//!   folds; and a fold-maintained total always matches a from-scratch
//!   rebuild of the surviving multiset.
//! * **Estimate quality** — on single-predicate selects over data the
//!   statistics have seen, the planner's row estimate is within a small
//!   q-error of the true cardinality.
//! * **Cost-guided ordering** — writing the same conjunctive predicates
//!   in their worst textual order compiles to the *same* optimized MAL as
//!   the best order (the planner re-orders by estimated selectivity), so
//!   the cost-guided choice cannot lose to the default by more than
//!   noise. A generous wall-clock bound backs the plan-text equality.

use mammoth_parallel::ParallelExecutor;
use mammoth_sql::{QueryOutput, Session};
use mammoth_types::Value;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const ROWS: usize = 4000;

fn session(parallel: bool) -> Session {
    let s = Session::new();
    if parallel {
        s.with_executor(Box::new(ParallelExecutor::new(2)), 4)
    } else {
        s
    }
}

/// Seeded table: k clusters (selective), v wide-uniform, s short strings.
fn seed_table(s: &mut Session, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    s.execute("CREATE TABLE t (k INT, v BIGINT, s VARCHAR)")
        .unwrap();
    let mut vals = Vec::with_capacity(ROWS);
    for _ in 0..ROWS {
        let k = rng.random_range(0i64..50);
        let v = rng.random_range(-10_000i64..10_000);
        let sv = format!("w{}", rng.random_range(0i64..12));
        vals.push(format!("({k}, {v}, '{sv}')"));
    }
    for chunk in vals.chunks(500) {
        s.execute(&format!("INSERT INTO t VALUES {}", chunk.join(", ")))
            .unwrap();
    }
}

/// One generated query as (ad-hoc SQL, parameterized body, argument
/// literals in placeholder order).
fn gen_query(rng: &mut StdRng) -> (String, String, Vec<String>) {
    let shapes = [
        "SELECT k, v FROM t",
        "SELECT COUNT(*), MIN(v), MAX(v) FROM t",
        "SELECT k FROM t",
        "SELECT v FROM t",
    ];
    let shape = shapes[rng.random_range(0i64..shapes.len() as i64) as usize];
    let npreds = 1 + rng.random_range(0i64..2);
    let mut adhoc = Vec::new();
    let mut prepd = Vec::new();
    let mut args = Vec::new();
    for _ in 0..npreds {
        let (col, lo, hi) = if rng.random_bool(0.5) {
            ("k", 0i64, 50i64)
        } else {
            ("v", -10_000i64, 10_000i64)
        };
        let c = rng.random_range(lo..hi);
        match rng.random_range(0i64..6) {
            0 => {
                adhoc.push(format!("{col} = {c}"));
                prepd.push(format!("{col} = ?"));
                args.push(c.to_string());
            }
            1 => {
                adhoc.push(format!("{col} < {c}"));
                prepd.push(format!("{col} < ?"));
                args.push(c.to_string());
            }
            2 => {
                adhoc.push(format!("{col} > {c}"));
                prepd.push(format!("{col} > ?"));
                args.push(c.to_string());
            }
            3 => {
                adhoc.push(format!("{col} <= {c}"));
                prepd.push(format!("{col} <= ?"));
                args.push(c.to_string());
            }
            4 => {
                adhoc.push(format!("{col} >= {c}"));
                prepd.push(format!("{col} >= ?"));
                args.push(c.to_string());
            }
            _ => {
                let d = rng.random_range(1i64..(hi - lo) / 4);
                adhoc.push(format!("{col} BETWEEN {c} AND {}", c + d));
                prepd.push(format!("{col} BETWEEN ? AND ?"));
                args.push(c.to_string());
                args.push((c + d).to_string());
            }
        }
    }
    // ORDER BY a projected column keeps row order deterministic where the
    // statement asks for order; unordered shapes compare exactly anyway
    // because both paths execute the identical plan.
    let tail = if shape == "SELECT k FROM t" {
        " ORDER BY k LIMIT 200".to_string()
    } else if shape == "SELECT v FROM t" {
        " ORDER BY v LIMIT 200".to_string()
    } else {
        String::new()
    };
    (
        format!("{shape} WHERE {}{tail}", adhoc.join(" AND ")),
        format!("{shape} WHERE {}{tail}", prepd.join(" AND ")),
        args,
    )
}

fn differential(seed: u64, parallel: bool) {
    let mut s = session(parallel);
    seed_table(&mut s, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
    for i in 0..40 {
        let (adhoc, prepd, args) = gen_query(&mut rng);
        let want = s.execute(&adhoc).unwrap_or_else(|e| {
            panic!("ad-hoc {adhoc:?} failed: {e}");
        });
        s.execute(&format!("PREPARE p{i} AS {prepd}")).unwrap();
        let exec = if args.is_empty() {
            format!("EXECUTE p{i}")
        } else {
            format!("EXECUTE p{i} ({})", args.join(", "))
        };
        let cold = s.execute(&exec).unwrap();
        let warm = s.execute(&exec).unwrap();
        assert_eq!(cold, want, "cold EXECUTE != ad-hoc for {adhoc:?}");
        assert_eq!(warm, cold, "warm EXECUTE != cold for {adhoc:?}");
    }
}

#[test]
fn prepared_matches_adhoc_serial() {
    for seed in [11, 29] {
        differential(seed, false);
    }
}

#[test]
fn prepared_matches_adhoc_parallel() {
    for seed in [11, 29] {
        differential(seed, true);
    }
}

/// Interleave DML between EXECUTEs: the cached plan must track premise
/// changes (stats drift, prop invalidation) and stay correct.
#[test]
fn prepared_stays_correct_across_dml() {
    let mut s = session(false);
    seed_table(&mut s, 7);
    s.execute("PREPARE q AS SELECT COUNT(*) FROM t WHERE k = ?")
        .unwrap();
    for round in 0..5 {
        let want = s.execute("SELECT COUNT(*) FROM t WHERE k = 13").unwrap();
        let got = s.execute("EXECUTE q (13)").unwrap();
        assert_eq!(got, want, "round {round}");
        s.execute(&format!("INSERT INTO t VALUES (13, {round}, 'x')"))
            .unwrap();
        s.execute(&format!("DELETE FROM t WHERE v = {}", round * 17 + 1))
            .unwrap();
    }
}

/// Estimate quality: single-predicate selects over stats-covered data
/// land within a small q-error of the truth.
#[test]
fn estimates_bound_q_error_on_single_predicates() {
    use mammoth_algebra::CmpOp;
    let mut s = session(false);
    seed_table(&mut s, 23);
    let stats = s.stats_catalog();
    let total = stats.table("t").unwrap().rows as f64;
    let mut worst: f64 = 1.0;
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..30 {
        let (col, op, c) = match rng.random_range(0i64..4) {
            0 => ("k", CmpOp::Eq, rng.random_range(0i64..50)),
            1 => ("k", CmpOp::Le, rng.random_range(0i64..50)),
            2 => ("v", CmpOp::Ge, rng.random_range(-10_000i64..10_000)),
            _ => ("v", CmpOp::Lt, rng.random_range(-10_000i64..10_000)),
        };
        let frac = mammoth_planner::selectivity(&stats, "t", col, op, Some(&Value::I64(c)));
        let est = (frac * total).max(1.0);
        let opstr = match op {
            CmpOp::Eq => "=",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            _ => unreachable!(),
        };
        let out = s
            .execute(&format!("SELECT COUNT(*) FROM t WHERE {col} {opstr} {c}"))
            .unwrap();
        let QueryOutput::Table { rows, .. } = out else {
            panic!()
        };
        let actual = rows[0][0].as_i64().unwrap() as f64;
        let q = (est / actual.max(1.0)).max(actual.max(1.0) / est);
        worst = worst.max(q);
        assert!(
            q <= 8.0,
            "q-error {q:.2} too large: {col} {opstr} {c}, est {est:.1} vs actual {actual}"
        );
    }
    // The workload must exercise real estimation, not degenerate cases.
    assert!(worst > 1.0, "every estimate exact is suspicious");
}

/// Cost-guided predicate ordering: the worst textual order compiles to
/// the same optimized MAL as the best order, and therefore runs in the
/// same ballpark.
#[test]
fn predicate_order_is_normalized_by_cost() {
    let mut s = session(false);
    seed_table(&mut s, 41);
    // `k = 7` keeps ~1/50 of rows; `v >= -10000` keeps everything.
    let bad = "SELECT COUNT(*) FROM t WHERE v >= -10000 AND k = 7";
    let good = "SELECT COUNT(*) FROM t WHERE k = 7 AND v >= -10000";
    let explain = |s: &mut Session, q: &str| -> String {
        let QueryOutput::Table { rows, .. } = s.execute(&format!("EXPLAIN {q}")).unwrap() else {
            panic!()
        };
        rows.iter()
            .map(|r| format!("{:?}", r[0]))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        explain(&mut s, bad),
        explain(&mut s, good),
        "the planner must reorder the unselective predicate behind the selective one"
    );
    // Identical plans run identically; a generous wall-clock bound guards
    // against the reorder pass silently dropping out.
    let time = |s: &mut Session, q: &str| {
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            s.execute(q).unwrap();
        }
        t0.elapsed()
    };
    let tb = time(&mut s, bad);
    let tg = time(&mut s, good);
    assert!(
        tb < tg * 8 + std::time::Duration::from_millis(50),
        "worst-order query {tb:?} lost badly to best-order {tg:?}"
    );
}

mod histogram_props {
    use mammoth_planner::Histogram;
    use proptest::prelude::*;

    fn check_invariants(h: &Histogram) {
        assert_eq!(
            h.counts.iter().sum::<u64>(),
            h.total,
            "bucket counts must sum to the row count"
        );
        assert_eq!(h.counts.len(), h.bounds.len());
        let mut prev = h.lo;
        for &b in &h.bounds {
            assert!(b >= prev, "bounds must be non-decreasing from lo");
            prev = b;
        }
    }

    proptest! {
        #[test]
        fn prop_build_sums_and_contains(
            vals in proptest::collection::vec(-1000i64..1000, 1..300),
            buckets in 1usize..20,
        ) {
            let f: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
            let h = Histogram::build(f.clone(), buckets).unwrap();
            check_invariants(&h);
            prop_assert_eq!(h.total, vals.len() as u64);
            let mn = f.iter().cloned().fold(f64::INFINITY, f64::min);
            let mx = f.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(h.lo, mn);
            prop_assert_eq!(*h.bounds.last().unwrap(), mx);
            // every value is inside [lo, last bound]
            for v in &f {
                prop_assert!(*v >= h.lo && *v <= *h.bounds.last().unwrap());
            }
        }

        #[test]
        fn prop_incremental_fold_matches_rebuild_total(
            base in proptest::collection::vec(-500i64..500, 1..150),
            adds in proptest::collection::vec(-800i64..800, 0..80),
            dels in proptest::collection::vec(0usize..100, 0..40),
        ) {
            let mut live: Vec<f64> = base.iter().map(|&v| v as f64).collect();
            let mut h = Histogram::build(live.clone(), 8).unwrap();
            for &a in &adds {
                h.add(a as f64);
                live.push(a as f64);
            }
            for &d in &dels {
                if live.is_empty() { break; }
                let idx = d % live.len();
                let v = live.swap_remove(idx);
                h.remove(v);
            }
            check_invariants(&h);
            // The incrementally-folded total tracks the live multiset
            // exactly; bucket placement may drift (the CHECKPOINT fold
            // rebuilds), but never the mass.
            prop_assert_eq!(h.total, live.len() as u64);
            if !live.is_empty() {
                let rebuilt = Histogram::build(live.clone(), 8).unwrap();
                prop_assert_eq!(rebuilt.total, h.total);
                // containment survives folding: min/max of the live set
                // stay inside the folded histogram's recorded range
                let mn = live.iter().cloned().fold(f64::INFINITY, f64::min);
                let mx = live.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(h.lo <= mn);
                prop_assert!(*h.bounds.last().unwrap() >= mx);
            }
        }
    }
}
