//! The `MAMMOTH_TRACE` environment export, end to end.
//!
//! This file holds exactly one test on purpose: it mutates process-global
//! environment variables, which would race with any other test running in
//! the same binary. Cargo gives every integration-test file its own
//! process, so isolation comes from the file boundary.

use mammoth::types::{validate_trace, TRACE_ENV};
use mammoth::{Database, QueryOutput};

#[test]
fn env_var_exports_a_validating_trace_file() {
    let path = std::env::temp_dir().join(format!("mammoth_trace_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var(TRACE_ENV, &path);

    let mut db = Database::new();
    db.execute("CREATE TABLE t (a BIGINT, b BIGINT)").unwrap();
    for i in 0..100i64 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 7))
            .unwrap();
    }
    // with the env var set, plain SELECTs profile and append to the file
    let out = db.execute("SELECT SUM(b) FROM t WHERE a > 10").unwrap();
    let QueryOutput::Table { rows, .. } = out else {
        panic!("expected a table");
    };
    assert_eq!(rows[0][0].as_i64().unwrap(), (11..100).map(|i| i * 7).sum());
    let first = db.last_profile().expect("env export stashes the profile");
    assert!(first.executed > 0);

    // TRACE appends a second run to the same file
    db.execute("TRACE SELECT COUNT(a) FROM t WHERE b < 350")
        .unwrap();
    std::env::remove_var(TRACE_ENV);

    let text = std::fs::read_to_string(&path).expect("trace file must exist");
    let (runs, events) = validate_trace(&text).expect("exported trace must validate");
    assert_eq!(runs, 2, "one run block per profiled statement");
    assert!(events > 0);
    let _ = std::fs::remove_file(&path);

    // with the env var cleared, queries no longer export or profile
    db.execute("SELECT a FROM t WHERE a = 5").unwrap();
    assert!(
        !path.exists(),
        "cleared {TRACE_ENV} must stop the export entirely"
    );
}
