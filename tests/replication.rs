//! End-to-end replication: convergence, divergence re-bootstrap, and
//! kill-the-primary failover, all over real sockets.
//!
//! The invariants under test:
//!
//! * **Convergence** — after the primary quiesces and every replica
//!   reports `CaughtUp`, each replica's result tables are *identical* to
//!   the primary's (same columns, same rows, same order).
//! * **Divergence discipline** — a replica whose local WAL mirror is
//!   corrupted must wipe and re-bootstrap from the primary's checkpoint
//!   image; it may briefly serve an empty or shorter prefix, but never a
//!   garbled row.
//! * **Failover** — with the primary killed at a randomized filesystem
//!   kill point (`MAMMOTH_FAULT_SEED` selects the schedule), promoting a
//!   replica that drains the dead primary's surviving directory loses no
//!   acknowledged write: acked <= recovered <= acked + 1 (the `+ 1` is a
//!   write that became durable without its OK reaching the client).

use mammoth_replica::{Replica, ReplicaConfig};
use mammoth_server::{
    Client, ClientError, ErrorCode, Response, RetryPolicy, Server, ServerConfig, SessionSpec,
};
use mammoth_sql::Session;
use mammoth_storage::persist::wal_file_name;
use mammoth_storage::{FaultFs, FaultKind, FaultPlan};
use mammoth_types::Value;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mammoth-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn start_primary(dir: &PathBuf) -> (Server, String) {
    let srv = Server::start(ServerConfig {
        spec: SessionSpec::durable(dir),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = srv.local_addr().to_string();
    (srv, addr)
}

fn start_replica(primary: &str, dir: &PathBuf) -> Replica {
    let mut cfg = ReplicaConfig::new(primary, dir);
    cfg.poll_interval = Duration::from_millis(5);
    cfg.retry = RetryPolicy {
        attempts: 10,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        seed: 42,
    };
    Replica::start(cfg).unwrap()
}

fn select_all(addr: &str, sql: &str) -> Response {
    let mut c = Client::connect(addr, "checker", "").unwrap();
    let r = c.query(sql).unwrap();
    c.quit().unwrap();
    r
}

/// Poll until `replica`'s answer to `sql` equals `want` (the primary's
/// answer), failing after `deadline`.
fn wait_for_match(replica_addr: &str, sql: &str, want: &Response, deadline: Duration) {
    let t0 = Instant::now();
    let mut last = None;
    while t0.elapsed() < deadline {
        let got = select_all(replica_addr, sql);
        if &got == want {
            return;
        }
        last = Some(got);
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("replica never converged on {sql:?}: wanted {want:?}, last saw {last:?}");
}

#[test]
fn replicas_converge_to_identical_tables() {
    let pdir = tmpdir("conv-p");
    let r1dir = tmpdir("conv-r1");
    let r2dir = tmpdir("conv-r2");
    let (primary, paddr) = start_primary(&pdir);
    let r1 = start_replica(&paddr, &r1dir);
    let r2 = start_replica(&paddr, &r2dir);

    let mut c = Client::connect(&paddr, "writer", "").unwrap();
    c.query("CREATE TABLE t (a INT, b TEXT)").unwrap();
    for i in 0..20 {
        c.query(&format!("INSERT INTO t VALUES ({i}, 'row-{i}')"))
            .unwrap();
    }
    // A mid-stream checkpoint flips the generation under the replicas:
    // their next polls must re-anchor from the shipped image.
    c.query("CHECKPOINT").unwrap();
    for i in 20..30 {
        c.query(&format!("INSERT INTO t VALUES ({i}, 'row-{i}')"))
            .unwrap();
    }

    let sql = "SELECT a, b FROM t";
    let want = select_all(&paddr, sql);
    match &want {
        Response::Table { rows, .. } => assert_eq!(rows.len(), 30),
        other => panic!("expected table, got {other:?}"),
    }
    for (r, addr) in [
        (&r1, r1.local_addr().to_string()),
        (&r2, r2.local_addr().to_string()),
    ] {
        assert!(r.wait_caught_up(Duration::from_secs(20)), "never caught up");
        wait_for_match(&addr, sql, &want, Duration::from_secs(20));
        // Writes must be refused at the replica.
        let mut rc = Client::connect(&addr, "misguided", "").unwrap();
        match rc.query("INSERT INTO t VALUES (99, 'nope')") {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::ReadOnly),
            other => panic!("expected READ_ONLY, got {other:?}"),
        }
        // Lag is observable through plain SQL.
        match rc.query("EXPLAIN REPLICATION").unwrap() {
            Response::Table { rows, .. } => {
                assert!(rows.contains(&vec![
                    Value::Str("role".into()),
                    Value::Str("replica".into())
                ]));
            }
            other => panic!("expected status table, got {other:?}"),
        }
        rc.quit().unwrap();
    }
    let s1 = r1.shutdown().unwrap();
    assert!(s1.applied_groups > 0 || s1.bootstraps > 0);
    r2.shutdown().unwrap();
    drop(c);
    primary.shutdown().unwrap();
    for d in [pdir, r1dir, r2dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn corrupted_replica_rebootstraps_never_serves_garbage() {
    let pdir = tmpdir("div-p");
    let rdir = tmpdir("div-r");
    let (primary, paddr) = start_primary(&pdir);

    let mut c = Client::connect(&paddr, "writer", "").unwrap();
    c.query("CREATE TABLE t (a INT)").unwrap();
    for i in 0..10 {
        c.query(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    // Give the primary a checkpoint so the re-bootstrap must go through
    // the image path, not just WAL byte zero.
    c.query("CHECKPOINT").unwrap();
    c.query("INSERT INTO t VALUES (10)").unwrap();

    let sql = "SELECT a FROM t";
    let want = select_all(&paddr, sql);

    let r = start_replica(&paddr, &rdir);
    assert!(r.wait_caught_up(Duration::from_secs(20)));
    let raddr = r.local_addr().to_string();
    wait_for_match(&raddr, sql, &want, Duration::from_secs(20));
    let gen = r.status().generation;
    r.shutdown().unwrap();

    // Corrupt the mirror's WAL mid-file: flip a byte past the header.
    let wal = rdir.join(wal_file_name(gen));
    let mut bytes = std::fs::read(&wal).unwrap();
    assert!(bytes.len() > 12, "need a record to corrupt");
    let mid = 8 + (bytes.len() - 8) / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&wal, &bytes).unwrap();

    // The restarted replica must detect the divergence, wipe, and
    // re-bootstrap. While it does, every answer must be a clean prefix
    // of the true table — garbled values must never appear.
    let r = start_replica(&paddr, &rdir);
    let raddr = r.local_addr().to_string();
    let legal: Vec<Vec<Value>> = (0..=10).map(|i| vec![Value::I32(i)]).collect();
    let t0 = Instant::now();
    loop {
        let mut probe = Client::connect(&raddr, "probe", "").unwrap();
        match probe.query(sql) {
            // A freshly wiped mirror has no table yet — a legal (empty)
            // prefix of the true state.
            Err(ClientError::Server {
                code: ErrorCode::Sql,
                ..
            }) => {}
            Ok(Response::Table { rows, .. }) => {
                for row in &rows {
                    assert!(legal.contains(row), "garbled row {row:?} served");
                }
                if rows.len() == legal.len() {
                    break;
                }
            }
            other => panic!("expected table or missing table, got {other:?}"),
        }
        assert!(t0.elapsed() < Duration::from_secs(20), "never reconverged");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(r.wait_caught_up(Duration::from_secs(20)));
    let status = r.shutdown().unwrap();
    assert!(
        status.bootstraps >= 1,
        "corruption must force a re-bootstrap, got {status:?}"
    );
    drop(c);
    primary.shutdown().unwrap();
    for d in [pdir, rdir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

fn seed_from_env() -> u64 {
    std::env::var("MAMMOTH_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn promotion_after_primary_crash_loses_no_acked_write() {
    let seed = seed_from_env();
    // Three randomized kill points per seed: early (mid-schema), middle,
    // and late in the insert stream.
    for (round, at_op) in [23 + seed % 11, 67 + seed % 29, 131 + seed % 53]
        .into_iter()
        .enumerate()
    {
        let pdir = tmpdir(&format!("fail-p{round}"));
        let rdir = tmpdir(&format!("fail-r{round}"));
        let fs = Arc::new(FaultFs::new(FaultPlan {
            at_op,
            kind: FaultKind::CrashAfter,
        }));
        let primary = Server::start(ServerConfig {
            spec: SessionSpec::durable_with(fs.clone(), &pdir),
            ..ServerConfig::default()
        })
        .unwrap();
        let paddr = primary.local_addr().to_string();
        let replica = start_replica(&paddr, &rdir);

        // Write until the injected crash kills the primary's disk.
        let mut acked: i64 = 0;
        let mut c = Client::connect(&paddr, "writer", "").unwrap();
        if c.query("CREATE TABLE t (a INT)").is_ok() {
            for i in 0..200 {
                match c.query(&format!("INSERT INTO t VALUES ({i})")) {
                    Ok(_) => acked = i + 1,
                    Err(_) => break,
                }
            }
        }
        drop(c);
        // Let the replica pull whatever it can still get (reads on the
        // dead primary's directory keep working), then fail over.
        std::thread::sleep(Duration::from_millis(100));
        let promoted = replica.promote(Some(&pdir)).unwrap();

        let s = Session::open_durable(promoted).unwrap();
        let rows = match s.catalog().table("t") {
            Ok(t) => t.rows(),
            Err(_) => Vec::new(), // crashed before CREATE committed
        };
        let recovered = rows.len() as i64;
        assert!(
            recovered == acked || recovered == acked + 1,
            "seed {seed} op {at_op} (fired on {:?}): acked {acked} but recovered {recovered}",
            fs.fired_on()
        );
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row, &vec![Value::I32(i as i32)], "row {i} garbled");
        }
        drop(primary); // leaks worker threads; the process is test-scoped
        for d in [pdir, rdir] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }
}
