//! Randomized soundness harness for the property tier (the
//! abstract-interpretation analogue of `trace_consistency`).
//!
//! A corpus of randomized scan/select/project/calc/join/aggregate plans —
//! over columns with known statistics, including a provably sorted one and
//! predicate cuts that land outside the value intervals — runs with the
//! `MAMMOTH_CHECK_PROPS` runtime checker on, both as compiled and after
//! the property-driven optimizer passes, on:
//!
//! * the serial interpreter,
//! * the serial interpreter with a recycler (cold, then warm — recycled
//!   BATs are checked too),
//! * the dataflow worker pool at 4 threads.
//!
//! Checked invariants per plan:
//!
//! * zero property violations on every engine (every materialized BAT
//!   satisfies the statically inferred `Props`);
//! * results with the property passes enabled are identical to results
//!   with them disabled, on every engine.

use mammoth::mal::{
    column_facts_with_zonemaps, default_pipeline_with_props, Arg, Interpreter, MalValue, OpCode,
    Program, CHECK_PROPS_ENV,
};
use mammoth::parallel::run_dataflow;
use mammoth::recycler::{EvictPolicy, Recycler};
use mammoth::storage::{Bat, Catalog, Table};
use mammoth::types::{ColumnDef, LogicalType, TableSchema, Value};
use mammoth::workload::uniform_i64;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use mammoth::algebra::{AggKind, ArithOp, CmpOp};

const ROWS: usize = 4096;
const DIM_ROWS: usize = 64;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    let fact = Table::from_bats(
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("c0", LogicalType::I64),
                ColumnDef::new("c1", LogicalType::I64),
                ColumnDef::new("s", LogicalType::I64),
                ColumnDef::new("c2", LogicalType::I64),
            ],
        ),
        vec![
            Bat::from_vec(uniform_i64(ROWS, 0, 1000, 11)),
            Bat::from_vec(uniform_i64(ROWS, 0, 1000, 12)),
            // provably sorted and nil-free: SortedSelect fires on this one
            Bat::from_vec((0..ROWS as i64).collect::<Vec<_>>()),
            Bat::from_vec(uniform_i64(ROWS, 0, DIM_ROWS as i64, 13)),
        ],
    )
    .unwrap();
    cat.create_table(fact).unwrap();
    let dim = Table::from_bats(
        TableSchema::new("d", vec![ColumnDef::new("k", LogicalType::I64)]),
        vec![Bat::from_vec((0..DIM_ROWS as i64).collect::<Vec<_>>())],
    )
    .unwrap();
    cat.create_table(dim).unwrap();
    cat
}

fn bind(p: &mut Program, table: &str, col: &str) -> usize {
    p.push(
        OpCode::Bind,
        vec![
            Arg::Const(Value::Str(table.into())),
            Arg::Const(Value::Str(col.into())),
        ],
    )[0]
}

/// One randomized plan: select on a random column (cuts deliberately range
/// past both interval ends, so accept-all / accept-none proofs fire),
/// project a random payload, an optional calc chain, an optional join
/// against the dimension, scalar aggregates at the end.
fn random_plan(rng: &mut StdRng) -> Program {
    let cols = ["c0", "c1", "s", "c2"];
    let mut p = Program::new();
    let sel_col = cols[rng.random_range(0..cols.len())];
    let a = bind(&mut p, "t", sel_col);
    let cmp = [CmpOp::Gt, CmpOp::Lt, CmpOp::Ge, CmpOp::Le][rng.random_range(0..4usize)];
    let cut = rng.random_range(-100..1100i64);
    let cands = p.push(
        OpCode::ThetaSelect(cmp),
        vec![Arg::Var(a), Arg::Const(Value::I64(cut))],
    )[0];
    let pay_col = cols[rng.random_range(0..cols.len())];
    let b = bind(&mut p, "t", pay_col);
    let mut v = p.push(OpCode::Projection, vec![Arg::Var(cands), Arg::Var(b)])[0];
    for _ in 0..rng.random_range(0..3usize) {
        let op = [ArithOp::Add, ArithOp::Mul][rng.random_range(0..2usize)];
        let k = rng.random_range(1..10i64);
        v = p.push(
            OpCode::Calc(op),
            vec![Arg::Var(v), Arg::Const(Value::I64(k))],
        )[0];
    }
    let mut outs = Vec::new();
    if rng.random_bool(0.5) {
        let fk = bind(&mut p, "t", "c2");
        let keys = p.push(OpCode::Projection, vec![Arg::Var(cands), Arg::Var(fk)])[0];
        let dk = bind(&mut p, "d", "k");
        let j = p.push(OpCode::Join, vec![Arg::Var(keys), Arg::Var(dk)]);
        outs.push(p.push(OpCode::Count, vec![Arg::Var(j[0])])[0]);
    }
    outs.push(p.push(OpCode::Aggr(AggKind::Sum), vec![Arg::Var(v)])[0]);
    outs.push(p.push(OpCode::Count, vec![Arg::Var(v)])[0]);
    p.push_result(&outs);
    p
}

fn scalars(vals: &[MalValue]) -> Vec<Value> {
    vals.iter()
        .map(|v| v.as_scalar().expect("scalar output").clone())
        .collect()
}

#[test]
fn property_checker_reports_zero_violations_across_engines() {
    // the dataflow engine reads the environment flag; the serial
    // interpreters pin the checker explicitly via the builder as well
    std::env::set_var(CHECK_PROPS_ENV, "1");
    let cat = catalog();
    let facts = column_facts_with_zonemaps(&cat);
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for plan_no in 0..25 {
        let prog = random_plan(&mut rng);
        let ctx = format!("plan {plan_no}");

        // reference: property passes disabled, checker on
        let expected = scalars(
            &Interpreter::new(&cat)
                .check_props(true)
                .run(&prog)
                .unwrap_or_else(|e| panic!("{ctx} serial/unoptimized: {e}")),
        );

        // property passes enabled
        let opt = default_pipeline_with_props(facts.clone()).optimize(prog.clone());
        let got = scalars(
            &Interpreter::new(&cat)
                .check_props(true)
                .run(&opt)
                .unwrap_or_else(|e| panic!("{ctx} serial/optimized: {e}")),
        );
        assert_eq!(got, expected, "{ctx}: passes must preserve answers");

        // recycler, cold then warm: recycled BATs are checked too
        let mut rec = Recycler::new(16 << 20, EvictPolicy::Lru);
        for phase in ["cold", "warm"] {
            let vals = Interpreter::with_recycler(&cat, &mut rec)
                .check_props(true)
                .run(&opt)
                .unwrap_or_else(|e| panic!("{ctx} recycler/{phase}: {e}"));
            assert_eq!(scalars(&vals), expected, "{ctx} recycler/{phase}");
        }

        // dataflow pool (checker enabled via MAMMOTH_CHECK_PROPS above),
        // on both the unoptimized and the optimized plan
        for (name, plan) in [("unoptimized", &prog), ("optimized", &opt)] {
            let (vals, _) = run_dataflow(&cat, plan, 4)
                .unwrap_or_else(|e| panic!("{ctx} dataflow/{name}: {e}"));
            assert_eq!(scalars(&vals), expected, "{ctx} dataflow/{name}");
        }
    }
}
