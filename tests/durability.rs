//! Kill-point sweep: for EVERY mutating filesystem operation in a
//! DML + checkpoint workload, inject a fault at exactly that operation,
//! then recover from disk and check the result against an in-memory
//! oracle. The invariant under test is the committed-prefix guarantee:
//!
//! * recovery NEVER panics and never reports corruption as success;
//! * the recovered state is exactly the state after some acknowledged
//!   prefix of statements — `states[acked]`, or `states[acked + 1]` when
//!   the crash landed between making a statement durable and
//!   acknowledging it (fsync'd but the OK never returned).
//!
//! The workload is deterministic per seed; `MAMMOTH_FAULT_SEED` selects
//! one (the CI crash matrix runs seeds 1..=4).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mammoth_sql::Session;
use mammoth_storage::{FaultFs, FaultKind, FaultPlan};
use mammoth_types::{TableSchema, Value};

/// Small merge threshold so the workload crosses it and logs Merge records.
const MERGE_THRESHOLD: usize = 8;

type Dump = Vec<(String, TableSchema, Vec<Vec<Value>>)>;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mammoth-dura-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// xorshift64* — deterministic, seed-parameterised workload without
/// pulling in an RNG crate.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A deterministic workload of always-valid statements: multi-row inserts
/// (the torn-batch case), predicate deletes, a mid-stream CHECKPOINT, DDL.
/// Insert volume crosses `MERGE_THRESHOLD`, so Merge records appear too.
fn workload(seed: u64) -> Vec<String> {
    let mut r = Rng::new(seed ^ 0x6d616d6d); // "mamm"
    let mut stmts = vec![
        "CREATE TABLE t (a INT NOT NULL, s TEXT)".to_string(),
        "CREATE TABLE side (x INT NOT NULL)".to_string(),
    ];
    for round in 0..4u64 {
        let rows: Vec<String> = (0..(3 + r.below(4)))
            .map(|i| format!("({}, 'r{}-{}')", r.below(50), round, i))
            .collect();
        stmts.push(format!("INSERT INTO t VALUES {}", rows.join(", ")));
        stmts.push(format!("INSERT INTO side VALUES ({})", r.below(9)));
        stmts.push(format!("DELETE FROM t WHERE a < {}", r.below(20)));
        if round == 1 {
            stmts.push("CHECKPOINT".to_string());
        }
    }
    stmts.push("DROP TABLE side".to_string());
    stmts.push("CHECKPOINT".to_string());
    stmts.push(format!(
        "INSERT INTO t VALUES ({}, 'after-ckpt')",
        r.below(50)
    ));
    stmts.push(format!("DELETE FROM t WHERE a >= {}", 25 + r.below(20)));
    stmts
}

/// Run the workload on a plain in-memory session, recording the logical
/// state after every statement. `states[k]` = state once `k` statements
/// have been acknowledged.
fn oracle_states(stmts: &[String]) -> Vec<Dump> {
    let mut s = Session::new();
    s.set_merge_threshold(MERGE_THRESHOLD);
    let mut states = vec![s.catalog().logical_dump()];
    for q in stmts {
        // CHECKPOINT needs a durable store and changes no logical state;
        // every other statement must be valid for the oracle
        if q != "CHECKPOINT" {
            s.execute(q)
                .unwrap_or_else(|e| panic!("oracle rejected {q:?}: {e}"));
        }
        states.push(s.catalog().logical_dump());
    }
    states
}

/// Execute the workload through a fault-injecting VFS. Returns how many
/// statements were acknowledged before the injected crash (all of them if
/// the fault never fired).
fn run_until_crash(fs: Arc<FaultFs>, dir: &Path, stmts: &[String]) -> usize {
    let vfs: Arc<dyn mammoth_storage::Vfs> = Arc::clone(&fs) as _;
    let Ok(mut s) = Session::open_durable_with(vfs, dir.to_path_buf()) else {
        return 0; // crashed while opening the store: nothing acknowledged
    };
    s.set_merge_threshold(MERGE_THRESHOLD);
    let mut acked = 0;
    for q in stmts {
        if s.execute(q).is_err() {
            break; // the process is dead from here on
        }
        acked += 1;
    }
    acked
}

/// Recover with the real filesystem and return the logical state. Any
/// panic here is itself a sweep failure (the harness would abort).
fn recovered_dump(dir: &Path) -> Dump {
    let s = Session::open_durable(dir.to_path_buf())
        .unwrap_or_else(|e| panic!("recovery must not fail after a crash: {e}"));
    s.catalog().logical_dump()
}

fn seed_from_env() -> u64 {
    std::env::var("MAMMOTH_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn fault_free_run_recovers_final_state() {
    let stmts = workload(seed_from_env());
    let states = oracle_states(&stmts);
    let dir = tmpdir("clean");
    let fs = Arc::new(FaultFs::new(FaultPlan::none()));
    let acked = run_until_crash(Arc::clone(&fs), &dir, &stmts);
    assert_eq!(acked, stmts.len(), "fault-free run must ack everything");
    assert!(fs.op_count() > 0);
    assert_eq!(recovered_dump(&dir), *states.last().unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_point_sweep_recovers_committed_prefix() {
    let seed = seed_from_env();
    let stmts = workload(seed);
    let states = oracle_states(&stmts);

    // measure the op budget of a clean run; every one of those ops is a
    // kill point
    let probe_dir = tmpdir("probe");
    let probe = Arc::new(FaultFs::new(FaultPlan::none()));
    run_until_crash(Arc::clone(&probe), &probe_dir, &stmts);
    let total_ops = probe.op_count();
    let _ = std::fs::remove_dir_all(&probe_dir);
    assert!(total_ops > 20, "workload too small to be interesting");

    let kinds = [
        FaultKind::Fail,
        FaultKind::ShortWrite(1),
        FaultKind::ShortWrite(7),
        FaultKind::CrashAfter,
    ];
    let mut checked = 0u64;
    for kind in kinds {
        for at_op in 0..total_ops {
            let dir = tmpdir("sweep");
            let fs = Arc::new(FaultFs::new(FaultPlan { at_op, kind }));
            let acked = run_until_crash(Arc::clone(&fs), &dir, &stmts);
            let got = recovered_dump(&dir);
            // `acked` statements definitely committed; one more may have
            // become durable without being acknowledged
            let next = (acked + 1).min(states.len() - 1);
            assert!(
                got == states[acked] || got == states[next],
                "seed {seed}, {kind:?} at op {at_op} (fired on {:?}): recovered \
                 state matches neither {acked} nor {next} acknowledged statements",
                fs.fired_on(),
            );
            checked += 1;
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    assert_eq!(checked, 4 * total_ops);
}
