//! The distributed differential-test tier: a 3-shard cluster must be
//! indistinguishable from a single node.
//!
//! The invariants under test:
//!
//! * **Differential equivalence** — a seeded randomized SQL workload
//!   (DDL + mixed DML / point and range SELECTs / aggregates / joins /
//!   GROUP BY) executed through the scatter-gather coordinator produces
//!   *identical* result tables to the same workload on a single-node
//!   [`Session`], under both the serial and the parallel engine on the
//!   shards. Rows compare as multisets except under ORDER BY (on the
//!   unique key), where order is exact.
//! * **Typed partial failure** — killing one shard mid-workload makes
//!   fan-out statements fail with `SHARD_UNAVAILABLE` *within the
//!   coordinator's deadline*: no hang, and never a silently truncated
//!   result. Afterwards every shard's WAL obeys the durability contract
//!   per shard: `acked <= recovered <= acked + 1`.
//! * **Partitioner laws** (property tests) — every row hashes to exactly
//!   one shard, routing is a pure function of (key, shard count) and so
//!   survives coordinator restarts, and the union of per-shard splits is
//!   the original row multiset.
//!
//! Floating-point aggregates are deliberately absent from the randomized
//! workload: the coordinator itself routes `SUM(f64)`/`AVG` through the
//! gather path for exactness, but the recombined table packs shard
//! fragments in shard order, so a *re-run* float sum may associate in a
//! different order than single-node insertion order. Integer aggregates
//! and order-independent float MIN/MAX stay bit-identical.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mammoth_server::{RetryPolicy, Server, ServerConfig, SessionSpec};
use mammoth_shard::{shard_of, CoordError, Coordinator, CoordinatorConfig, PartitionMap};
use mammoth_sql::{QueryOutput, Session};
use mammoth_types::{ColumnDef, LogicalType, TableSchema, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const NSHARDS: usize = 3;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mammoth-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Start an in-memory shard fleet; `parallel` flips the shards onto the
/// dataflow engine.
fn start_shards(parallel: bool) -> (Vec<Server>, Vec<String>) {
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..NSHARDS {
        let mut spec = SessionSpec::in_memory();
        if parallel {
            spec.parallel = Some(2);
        }
        let srv = Server::start(ServerConfig {
            spec,
            ..ServerConfig::default()
        })
        .unwrap();
        addrs.push(srv.local_addr().to_string());
        servers.push(srv);
    }
    (servers, addrs)
}

fn coordinator(addrs: Vec<String>) -> Coordinator {
    let mut cfg = CoordinatorConfig::new(addrs);
    cfg.deadline = Duration::from_millis(1500);
    cfg.retry = RetryPolicy {
        attempts: 2,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(25),
        seed: 7,
    };
    Coordinator::new(cfg)
}

/// Canonical form: rows rendered to strings; sorted unless `ordered`.
fn canon(out: &QueryOutput, ordered: bool) -> String {
    match out {
        QueryOutput::Ok => "OK".into(),
        QueryOutput::Affected(n) => format!("AFFECTED {n}"),
        QueryOutput::Table { columns, rows } => {
            let mut lines: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
            if !ordered {
                lines.sort();
            }
            format!("{columns:?} | {}", lines.join(" ; "))
        }
    }
}

/// One statement, run on both sides and compared.
fn differ(
    coord: &Coordinator,
    single: &mut Session,
    sql: &str,
    ordered: bool,
) -> (bool, Option<String>) {
    let distributed = coord.execute(sql);
    let local = single.execute(sql);
    match (distributed, local) {
        (Ok(d), Ok(l)) => {
            let (d, l) = (canon(&d, ordered), canon(&l, ordered));
            assert_eq!(d, l, "distributed vs single-node diverged on: {sql}");
            (true, Some(d))
        }
        (Err(de), Ok(l)) => {
            panic!("only distributed failed on {sql}: {de} (single-node said {l:?})")
        }
        (Ok(d), Err(le)) => {
            panic!("only single-node failed on {sql}: {le} (distributed said {d:?})")
        }
        // Both reject (e.g. duplicate key-less shapes): acceptable, no
        // message comparison — the layers word errors differently.
        (Err(_), Err(_)) => (false, None),
    }
}

struct Workload {
    rng: StdRng,
    next_id: i64,
    live_ids: Vec<i64>,
}

impl Workload {
    fn new(seed: u64) -> Workload {
        Workload {
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            live_ids: Vec::new(),
        }
    }

    fn word(&mut self) -> String {
        let len = self.rng.random_range(1usize..6);
        (0..len)
            .map(|_| (b'a' + self.rng.random_range(0u8..26)) as char)
            .collect()
    }

    /// The next statement and whether its result order is significant.
    fn next_stmt(&mut self) -> (String, bool) {
        match self.rng.random_range(0u32..10) {
            // Multi-row INSERT into t (weight 3: data must grow).
            0..=2 => {
                let n = self.rng.random_range(1usize..6);
                let rows: Vec<String> = (0..n)
                    .map(|_| {
                        let id = self.next_id;
                        self.next_id += 1;
                        self.live_ids.push(id);
                        let v = self.rng.random_range(-20i64..20);
                        let s = self.word();
                        format!("({id}, {v}, '{s}')")
                    })
                    .collect();
                (format!("INSERT INTO t VALUES {}", rows.join(", ")), false)
            }
            3 => {
                let id = self.next_id;
                self.next_id += 1;
                let w = self.rng.random_range(0i64..50);
                (format!("INSERT INTO u VALUES ({id}, {w})"), false)
            }
            // Point DELETE on the partition key — routes to one shard.
            4 => {
                let id = if self.live_ids.is_empty() || self.rng.random_bool(0.3) {
                    self.rng.random_range(0i64..(self.next_id + 5).max(5))
                } else {
                    let i = self.rng.random_range(0..self.live_ids.len());
                    self.live_ids.swap_remove(i)
                };
                (format!("DELETE FROM t WHERE id = {id}"), false)
            }
            // Range DELETE — broadcasts.
            5 => {
                let c = self.rng.random_range(-20i64..20);
                (
                    format!("DELETE FROM t WHERE v < {c} AND v > {}", c - 3),
                    false,
                )
            }
            // Filtered scan with ORDER BY on the unique key: exact order.
            6 => {
                let c = self.rng.random_range(-20i64..20);
                let lim = self.rng.random_range(1usize..12);
                (
                    format!("SELECT id, v, s FROM t WHERE v >= {c} ORDER BY id LIMIT {lim}"),
                    true,
                )
            }
            // Lossless scalar aggregates — the packsum pushdown path.
            7 => {
                let c = self.rng.random_range(-20i64..20);
                (
                    format!("SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t WHERE v <= {c}"),
                    false,
                )
            }
            // Grouped aggregate — the gather path, multiset compare.
            8 => ("SELECT v, COUNT(*) FROM t GROUP BY v".into(), false),
            // Join — both tables gathered whole.
            _ => (
                "SELECT t.id, t.v, u.w FROM t JOIN u ON t.id = u.id".into(),
                false,
            ),
        }
    }
}

fn run_differential(seed: u64, parallel: bool) {
    let (servers, addrs) = start_shards(parallel);
    let coord = coordinator(addrs);
    let mut single = Session::new();

    differ(
        &coord,
        &mut single,
        "CREATE TABLE t (id BIGINT NOT NULL, v BIGINT, s VARCHAR)",
        false,
    );
    differ(
        &coord,
        &mut single,
        "CREATE TABLE u (id BIGINT NOT NULL, w BIGINT)",
        false,
    );

    let mut w = Workload::new(seed);
    let mut compared = 0usize;
    for _ in 0..120 {
        let (sql, ordered) = w.next_stmt();
        let (ok, _) = differ(&coord, &mut single, &sql, ordered);
        if ok {
            compared += 1;
        }
    }
    assert!(
        compared > 100,
        "workload degenerated: only {compared} comparisons"
    );

    // The final full-table states agree too.
    differ(
        &coord,
        &mut single,
        "SELECT id, v, s FROM t ORDER BY id",
        true,
    );
    differ(&coord, &mut single, "SELECT id, w FROM u ORDER BY id", true);

    for s in servers {
        s.shutdown().unwrap();
    }
}

#[test]
fn randomized_workload_matches_single_node_serial() {
    for seed in [11, 42] {
        run_differential(seed, false);
    }
}

#[test]
fn randomized_workload_matches_single_node_parallel() {
    run_differential(1009, true);
}

#[test]
fn explain_sharding_accounts_for_every_row() {
    let (servers, addrs) = start_shards(false);
    let coord = coordinator(addrs);
    coord
        .execute("CREATE TABLE t (id BIGINT NOT NULL, v BIGINT)")
        .unwrap();
    let rows: Vec<String> = (0..40).map(|i| format!("({i}, {})", i * 2)).collect();
    coord
        .execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
        .unwrap();
    match coord.execute("EXPLAIN SHARDING").unwrap() {
        QueryOutput::Table { columns, rows } => {
            assert_eq!(
                columns,
                vec![
                    "table",
                    "key_column",
                    "shard",
                    "addr",
                    "rows",
                    "health",
                    "replica"
                ]
            );
            for r in &rows {
                assert_eq!(r[5], Value::Str("healthy".into()), "no monitor, no faults");
                assert_eq!(r[6], Value::Str(String::new()), "no replicas configured");
            }
            assert_eq!(rows.len(), NSHARDS, "one report row per shard");
            let total: i64 = rows
                .iter()
                .map(|r| match &r[4] {
                    Value::I64(n) => *n,
                    other => panic!("count column held {other:?}"),
                })
                .sum();
            assert_eq!(total, 40, "per-shard counts must sum to the table size");
            // And the counts match what the partitioner predicts.
            for r in &rows {
                let (Value::I64(shard), Value::I64(count)) = (&r[2], &r[4]) else {
                    panic!("unexpected row shape {r:?}");
                };
                let predicted = (0..40i64)
                    .filter(|k| shard_of(&Value::I64(*k), NSHARDS) == *shard as usize)
                    .count() as i64;
                assert_eq!(*count, predicted, "shard {shard} row count");
            }
        }
        other => panic!("EXPLAIN SHARDING returned {other:?}"),
    }
    for s in servers {
        s.shutdown().unwrap();
    }
}

// --------------------------------------------------------------- failure

/// Kill one shard at a randomized point mid-workload: fan-out statements
/// must fail typed and bounded, and every shard's recovered WAL must hold
/// `acked <= recovered <= acked + 1` rows.
#[test]
fn shard_kill_returns_shard_unavailable_and_wals_recover() {
    for seed in [3u64, 77] {
        shard_kill_case(seed);
    }
}

fn shard_kill_case(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let dirs: Vec<std::path::PathBuf> = (0..NSHARDS)
        .map(|i| tmpdir(&format!("kill-{seed}-{i}")))
        .collect();
    let mut servers: Vec<Option<Server>> = Vec::new();
    let mut addrs = Vec::new();
    for dir in &dirs {
        let srv = Server::start(ServerConfig {
            spec: SessionSpec::durable(dir),
            ..ServerConfig::default()
        })
        .unwrap();
        addrs.push(srv.local_addr().to_string());
        servers.push(Some(srv));
    }
    let deadline = Duration::from_millis(800);
    let mut cfg = CoordinatorConfig::new(addrs);
    cfg.deadline = deadline;
    cfg.retry = RetryPolicy {
        attempts: 2,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(25),
        seed,
    };
    let coord = Coordinator::new(cfg);

    coord
        .execute("CREATE TABLE t (id BIGINT NOT NULL, v BIGINT)")
        .unwrap();

    // Acked rows per shard, tracked through the same pure partitioner the
    // coordinator uses — stability of that map is itself under test.
    let mut acked = [0u64; NSHARDS];
    let mut next_id = 0i64;
    let kill_at = rng.random_range(5usize..20);
    let victim = rng.random_range(0..NSHARDS);
    for step in 0..kill_at {
        let n = rng.random_range(1usize..4);
        let mut rows = Vec::new();
        for _ in 0..n {
            let id = next_id;
            next_id += 1;
            rows.push(format!("({id}, {})", id * 3));
        }
        let sql = format!("INSERT INTO t VALUES {}", rows.join(", "));
        match coord.execute(&sql).unwrap() {
            QueryOutput::Affected(k) => assert_eq!(k, n, "step {step}"),
            other => panic!("INSERT answered {other:?}"),
        }
        for id in (next_id - n as i64)..next_id {
            acked[shard_of(&Value::I64(id), NSHARDS)] += 1;
        }
    }

    // Kill the victim (shutdown closes its listener and drains — the
    // coordinator sees connection failures exactly like a dead process).
    servers[victim].take().unwrap().shutdown().unwrap();

    // Fan-out reads now fail typed, within the deadline budget, and
    // return no partial rows (an Err carries none by construction).
    for sql in ["SELECT COUNT(*), SUM(v) FROM t", "SELECT id, v FROM t"] {
        let started = Instant::now();
        match coord.execute(sql) {
            Err(CoordError::Unavailable(msg)) => {
                assert!(
                    msg.contains(&format!("shard {victim}")),
                    "error must name the dead shard: {msg}"
                );
            }
            other => panic!("expected SHARD_UNAVAILABLE for {sql}, got {other:?}"),
        }
        let elapsed = started.elapsed();
        assert!(
            elapsed < deadline * 2 + Duration::from_secs(1),
            "{sql} took {elapsed:?}, deadline {deadline:?} — the failure must be bounded"
        );
    }

    // Single-row inserts keep flowing: ones owned by a live shard land
    // and ack; ones owned by the victim fail typed. Either way at most
    // one unacked row can exist per shard.
    for _ in 0..6 {
        let id = next_id;
        next_id += 1;
        let owner = shard_of(&Value::I64(id), NSHARDS);
        let res = coord.execute(&format!("INSERT INTO t VALUES ({id}, 0)"));
        match res {
            Ok(QueryOutput::Affected(1)) => {
                assert_ne!(owner, victim, "the dead shard cannot ack");
                acked[owner] += 1;
            }
            Err(CoordError::Unavailable(_)) => {
                assert_eq!(owner, victim, "only the dead shard may be unavailable");
            }
            other => panic!("single-row INSERT answered {other:?}"),
        }
    }

    // Drain the survivors, then audit every shard's durable state.
    for s in servers.iter_mut() {
        if let Some(srv) = s.take() {
            srv.shutdown().unwrap();
        }
    }
    for (i, dir) in dirs.iter().enumerate() {
        let mut session = Session::open_durable(dir).unwrap();
        let recovered = match session.execute("SELECT COUNT(*) FROM t").unwrap() {
            QueryOutput::Table { rows, .. } => match rows[0][0] {
                Value::I64(n) => n as u64,
                ref other => panic!("COUNT(*) returned {other:?}"),
            },
            other => panic!("COUNT(*) returned {other:?}"),
        };
        assert!(
            acked[i] <= recovered && recovered <= acked[i] + 1,
            "shard {i}: acked {} recovered {recovered}",
            acked[i]
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}

// ------------------------------------------------------------ properties

mod partitioner_props {
    use super::*;
    use proptest::prelude::*;

    /// `(selector, int, string)` → a Value covering every hashable class.
    fn value_from(sel: u8, x: i64, s: &str) -> Value {
        match sel % 6 {
            0 => Value::Null,
            1 => Value::Bool(x % 2 == 0),
            2 => Value::I32(x as i32),
            3 => Value::I64(x),
            4 => Value::F64(x as f64 / 3.0),
            _ => Value::Str(s.to_string()),
        }
    }

    proptest! {
        #[test]
        fn prop_every_value_routes_to_exactly_one_shard(
            picks in proptest::collection::vec((0u8..=255, -5000i64..5000, "[a-z]{0,8}"), 0..64),
            n in 1usize..8,
        ) {
            for (sel, x, s) in &picks {
                let v = value_from(*sel, *x, s);
                let shard = shard_of(&v, n);
                prop_assert!(shard < n, "{v:?} routed to {shard} of {n}");
                // Pure function: re-hashing never moves the row.
                prop_assert_eq!(shard, shard_of(&v, n));
                prop_assert_eq!(shard, shard_of(&v.clone(), n));
            }
        }

        #[test]
        fn prop_routing_survives_coordinator_restart(
            keys in proptest::collection::vec(-5000i64..5000, 0..64),
            n in 1usize..8,
        ) {
            // A "restart" rebuilds the partition map from the same schema
            // list; placement must not move. The map carries no state
            // beyond (key column, shard count), so two independent builds
            // must agree on every row.
            let schema = TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", LogicalType::I64),
                    ColumnDef::new("v", LogicalType::I64),
                ],
            );
            let mut before = PartitionMap::default();
            before.add_table(&schema).unwrap();
            let mut after = PartitionMap::default();
            after.add_table(&schema).unwrap();
            let sb = before.spec("t").unwrap();
            let sa = after.spec("t").unwrap();
            prop_assert_eq!(sb.key_index, sa.key_index);
            prop_assert_eq!(&sb.key_column, &sa.key_column);
            for k in &keys {
                let v = Value::I64(*k);
                prop_assert_eq!(shard_of(&v, n), shard_of(&v, n));
            }
        }

        #[test]
        fn prop_union_of_shard_splits_is_original_multiset(
            rows in proptest::collection::vec((-5000i64..5000, -50i64..50), 0..128),
            n in 1usize..8,
        ) {
            // Split rows by their key like INSERT routing does…
            let mut per_shard: Vec<Vec<(i64, i64)>> = vec![Vec::new(); n];
            for (id, v) in &rows {
                per_shard[shard_of(&Value::I64(*id), n)].push((*id, *v));
            }
            // …then the union of the per-shard "scans" is the table.
            let mut union: Vec<(i64, i64)> = per_shard.into_iter().flatten().collect();
            let mut original = rows.clone();
            union.sort_unstable();
            original.sort_unstable();
            prop_assert_eq!(union, original);
        }
    }
}

// -------------------------------------------------- wire-level front end

/// The coordinator's front end speaks the ordinary protocol: an existing
/// `Client` runs DDL, DML, scatter-gather SELECTs, and receives typed
/// `SHARD_UNAVAILABLE` after a shard dies — all over real sockets.
#[test]
fn front_end_serves_ordinary_clients() {
    use mammoth_server::{Client, ClientError, ErrorCode, Response};
    use mammoth_shard::{FrontConfig, FrontEnd};

    let (mut servers, addrs) = start_shards(false);
    let coord = Arc::new(coordinator(addrs));
    let front = FrontEnd::start(FrontConfig::new("127.0.0.1:0"), coord).unwrap();
    let addr = front.local_addr().to_string();

    let mut c = Client::connect(&addr, "itest", "").unwrap();
    assert!(matches!(
        c.query("CREATE TABLE t (id BIGINT NOT NULL, v BIGINT)")
            .unwrap(),
        Response::Ok
    ));
    let rows: Vec<String> = (0..30).map(|i| format!("({i}, {})", 100 - i)).collect();
    assert!(matches!(
        c.query(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
            .unwrap(),
        Response::Affected(30)
    ));
    match c.query("SELECT COUNT(*), MIN(v), MAX(v) FROM t").unwrap() {
        Response::Table { rows, .. } => {
            assert_eq!(
                rows,
                vec![vec![Value::I64(30), Value::I64(71), Value::I64(100)]]
            );
        }
        other => panic!("aggregate over the wire answered {other:?}"),
    }
    match c
        .query("SELECT id FROM t WHERE v > 95 ORDER BY id")
        .unwrap()
    {
        Response::Table { rows, .. } => {
            let ids: Vec<&Value> = rows.iter().map(|r| &r[0]).collect();
            let expected: Vec<Value> = (0..5).map(Value::I64).collect();
            assert_eq!(ids, expected.iter().collect::<Vec<_>>());
        }
        other => panic!("scan over the wire answered {other:?}"),
    }

    // A dead shard surfaces as the typed wire code, not a hang or a
    // truncated table.
    servers.remove(1).shutdown().unwrap();
    match c.query("SELECT COUNT(*) FROM t") {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::ShardUnavailable);
        }
        other => panic!("expected SHARD_UNAVAILABLE frame, got {other:?}"),
    }

    c.quit().unwrap();
    front.shutdown().unwrap();
    for s in servers {
        s.shutdown().unwrap();
    }
}
