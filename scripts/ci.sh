#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, the full test suite, and the malcheck
# plan corpus. Run from the repository root; exits non-zero on the first
# failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> crash matrix: kill-point sweep under seeded workloads"
for seed in 1 2 3 4; do
    echo "    MAMMOTH_FAULT_SEED=$seed"
    MAMMOTH_FAULT_SEED=$seed cargo test -q --test durability
done

echo "==> corrupt-image proptests: truncation/bitflips must error, never panic"
cargo test -q -p mammoth-storage

echo "==> engines agree under the MAMMOTH_THREADS matrix"
for threads in 1 4; do
    echo "    MAMMOTH_THREADS=$threads"
    MAMMOTH_THREADS=$threads cargo test -q --test engines_agree
done

echo "==> trace matrix: profiled test runs must emit a validating trace"
trace_file=$(mktemp -u /tmp/mammoth_trace.XXXXXX.jsonl)
MAMMOTH_TRACE=$trace_file cargo test -q --test sql_end_to_end
MAMMOTH_TRACE=$trace_file MAMMOTH_THREADS=2 cargo test -q --test engines_agree
MAMMOTH_TRACE=$trace_file cargo test -q --test durability
cargo run -q -p mammoth-types --bin tracecheck -- "$trace_file"
rm -f "$trace_file"

echo "==> server smoke: ephemeral port, queries, forced shed, traced shutdown"
srv_trace=$(mktemp -u /tmp/mammoth_srv_trace.XXXXXX.jsonl)
srv_port_file=$(mktemp -u /tmp/mammoth_srv_port.XXXXXX)
# Tiny capacity (1 worker, backlog 1) so the shed path is forcible below.
MAMMOTH_TRACE=$srv_trace ./target/release/mammoth-server \
    --addr 127.0.0.1:0 --workers 1 --backlog 1 --port-file "$srv_port_file" &
srv_pid=$!
# A failed stage must not leave the daemon running (it would hold this
# script's stdout pipe open forever for whoever is capturing it).
trap 'kill $srv_pid 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do [ -s "$srv_port_file" ] && break; sleep 0.05; done
srv_addr=$(cat "$srv_port_file")
pipe_out=$(./target/release/mammoth-cli --addr "$srv_addr" \
    -c "CREATE TABLE smoke (a INT NOT NULL)" \
    -c "INSERT INTO smoke VALUES (1), (2), (3)" \
    -c "SELECT COUNT(*) FROM smoke")
echo "$pipe_out" | grep -q "^3" \
    || { echo "server smoke: query pipeline failed: $pipe_out"; exit 1; }
# Force a shed: occupy the worker, fill the 1-slot backlog, then connect.
sleep 30 | ./target/release/mammoth-cli --addr "$srv_addr" & holder_pid=$!
sleep 0.3   # holder adopted by the only worker
sleep 30 | ./target/release/mammoth-cli --addr "$srv_addr" & filler_pid=$!
sleep 0.3   # filler parked in the backlog
shed_out=$(./target/release/mammoth-cli --addr "$srv_addr" -c "SELECT 1" 2>&1) && {
    echo "server smoke: overload connect unexpectedly succeeded"; exit 1; }
echo "$shed_out" | grep -q "SERVER_BUSY" \
    || { echo "server smoke: expected SERVER_BUSY, got: $shed_out"; exit 1; }
kill $holder_pid $filler_pid 2>/dev/null || true
wait $holder_pid $filler_pid 2>/dev/null || true
# Graceful shutdown via the wire; the daemon must exit 0.
./target/release/mammoth-cli --addr "$srv_addr" -c "SHUTDOWN" >/dev/null
wait $srv_pid || { echo "server smoke: daemon exited non-zero"; exit 1; }
trap - EXIT
cargo run -q -p mammoth-types --bin tracecheck -- "$srv_trace"
rm -f "$srv_trace" "$srv_port_file"

echo "==> planner: differential tier, one-compile trace, EXPLAIN estimates golden"
cargo test -q --test planner
cargo test -q --test planner_trace
cargo test -q --test explain_golden

echo "==> planner smoke: v4 prepared frames + v3 compat, then PREPARE/EXECUTE over the wire"
# The typed-frame paths (Prepare/ExecutePrepared/Deallocate, the v3
# refusal, the read-only replica bounce, decode fuzzing) are the
# server's own tests; re-run them here as the named gate.
cargo test -q -p mammoth-server --lib prepared
plnr_pf=$(mktemp -u /tmp/mammoth_plnr_port.XXXXXX)
./target/release/mammoth-server --addr 127.0.0.1:0 --port-file "$plnr_pf" &
plnr_pid=$!
trap 'kill $plnr_pid 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do [ -s "$plnr_pf" ] && break; sleep 0.05; done
plnr_addr=$(cat "$plnr_pf")
plnr_out=$(./target/release/mammoth-cli --addr "$plnr_addr" \
    -c "CREATE TABLE smoke (a INT NOT NULL, b INT)" \
    -c "INSERT INTO smoke VALUES (1, 10), (2, 20), (3, 30)" \
    -c "PREPARE pt AS SELECT b FROM smoke WHERE a = ?" \
    -c "EXECUTE pt (2)" \
    -c "EXECUTE pt (3)" \
    -c "DEALLOCATE pt")
echo "$plnr_out" | grep -q "^20" \
    || { echo "planner smoke: EXECUTE pt (2) wrong: $plnr_out"; exit 1; }
echo "$plnr_out" | grep -q "^30" \
    || { echo "planner smoke: EXECUTE pt (3) wrong: $plnr_out"; exit 1; }
# A deallocated name must be gone.
dealloc_out=$(./target/release/mammoth-cli --addr "$plnr_addr" \
    -c "EXECUTE pt (1)" 2>&1) && {
    echo "planner smoke: EXECUTE after DEALLOCATE unexpectedly succeeded"; exit 1; }
echo "$dealloc_out" | grep -qi "prepared" \
    || { echo "planner smoke: expected unknown-prepared error, got: $dealloc_out"; exit 1; }
./target/release/mammoth-cli --addr "$plnr_addr" -c "SHUTDOWN" >/dev/null
wait $plnr_pid || { echo "planner smoke: daemon exited non-zero"; exit 1; }
trap - EXIT
rm -f "$plnr_pf"

echo "==> replication smoke: primary + replica, convergence, READ_ONLY, traced shutdown"
repl_ptrace=$(mktemp -u /tmp/mammoth_repl_ptrace.XXXXXX.jsonl)
repl_rtrace=$(mktemp -u /tmp/mammoth_repl_rtrace.XXXXXX.jsonl)
repl_pport=$(mktemp -u /tmp/mammoth_repl_pport.XXXXXX)
repl_rport=$(mktemp -u /tmp/mammoth_repl_rport.XXXXXX)
repl_pdir=$(mktemp -d /tmp/mammoth_repl_pdir.XXXXXX)
repl_rdir=$(mktemp -d /tmp/mammoth_repl_rdir.XXXXXX)
MAMMOTH_TRACE=$repl_ptrace ./target/release/mammoth-server \
    --addr 127.0.0.1:0 --data "$repl_pdir" --port-file "$repl_pport" &
repl_ppid=$!
trap 'kill $repl_ppid 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do [ -s "$repl_pport" ] && break; sleep 0.05; done
repl_paddr=$(cat "$repl_pport")
MAMMOTH_TRACE=$repl_rtrace ./target/release/mammoth-replica \
    --primary "$repl_paddr" --data "$repl_rdir" --poll-ms 5 \
    --port-file "$repl_rport" &
repl_rpid=$!
trap 'kill $repl_ppid $repl_rpid 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do [ -s "$repl_rport" ] && break; sleep 0.05; done
repl_raddr=$(cat "$repl_rport")
./target/release/mammoth-cli --addr "$repl_paddr" \
    -c "CREATE TABLE smoke (a INT NOT NULL)" \
    -c "INSERT INTO smoke VALUES (1), (2), (3)" \
    -c "CHECKPOINT" \
    -c "INSERT INTO smoke VALUES (4), (5)" >/dev/null
# The replica must converge on the primary's row count.
converged=""
for _ in $(seq 1 100); do
    repl_count=$(./target/release/mammoth-cli --addr "$repl_raddr" \
        -c "SELECT COUNT(*) FROM smoke" 2>/dev/null || true)
    if echo "$repl_count" | grep -q "^5"; then converged=yes; break; fi
    sleep 0.05
done
[ -n "$converged" ] \
    || { echo "replication smoke: replica never converged: $repl_count"; exit 1; }
# Writes at the replica must be refused, not applied.
ro_out=$(./target/release/mammoth-cli --addr "$repl_raddr" \
    -c "INSERT INTO smoke VALUES (99)" 2>&1) && {
    echo "replication smoke: replica accepted a write"; exit 1; }
echo "$ro_out" | grep -q "READ_ONLY" \
    || { echo "replication smoke: expected READ_ONLY, got: $ro_out"; exit 1; }
# Lag must be observable through plain SQL at the replica.
./target/release/mammoth-cli --addr "$repl_raddr" -c "EXPLAIN REPLICATION" \
    | grep -q "replica" \
    || { echo "replication smoke: EXPLAIN REPLICATION missing role"; exit 1; }
# Graceful shutdown both ways; both daemons must exit 0 with clean traces.
./target/release/mammoth-cli --addr "$repl_raddr" -c "SHUTDOWN" >/dev/null
wait $repl_rpid || { echo "replication smoke: replica exited non-zero"; exit 1; }
./target/release/mammoth-cli --addr "$repl_paddr" -c "SHUTDOWN" >/dev/null
wait $repl_ppid || { echo "replication smoke: primary exited non-zero"; exit 1; }
trap - EXIT
cargo run -q -p mammoth-types --bin tracecheck -- "$repl_ptrace"
cargo run -q -p mammoth-types --bin tracecheck -- "$repl_rtrace"
rm -rf "$repl_ptrace" "$repl_rtrace" "$repl_pport" "$repl_rport" \
    "$repl_pdir" "$repl_rdir"

echo "==> shard smoke: 3 shards + coordinator, routed DML, cross-shard aggregate, shard kill"
shd_trace=$(mktemp -u /tmp/mammoth_shd_trace.XXXXXX.jsonl)
shd_pids=()
shd_addrs=()
for i in 0 1 2; do
    shd_pf=$(mktemp -u /tmp/mammoth_shd_port.XXXXXX)
    ./target/release/mammoth-server --addr 127.0.0.1:0 --port-file "$shd_pf" &
    shd_pids+=($!)
    # shellcheck disable=SC2064
    trap "kill ${shd_pids[*]} 2>/dev/null || true" EXIT
    for _ in $(seq 1 100); do [ -s "$shd_pf" ] && break; sleep 0.05; done
    shd_addrs+=("$(cat "$shd_pf")")
    rm -f "$shd_pf"
done
coord_pf=$(mktemp -u /tmp/mammoth_coord_port.XXXXXX)
MAMMOTH_TRACE=$shd_trace ./target/release/mammoth-shardd \
    --addr 127.0.0.1:0 --port-file "$coord_pf" \
    --shard "${shd_addrs[0]}" --shard "${shd_addrs[1]}" --shard "${shd_addrs[2]}" &
coord_pid=$!
# shellcheck disable=SC2064
trap "kill $coord_pid ${shd_pids[*]} 2>/dev/null || true" EXIT
for _ in $(seq 1 100); do [ -s "$coord_pf" ] && break; sleep 0.05; done
coord_addr=$(cat "$coord_pf")
# Routed DML + a packsum-pushdown aggregate + a gather-path GROUP BY,
# all through the ordinary client against the coordinator.
shd_out=$(./target/release/mammoth-cli --addr "$coord_addr" \
    -c "CREATE TABLE smoke (id BIGINT NOT NULL, v BIGINT)" \
    -c "INSERT INTO smoke VALUES (1, 10), (2, 20), (3, 30), (4, 40), (5, 50), (6, 60)" \
    -c "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM smoke" \
    -c "SELECT v, COUNT(*) FROM smoke WHERE v >= 40 GROUP BY v")
echo "$shd_out" | grep -q "210" \
    || { echo "shard smoke: cross-shard aggregate wrong: $shd_out"; exit 1; }
# The partition map must account for the table on every shard.
placement=$(./target/release/mammoth-cli --addr "$coord_addr" -c "EXPLAIN SHARDING")
[ "$(echo "$placement" | grep -c "smoke")" -eq 3 ] \
    || { echo "shard smoke: EXPLAIN SHARDING missing shards: $placement"; exit 1; }
# Kill one shard hard; a fan-out read must fail typed, never truncate.
kill -9 "${shd_pids[1]}"
wait "${shd_pids[1]}" 2>/dev/null || true
dead_out=$(./target/release/mammoth-cli --addr "$coord_addr" \
    -c "SELECT COUNT(*) FROM smoke" 2>&1) && {
    echo "shard smoke: fan-out over a dead shard unexpectedly succeeded"; exit 1; }
echo "$dead_out" | grep -q "SHARD_UNAVAILABLE" \
    || { echo "shard smoke: expected SHARD_UNAVAILABLE, got: $dead_out"; exit 1; }
# Graceful shutdown everywhere; the coordinator must exit 0 with a clean trace.
./target/release/mammoth-cli --addr "$coord_addr" -c "SHUTDOWN" >/dev/null
wait $coord_pid || { echo "shard smoke: coordinator exited non-zero"; exit 1; }
for i in 0 2; do
    ./target/release/mammoth-cli --addr "${shd_addrs[$i]}" -c "SHUTDOWN" >/dev/null
    wait "${shd_pids[$i]}" || { echo "shard smoke: shard $i exited non-zero"; exit 1; }
done
trap - EXIT
cargo run -q -p mammoth-types --bin tracecheck -- "$shd_trace"
rm -f "$shd_trace" "$coord_pf"

echo "==> chaos matrix: seeded network-fault schedules over the cluster tier"
for seed in 1 2 3 4; do
    echo "    MAMMOTH_NET_FAULT_SEED=$seed"
    MAMMOTH_NET_FAULT_SEED=$seed cargo test -q --test chaos
done

echo "==> ha smoke: 3 shards + replicas, primary killed mid-workload, reads continue, promotion restores writes"
ha_trace=$(mktemp -u /tmp/mammoth_ha_trace.XXXXXX.jsonl)
ha_pids=()
ha_rpids=()
ha_addrs=()
ha_raddrs=()
ha_dirs=()
for i in 0 1 2; do
    ha_pdir=$(mktemp -d /tmp/mammoth_ha_pdir.XXXXXX)
    ha_rdir=$(mktemp -d /tmp/mammoth_ha_rdir.XXXXXX)
    ha_dirs+=("$ha_pdir" "$ha_rdir")
    ha_pf=$(mktemp -u /tmp/mammoth_ha_port.XXXXXX)
    ./target/release/mammoth-server --addr 127.0.0.1:0 --data "$ha_pdir" \
        --port-file "$ha_pf" &
    ha_pids+=($!)
    # shellcheck disable=SC2064
    trap "kill ${ha_pids[*]} ${ha_rpids[*]:-} 2>/dev/null || true" EXIT
    for _ in $(seq 1 100); do [ -s "$ha_pf" ] && break; sleep 0.05; done
    ha_addrs+=("$(cat "$ha_pf")")
    rm -f "$ha_pf"
    ha_rpf=$(mktemp -u /tmp/mammoth_ha_rport.XXXXXX)
    ./target/release/mammoth-replica --primary "${ha_addrs[$i]}" \
        --data "$ha_rdir" --primary-data "$ha_pdir" --poll-ms 5 \
        --port-file "$ha_rpf" &
    ha_rpids+=($!)
    # shellcheck disable=SC2064
    trap "kill ${ha_pids[*]} ${ha_rpids[*]} 2>/dev/null || true" EXIT
    for _ in $(seq 1 100); do [ -s "$ha_rpf" ] && break; sleep 0.05; done
    ha_raddrs+=("$(cat "$ha_rpf")")
    rm -f "$ha_rpf"
done
ha_cpf=$(mktemp -u /tmp/mammoth_ha_cport.XXXXXX)
MAMMOTH_TRACE=$ha_trace ./target/release/mammoth-shardd \
    --addr 127.0.0.1:0 --port-file "$ha_cpf" \
    --shard "${ha_addrs[0]}" --shard "${ha_addrs[1]}" --shard "${ha_addrs[2]}" \
    --replica "0=${ha_raddrs[0]}" --replica "1=${ha_raddrs[1]}" \
    --replica "2=${ha_raddrs[2]}" \
    --probe-ms 50 --suspect-after 2 --promote-timeout-ms 10000 &
ha_cpid=$!
# shellcheck disable=SC2064
trap "kill $ha_cpid ${ha_pids[*]} ${ha_rpids[*]} 2>/dev/null || true" EXIT
for _ in $(seq 1 100); do [ -s "$ha_cpf" ] && break; sleep 0.05; done
ha_caddr=$(cat "$ha_cpf")
./target/release/mammoth-cli --addr "$ha_caddr" \
    -c "CREATE TABLE smoke (id BIGINT NOT NULL, v BIGINT)" \
    -c "INSERT INTO smoke VALUES (1, 10), (2, 20), (3, 30), (4, 40), (5, 50), (6, 60)" \
    >/dev/null
# Let every replica mirror its primary's acked rows before the crash,
# so the degraded read below has an exact answer to hit.
for i in 0 1 2; do
    want=$(./target/release/mammoth-cli --addr "${ha_addrs[$i]}" \
        -c "SELECT COUNT(*) FROM smoke" | tail -1)
    caught=""
    for _ in $(seq 1 200); do
        rc=$(./target/release/mammoth-cli --addr "${ha_raddrs[$i]}" \
            -c "SELECT COUNT(*) FROM smoke" 2>/dev/null | tail -1 || true)
        if [ "$rc" = "$want" ]; then caught=yes; break; fi
        sleep 0.05
    done
    [ -n "$caught" ] \
        || { echo "ha smoke: replica $i never caught up ($rc != $want)"; exit 1; }
done
# Kill shard 1's primary hard, mid-workload.
kill -9 "${ha_pids[1]}"
wait "${ha_pids[1]}" 2>/dev/null || true
# Read continuity: fan-out SELECTs must come back (degraded to the
# replica, then the promoted primary) and must not lose or invent rows.
ha_read=""
for _ in $(seq 1 200); do
    out=$(./target/release/mammoth-cli --addr "$ha_caddr" \
        -c "SELECT COUNT(*) FROM smoke" 2>/dev/null || true)
    if echo "$out" | grep -q "^6"; then ha_read=yes; break; fi
    sleep 0.05
done
[ -n "$ha_read" ] || { echo "ha smoke: reads never flowed during the outage"; exit 1; }
# Promotion: the cluster must report all-healthy with the replica
# swapped in as shard 1's primary, and writes must flow again.
ha_healthy=""
for _ in $(seq 1 400); do
    placement=$(./target/release/mammoth-cli --addr "$ha_caddr" \
        -c "EXPLAIN SHARDING" 2>/dev/null || true)
    if [ "$(echo "$placement" | grep -c healthy)" -eq 3 ]; then ha_healthy=yes; break; fi
    sleep 0.05
done
[ -n "$ha_healthy" ] || { echo "ha smoke: cluster never converged healthy: $placement"; exit 1; }
echo "$placement" | grep -q "${ha_raddrs[1]}" \
    || { echo "ha smoke: promoted replica not serving as primary: $placement"; exit 1; }
post_out=$(./target/release/mammoth-cli --addr "$ha_caddr" \
    -c "INSERT INTO smoke VALUES (101, 1), (102, 2), (103, 3), (104, 4), (105, 5), (106, 6)" \
    -c "SELECT COUNT(*) FROM smoke")
echo "$post_out" | grep -q "^6" \
    || { echo "ha smoke: post-promotion write failed: $post_out"; exit 1; }
post_count=$(echo "$post_out" | tail -1)
[ "$post_count" -ge 12 ] 2>/dev/null \
    || { echo "ha smoke: post-promotion count wrong: $post_out"; exit 1; }
# Graceful shutdown everywhere; the coordinator's trace must carry the
# failover events and validate.
./target/release/mammoth-cli --addr "$ha_caddr" -c "SHUTDOWN" >/dev/null
wait $ha_cpid || { echo "ha smoke: coordinator exited non-zero"; exit 1; }
for i in 0 1 2; do
    ./target/release/mammoth-cli --addr "${ha_raddrs[$i]}" -c "SHUTDOWN" >/dev/null
    wait "${ha_rpids[$i]}" || { echo "ha smoke: replica $i exited non-zero"; exit 1; }
done
for i in 0 2; do
    ./target/release/mammoth-cli --addr "${ha_addrs[$i]}" -c "SHUTDOWN" >/dev/null
    wait "${ha_pids[$i]}" || { echo "ha smoke: shard $i exited non-zero"; exit 1; }
done
trap - EXIT
for ev in ha.suspect ha.degraded ha.promote ha.recovered; do
    grep -q "\"$ev\"" "$ha_trace" \
        || { echo "ha smoke: trace missing $ev event"; exit 1; }
done
cargo run -q -p mammoth-types --bin tracecheck -- "$ha_trace"
rm -rf "$ha_trace" "$ha_cpf" "${ha_dirs[@]}"

echo "==> malcheck: well-formed plans must verify (profiler must not interfere)"
good=$(ls examples/plans/*.mal | grep -v '/bad_')
# shellcheck disable=SC2086
MAMMOTH_TRACE=/dev/null cargo run -q -p mammoth-mal --bin malcheck -- $good

echo "==> malcheck: malformed plans must be rejected"
cargo run -q -p mammoth-mal --bin malcheck -- --expect-error examples/plans/bad_*.mal

echo "==> props: inferred properties match the golden snapshot (BLESS=1 re-blesses)"
props_golden=tests/golden/malcheck_props.golden
# shellcheck disable=SC2086
props_out=$(cargo run -q -p mammoth-mal --bin malcheck -- --props --no-pipeline $good \
    | grep -E '^==|^   props')
if [ "${BLESS:-0}" = "1" ]; then
    printf '%s\n' "$props_out" > "$props_golden"
    echo "    blessed $props_golden"
else
    diff -u "$props_golden" <(printf '%s\n' "$props_out") \
        || { echo "props: snapshot drifted (re-bless with BLESS=1 scripts/ci.sh)"; exit 1; }
fi

echo "==> props: runtime checker finds zero violations across engines"
MAMMOTH_CHECK_PROPS=1 cargo test -q --test props_soundness

echo "==> ci: all gates passed"
