#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, the full test suite, and the malcheck
# plan corpus. Run from the repository root; exits non-zero on the first
# failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> engines agree under the MAMMOTH_THREADS matrix"
for threads in 1 4; do
    echo "    MAMMOTH_THREADS=$threads"
    MAMMOTH_THREADS=$threads cargo test -q --test engines_agree
done

echo "==> malcheck: well-formed plans must verify"
good=$(ls examples/plans/*.mal | grep -v '/bad_')
# shellcheck disable=SC2086
cargo run -q -p mammoth-mal --bin malcheck -- $good

echo "==> malcheck: malformed plans must be rejected"
cargo run -q -p mammoth-mal --bin malcheck -- --expect-error examples/plans/bad_*.mal

echo "==> ci: all gates passed"
