#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, the full test suite, and the malcheck
# plan corpus. Run from the repository root; exits non-zero on the first
# failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> crash matrix: kill-point sweep under seeded workloads"
for seed in 1 2 3 4; do
    echo "    MAMMOTH_FAULT_SEED=$seed"
    MAMMOTH_FAULT_SEED=$seed cargo test -q --test durability
done

echo "==> corrupt-image proptests: truncation/bitflips must error, never panic"
cargo test -q -p mammoth-storage

echo "==> engines agree under the MAMMOTH_THREADS matrix"
for threads in 1 4; do
    echo "    MAMMOTH_THREADS=$threads"
    MAMMOTH_THREADS=$threads cargo test -q --test engines_agree
done

echo "==> trace matrix: profiled test runs must emit a validating trace"
trace_file=$(mktemp -u /tmp/mammoth_trace.XXXXXX.jsonl)
MAMMOTH_TRACE=$trace_file cargo test -q --test sql_end_to_end
MAMMOTH_TRACE=$trace_file MAMMOTH_THREADS=2 cargo test -q --test engines_agree
MAMMOTH_TRACE=$trace_file cargo test -q --test durability
cargo run -q -p mammoth-types --bin tracecheck -- "$trace_file"
rm -f "$trace_file"

echo "==> server smoke: ephemeral port, queries, forced shed, traced shutdown"
srv_trace=$(mktemp -u /tmp/mammoth_srv_trace.XXXXXX.jsonl)
srv_port_file=$(mktemp -u /tmp/mammoth_srv_port.XXXXXX)
# Tiny capacity (1 worker, backlog 1) so the shed path is forcible below.
MAMMOTH_TRACE=$srv_trace ./target/release/mammoth-server \
    --addr 127.0.0.1:0 --workers 1 --backlog 1 --port-file "$srv_port_file" &
srv_pid=$!
# A failed stage must not leave the daemon running (it would hold this
# script's stdout pipe open forever for whoever is capturing it).
trap 'kill $srv_pid 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do [ -s "$srv_port_file" ] && break; sleep 0.05; done
srv_addr=$(cat "$srv_port_file")
pipe_out=$(./target/release/mammoth-cli --addr "$srv_addr" \
    -c "CREATE TABLE smoke (a INT NOT NULL)" \
    -c "INSERT INTO smoke VALUES (1), (2), (3)" \
    -c "SELECT COUNT(*) FROM smoke")
echo "$pipe_out" | grep -q "^3" \
    || { echo "server smoke: query pipeline failed: $pipe_out"; exit 1; }
# Force a shed: occupy the worker, fill the 1-slot backlog, then connect.
sleep 30 | ./target/release/mammoth-cli --addr "$srv_addr" & holder_pid=$!
sleep 0.3   # holder adopted by the only worker
sleep 30 | ./target/release/mammoth-cli --addr "$srv_addr" & filler_pid=$!
sleep 0.3   # filler parked in the backlog
shed_out=$(./target/release/mammoth-cli --addr "$srv_addr" -c "SELECT 1" 2>&1) && {
    echo "server smoke: overload connect unexpectedly succeeded"; exit 1; }
echo "$shed_out" | grep -q "SERVER_BUSY" \
    || { echo "server smoke: expected SERVER_BUSY, got: $shed_out"; exit 1; }
kill $holder_pid $filler_pid 2>/dev/null || true
wait $holder_pid $filler_pid 2>/dev/null || true
# Graceful shutdown via the wire; the daemon must exit 0.
./target/release/mammoth-cli --addr "$srv_addr" -c "SHUTDOWN" >/dev/null
wait $srv_pid || { echo "server smoke: daemon exited non-zero"; exit 1; }
trap - EXIT
cargo run -q -p mammoth-types --bin tracecheck -- "$srv_trace"
rm -f "$srv_trace" "$srv_port_file"

echo "==> replication smoke: primary + replica, convergence, READ_ONLY, traced shutdown"
repl_ptrace=$(mktemp -u /tmp/mammoth_repl_ptrace.XXXXXX.jsonl)
repl_rtrace=$(mktemp -u /tmp/mammoth_repl_rtrace.XXXXXX.jsonl)
repl_pport=$(mktemp -u /tmp/mammoth_repl_pport.XXXXXX)
repl_rport=$(mktemp -u /tmp/mammoth_repl_rport.XXXXXX)
repl_pdir=$(mktemp -d /tmp/mammoth_repl_pdir.XXXXXX)
repl_rdir=$(mktemp -d /tmp/mammoth_repl_rdir.XXXXXX)
MAMMOTH_TRACE=$repl_ptrace ./target/release/mammoth-server \
    --addr 127.0.0.1:0 --data "$repl_pdir" --port-file "$repl_pport" &
repl_ppid=$!
trap 'kill $repl_ppid 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do [ -s "$repl_pport" ] && break; sleep 0.05; done
repl_paddr=$(cat "$repl_pport")
MAMMOTH_TRACE=$repl_rtrace ./target/release/mammoth-replica \
    --primary "$repl_paddr" --data "$repl_rdir" --poll-ms 5 \
    --port-file "$repl_rport" &
repl_rpid=$!
trap 'kill $repl_ppid $repl_rpid 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do [ -s "$repl_rport" ] && break; sleep 0.05; done
repl_raddr=$(cat "$repl_rport")
./target/release/mammoth-cli --addr "$repl_paddr" \
    -c "CREATE TABLE smoke (a INT NOT NULL)" \
    -c "INSERT INTO smoke VALUES (1), (2), (3)" \
    -c "CHECKPOINT" \
    -c "INSERT INTO smoke VALUES (4), (5)" >/dev/null
# The replica must converge on the primary's row count.
converged=""
for _ in $(seq 1 100); do
    repl_count=$(./target/release/mammoth-cli --addr "$repl_raddr" \
        -c "SELECT COUNT(*) FROM smoke" 2>/dev/null || true)
    if echo "$repl_count" | grep -q "^5"; then converged=yes; break; fi
    sleep 0.05
done
[ -n "$converged" ] \
    || { echo "replication smoke: replica never converged: $repl_count"; exit 1; }
# Writes at the replica must be refused, not applied.
ro_out=$(./target/release/mammoth-cli --addr "$repl_raddr" \
    -c "INSERT INTO smoke VALUES (99)" 2>&1) && {
    echo "replication smoke: replica accepted a write"; exit 1; }
echo "$ro_out" | grep -q "READ_ONLY" \
    || { echo "replication smoke: expected READ_ONLY, got: $ro_out"; exit 1; }
# Lag must be observable through plain SQL at the replica.
./target/release/mammoth-cli --addr "$repl_raddr" -c "EXPLAIN REPLICATION" \
    | grep -q "replica" \
    || { echo "replication smoke: EXPLAIN REPLICATION missing role"; exit 1; }
# Graceful shutdown both ways; both daemons must exit 0 with clean traces.
./target/release/mammoth-cli --addr "$repl_raddr" -c "SHUTDOWN" >/dev/null
wait $repl_rpid || { echo "replication smoke: replica exited non-zero"; exit 1; }
./target/release/mammoth-cli --addr "$repl_paddr" -c "SHUTDOWN" >/dev/null
wait $repl_ppid || { echo "replication smoke: primary exited non-zero"; exit 1; }
trap - EXIT
cargo run -q -p mammoth-types --bin tracecheck -- "$repl_ptrace"
cargo run -q -p mammoth-types --bin tracecheck -- "$repl_rtrace"
rm -rf "$repl_ptrace" "$repl_rtrace" "$repl_pport" "$repl_rport" \
    "$repl_pdir" "$repl_rdir"

echo "==> shard smoke: 3 shards + coordinator, routed DML, cross-shard aggregate, shard kill"
shd_trace=$(mktemp -u /tmp/mammoth_shd_trace.XXXXXX.jsonl)
shd_pids=()
shd_addrs=()
for i in 0 1 2; do
    shd_pf=$(mktemp -u /tmp/mammoth_shd_port.XXXXXX)
    ./target/release/mammoth-server --addr 127.0.0.1:0 --port-file "$shd_pf" &
    shd_pids+=($!)
    # shellcheck disable=SC2064
    trap "kill ${shd_pids[*]} 2>/dev/null || true" EXIT
    for _ in $(seq 1 100); do [ -s "$shd_pf" ] && break; sleep 0.05; done
    shd_addrs+=("$(cat "$shd_pf")")
    rm -f "$shd_pf"
done
coord_pf=$(mktemp -u /tmp/mammoth_coord_port.XXXXXX)
MAMMOTH_TRACE=$shd_trace ./target/release/mammoth-shardd \
    --addr 127.0.0.1:0 --port-file "$coord_pf" \
    --shard "${shd_addrs[0]}" --shard "${shd_addrs[1]}" --shard "${shd_addrs[2]}" &
coord_pid=$!
# shellcheck disable=SC2064
trap "kill $coord_pid ${shd_pids[*]} 2>/dev/null || true" EXIT
for _ in $(seq 1 100); do [ -s "$coord_pf" ] && break; sleep 0.05; done
coord_addr=$(cat "$coord_pf")
# Routed DML + a packsum-pushdown aggregate + a gather-path GROUP BY,
# all through the ordinary client against the coordinator.
shd_out=$(./target/release/mammoth-cli --addr "$coord_addr" \
    -c "CREATE TABLE smoke (id BIGINT NOT NULL, v BIGINT)" \
    -c "INSERT INTO smoke VALUES (1, 10), (2, 20), (3, 30), (4, 40), (5, 50), (6, 60)" \
    -c "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM smoke" \
    -c "SELECT v, COUNT(*) FROM smoke WHERE v >= 40 GROUP BY v")
echo "$shd_out" | grep -q "210" \
    || { echo "shard smoke: cross-shard aggregate wrong: $shd_out"; exit 1; }
# The partition map must account for the table on every shard.
placement=$(./target/release/mammoth-cli --addr "$coord_addr" -c "EXPLAIN SHARDING")
[ "$(echo "$placement" | grep -c "smoke")" -eq 3 ] \
    || { echo "shard smoke: EXPLAIN SHARDING missing shards: $placement"; exit 1; }
# Kill one shard hard; a fan-out read must fail typed, never truncate.
kill -9 "${shd_pids[1]}"
wait "${shd_pids[1]}" 2>/dev/null || true
dead_out=$(./target/release/mammoth-cli --addr "$coord_addr" \
    -c "SELECT COUNT(*) FROM smoke" 2>&1) && {
    echo "shard smoke: fan-out over a dead shard unexpectedly succeeded"; exit 1; }
echo "$dead_out" | grep -q "SHARD_UNAVAILABLE" \
    || { echo "shard smoke: expected SHARD_UNAVAILABLE, got: $dead_out"; exit 1; }
# Graceful shutdown everywhere; the coordinator must exit 0 with a clean trace.
./target/release/mammoth-cli --addr "$coord_addr" -c "SHUTDOWN" >/dev/null
wait $coord_pid || { echo "shard smoke: coordinator exited non-zero"; exit 1; }
for i in 0 2; do
    ./target/release/mammoth-cli --addr "${shd_addrs[$i]}" -c "SHUTDOWN" >/dev/null
    wait "${shd_pids[$i]}" || { echo "shard smoke: shard $i exited non-zero"; exit 1; }
done
trap - EXIT
cargo run -q -p mammoth-types --bin tracecheck -- "$shd_trace"
rm -f "$shd_trace" "$coord_pf"

echo "==> malcheck: well-formed plans must verify (profiler must not interfere)"
good=$(ls examples/plans/*.mal | grep -v '/bad_')
# shellcheck disable=SC2086
MAMMOTH_TRACE=/dev/null cargo run -q -p mammoth-mal --bin malcheck -- $good

echo "==> malcheck: malformed plans must be rejected"
cargo run -q -p mammoth-mal --bin malcheck -- --expect-error examples/plans/bad_*.mal

echo "==> props: inferred properties match the golden snapshot (BLESS=1 re-blesses)"
props_golden=tests/golden/malcheck_props.golden
# shellcheck disable=SC2086
props_out=$(cargo run -q -p mammoth-mal --bin malcheck -- --props --no-pipeline $good \
    | grep -E '^==|^   props')
if [ "${BLESS:-0}" = "1" ]; then
    printf '%s\n' "$props_out" > "$props_golden"
    echo "    blessed $props_golden"
else
    diff -u "$props_golden" <(printf '%s\n' "$props_out") \
        || { echo "props: snapshot drifted (re-bless with BLESS=1 scripts/ci.sh)"; exit 1; }
fi

echo "==> props: runtime checker finds zero violations across engines"
MAMMOTH_CHECK_PROPS=1 cargo test -q --test props_soundness

echo "==> ci: all gates passed"
