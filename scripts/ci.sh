#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, the full test suite, and the malcheck
# plan corpus. Run from the repository root; exits non-zero on the first
# failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> crash matrix: kill-point sweep under seeded workloads"
for seed in 1 2 3 4; do
    echo "    MAMMOTH_FAULT_SEED=$seed"
    MAMMOTH_FAULT_SEED=$seed cargo test -q --test durability
done

echo "==> corrupt-image proptests: truncation/bitflips must error, never panic"
cargo test -q -p mammoth-storage

echo "==> engines agree under the MAMMOTH_THREADS matrix"
for threads in 1 4; do
    echo "    MAMMOTH_THREADS=$threads"
    MAMMOTH_THREADS=$threads cargo test -q --test engines_agree
done

echo "==> trace matrix: profiled test runs must emit a validating trace"
trace_file=$(mktemp -u /tmp/mammoth_trace.XXXXXX.jsonl)
MAMMOTH_TRACE=$trace_file cargo test -q --test sql_end_to_end
MAMMOTH_TRACE=$trace_file MAMMOTH_THREADS=2 cargo test -q --test engines_agree
MAMMOTH_TRACE=$trace_file cargo test -q --test durability
cargo run -q -p mammoth-types --bin tracecheck -- "$trace_file"
rm -f "$trace_file"

echo "==> malcheck: well-formed plans must verify (profiler must not interfere)"
good=$(ls examples/plans/*.mal | grep -v '/bad_')
# shellcheck disable=SC2086
MAMMOTH_TRACE=/dev/null cargo run -q -p mammoth-mal --bin malcheck -- $good

echo "==> malcheck: malformed plans must be rejected"
cargo run -q -p mammoth-mal --bin malcheck -- --expect-error examples/plans/bad_*.mal

echo "==> ci: all gates passed"
