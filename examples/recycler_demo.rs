//! The recycler: materialization turned into an advantage (§6.1).
//!
//! Replays a Skyserver-like query log (power-law repetition of range
//! queries) against the same database twice — once cold, once with the
//! recycler caching every materialized intermediate — and prints the hit
//! statistics and speedup.
//!
//! Run with: `cargo run --release --example recycler_demo`

use mammoth::workload::{skyserver_log, uniform_i64};
use mammoth::Database;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nrows = 500_000;
    let log = skyserver_log(300, 2, 40, 1.1, 1_000_000, 11);

    let setup = |db: &mut Database| -> Result<(), Box<dyn std::error::Error>> {
        db.execute("CREATE TABLE sky (ra BIGINT, dec BIGINT)")?;
        // bulk load via the storage API (examples should be quick)
        use mammoth::storage::{Bat, Table};
        use mammoth::types::{ColumnDef, LogicalType, TableSchema};
        db.catalog_mut().drop_table("sky")?;
        let ra = Bat::from_vec(uniform_i64(nrows, 0, 1_000_000, 1));
        let dec = Bat::from_vec(uniform_i64(nrows, 0, 1_000_000, 2));
        let table = Table::from_bats(
            TableSchema::new(
                "sky",
                vec![
                    ColumnDef::new("ra", LogicalType::I64),
                    ColumnDef::new("dec", LogicalType::I64),
                ],
            ),
            vec![ra, dec],
        )?;
        db.catalog_mut().create_table(table)?;
        Ok(())
    };

    let run_log = |db: &mut Database| -> Result<std::time::Duration, Box<dyn std::error::Error>> {
        let t0 = Instant::now();
        for q in &log {
            let col = if q.column == 0 { "ra" } else { "dec" };
            let sql = format!(
                "SELECT COUNT({col}) FROM sky WHERE {col} >= {} AND {col} <= {}",
                q.range.lo, q.range.hi
            );
            db.execute(&sql)?;
        }
        Ok(t0.elapsed())
    };

    let mut plain = Database::new();
    setup(&mut plain)?;
    let t_plain = run_log(&mut plain)?;

    let mut recycled = Database::with_recycler(256 << 20);
    setup(&mut recycled)?;
    let t_recycled = run_log(&mut recycled)?;

    println!(
        "{} queries over {nrows} rows (40 distinct, zipf-repeated):\n",
        log.len()
    );
    println!("  without recycler : {t_plain:>10.2?}");
    println!("  with recycler    : {t_recycled:>10.2?}");
    let stats = recycled.recycler_stats().unwrap();
    println!(
        "\nrecycler: {} lookups, {} hits, {} admissions, {} evictions, {} bytes resident",
        stats.lookups, stats.exact_hits, stats.admissions, stats.evictions, stats.resident_bytes
    );
    Ok(())
}
