//! The XML front-end and the staircase join (§3.2).
//!
//! Encodes a synthetic XML document into `<pre,post>` BATs, evaluates XPath
//! location paths, and compares the staircase join against the naive region
//! join — same answers, very different work.
//!
//! Run with: `cargo run --release --example xpath_staircase`

use mammoth::xpath::encode::synthetic_tree;
use mammoth::xpath::{descendants_naive, descendants_staircase, eval_path, Doc};
use mammoth::Database;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ~100k-node synthetic document (the XMark substitute)
    let tree = synthetic_tree(10, 3, 8, 2024);
    let doc = Doc::encode(&tree);
    println!(
        "document: {} nodes, {} distinct tags, depth ≤ 10\n",
        doc.len(),
        doc.tag_names.len()
    );

    // XPath evaluation over the region encoding
    for path in ["/root/t1", "//t1", "//t1//t2", "/root/*/t3"] {
        let t0 = Instant::now();
        let hits = eval_path(&doc, path)?;
        println!(
            "{path:<14} -> {:>7} nodes  in {:.2?}",
            hits.len(),
            t0.elapsed()
        );
    }

    // staircase vs naive on a large context
    let context = doc.nodes_with_tag("t1");
    println!("\ndescendant axis from {} context nodes:", context.len());
    let t0 = Instant::now();
    let fast = descendants_staircase(&doc, &context);
    let t_fast = t0.elapsed();
    let t0 = Instant::now();
    let naive = descendants_naive(&doc, &context);
    let t_naive = t0.elapsed();
    assert_eq!(fast, naive);
    println!(
        "  staircase join : {t_fast:>10.2?}  ({} results)",
        fast.len()
    );
    println!("  naive region   : {t_naive:>10.2?}  (same results)");

    // the same encoding is a relational table: SQL over XML
    let mut db = Database::new();
    let small = synthetic_tree(5, 3, 4, 7);
    db.register_xml("doc", &small)?;
    println!("\nSQL over the encoded document (tag histogram):");
    let out = db.execute("SELECT tag, COUNT(*) FROM doc GROUP BY tag ORDER BY tag")?;
    println!("{}", out.to_text());
    Ok(())
}
