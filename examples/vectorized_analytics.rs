//! X100-style vectorized analytics (§5).
//!
//! Runs a TPC-H-Q1-flavoured scan+filter+aggregate over 4M lineitem-like
//! rows while sweeping the vector size from 1 (tuple-at-a-time, "as slow as
//! a typical RDBMS") through the cache-resident sweet spot (~1000) to full
//! columns (MonetDB-style materialization), then repeats the query over
//! compressed columns.
//!
//! Run with: `cargo run --release --example vectorized_analytics`

use mammoth::compression::Scheme;
use mammoth::vectorized::{
    AggSpec, CmpOp, ColRef, Column, ColumnSet, MapOp, Operand, Pipeline, QueryResult, Sink, Stage,
};
use mammoth::workload::LineitemSlice;
use std::time::Instant;

fn q1_pipeline() -> Pipeline {
    // SELECT count(*), sum(qty*price) WHERE shipdate <= 10500 AND qty < 25
    Pipeline {
        stages: vec![
            Stage::FilterI64 {
                col: ColRef::Source(2),
                op: CmpOp::Le,
                c: 10_500,
            },
            Stage::FilterI64 {
                col: ColRef::Source(0),
                op: CmpOp::Lt,
                c: 25,
            },
            Stage::MapI64 {
                op: MapOp::Mul,
                l: ColRef::Source(0),
                r: Operand::Col(ColRef::Source(1)),
                out: 0,
            },
        ],
        sink: Sink::Aggregate(vec![
            AggSpec::CountStar,
            AggSpec::SumI64(ColRef::Computed(0)),
        ]),
        computed_slots: 1,
    }
}

fn main() {
    let n = 4_000_000;
    let li = LineitemSlice::generate(n, 42);
    let plain = ColumnSet::new(vec![
        Column::I64(li.quantity.clone()),
        Column::I64(li.extendedprice.clone()),
        Column::I64(li.shipdate.clone()),
    ])
    .unwrap();

    println!("Q1-like query over {n} rows, sweeping the vector size:\n");
    println!("{:>10}  {:>12}  {:>14}", "vector", "time", "rows/s");
    let mut reference = None;
    for vs in [1usize, 4, 16, 64, 256, 1024, 4096, 65_536, n] {
        let t0 = Instant::now();
        let r = q1_pipeline().run(&plain, vs).unwrap();
        let dt = t0.elapsed();
        if let Some(prev) = &reference {
            assert_eq!(prev, &r, "vector size must not change the answer");
        } else {
            reference = Some(r);
        }
        println!(
            "{:>10}  {:>12.2?}  {:>14.0}",
            vs,
            dt,
            n as f64 / dt.as_secs_f64()
        );
    }
    if let Some(QueryResult::Aggregates(aggs)) = reference {
        println!("\nanswer: {aggs:?}");
    }

    println!("\nsame query over PFOR/RLE-compressed columns:");
    let compressed = ColumnSet::new(vec![
        Column::compressed(&li.quantity, Scheme::Pfor),
        Column::compressed(&li.extendedprice, Scheme::Pfor),
        Column::compressed(&li.shipdate, Scheme::Pfor),
    ])
    .unwrap();
    let t0 = Instant::now();
    let r = q1_pipeline().run(&compressed, 1024).unwrap();
    println!(
        "  vectors=1024 over compressed input: {:.2?} ({r:?})",
        t0.elapsed()
    );
}
