//! DataCell stream processing (§6.2).
//!
//! Registers two continuous queries over a tick stream and feeds events in
//! bulk baskets — "incremental bulk-event processing using the binary
//! relational algebra engine".
//!
//! Run with: `cargo run --release --example datacell_stream`

use mammoth::algebra::{AggKind, CmpOp};
use mammoth::stream::{ContinuousQuery, DataCell, WindowKind};
use mammoth::types::{ColumnDef, LogicalType, TableSchema, Value};
use mammoth::workload::uniform_i64;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cell = DataCell::new(TableSchema::new(
        "ticks",
        vec![
            ColumnDef::new("price", LogicalType::I64),
            ColumnDef::new("qty", LogicalType::I64),
        ],
    ))?;

    cell.register(ContinuousQuery {
        name: "sum_big_trades_per_1k".into(),
        value_col: 0,
        agg: AggKind::Sum,
        filter: Some((1, CmpOp::Ge, Value::I64(50))),
        window: WindowKind::Tumbling { size: 1000 },
    })?;
    cell.register(ContinuousQuery {
        name: "rolling_max_price".into(),
        value_col: 0,
        agg: AggKind::Max,
        filter: None,
        window: WindowKind::Sliding {
            size: 5000,
            slide: 1000,
        },
    })?;

    let n = 1_000_000;
    let price = uniform_i64(n, 100, 1000, 1);
    let qty = uniform_i64(n, 1, 100, 2);
    let events: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::I64(price[i]), Value::I64(qty[i])])
        .collect();

    let t0 = Instant::now();
    let mut windows = 0usize;
    let mut sample = None;
    for chunk in events.chunks(8192) {
        let fired = cell.append_batch(chunk)?;
        if sample.is_none() && !fired.is_empty() {
            sample = Some(fired[0].clone());
        }
        windows += fired.len();
    }
    let dt = t0.elapsed();

    println!(
        "ingested {n} events in {:.2?} ({:.1} M events/s), {windows} windows fired",
        dt,
        n as f64 / dt.as_secs_f64() / 1e6
    );
    if let Some(w) = sample {
        println!(
            "first window: query={} window#{} -> {} over {} events",
            w.query, w.window_no, w.value, w.events
        );
    }
    Ok(())
}
