//! Database cracking in action (§6.1).
//!
//! A column of 4M random integers is queried with 200 random range
//! predicates. Three physical designs answer the same workload:
//!
//! * **scan** — no index, every query scans everything;
//! * **sort-first** — pay a full sort before the first query;
//! * **cracking** — no preparation, the queries themselves reorganize the
//!   column; each query only partitions the pieces its bounds fall into.
//!
//! Watch the per-query cost of cracking collapse toward the sorted case
//! while never paying the up-front sort — "the approach does not require
//! knobs".
//!
//! Run with: `cargo run --release --example cracking_session`

use mammoth::cracking::{Bound, CrackerColumn};
use mammoth::workload::{range_query_log, uniform_i64, QueryPattern};
use std::time::Instant;

fn main() {
    let n = 4_000_000;
    let domain = 10_000_000;
    let data = uniform_i64(n, 0, domain, 42);
    let queries = range_query_log(200, domain, 0.001, QueryPattern::Random, 7);

    // -- baseline 1: always scan
    let t0 = Instant::now();
    let mut scan_hits = 0usize;
    for q in &queries {
        scan_hits += data.iter().filter(|&&v| v >= q.lo && v < q.hi).count();
    }
    let scan_total = t0.elapsed();

    // -- baseline 2: full sort first, then binary search
    let t0 = Instant::now();
    let mut sorted = data.clone();
    sorted.sort_unstable();
    let sort_cost = t0.elapsed();
    let t0 = Instant::now();
    let mut sorted_hits = 0usize;
    for q in &queries {
        let a = sorted.partition_point(|&v| v < q.lo);
        let b = sorted.partition_point(|&v| v < q.hi);
        sorted_hits += b - a;
    }
    let sorted_queries = t0.elapsed();

    // -- cracking
    let t0 = Instant::now();
    let mut cracker = CrackerColumn::new(data.clone());
    let mut crack_hits = 0usize;
    let mut first10 = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let tq = Instant::now();
        crack_hits += cracker
            .select(Bound::Incl(q.lo), Bound::Excl(q.hi))
            .rows
            .len();
        if i < 10 {
            first10.push(tq.elapsed());
        }
    }
    let crack_total = t0.elapsed();

    assert_eq!(scan_hits, crack_hits);
    assert_eq!(scan_hits, sorted_hits);

    println!("200 range queries over {n} rows — total answer sets agree ({scan_hits} rows)\n");
    println!("scan-always   : {scan_total:>12.2?}  (no preparation, no learning)");
    println!("sort-first    : {sort_cost:>12.2?} sort + {sorted_queries:.2?} queries");
    println!("cracking      : {crack_total:>12.2?}  (preparation-free, adapts per query)");
    let stats = cracker.stats();
    println!(
        "\ncracker state : {} pieces after {} cracks, {} tuples touched in total",
        stats.pieces, stats.cracks_performed, stats.tuples_touched
    );
    println!("\nfirst queries pay, later queries ride (per-query time):");
    for (i, d) in first10.iter().enumerate() {
        println!("  query {:>2}: {:>10.2?}", i + 1, d);
    }
}
