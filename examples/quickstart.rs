//! Quickstart: the Figure 1 scenario end-to-end.
//!
//! Creates the `people` table from the paper's Figure 1, runs the classic
//! `select(age, 1927)` query through the SQL front-end, and then shows the
//! same query expressed directly in MAL — the BAT-algebra program the SQL
//! compiler produces under the hood.
//!
//! Run with: `cargo run --example quickstart`

use mammoth::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();

    // The Figure 1 data: four actors and their birth years.
    db.execute("CREATE TABLE people (name VARCHAR, age INT NOT NULL)")?;
    db.execute(
        "INSERT INTO people VALUES \
         ('John Wayne', 1907), ('Roger Moore', 1927), \
         ('Bob Fosse', 1927), ('Will Smith', 1968)",
    )?;

    println!("== SQL front-end ==");
    let out = db.execute("SELECT name, age FROM people WHERE age = 1927")?;
    println!("{}", out.to_text());

    println!("== the same query as a MAL program (Figure 1's back-end) ==");
    let mal = r#"
        age  := sql.bind("people", "age");
        c    := algebra.thetaselect[==](age, 1927);
        name := sql.bind("people", "name");
        out  := algebra.projection(c, name);
        io.result(out);
    "#;
    println!("{}", mal.trim());
    let results = db.execute_mal(mal)?;
    let names = results[0].as_bat().expect("BAT result");
    for i in 0..names.len() {
        println!("  oid {} -> {}", names.oid_at(i), names.value_at(i));
    }

    println!("\n== aggregation, grouping, ordering ==");
    let out = db.execute("SELECT age, COUNT(*) FROM people GROUP BY age ORDER BY age DESC")?;
    println!("{}", out.to_text());

    println!("== updates use delta BATs; snapshots stay cheap ==");
    db.execute("DELETE FROM people WHERE age = 1907")?;
    let out = db.execute("SELECT COUNT(*) FROM people")?;
    println!("{}", out.to_text());

    Ok(())
}
