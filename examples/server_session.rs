//! A programmatic client session against an in-process mammoth-server.
//!
//! Starts a server on an ephemeral port, connects with the same [`Client`]
//! that `mammoth-cli` uses, and walks the whole connection lifecycle:
//! handshake, DDL, a bulk load, queries, EXPLAIN over the wire, CHECKPOINT
//! on a durable store, orderly disconnect, and a graceful server shutdown.
//!
//! Run with: `cargo run --release --example server_session`

use mammoth::server::{Client, Response, Server, ServerConfig, SessionSpec};

fn show(label: &str, resp: &Response) {
    match resp {
        Response::Ok => println!("{label}: ok"),
        Response::Affected(n) => println!("{label}: {n} rows affected"),
        Response::Table { columns, rows } => {
            println!("{label}: {} ({} rows)", columns.join(", "), rows.len());
            for row in rows.iter().take(5) {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("    {}", cells.join(" | "));
            }
            if rows.len() > 5 {
                println!("    … {} more", rows.len() - 5);
            }
        }
    }
}

fn main() {
    // A durable store so CHECKPOINT has something to do.
    let dir = std::env::temp_dir().join(format!("mammoth-example-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let server = Server::start(ServerConfig {
        workers: 4,
        backlog: 16,
        spec: SessionSpec::durable(&dir),
        ..ServerConfig::default()
    })
    .expect("server start");
    let addr = server.local_addr().to_string();
    println!("server listening on {addr}\n");

    // -- connect + handshake (Hello → Login → Ready under the hood)
    let mut c = Client::connect(&addr, "example", "").expect("connect");

    // -- DDL + bulk load
    show(
        "create",
        &c.query("CREATE TABLE readings (sensor INT NOT NULL, v INT NOT NULL)")
            .unwrap(),
    );
    let rows: Vec<String> = (0..1000)
        .map(|i| format!("({}, {})", i % 16, (i * 37) % 1000))
        .collect();
    show(
        "load",
        &c.query(&format!("INSERT INTO readings VALUES {}", rows.join(", ")))
            .unwrap(),
    );

    // -- queries
    show(
        "aggregate",
        &c.query("SELECT COUNT(*) FROM readings WHERE v < 500")
            .unwrap(),
    );
    show(
        "filter",
        &c.query("SELECT sensor, v FROM readings WHERE sensor = 3 AND v > 900")
            .unwrap(),
    );

    // -- the MAL plan for that query, over the wire
    println!("\nEXPLAIN SELECT COUNT(*) FROM readings WHERE v < 500:");
    if let Response::Table { rows, .. } = c
        .query("EXPLAIN SELECT COUNT(*) FROM readings WHERE v < 500")
        .unwrap()
    {
        for row in rows.iter().take(8) {
            println!("    {}", row[0]);
        }
        if rows.len() > 8 {
            println!("    … {} more instructions", rows.len() - 8);
        }
    }

    // -- persist, then leave politely
    show("\ncheckpoint", &c.query("CHECKPOINT").unwrap());
    c.quit().expect("quit");

    // -- graceful shutdown: drains, checkpoints, reports
    let stats = server.shutdown().expect("graceful shutdown");
    println!(
        "\nserver drained: {} connections, {} statements, {} shed",
        stats.accepted, stats.statements, stats.shed
    );
    let _ = std::fs::remove_dir_all(&dir);
}
