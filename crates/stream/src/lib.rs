//! DataCell-style stream processing (§6.2).
//!
//! "The DataCell aims at using the complete software stack of MonetDB to
//! provide a rich data stream management solution. Its salient feature is
//! to focus on incremental bulk-event processing using the binary
//! relational algebra engine. The enhanced SQL functionality allows for
//! general predicate based window processing."
//!
//! The design reproduced here: incoming events buffer in *baskets* (plain
//! column heaps — the same storage as tables); registered continuous
//! queries fire when their window completes, evaluating the window as one
//! BAT-algebra batch instead of tuple-at-a-time like classical stream
//! engines. Windows are tumbling or sliding by row count, with an optional
//! predicate pre-filter ("predicate based window processing").

pub mod cell;

pub use cell::{ContinuousQuery, DataCell, WindowKind, WindowResult};
