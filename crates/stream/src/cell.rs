//! The DataCell: baskets plus continuous queries.

use mammoth_algebra::{aggregate_scalar, select_cmp, AggKind, CmpOp};
use mammoth_storage::{Bat, TailHeap};
use mammoth_types::{Error, Result, TableSchema, Value};

/// Window shapes. Counts are in (post-filter) events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// Non-overlapping windows of `size` events.
    Tumbling { size: usize },
    /// Overlapping: a window of `size` events every `slide` events.
    Sliding { size: usize, slide: usize },
}

/// A registered continuous query:
/// `SELECT agg(value_col) FROM stream [WHERE filter] WINDOW ...`.
#[derive(Debug, Clone)]
pub struct ContinuousQuery {
    pub name: String,
    /// Aggregated column (by schema index).
    pub value_col: usize,
    pub agg: AggKind,
    /// Optional predicate `filter_col op constant` applied before windowing.
    pub filter: Option<(usize, CmpOp, Value)>,
    pub window: WindowKind,
}

/// One fired window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResult {
    pub query: String,
    /// Index of the window (0-based, per query).
    pub window_no: u64,
    pub value: Value,
    /// Events aggregated in this window.
    pub events: usize,
}

/// Per-query progress over its (filtered) event stream.
#[derive(Debug, Clone)]
struct QueryState {
    query: ContinuousQuery,
    /// The filtered event buffer this query still needs.
    pending: TailHeap,
    windows_fired: u64,
}

/// A stream processing cell over one event schema.
#[derive(Debug)]
pub struct DataCell {
    schema: TableSchema,
    /// The basket: arriving events, column-wise.
    basket: Vec<TailHeap>,
    queries: Vec<QueryState>,
    events_seen: u64,
}

impl DataCell {
    pub fn new(schema: TableSchema) -> Result<DataCell> {
        schema.validate()?;
        let basket = schema.columns.iter().map(|c| TailHeap::new(c.ty)).collect();
        Ok(DataCell {
            schema,
            basket,
            queries: Vec::new(),
            events_seen: 0,
        })
    }

    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Register a continuous query. Windows start from the next event.
    pub fn register(&mut self, q: ContinuousQuery) -> Result<()> {
        if q.value_col >= self.schema.arity() {
            return Err(Error::OutOfRange {
                index: q.value_col as u64,
                len: self.schema.arity() as u64,
            });
        }
        if let Some((c, _, _)) = &q.filter {
            if *c >= self.schema.arity() {
                return Err(Error::OutOfRange {
                    index: *c as u64,
                    len: self.schema.arity() as u64,
                });
            }
        }
        match q.window {
            WindowKind::Tumbling { size: 0 } => {
                return Err(Error::Bind("window size must be positive".into()))
            }
            WindowKind::Sliding { size, slide } if size == 0 || slide == 0 => {
                return Err(Error::Bind("window size/slide must be positive".into()))
            }
            _ => {}
        }
        let ty = self.schema.columns[q.value_col].ty;
        self.queries.push(QueryState {
            query: q,
            pending: TailHeap::new(ty),
            windows_fired: 0,
        });
        Ok(())
    }

    /// Append a *batch* of events — the bulk-event entry point. Returns the
    /// windows that completed as a consequence.
    pub fn append_batch(&mut self, rows: &[Vec<Value>]) -> Result<Vec<WindowResult>> {
        for row in rows {
            if row.len() != self.schema.arity() {
                return Err(Error::LengthMismatch {
                    left: row.len(),
                    right: self.schema.arity(),
                });
            }
            for (heap, v) in self.basket.iter_mut().zip(row) {
                heap.push_value(v)?;
            }
        }
        self.events_seen += rows.len() as u64;
        self.drain_basket()
    }

    /// Convenience single-event append (the slow path a classical stream
    /// engine is stuck with; kept for the E17 comparison).
    pub fn append_event(&mut self, row: &[Value]) -> Result<Vec<WindowResult>> {
        self.append_batch(std::slice::from_ref(&row.to_vec()))
    }

    /// Route the basket contents to every query's pending buffer (applying
    /// filters in bulk), then fire complete windows.
    fn drain_basket(&mut self) -> Result<Vec<WindowResult>> {
        let n = self.basket.first().map_or(0, |h| h.len());
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut fired = Vec::new();
        for qs in &mut self.queries {
            // bulk filter + projection via the algebra
            let value_bat = Bat::dense(0, self.basket[qs.query.value_col].clone());
            let selected: TailHeap = match &qs.query.filter {
                None => value_bat.into_tail(),
                Some((col, op, c)) => {
                    let fbat = Bat::dense(0, self.basket[*col].clone());
                    let cands = select_cmp(&fbat, *op, c)?;
                    mammoth_algebra::fetch_join(&cands, &value_bat)?.into_tail()
                }
            };
            qs.pending.extend_from(&selected)?;
            // fire all complete windows
            loop {
                let have = qs.pending.len();
                let (size, slide) = match qs.query.window {
                    WindowKind::Tumbling { size } => (size, size),
                    WindowKind::Sliding { size, slide } => (size, slide),
                };
                if have < size {
                    break;
                }
                let window = Bat::dense(0, qs.pending.slice_range(0, size));
                let value = aggregate_scalar(qs.query.agg, &window)?;
                fired.push(WindowResult {
                    query: qs.query.name.clone(),
                    window_no: qs.windows_fired,
                    value,
                    events: size,
                });
                qs.windows_fired += 1;
                qs.pending = qs.pending.slice_range(slide.min(have), have);
            }
        }
        // basket consumed
        for (heap, c) in self.basket.iter_mut().zip(&self.schema.columns) {
            *heap = TailHeap::new(c.ty);
        }
        Ok(fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mammoth_types::{ColumnDef, LogicalType};

    fn cell() -> DataCell {
        DataCell::new(TableSchema::new(
            "ticks",
            vec![
                ColumnDef::new("price", LogicalType::I64),
                ColumnDef::new("qty", LogicalType::I64),
            ],
        ))
        .unwrap()
    }

    fn ev(p: i64, q: i64) -> Vec<Value> {
        vec![Value::I64(p), Value::I64(q)]
    }

    #[test]
    fn tumbling_windows_fire_in_bulk() {
        let mut c = cell();
        c.register(ContinuousQuery {
            name: "sum5".into(),
            value_col: 0,
            agg: AggKind::Sum,
            filter: None,
            window: WindowKind::Tumbling { size: 5 },
        })
        .unwrap();
        let batch: Vec<Vec<Value>> = (1..=12).map(|i| ev(i, 1)).collect();
        let fired = c.append_batch(&batch).unwrap();
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].value, Value::I64(1 + 2 + 3 + 4 + 5));
        assert_eq!(fired[1].value, Value::I64(6 + 7 + 8 + 9 + 10));
        assert_eq!(fired[1].window_no, 1);
        // the remaining 2 events wait for the next batch
        let fired = c
            .append_batch(&(13..=15).map(|i| ev(i, 1)).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].value, Value::I64(11 + 12 + 13 + 14 + 15));
    }

    #[test]
    fn sliding_windows_overlap() {
        let mut c = cell();
        c.register(ContinuousQuery {
            name: "avg4by2".into(),
            value_col: 0,
            agg: AggKind::Avg,
            filter: None,
            window: WindowKind::Sliding { size: 4, slide: 2 },
        })
        .unwrap();
        let fired = c
            .append_batch(&(1..=8).map(|i| ev(i, 1)).collect::<Vec<_>>())
            .unwrap();
        // windows: [1..4], [3..6], [5..8]
        assert_eq!(fired.len(), 3);
        assert_eq!(fired[0].value, Value::F64(2.5));
        assert_eq!(fired[1].value, Value::F64(4.5));
        assert_eq!(fired[2].value, Value::F64(6.5));
    }

    #[test]
    fn predicate_windows_filter_first() {
        let mut c = cell();
        c.register(ContinuousQuery {
            name: "big_trades".into(),
            value_col: 0,
            agg: AggKind::Count,
            filter: Some((1, CmpOp::Ge, Value::I64(10))),
            window: WindowKind::Tumbling { size: 3 },
        })
        .unwrap();
        // only qty >= 10 events count toward the window
        let mut batch = Vec::new();
        for i in 0..10 {
            batch.push(ev(i, if i % 2 == 0 { 20 } else { 1 }));
        }
        let fired = c.append_batch(&batch).unwrap();
        // 5 qualifying events -> one window of 3 fires
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].value, Value::I64(3));
    }

    #[test]
    fn multiple_queries_share_the_basket() {
        let mut c = cell();
        for (name, agg) in [("min", AggKind::Min), ("max", AggKind::Max)] {
            c.register(ContinuousQuery {
                name: name.into(),
                value_col: 0,
                agg,
                filter: None,
                window: WindowKind::Tumbling { size: 4 },
            })
            .unwrap();
        }
        let fired = c
            .append_batch(&[ev(3, 1), ev(9, 1), ev(1, 1), ev(7, 1)])
            .unwrap();
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].value, Value::I64(1));
        assert_eq!(fired[1].value, Value::I64(9));
    }

    #[test]
    fn event_at_a_time_equals_batch() {
        let mk = || {
            let mut c = cell();
            c.register(ContinuousQuery {
                name: "s".into(),
                value_col: 0,
                agg: AggKind::Sum,
                filter: None,
                window: WindowKind::Tumbling { size: 7 },
            })
            .unwrap();
            c
        };
        let events: Vec<Vec<Value>> = (0..50).map(|i| ev(i * 3 % 11, 1)).collect();
        let mut c1 = mk();
        let bulk = c1.append_batch(&events).unwrap();
        let mut c2 = mk();
        let mut single = Vec::new();
        for e in &events {
            single.extend(c2.append_event(e).unwrap());
        }
        assert_eq!(bulk, single);
        assert_eq!(c1.events_seen(), 50);
    }

    #[test]
    fn registration_validation() {
        let mut c = cell();
        assert!(c
            .register(ContinuousQuery {
                name: "bad".into(),
                value_col: 9,
                agg: AggKind::Sum,
                filter: None,
                window: WindowKind::Tumbling { size: 1 },
            })
            .is_err());
        assert!(c
            .register(ContinuousQuery {
                name: "bad".into(),
                value_col: 0,
                agg: AggKind::Sum,
                filter: None,
                window: WindowKind::Tumbling { size: 0 },
            })
            .is_err());
        assert!(c
            .register(ContinuousQuery {
                name: "bad".into(),
                value_col: 0,
                agg: AggKind::Sum,
                filter: Some((5, CmpOp::Eq, Value::I64(1))),
                window: WindowKind::Tumbling { size: 1 },
            })
            .is_err());
    }

    #[test]
    fn arity_checked_on_append() {
        let mut c = cell();
        assert!(c.append_batch(&[vec![Value::I64(1)]]).is_err());
    }
}
