//! A pointer-based B+-tree.
//!
//! This is the engine's stand-in for "B-tree lookup into slotted pages —
//! the approach traditionally used in database systems for fast record
//! lookup" (§3), i.e. the baseline that positional (void-head) access is
//! measured against in experiment E09. Nodes are individually heap
//! allocated so lookups pay real pointer-chasing costs, exactly the effect
//! the comparison is about. It supports bulk-load from sorted input,
//! point and range lookups, and insertion.

use std::fmt::Debug;

/// Maximum keys per node (fanout - 1). 8 keys ≈ a 64-byte line of i64s,
/// deliberately page-like rather than cache-optimized.
const MAX_KEYS: usize = 8;

#[derive(Debug)]
enum Node<K: Ord + Copy + Debug> {
    Internal {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]`.
        keys: Vec<K>,
        // the per-node Box is the point: descents must chase real pointers
        // (see the module docs), so don't flatten children into the Vec
        #[allow(clippy::vec_box)]
        children: Vec<Box<Node<K>>>,
    },
    Leaf {
        keys: Vec<K>,
        /// Positions in the indexed column, aligned with `keys`.
        positions: Vec<u64>,
    },
}

/// A B+-tree mapping keys to positions.
#[derive(Debug)]
pub struct BPlusTree<K: Ord + Copy + Debug> {
    root: Box<Node<K>>,
    len: usize,
    height: usize,
}

impl<K: Ord + Copy + Debug> BPlusTree<K> {
    /// An empty tree.
    pub fn new() -> Self {
        BPlusTree {
            root: Box::new(Node::Leaf {
                keys: Vec::new(),
                positions: Vec::new(),
            }),
            len: 0,
            height: 1,
        }
    }

    /// Bulk-load from `(key, position)` pairs sorted by key.
    ///
    /// Panics in debug builds if the input is unsorted.
    pub fn bulk_load(pairs: &[(K, u64)]) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 <= w[1].0));
        if pairs.is_empty() {
            return Self::new();
        }
        // Build the leaf level ~2/3 full so bulk-loaded trees accept inserts.
        let per_leaf = (MAX_KEYS * 2 / 3).max(2);
        let mut level: Vec<(K, Box<Node<K>>)> = pairs
            .chunks(per_leaf)
            .map(|chunk| {
                let keys: Vec<K> = chunk.iter().map(|p| p.0).collect();
                let positions: Vec<u64> = chunk.iter().map(|p| p.1).collect();
                (keys[0], Box::new(Node::Leaf { keys, positions }))
            })
            .collect();
        let mut height = 1;
        while level.len() > 1 {
            let per_node = MAX_KEYS.max(2);
            level = level
                .chunks(per_node)
                .map(|chunk| {
                    let first_key = chunk[0].0;
                    let keys: Vec<K> = chunk[1..].iter().map(|c| c.0).collect();
                    let children: Vec<Box<Node<K>>> =
                        chunk.iter().map(|c| c.1.clone_box()).collect();
                    (first_key, Box::new(Node::Internal { keys, children }))
                })
                .collect();
            height += 1;
        }
        BPlusTree {
            root: level.pop().unwrap().1,
            len: pairs.len(),
            height,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn height(&self) -> usize {
        self.height
    }

    /// First position stored under `key`, if any.
    pub fn get(&self, key: K) -> Option<u64> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    node = &children[idx];
                }
                Node::Leaf { keys, positions } => {
                    let idx = keys.partition_point(|&k| k < key);
                    return (idx < keys.len() && keys[idx] == key).then(|| positions[idx]);
                }
            }
        }
    }

    /// All positions with `lo <= key <= hi`, in key order.
    pub fn range(&self, lo: K, hi: K) -> Vec<u64> {
        let mut out = Vec::new();
        if lo <= hi {
            Self::collect_range(&self.root, lo, hi, &mut out);
        }
        out
    }

    fn collect_range(node: &Node<K>, lo: K, hi: K, out: &mut Vec<u64>) {
        match node {
            Node::Internal { keys, children } => {
                // `k < lo` (not `<=`): a leaf split can leave duplicates of
                // the separator key in the left sibling.
                let from = keys.partition_point(|&k| k < lo);
                let to = keys.partition_point(|&k| k <= hi);
                for child in &children[from..=to] {
                    Self::collect_range(child, lo, hi, out);
                }
            }
            Node::Leaf { keys, positions } => {
                let from = keys.partition_point(|&k| k < lo);
                let to = keys.partition_point(|&k| k <= hi);
                out.extend_from_slice(&positions[from..to]);
            }
        }
    }

    /// Insert a `(key, position)` pair, splitting nodes as needed.
    pub fn insert(&mut self, key: K, position: u64) {
        if let Some((sep, right)) = Self::insert_rec(&mut self.root, key, position) {
            // the root split: grow the tree by one level
            let old_root = std::mem::replace(
                &mut self.root,
                Box::new(Node::Leaf {
                    keys: Vec::new(),
                    positions: Vec::new(),
                }),
            );
            *self.root = Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            };
            self.height += 1;
        }
        self.len += 1;
    }

    /// Returns `Some((separator, new right sibling))` when the node split.
    fn insert_rec(node: &mut Node<K>, key: K, position: u64) -> Option<(K, Box<Node<K>>)> {
        match node {
            Node::Leaf { keys, positions } => {
                let idx = keys.partition_point(|&k| k <= key);
                keys.insert(idx, key);
                positions.insert(idx, position);
                if keys.len() <= MAX_KEYS {
                    return None;
                }
                let mid = keys.len() / 2;
                let rk = keys.split_off(mid);
                let rp = positions.split_off(mid);
                let sep = rk[0];
                Some((
                    sep,
                    Box::new(Node::Leaf {
                        keys: rk,
                        positions: rp,
                    }),
                ))
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|&k| k <= key);
                let split = Self::insert_rec(&mut children[idx], key, position)?;
                keys.insert(idx, split.0);
                children.insert(idx + 1, split.1);
                if keys.len() <= MAX_KEYS {
                    return None;
                }
                let mid = keys.len() / 2;
                let sep = keys[mid];
                let rk = keys.split_off(mid + 1);
                keys.pop(); // sep moves up
                let rc = children.split_off(mid + 1);
                Some((
                    sep,
                    Box::new(Node::Internal {
                        keys: rk,
                        children: rc,
                    }),
                ))
            }
        }
    }
}

impl<K: Ord + Copy + Debug> Node<K> {
    fn clone_box(&self) -> Box<Node<K>> {
        match self {
            Node::Leaf { keys, positions } => Box::new(Node::Leaf {
                keys: keys.clone(),
                positions: positions.clone(),
            }),
            Node::Internal { keys, children } => Box::new(Node::Internal {
                keys: keys.clone(),
                children: children.iter().map(|c| c.clone_box()).collect(),
            }),
        }
    }
}

impl<K: Ord + Copy + Debug> Default for BPlusTree<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bulk_load_and_get() {
        let pairs: Vec<(i64, u64)> = (0..1000).map(|i| (i * 2, i as u64)).collect();
        let t = BPlusTree::bulk_load(&pairs);
        assert_eq!(t.len(), 1000);
        assert!(t.height() >= 3);
        for i in 0..1000i64 {
            assert_eq!(t.get(i * 2), Some(i as u64), "key {}", i * 2);
            assert_eq!(t.get(i * 2 + 1), None);
        }
    }

    #[test]
    fn empty_and_single() {
        let t: BPlusTree<i64> = BPlusTree::new();
        assert_eq!(t.get(1), None);
        let t = BPlusTree::bulk_load(&[(5i64, 50)]);
        assert_eq!(t.get(5), Some(50));
        assert_eq!(t.get(4), None);
    }

    #[test]
    fn range_scan() {
        let pairs: Vec<(i64, u64)> = (0..100).map(|i| (i, i as u64)).collect();
        let t = BPlusTree::bulk_load(&pairs);
        assert_eq!(t.range(10, 15), vec![10, 11, 12, 13, 14, 15]);
        assert_eq!(t.range(-5, 1), vec![0, 1]);
        assert_eq!(t.range(98, 200), vec![98, 99]);
        assert_eq!(t.range(50, 49), Vec::<u64>::new());
    }

    #[test]
    fn inserts_split_up_to_root() {
        let mut t = BPlusTree::new();
        for i in 0..500i64 {
            t.insert(i, i as u64 * 10);
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() > 2);
        for i in 0..500i64 {
            assert_eq!(t.get(i), Some(i as u64 * 10));
        }
    }

    #[test]
    fn duplicate_keys_in_range() {
        let mut t = BPlusTree::new();
        for _ in 0..20 {
            t.insert(7i64, 1);
        }
        t.insert(8, 2);
        assert_eq!(t.range(7, 7).len(), 20);
        assert_eq!(t.get(8), Some(2));
    }

    #[test]
    fn reverse_insert_order() {
        let mut t = BPlusTree::new();
        for i in (0..200i64).rev() {
            t.insert(i, i as u64);
        }
        for i in 0..200i64 {
            assert_eq!(t.get(i), Some(i as u64));
        }
        assert_eq!(t.range(0, 199).len(), 200);
    }

    proptest! {
        #[test]
        fn prop_matches_btreemap(mut keys in proptest::collection::vec(-1000i64..1000, 1..300)) {
            use std::collections::BTreeMap;
            let mut t = BPlusTree::new();
            let mut m: BTreeMap<i64, u64> = BTreeMap::new();
            for (i, &k) in keys.iter().enumerate() {
                t.insert(k, i as u64);
                m.entry(k).or_insert(i as u64); // first insert wins is not
                // guaranteed by our tree; check membership only below.
            }
            for &k in keys.iter() {
                prop_assert!(t.get(k).is_some());
            }
            prop_assert_eq!(t.get(5000), None);
            // range over everything returns every inserted pair
            keys.sort_unstable();
            prop_assert_eq!(t.range(-1000, 1000).len(), keys.len());
        }

        #[test]
        fn prop_bulk_load_equals_inserts(keys in proptest::collection::vec(0i64..500, 1..200)) {
            let mut sorted: Vec<(i64, u64)> =
                keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
            sorted.sort_by_key(|p| p.0);
            let bulk = BPlusTree::bulk_load(&sorted);
            for &(k, _) in &sorted {
                prop_assert!(bulk.get(k).is_some());
            }
            prop_assert_eq!(bulk.range(0, 500).len(), sorted.len());
        }
    }
}
