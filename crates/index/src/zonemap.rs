//! Zone maps: per-block min/max summaries.
//!
//! The lightest instance of the paper's "fast access to what matters only"
//! theme — a scan can skip any block whose `[min, max]` cannot intersect the
//! predicate. Unlike a sorted index it costs one pass to build and nothing
//! to maintain order.

use std::fmt::Debug;

/// Min/max of one block of rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zone<K> {
    pub min: K,
    pub max: K,
}

/// Per-block min/max over a column.
#[derive(Debug, Clone)]
pub struct ZoneMap<K: Ord + Copy + Debug> {
    zones: Vec<Zone<K>>,
    block_rows: usize,
    rows: usize,
}

impl<K: Ord + Copy + Debug> ZoneMap<K> {
    /// Build with `block_rows` rows per zone.
    pub fn build(data: &[K], block_rows: usize) -> ZoneMap<K> {
        assert!(block_rows > 0, "block_rows must be positive");
        let zones = data
            .chunks(block_rows)
            .map(|chunk| {
                let mut min = chunk[0];
                let mut max = chunk[0];
                for &v in &chunk[1..] {
                    if v < min {
                        min = v;
                    }
                    if v > max {
                        max = v;
                    }
                }
                Zone { min, max }
            })
            .collect();
        ZoneMap {
            zones,
            block_rows,
            rows: data.len(),
        }
    }

    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Row ranges of blocks that may contain keys in `[lo, hi]`.
    pub fn candidate_ranges(&self, lo: K, hi: K) -> Vec<std::ops::Range<usize>> {
        let mut out = Vec::new();
        for (i, z) in self.zones.iter().enumerate() {
            if z.max < lo || z.min > hi {
                continue;
            }
            let start = i * self.block_rows;
            let end = ((i + 1) * self.block_rows).min(self.rows);
            // merge adjacent ranges
            if let Some(last) = out.last_mut() {
                let last: &mut std::ops::Range<usize> = last;
                if last.end == start {
                    last.end = end;
                    continue;
                }
            }
            out.push(start..end);
        }
        out
    }

    /// Global `[min, max]` over the whole column, folded from the zones.
    /// `None` for an empty column. Feeds base-bind value intervals in the
    /// MAL property analysis.
    pub fn bounds(&self) -> Option<(K, K)> {
        let mut it = self.zones.iter();
        let first = it.next()?;
        let (mut min, mut max) = (first.min, first.max);
        for z in it {
            if z.min < min {
                min = z.min;
            }
            if z.max > max {
                max = z.max;
            }
        }
        Some((min, max))
    }

    /// Fraction of blocks pruned for `[lo, hi]` (selectivity diagnostic).
    pub fn pruning_ratio(&self, lo: K, hi: K) -> f64 {
        if self.zones.is_empty() {
            return 0.0;
        }
        let kept: usize = self
            .zones
            .iter()
            .filter(|z| !(z.max < lo || z.min > hi))
            .count();
        1.0 - kept as f64 / self.zones.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_zones() {
        let data: Vec<i64> = (0..100).collect();
        let zm = ZoneMap::build(&data, 10);
        assert_eq!(zm.zone_count(), 10);
        assert_eq!(zm.block_rows(), 10);
    }

    #[test]
    fn sorted_data_prunes_hard() {
        let data: Vec<i64> = (0..1000).collect();
        let zm = ZoneMap::build(&data, 100);
        let ranges = zm.candidate_ranges(250, 260);
        assert_eq!(ranges, vec![200..300]);
        assert!(zm.pruning_ratio(250, 260) >= 0.9);
    }

    #[test]
    fn random_data_prunes_little() {
        // values straddle every block: nothing can be pruned
        let data: Vec<i64> = (0..1000).map(|i| (i * 7919) % 1000).collect();
        let zm = ZoneMap::build(&data, 100);
        assert_eq!(zm.pruning_ratio(400, 600), 0.0);
        // merged into one big range
        assert_eq!(zm.candidate_ranges(400, 600), vec![0..1000]);
    }

    #[test]
    fn tail_block_is_partial() {
        let data: Vec<i64> = (0..95).collect();
        let zm = ZoneMap::build(&data, 10);
        assert_eq!(zm.zone_count(), 10);
        let r = zm.candidate_ranges(90, 200);
        assert_eq!(r, vec![90..95]);
    }

    #[test]
    fn bounds_fold_all_zones() {
        let data = vec![7i64, 3, 9, 1, 8];
        let zm = ZoneMap::build(&data, 2);
        assert_eq!(zm.bounds(), Some((1, 9)));
        let empty = ZoneMap::build(&[] as &[i64], 4);
        assert_eq!(empty.bounds(), None);
    }

    #[test]
    fn no_candidates_outside_domain() {
        let data = vec![5i64, 6, 7];
        let zm = ZoneMap::build(&data, 2);
        assert!(zm.candidate_ranges(100, 200).is_empty());
        assert_eq!(zm.pruning_ratio(100, 200), 1.0);
    }

    #[test]
    fn correctness_no_false_negatives() {
        let data: Vec<i64> = (0..500).map(|i| (i * 31) % 97).collect();
        let zm = ZoneMap::build(&data, 64);
        let (lo, hi) = (20, 25);
        let candidates = zm.candidate_ranges(lo, hi);
        let expect: Vec<usize> = data
            .iter()
            .enumerate()
            .filter(|(_, &v)| v >= lo && v <= hi)
            .map(|(i, _)| i)
            .collect();
        for i in expect {
            assert!(
                candidates.iter().any(|r| r.contains(&i)),
                "row {i} lost by pruning"
            );
        }
    }
}
