//! Bucket-chained hash table.
//!
//! The layout follows MonetDB: two plain arrays, `buckets` (head of chain
//! per bucket) and `next` (chain link per tuple). No tuple data is copied —
//! the table stores *positions into the build column*, which the caller
//! dereferences. This keeps the structure compact and the build loop free
//! of allocation.
//!
//! Two hash strategies are provided to support the E04 CPU-cost ablation:
//! [`MaskHasher`] (multiplicative hash + power-of-two mask, division-free)
//! and [`ModuloHasher`] (hash modulo a prime bucket count — one integer
//! division per access, the classical textbook choice §4.2 warns about).

/// Sentinel for "no entry" in `buckets`/`next` (tuple positions are stored
/// +1 so 0 can mean empty).
const EMPTY: u32 = 0;

/// A strategy mapping a key's 64-bit mix to a bucket index.
pub trait KeyHasher: Clone {
    /// Number of buckets to allocate for `n` tuples.
    fn bucket_count(&self, n: usize) -> usize;
    /// Map `key` to a bucket in `[0, bucket_count)`.
    fn bucket(&self, key: u64, nbuckets: usize) -> usize;
}

/// Division-free: Fibonacci multiplicative mixing, power-of-two buckets.
#[derive(Debug, Clone, Default)]
pub struct MaskHasher;

impl KeyHasher for MaskHasher {
    fn bucket_count(&self, n: usize) -> usize {
        n.next_power_of_two().max(4)
    }

    #[inline(always)]
    fn bucket(&self, key: u64, nbuckets: usize) -> usize {
        let mix = key.wrapping_mul(0x9E3779B97F4A7C15);
        // take the top bits: the multiplier pushes entropy upward
        (mix >> (64 - nbuckets.trailing_zeros() as u64)) as usize
    }
}

/// Division-based: bucket = key mod prime. One idiv in every inner loop
/// iteration — the CPU cost §4.2/[25] measured and removed.
#[derive(Debug, Clone, Default)]
pub struct ModuloHasher;

fn prime_at_least(n: usize) -> usize {
    fn is_prime(x: usize) -> bool {
        if x < 4 {
            return x >= 2;
        }
        if x.is_multiple_of(2) {
            return false;
        }
        let mut d = 3;
        while d * d <= x {
            if x.is_multiple_of(d) {
                return false;
            }
            d += 2;
        }
        true
    }
    let mut x = n.max(5) | 1;
    while !is_prime(x) {
        x += 2;
    }
    x
}

impl KeyHasher for ModuloHasher {
    fn bucket_count(&self, n: usize) -> usize {
        prime_at_least(n)
    }

    #[inline(always)]
    fn bucket(&self, key: u64, nbuckets: usize) -> usize {
        (key % nbuckets as u64) as usize
    }
}

/// A bucket-chained hash table over positions `0..n` of a build column.
#[derive(Debug, Clone)]
pub struct HashTable<H: KeyHasher = MaskHasher> {
    hasher: H,
    nbuckets: usize,
    buckets: Vec<u32>,
    next: Vec<u32>,
}

impl<H: KeyHasher> HashTable<H> {
    /// Build a table over `keys[i]` (already mixed to u64 by the caller,
    /// e.g. by sign-flipping an i64 or transmuting an f64).
    pub fn build_with(hasher: H, keys: &[u64]) -> HashTable<H> {
        let nbuckets = hasher.bucket_count(keys.len());
        let mut buckets = vec![EMPTY; nbuckets];
        let mut next = vec![EMPTY; keys.len()];
        for (i, &k) in keys.iter().enumerate() {
            let b = hasher.bucket(k, nbuckets);
            next[i] = buckets[b];
            buckets[b] = (i + 1) as u32;
        }
        HashTable {
            hasher,
            nbuckets,
            buckets,
            next,
        }
    }

    /// Number of buckets allocated.
    pub fn bucket_count(&self) -> usize {
        self.nbuckets
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }

    /// Iterate the chain of positions whose key hashes like `key`
    /// (candidates — the caller must re-check equality on the build column).
    #[inline]
    pub fn candidates(&self, key: u64) -> Chain<'_> {
        let b = self.hasher.bucket(key, self.nbuckets);
        Chain {
            next: &self.next,
            cur: self.buckets[b],
        }
    }

    /// Convenience: positions where `keys[pos] == key` exactly, for u64 key
    /// columns.
    pub fn lookup<'a>(&'a self, keys: &'a [u64], key: u64) -> impl Iterator<Item = usize> + 'a {
        self.candidates(key).filter(move |&p| keys[p] == key)
    }

    /// Average chain length over non-empty buckets (diagnostics).
    pub fn avg_chain_len(&self) -> f64 {
        let used = self.buckets.iter().filter(|&&b| b != EMPTY).count();
        if used == 0 {
            0.0
        } else {
            self.len() as f64 / used as f64
        }
    }
}

impl HashTable<MaskHasher> {
    /// Build with the default division-free hasher.
    pub fn build(keys: &[u64]) -> HashTable<MaskHasher> {
        HashTable::build_with(MaskHasher, keys)
    }
}

/// Iterator over one bucket chain.
pub struct Chain<'a> {
    next: &'a [u32],
    cur: u32,
}

impl Iterator for Chain<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.cur == EMPTY {
            return None;
        }
        let pos = (self.cur - 1) as usize;
        self.cur = self.next[pos];
        Some(pos)
    }
}

/// Mix an i64 key into the u64 space the table expects.
#[inline(always)]
pub fn mix_i64(x: i64) -> u64 {
    x as u64
}

/// Mix an i32 key.
#[inline(always)]
pub fn mix_i32(x: i32) -> u64 {
    x as u32 as u64
}

/// Mix an f64 key by bit pattern (canonicalizing -0.0 to 0.0).
#[inline(always)]
pub fn mix_f64(x: f64) -> u64 {
    let x = if x == 0.0 { 0.0 } else { x };
    x.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lookup_finds_all_duplicates() {
        let keys = vec![5u64, 7, 5, 9, 5];
        let t = HashTable::build(&keys);
        let mut hits: Vec<usize> = t.lookup(&keys, 5).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2, 4]);
        assert_eq!(t.lookup(&keys, 8).count(), 0);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn empty_table() {
        let t = HashTable::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.candidates(42).count(), 0);
    }

    #[test]
    fn modulo_hasher_uses_prime_buckets() {
        let t = HashTable::build_with(ModuloHasher, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(t.bucket_count(), 11);
        let keys = [1u64, 2, 3, 4, 5, 6, 7, 8];
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.lookup(&keys, k).collect::<Vec<_>>(), vec![i]);
        }
    }

    #[test]
    fn mask_hasher_power_of_two() {
        assert_eq!(MaskHasher.bucket_count(1000), 1024);
        assert_eq!(MaskHasher.bucket_count(0), 4);
        // all buckets must be in range
        for k in 0..10_000u64 {
            assert!(MaskHasher.bucket(k, 1024) < 1024);
        }
    }

    #[test]
    fn prime_helper() {
        assert_eq!(prime_at_least(2), 5); // floor of 5 keeps tables non-degenerate
        assert_eq!(prime_at_least(10), 11);
        assert_eq!(prime_at_least(11), 11);
        assert_eq!(prime_at_least(12), 13);
    }

    #[test]
    fn chain_len_diagnostic() {
        let keys: Vec<u64> = (0..64).map(|_| 1).collect();
        let t = HashTable::build(&keys);
        assert_eq!(t.avg_chain_len(), 64.0); // all collide on purpose
    }

    #[test]
    fn mixers() {
        assert_eq!(mix_i32(-1), 0xFFFF_FFFF);
        assert_eq!(mix_i64(-1), u64::MAX);
        assert_eq!(mix_f64(0.0), mix_f64(-0.0));
        assert_ne!(mix_f64(1.0), mix_f64(2.0));
    }

    proptest! {
        #[test]
        fn prop_agrees_with_std_hashmap(keys in proptest::collection::vec(0u64..64, 0..200)) {
            use std::collections::HashMap;
            let mut expect: HashMap<u64, Vec<usize>> = HashMap::new();
            for (i, &k) in keys.iter().enumerate() {
                expect.entry(k).or_default().push(i);
            }
            for hasher_mask in [true, false] {
                let check = |probe: u64, got: &mut Vec<usize>| {
                    got.sort_unstable();
                    let want = expect.get(&probe).cloned().unwrap_or_default();
                    assert_eq!(*got, want);
                };
                if hasher_mask {
                    let t = HashTable::build(&keys);
                    for probe in 0..64u64 {
                        check(probe, &mut t.lookup(&keys, probe).collect());
                    }
                } else {
                    let t = HashTable::build_with(ModuloHasher, &keys);
                    for probe in 0..64u64 {
                        check(probe, &mut t.lookup(&keys, probe).collect());
                    }
                }
            }
        }
    }
}
