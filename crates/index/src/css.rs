//! Cache-Sensitive Search tree (CSS-tree).
//!
//! Rao & Ross, VLDB 1999 — one of the three "architecture-aware VLDB 1999
//! papers" §7 credits as seeds of the field. The key ideas reproduced:
//! eliminate internal-node pointers by storing the tree as one array with
//! arithmetic child addressing, and size nodes to cache lines. The tree is
//! read-only, built over a *sorted* array, and returns positions into it.
//!
//! The layout is compact (no complete-tree padding): each internal level is
//! exactly `ceil(children / fanout)` nodes, stored root-first in one flat
//! separator array with per-level offsets. Child addressing is
//! `node * fanout + branch` — arithmetic, never a pointer.

use std::fmt::Debug;

/// Keys per node. 16 × 4-byte keys = one 64-byte line for i32; for i64 two
/// lines — still far better locality than pointer chasing.
const NODE_KEYS: usize = 16;
const FANOUT: usize = NODE_KEYS + 1;

#[derive(Debug, Clone, Copy)]
struct LevelMeta {
    /// Offset of this level's separators in `seps`.
    offset: usize,
    /// Nodes at this level.
    nodes: usize,
}

/// A read-only cache-sensitive search tree over a sorted array.
#[derive(Debug, Clone)]
pub struct CssTree<K: Ord + Copy + Debug> {
    /// Internal levels root-first.
    levels: Vec<LevelMeta>,
    /// All separators, `NODE_KEYS` per node, padded with the max key.
    seps: Vec<K>,
    /// The sorted key array (the leaf "level" is the data itself).
    keys: Vec<K>,
}

impl<K: Ord + Copy + Debug> CssTree<K> {
    /// Build over `keys`, which must be sorted ascending.
    ///
    /// Panics in debug builds on unsorted input.
    pub fn build(keys: Vec<K>) -> CssTree<K> {
        debug_assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "input must be sorted"
        );
        let n = keys.len();
        if n == 0 {
            return CssTree {
                levels: Vec::new(),
                seps: Vec::new(),
                keys,
            };
        }
        let max_key = *keys.last().unwrap();
        let n_groups = n.div_ceil(NODE_KEYS);

        // Level sizes bottom-up: how many nodes until one root remains.
        let mut counts = Vec::new(); // (nodes, groups_per_node), bottom-up
        let mut children = n_groups;
        let mut groups_per_child = 1usize;
        while children > 1 {
            let nodes = children.div_ceil(FANOUT);
            counts.push((nodes, groups_per_child * FANOUT));
            children = nodes;
            groups_per_child *= FANOUT;
        }
        counts.reverse(); // root-first

        let mut levels = Vec::with_capacity(counts.len());
        let mut seps = Vec::new();
        for (nodes, groups_per_node) in counts {
            let offset = seps.len();
            let child_groups = groups_per_node / FANOUT;
            let _ = groups_per_node;
            for node in 0..nodes {
                for s in 1..=NODE_KEYS {
                    // first key slot of child `node*FANOUT + s`
                    let slot = (node * FANOUT + s) * child_groups * NODE_KEYS;
                    seps.push(if slot < n { keys[slot] } else { max_key });
                }
            }
            levels.push(LevelMeta { offset, nodes });
        }
        CssTree { levels, seps, keys }
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Internal levels in the tree (0 when a single group suffices).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Bytes used by the internal nodes (the space win vs a B+-tree).
    pub fn internal_bytes(&self) -> usize {
        self.seps.len() * std::mem::size_of::<K>()
    }

    /// Position of the first key `>= key` (lower bound), or `len()`.
    pub fn lower_bound(&self, key: K) -> usize {
        let n = self.keys.len();
        if n == 0 {
            return 0;
        }
        let mut node = 0usize;
        for (i, level) in self.levels.iter().enumerate() {
            let seps =
                &self.seps[level.offset + node * NODE_KEYS..level.offset + (node + 1) * NODE_KEYS];
            // `s < key`: duplicates of a separator can extend into the
            // child left of it; lower-bound must take the leftmost.
            let branch = seps.partition_point(|&s| s < key);
            let child = node * FANOUT + branch;
            let next_nodes = match self.levels.get(i + 1) {
                Some(l) => l.nodes,
                None => n.div_ceil(NODE_KEYS), // leaf groups
            };
            node = child.min(next_nodes - 1);
        }
        // search the final key group directly in the data array
        let start = (node * NODE_KEYS).min(n);
        let end = (start + NODE_KEYS).min(n);
        start + self.keys[start..end].partition_point(|&k| k < key)
    }

    /// Position of `key` if present (first occurrence).
    pub fn get(&self, key: K) -> Option<usize> {
        let p = self.lower_bound(key);
        (p < self.keys.len() && self.keys[p] == key).then_some(p)
    }

    /// All keys in `[lo, hi]` as a contiguous position range.
    pub fn range(&self, lo: K, hi: K) -> std::ops::Range<usize> {
        let from = self.lower_bound(lo);
        let mut to = self.lower_bound(hi);
        while to < self.keys.len() && self.keys[to] == hi {
            to += 1;
        }
        from..to.max(from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_trees() {
        let t = CssTree::build(Vec::<i64>::new());
        assert_eq!(t.lower_bound(1), 0);
        assert_eq!(t.get(1), None);

        let t = CssTree::build(vec![5i64]);
        assert_eq!(t.get(5), Some(0));
        assert_eq!(t.get(4), None);
        assert_eq!(t.lower_bound(9), 1);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn exact_and_missing_lookups() {
        let keys: Vec<i64> = (0..10_000).map(|i| i * 3).collect();
        let t = CssTree::build(keys.clone());
        assert!(t.height() >= 2);
        for i in (0..10_000).step_by(97) {
            assert_eq!(t.get(i * 3), Some(i as usize), "key {}", i * 3);
            assert_eq!(t.get(i * 3 + 1), None);
        }
        assert_eq!(t.get(-1), None);
        assert_eq!(t.lower_bound(i64::MAX), 10_000);
    }

    #[test]
    fn lower_bound_matches_binary_search() {
        let keys: Vec<i64> = (0..5000).map(|i| (i / 3) * 7).collect(); // duplicates
        let t = CssTree::build(keys.clone());
        for probe in -5..12_000 {
            let expect = keys.partition_point(|&k| k < probe);
            assert_eq!(t.lower_bound(probe), expect, "probe {probe}");
        }
    }

    #[test]
    fn range_returns_contiguous_positions() {
        let keys: Vec<i64> = vec![1, 3, 3, 3, 7, 9, 9, 12];
        let t = CssTree::build(keys);
        assert_eq!(t.range(3, 9), 1..7);
        assert_eq!(t.range(4, 6), 4..4);
        assert_eq!(t.range(0, 100), 0..8);
    }

    #[test]
    fn internal_structure_is_compact() {
        let keys: Vec<i32> = (0..100_000).collect();
        let data_bytes = keys.len() * 4;
        let t = CssTree::build(keys);
        // pointer-free separators cost a small fraction of the data:
        // ~ n/FANOUT keys of overhead per level.
        assert!(
            t.internal_bytes() < data_bytes / 8,
            "internal {} vs data {}",
            t.internal_bytes(),
            data_bytes
        );
        assert!(t.get(99_999).is_some());
        assert!(t.get(0).is_some());
    }

    #[test]
    fn all_equal_keys() {
        let t = CssTree::build(vec![4i64; 1000]);
        assert_eq!(t.lower_bound(4), 0);
        assert_eq!(t.get(4), Some(0));
        assert_eq!(t.range(4, 4), 0..1000);
        assert_eq!(t.lower_bound(5), 1000);
    }

    proptest! {
        #[test]
        fn prop_matches_partition_point(mut keys in proptest::collection::vec(-500i64..500, 0..600),
                                        probes in proptest::collection::vec(-600i64..600, 20)) {
            keys.sort_unstable();
            let t = CssTree::build(keys.clone());
            for p in probes {
                prop_assert_eq!(t.lower_bound(p), keys.partition_point(|&k| k < p));
            }
        }
    }
}
