//! Access structures used and benchmarked by the engine.
//!
//! * [`hash`] — the bucket-chained hash table used by hash-join. Bucket
//!   count is a power of two so bucket selection is a mask, not a division:
//!   §4.2/[25] found that removing divisions from inner loops is one of the
//!   CPU optimizations that *compound* with cache optimizations. A
//!   division-based hasher is kept for the E04 ablation.
//! * [`btree`] — a pointer-based B+-tree, the "slotted page" style lookup
//!   baseline the paper contrasts with O(1) positional access (§3).
//! * [`css`] — Cache-Sensitive Search tree (Rao & Ross, §7): pointer-free
//!   array layout with arithmetic child addressing and line-sized nodes.
//! * [`zonemap`] — per-block min/max summaries, the simplest form of the
//!   "partial indexing" theme.

pub mod btree;
pub mod css;
pub mod hash;
pub mod zonemap;

pub use btree::BPlusTree;
pub use css::CssTree;
pub use hash::{HashTable, KeyHasher, MaskHasher, ModuloHasher};
pub use zonemap::ZoneMap;
