//! Fixed-width bit packing.
//!
//! Values are stored as `width`-bit unsigned offsets from a frame base
//! (frame-of-reference). The unpack loop reads whole `u64` words and shifts
//! — no branches, no data dependences between iterations.

/// Bits needed to represent `v`.
#[inline]
pub fn bits_for(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Pack each `values[i]` (must fit in `width` bits) into a dense bit stream.
pub fn pack(values: &[u64], width: u32) -> Vec<u64> {
    assert!(width <= 64);
    if width == 0 {
        return Vec::new();
    }
    let total_bits = values.len() * width as usize;
    let mut out = vec![0u64; total_bits.div_ceil(64)];
    let mut bitpos = 0usize;
    for &v in values {
        debug_assert!(width == 64 || v < (1u64 << width), "value exceeds width");
        let word = bitpos / 64;
        let off = (bitpos % 64) as u32;
        out[word] |= v << off;
        if off + width > 64 {
            out[word + 1] |= v >> (64 - off);
        }
        bitpos += width as usize;
    }
    out
}

/// Unpack `n` `width`-bit values from `packed`.
pub fn unpack(packed: &[u64], n: usize, width: u32) -> Vec<u64> {
    assert!(width <= 64);
    let mut out = Vec::with_capacity(n);
    if width == 0 {
        out.resize(n, 0);
        return out;
    }
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut bitpos = 0usize;
    for _ in 0..n {
        let word = bitpos / 64;
        let off = (bitpos % 64) as u32;
        let mut v = packed[word] >> off;
        if off + width > 64 {
            v |= packed[word + 1] << (64 - off);
        }
        out.push(v & mask);
        bitpos += width as usize;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_for_values() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn roundtrip_widths() {
        for width in [1u32, 3, 7, 8, 13, 31, 32, 33, 63, 64] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..100u64).map(|i| (i * 0x9E3779B9) & mask).collect();
            let packed = pack(&values, width);
            assert_eq!(unpack(&packed, values.len(), width), values, "w={width}");
        }
    }

    #[test]
    fn zero_width_is_all_zeros() {
        let packed = pack(&[0, 0, 0], 0);
        assert!(packed.is_empty());
        assert_eq!(unpack(&packed, 3, 0), vec![0, 0, 0]);
    }

    #[test]
    fn packing_is_dense() {
        let values = vec![1u64; 64];
        assert_eq!(pack(&values, 1).len(), 1); // 64 bits in one word
        assert_eq!(pack(&values, 3).len(), 3); // 192 bits in three words
    }

    proptest! {
        #[test]
        fn prop_roundtrip(values in proptest::collection::vec(0u64..(1 << 17), 0..200)) {
            let width = 17;
            let packed = pack(&values, width);
            prop_assert_eq!(unpack(&packed, values.len(), width), values);
        }
    }
}
