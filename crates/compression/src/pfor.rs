//! PFOR: Patched Frame-of-Reference.
//!
//! Per block of 1024 values, choose a frame base (the block minimum) and a
//! bit width that covers most values; outliers become *exceptions*, stored
//! out-of-band and patched back after the branch-free bulk unpack. This is
//! the decomposition that makes the decode loop super-scalar: the common
//! path has no branches, and the (rare) patch loop runs afterwards.

use crate::bitpack;

pub const BLOCK: usize = 1024;

/// One encoded block.
#[derive(Debug, Clone)]
pub struct PforBlock {
    pub base: i64,
    pub width: u32,
    pub n: usize,
    /// Packed `width`-bit offsets from `base` (exceptions hold 0).
    pub packed: Vec<u64>,
    /// Positions of exceptions within the block.
    pub exc_pos: Vec<u32>,
    /// Exception values (verbatim).
    pub exc_val: Vec<i64>,
}

/// A PFOR-encoded column.
#[derive(Debug, Clone)]
pub struct PforEncoded {
    pub blocks: Vec<PforBlock>,
    pub len: usize,
}

/// Choose the width that minimizes packed-bits + exception cost.
fn choose_width(offsets: &[u64]) -> u32 {
    let mut widths: Vec<u32> = offsets.iter().map(|&o| bitpack::bits_for(o)).collect();
    widths.sort_unstable();
    let n = widths.len();
    let mut best = (u64::MAX, 64u32);
    // candidate widths: cover the p-th largest value for a few percentiles
    for &w in &[
        widths[n - 1],        // no exceptions
        widths[n * 99 / 100], // ~1% exceptions
        widths[n * 95 / 100], // ~5% exceptions
        widths[n / 2],        // half exceptions (pathological guard)
    ] {
        let w = w.max(1);
        let exceptions = widths.iter().filter(|&&x| x > w).count() as u64;
        let cost = (n as u64) * w as u64 + exceptions * (64 + 32);
        if cost < best.0 {
            best = (cost, w);
        }
    }
    best.1
}

fn encode_block(values: &[i64]) -> PforBlock {
    let base = *values.iter().min().unwrap();
    let offsets: Vec<u64> = values
        .iter()
        .map(|&v| (v as i128 - base as i128) as u64)
        .collect();
    let width = choose_width(&offsets);
    let limit = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut exc_pos = Vec::new();
    let mut exc_val = Vec::new();
    let mut small = Vec::with_capacity(values.len());
    for (i, &off) in offsets.iter().enumerate() {
        if off > limit {
            exc_pos.push(i as u32);
            exc_val.push(values[i]);
            small.push(0);
        } else {
            small.push(off);
        }
    }
    PforBlock {
        base,
        width,
        n: values.len(),
        packed: bitpack::pack(&small, width),
        exc_pos,
        exc_val,
    }
}

/// Encode a column into PFOR blocks.
pub fn encode(values: &[i64]) -> PforEncoded {
    let blocks = values.chunks(BLOCK).map(encode_block).collect();
    PforEncoded {
        blocks,
        len: values.len(),
    }
}

/// Decode one block into `out` (appends `n` values).
pub fn decode_block(b: &PforBlock, out: &mut Vec<i64>) {
    let start = out.len();
    // bulk: branch-free unpack + base add
    let raw = bitpack::unpack(&b.packed, b.n, b.width);
    out.extend(raw.iter().map(|&o| b.base.wrapping_add(o as i64)));
    // patch: exceptions overwrite after the fact
    for (&p, &v) in b.exc_pos.iter().zip(&b.exc_val) {
        out[start + p as usize] = v;
    }
}

/// Decode the whole column.
pub fn decode(e: &PforEncoded) -> Vec<i64> {
    let mut out = Vec::with_capacity(e.len);
    for b in &e.blocks {
        decode_block(b, &mut out);
    }
    out
}

/// Encoded size in bytes.
pub fn encoded_bytes(e: &PforEncoded) -> usize {
    e.blocks
        .iter()
        .map(|b| 8 + 4 + 8 + b.packed.len() * 8 + b.exc_pos.len() * 4 + b.exc_val.len() * 8)
        .sum()
}

/// Fraction of values stored as exceptions (diagnostics).
pub fn exception_rate(e: &PforEncoded) -> f64 {
    if e.len == 0 {
        return 0.0;
    }
    let exc: usize = e.blocks.iter().map(|b| b.exc_val.len()).sum();
    exc as f64 / e.len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_smooth_data() {
        let v: Vec<i64> = (0..5000).map(|i| 1000 + (i % 50)).collect();
        let e = encode(&v);
        assert_eq!(decode(&e), v);
        assert_eq!(exception_rate(&e), 0.0);
        // 50 distinct offsets fit in 6 bits: big ratio
        assert!(encoded_bytes(&e) * 8 < v.len() * 8 * 2);
    }

    #[test]
    fn outliers_become_exceptions() {
        // high outliers are patched; a low outlier becomes the frame base
        let mut v: Vec<i64> = (0..1024).map(|i| 10 + (i % 4)).collect();
        v[100] = 1_000_000_000;
        v[700] = 2_000_000_000;
        let e = encode(&v);
        assert_eq!(decode(&e), v);
        let exc: usize = e.blocks.iter().map(|b| b.exc_val.len()).sum();
        assert_eq!(exc, 2, "exactly the two outliers are exceptions");
        // width stays tiny despite the outliers
        assert!(e.blocks[0].width <= 2, "width {}", e.blocks[0].width);
    }

    #[test]
    fn low_outlier_becomes_frame_base() {
        let mut v: Vec<i64> = vec![10; 1024];
        v[999] = -5_000_000;
        let e = encode(&v);
        assert_eq!(decode(&e), v);
        assert_eq!(e.blocks[0].base, -5_000_000);
    }

    #[test]
    fn negative_and_extreme_values() {
        let v = vec![i64::MIN, i64::MAX, 0, -1, 1];
        let e = encode(&v);
        assert_eq!(decode(&e), v);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(decode(&encode(&[])), Vec::<i64>::new());
        assert_eq!(decode(&encode(&[7])), vec![7]);
    }

    #[test]
    fn multi_block() {
        let v: Vec<i64> = (0..3000).map(|i| i * 17 % 997).collect();
        let e = encode(&v);
        assert_eq!(e.blocks.len(), 3);
        assert_eq!(decode(&e), v);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in proptest::collection::vec(proptest::num::i64::ANY, 0..2500)) {
            prop_assert_eq!(decode(&encode(&v)), v);
        }

        #[test]
        fn prop_skewed_roundtrip(
            mut v in proptest::collection::vec(0i64..100, 100..1500),
            outliers in proptest::collection::vec((0usize..100, proptest::num::i64::ANY), 0..20),
        ) {
            for (i, val) in outliers {
                let n = v.len();
                v[i % n] = val;
            }
            prop_assert_eq!(decode(&encode(&v)), v);
        }
    }
}
