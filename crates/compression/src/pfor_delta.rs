//! PFOR-DELTA: PFOR over consecutive differences.
//!
//! Quasi-sorted columns (timestamps, dense keys) have tiny deltas with the
//! occasional jump — exactly the "small common case + rare exception" shape
//! PFOR's patching handles well.

use crate::pfor::{self, PforEncoded};

/// A PFOR-DELTA encoded column: first value verbatim, deltas PFOR-packed.
#[derive(Debug, Clone)]
pub struct PforDeltaEncoded {
    pub first: i64,
    pub deltas: PforEncoded,
    pub len: usize,
}

/// Encode.
pub fn encode(values: &[i64]) -> PforDeltaEncoded {
    if values.is_empty() {
        return PforDeltaEncoded {
            first: 0,
            deltas: pfor::encode(&[]),
            len: 0,
        };
    }
    let deltas: Vec<i64> = values.windows(2).map(|w| w[1].wrapping_sub(w[0])).collect();
    PforDeltaEncoded {
        first: values[0],
        deltas: pfor::encode(&deltas),
        len: values.len(),
    }
}

/// Decode: bulk-unpack the deltas, then one prefix-sum pass.
pub fn decode(e: &PforDeltaEncoded) -> Vec<i64> {
    if e.len == 0 {
        return Vec::new();
    }
    let deltas = pfor::decode(&e.deltas);
    let mut out = Vec::with_capacity(e.len);
    let mut cur = e.first;
    out.push(cur);
    for &d in &deltas {
        cur = cur.wrapping_add(d);
        out.push(cur);
    }
    out
}

/// Encoded size in bytes.
pub fn encoded_bytes(e: &PforDeltaEncoded) -> usize {
    8 + pfor::encoded_bytes(&e.deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sorted_data_compresses_hard() {
        let v: Vec<i64> = (0..10_000).map(|i| 1_000_000 + i * 3).collect();
        let e = encode(&v);
        assert_eq!(decode(&e), v);
        // constant deltas of 3: ~2 bits per value
        assert!(
            encoded_bytes(&e) < v.len(),
            "got {} bytes for {} values",
            encoded_bytes(&e),
            v.len()
        );
    }

    #[test]
    fn quasi_sorted_with_jumps() {
        let mut v: Vec<i64> = (0..2048).collect();
        v[512] = 1_000_000;
        v[513] = 513; // resume the sequence
        let e = encode(&v);
        assert_eq!(decode(&e), v);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(decode(&encode(&[])), Vec::<i64>::new());
        assert_eq!(decode(&encode(&[-9])), vec![-9]);
    }

    #[test]
    fn wrapping_deltas() {
        let v = vec![i64::MAX, i64::MIN, 0];
        let e = encode(&v);
        assert_eq!(decode(&e), v);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in proptest::collection::vec(proptest::num::i64::ANY, 0..1500)) {
            prop_assert_eq!(decode(&encode(&v)), v);
        }
    }
}
