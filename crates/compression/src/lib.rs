//! Light-weight column compression (§5).
//!
//! "To reduce I/O bandwidth needs, X100 added vectorized ultra-fast
//! compression methods [44] that decompress values in less than 5 CPU cycles
//! per tuple." The schemes reproduced here are the super-scalar family of
//! Zukowski et al. (ICDE 2006): the decompression loops are branch-light,
//! data-dependence-free and patch exceptions *after* the bulk unpack, so a
//! modern CPU can keep multiple iterations in flight.
//!
//! All codecs operate on `i64` logical values (integers of any width widen
//! losslessly) and round-trip exactly, including `i64::MIN` (= nil).
//!
//! * [`rle`] — run-length encoding, for sorted/clustered columns;
//! * [`dict`] — dictionary encoding with bit-packed codes;
//! * [`bitpack`] — fixed-width bit packing of a `[min, max]` frame;
//! * [`pfor`] — Patched Frame-of-Reference: small fixed width for the common
//!   case, out-of-band exception list for outliers;
//! * [`pfor_delta`] — PFOR over deltas, for quasi-sorted columns;
//! * [`scheme`] — a tagged container + a heuristic scheme picker.

pub mod bitpack;
pub mod dict;
pub mod pfor;
pub mod pfor_delta;
pub mod rle;
pub mod scheme;

pub use scheme::{compress, compressed_size, decompress, pick_scheme, Compressed, Scheme};
