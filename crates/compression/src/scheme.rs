//! Tagged compressed columns and a heuristic scheme picker.

use crate::{bitpack, dict, pfor, pfor_delta, rle};

/// Available compression schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No compression (the fallback that is never worse than 1.0x + ε).
    Plain,
    Rle,
    Dict,
    Pfor,
    PforDelta,
}

impl Scheme {
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Plain => "plain",
            Scheme::Rle => "rle",
            Scheme::Dict => "dict",
            Scheme::Pfor => "pfor",
            Scheme::PforDelta => "pfor-delta",
        }
    }
}

/// A compressed column.
#[derive(Debug, Clone)]
pub enum Compressed {
    Plain(Vec<i64>),
    Rle(Vec<rle::Run>),
    Dict(dict::DictEncoded),
    Pfor(pfor::PforEncoded),
    PforDelta(pfor_delta::PforDeltaEncoded),
}

impl Compressed {
    pub fn scheme(&self) -> Scheme {
        match self {
            Compressed::Plain(_) => Scheme::Plain,
            Compressed::Rle(_) => Scheme::Rle,
            Compressed::Dict(_) => Scheme::Dict,
            Compressed::Pfor(_) => Scheme::Pfor,
            Compressed::PforDelta(_) => Scheme::PforDelta,
        }
    }
}

/// Compress with an explicit scheme.
pub fn compress(values: &[i64], scheme: Scheme) -> Compressed {
    match scheme {
        Scheme::Plain => Compressed::Plain(values.to_vec()),
        Scheme::Rle => Compressed::Rle(rle::encode(values)),
        Scheme::Dict => Compressed::Dict(dict::encode(values)),
        Scheme::Pfor => Compressed::Pfor(pfor::encode(values)),
        Scheme::PforDelta => Compressed::PforDelta(pfor_delta::encode(values)),
    }
}

/// Decompress any scheme.
pub fn decompress(c: &Compressed) -> Vec<i64> {
    match c {
        Compressed::Plain(v) => v.clone(),
        Compressed::Rle(r) => rle::decode(r),
        Compressed::Dict(d) => dict::decode(d),
        Compressed::Pfor(p) => pfor::decode(p),
        Compressed::PforDelta(p) => pfor_delta::decode(p),
    }
}

/// Encoded size in bytes.
pub fn compressed_size(c: &Compressed) -> usize {
    match c {
        Compressed::Plain(v) => v.len() * 8,
        Compressed::Rle(r) => rle::encoded_bytes(r),
        Compressed::Dict(d) => dict::encoded_bytes(d),
        Compressed::Pfor(p) => pfor::encoded_bytes(p),
        Compressed::PforDelta(p) => pfor_delta::encoded_bytes(p),
    }
}

/// Pick a scheme from a sample of the data (X100-style per-column choice):
/// long runs → RLE; few distinct values → DICT; small sorted deltas →
/// PFOR-DELTA; small value range → PFOR; otherwise plain.
pub fn pick_scheme(values: &[i64]) -> Scheme {
    if values.len() < 16 {
        return Scheme::Plain;
    }
    let sample = &values[..values.len().min(4096)];
    // run structure
    let runs = rle::encode(sample).len();
    if runs * 8 <= sample.len() {
        return Scheme::Rle;
    }
    // distinct count (bounded probe)
    let mut distinct = std::collections::HashSet::new();
    let mut too_many = false;
    for &v in sample {
        distinct.insert(v);
        if distinct.len() > 256 {
            too_many = true;
            break;
        }
    }
    if !too_many {
        return Scheme::Dict;
    }
    // sortedness / delta size
    let sorted_pairs = sample.windows(2).filter(|w| w[0] <= w[1]).count();
    if sorted_pairs * 10 >= sample.len() * 9 {
        return Scheme::PforDelta;
    }
    // value range
    let (min, max) = sample
        .iter()
        .fold((i64::MAX, i64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let range = (max as i128 - min as i128) as u64;
    if bitpack::bits_for(range) <= 32 {
        return Scheme::Pfor;
    }
    Scheme::Plain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_all(v: &[i64]) {
        for s in [
            Scheme::Plain,
            Scheme::Rle,
            Scheme::Dict,
            Scheme::Pfor,
            Scheme::PforDelta,
        ] {
            let c = compress(v, s);
            assert_eq!(c.scheme(), s);
            assert_eq!(decompress(&c), v, "scheme {s:?}");
        }
    }

    #[test]
    fn every_scheme_roundtrips() {
        roundtrip_all(&[]);
        roundtrip_all(&[1, 1, 1, 5, -3, 1 << 40, i64::MIN, i64::MAX]);
        let v: Vec<i64> = (0..5000).map(|i| (i * 37) % 101).collect();
        roundtrip_all(&v);
    }

    #[test]
    fn picker_recognizes_shapes() {
        let runs: Vec<i64> = (0..4000).map(|i| i / 500).collect();
        assert_eq!(pick_scheme(&runs), Scheme::Rle);

        let lowcard: Vec<i64> = (0..4000).map(|i| (i * 7919) % 50).collect();
        assert_eq!(pick_scheme(&lowcard), Scheme::Dict);

        let sorted: Vec<i64> = (0..4000).map(|i| i * i).collect();
        assert_eq!(pick_scheme(&sorted), Scheme::PforDelta);

        let narrow: Vec<i64> = (0..4000).map(|i| (i * 2654435761i64) % 100_000).collect();
        assert!(matches!(pick_scheme(&narrow), Scheme::Pfor | Scheme::Dict));

        assert_eq!(pick_scheme(&[1, 2, 3]), Scheme::Plain);
    }

    #[test]
    fn picked_scheme_actually_compresses() {
        let data: Vec<i64> = (0..8000).map(|i| 500_000 + i).collect();
        let s = pick_scheme(&data);
        let c = compress(&data, s);
        assert!(compressed_size(&c) < data.len() * 8 / 4);
        assert_eq!(decompress(&c), data);
    }
}
