//! Run-length encoding.

/// One run: `count` repetitions of `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    pub value: i64,
    pub count: u32,
}

/// Encode into runs. Runs longer than `u32::MAX` split.
pub fn encode(values: &[i64]) -> Vec<Run> {
    let mut out = Vec::new();
    let mut it = values.iter();
    let Some(&first) = it.next() else {
        return out;
    };
    let mut cur = Run {
        value: first,
        count: 1,
    };
    for &v in it {
        if v == cur.value && cur.count < u32::MAX {
            cur.count += 1;
        } else {
            out.push(cur);
            cur = Run { value: v, count: 1 };
        }
    }
    out.push(cur);
    out
}

/// Decode runs back to values.
pub fn decode(runs: &[Run]) -> Vec<i64> {
    let n: usize = runs.iter().map(|r| r.count as usize).sum();
    let mut out = Vec::with_capacity(n);
    for r in runs {
        out.resize(out.len() + r.count as usize, r.value);
    }
    out
}

/// Decode straight into a sum (predicate-less aggregation over compressed
/// data — each run contributes `value * count` without expanding).
pub fn sum_without_decoding(runs: &[Run]) -> i64 {
    runs.iter()
        .map(|r| r.value.wrapping_mul(r.count as i64))
        .sum()
}

/// Encoded size in bytes (value + count per run).
pub fn encoded_bytes(runs: &[Run]) -> usize {
    runs.len() * (8 + 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encodes_runs() {
        let v = vec![5i64, 5, 5, 2, 2, 9];
        let r = encode(&v);
        assert_eq!(
            r,
            vec![
                Run { value: 5, count: 3 },
                Run { value: 2, count: 2 },
                Run { value: 9, count: 1 },
            ]
        );
        assert_eq!(decode(&r), v);
    }

    #[test]
    fn empty_input() {
        assert!(encode(&[]).is_empty());
        assert!(decode(&[]).is_empty());
    }

    #[test]
    fn sum_shortcut() {
        let v = vec![3i64; 1000];
        let r = encode(&v);
        assert_eq!(r.len(), 1);
        assert_eq!(sum_without_decoding(&r), 3000);
    }

    #[test]
    fn ratio_on_sorted_data() {
        let v: Vec<i64> = (0..10_000).map(|i| i / 100).collect();
        let r = encode(&v);
        assert_eq!(r.len(), 100);
        assert!(encoded_bytes(&r) * 10 < v.len() * 8);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in proptest::collection::vec(-5i64..5, 0..300)) {
            prop_assert_eq!(decode(&encode(&v)), v);
        }

        #[test]
        fn prop_sum_matches(v in proptest::collection::vec(-100i64..100, 0..300)) {
            let direct: i64 = v.iter().sum();
            prop_assert_eq!(sum_without_decoding(&encode(&v)), direct);
        }
    }
}
