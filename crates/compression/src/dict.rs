//! Dictionary encoding with bit-packed codes.

use crate::bitpack;
use std::collections::HashMap;

/// A dictionary-encoded column: distinct values plus packed codes.
#[derive(Debug, Clone)]
pub struct DictEncoded {
    /// Distinct values in first-appearance order.
    pub dictionary: Vec<i64>,
    /// Packed `code_width`-bit codes, one per row.
    pub codes: Vec<u64>,
    pub code_width: u32,
    pub len: usize,
}

/// Encode; worthwhile when the number of distinct values is small.
pub fn encode(values: &[i64]) -> DictEncoded {
    let mut dict = Vec::new();
    let mut map: HashMap<i64, u64> = HashMap::new();
    let mut raw_codes = Vec::with_capacity(values.len());
    for &v in values {
        let next = dict.len() as u64;
        let code = *map.entry(v).or_insert_with(|| {
            dict.push(v);
            next
        });
        raw_codes.push(code);
    }
    let code_width = bitpack::bits_for(dict.len().saturating_sub(1) as u64).max(1);
    let codes = bitpack::pack(&raw_codes, code_width);
    DictEncoded {
        dictionary: dict,
        codes,
        code_width,
        len: values.len(),
    }
}

/// Decode all rows.
pub fn decode(e: &DictEncoded) -> Vec<i64> {
    let raw = bitpack::unpack(&e.codes, e.len, e.code_width);
    raw.iter().map(|&c| e.dictionary[c as usize]).collect()
}

/// Encoded size in bytes.
pub fn encoded_bytes(e: &DictEncoded) -> usize {
    e.dictionary.len() * 8 + e.codes.len() * 8
}

/// Evaluate `value == needle` directly on codes: find the dictionary code
/// once, then compare small integers — the "execution on compressed data"
/// trick of column stores.
pub fn select_eq_on_codes(e: &DictEncoded, needle: i64) -> Vec<usize> {
    let Some(code) = e.dictionary.iter().position(|&d| d == needle) else {
        return Vec::new();
    };
    let code = code as u64;
    let raw = bitpack::unpack(&e.codes, e.len, e.code_width);
    raw.iter()
        .enumerate()
        .filter(|(_, &c)| c == code)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip() {
        let v = vec![7i64, 7, -2, 7, 100, -2];
        let e = encode(&v);
        assert_eq!(e.dictionary, vec![7, -2, 100]);
        assert_eq!(e.code_width, 2);
        assert_eq!(decode(&e), v);
    }

    #[test]
    fn single_value_column() {
        let v = vec![42i64; 100];
        let e = encode(&v);
        assert_eq!(e.dictionary.len(), 1);
        assert_eq!(e.code_width, 1);
        assert!(encoded_bytes(&e) < 8 * 100 / 4);
        assert_eq!(decode(&e), v);
    }

    #[test]
    fn empty() {
        let e = encode(&[]);
        assert_eq!(decode(&e), Vec::<i64>::new());
    }

    #[test]
    fn select_on_codes() {
        let v = vec![5i64, 9, 5, 3, 9, 5];
        let e = encode(&v);
        assert_eq!(select_eq_on_codes(&e, 5), vec![0, 2, 5]);
        assert_eq!(select_eq_on_codes(&e, 9), vec![1, 4]);
        assert_eq!(select_eq_on_codes(&e, 777), Vec::<usize>::new());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in proptest::collection::vec(-8i64..8, 0..400)) {
            prop_assert_eq!(decode(&encode(&v)), v);
        }

        #[test]
        fn prop_select_matches_scan(v in proptest::collection::vec(-4i64..4, 0..200)) {
            let e = encode(&v);
            for needle in -4i64..4 {
                let expect: Vec<usize> = v.iter().enumerate()
                    .filter(|(_, &x)| x == needle).map(|(i, _)| i).collect();
                prop_assert_eq!(select_eq_on_codes(&e, needle), expect);
            }
        }
    }
}
