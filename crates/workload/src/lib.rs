//! Deterministic workload generators for the experiments.
//!
//! Everything is seeded: the same seed produces the same data on every
//! machine, so EXPERIMENTS.md results are reproducible. The generators
//! cover the data shapes the evaluation needs:
//!
//! * [`columns`] — value distributions (uniform, zipf, sorted,
//!   quasi-sorted, clustered, low-cardinality strings);
//! * [`queries`] — range-query logs for the cracking experiment and a
//!   Skyserver-like log with power-law repetition for the recycler
//!   experiment (substitution for the real Skyserver trace, see DESIGN.md);
//! * [`tpch`] — a TPC-H-like `lineitem` slice for the vectorized-execution
//!   sweep (substitution for audited TPC-H data).

pub mod columns;
pub mod queries;
pub mod tpch;

pub use columns::*;
pub use queries::{range_query_log, skyserver_log, QueryPattern, RangeQuery, ReuseQuery};
pub use tpch::LineitemSlice;
