//! Query-log generators.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One range query over a value domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeQuery {
    pub lo: i64,
    pub hi: i64,
}

/// How range-query predicates move over time (the cracking literature's
/// access patterns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryPattern {
    /// Uniformly random ranges.
    Random,
    /// Ranges concentrate in a hot fraction of the domain.
    Focused { hot_fraction: f64 },
    /// Ranges sweep the domain left to right (worst case for cracking's
    /// convergence claims, good for testing).
    Sequential,
}

/// Generate `n` range queries over `[0, domain)` selecting about
/// `selectivity` of it each.
pub fn range_query_log(
    n: usize,
    domain: i64,
    selectivity: f64,
    pattern: QueryPattern,
    seed: u64,
) -> Vec<RangeQuery> {
    assert!(domain > 0);
    let width = ((domain as f64 * selectivity) as i64).clamp(1, domain);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let lo = match pattern {
                QueryPattern::Random => rng.random_range(0..(domain - width + 1)),
                QueryPattern::Focused { hot_fraction } => {
                    let hot = ((domain as f64) * hot_fraction) as i64;
                    let span = (hot - width).max(1);
                    rng.random_range(0..span)
                }
                QueryPattern::Sequential => {
                    let steps = (domain - width).max(1);
                    (i as i64 * steps / n.max(1) as i64).min(steps - 1)
                }
            };
            RangeQuery { lo, hi: lo + width }
        })
        .collect()
}

/// One query of the reuse (Skyserver-like) log: a range over one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseQuery {
    pub column: usize,
    pub range: RangeQuery,
}

/// A log with power-law *repetition*: a small set of distinct queries is
/// drawn zipf-style, so some queries recur many times — the property the
/// Skyserver log has and the recycler exploits ([19]; substitution noted
/// in DESIGN.md).
pub fn skyserver_log(
    n: usize,
    ncolumns: usize,
    distinct_queries: usize,
    skew: f64,
    domain: i64,
    seed: u64,
) -> Vec<ReuseQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    // the pool of distinct queries
    let pool: Vec<ReuseQuery> = (0..distinct_queries.max(1))
        .map(|_| {
            let width = rng.random_range(domain / 50..domain / 5).max(1);
            let lo = rng.random_range(0..(domain - width).max(1));
            ReuseQuery {
                column: rng.random_range(0..ncolumns.max(1)),
                range: RangeQuery { lo, hi: lo + width },
            }
        })
        .collect();
    // zipf ranks over the pool
    let mut weights: Vec<f64> = (1..=pool.len())
        .map(|k| 1.0 / (k as f64).powf(skew))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    (0..n)
        .map(|_| {
            let u: f64 = rng.random();
            pool[weights.partition_point(|&c| c < u)].clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_is_deterministic_and_bounded() {
        let a = range_query_log(100, 10_000, 0.01, QueryPattern::Random, 3);
        let b = range_query_log(100, 10_000, 0.01, QueryPattern::Random, 3);
        assert_eq!(a, b);
        for q in &a {
            assert!(q.lo >= 0 && q.hi <= 10_000 && q.lo < q.hi);
            assert_eq!(q.hi - q.lo, 100);
        }
    }

    #[test]
    fn sequential_sweeps() {
        let log = range_query_log(10, 1000, 0.05, QueryPattern::Sequential, 1);
        assert!(log.windows(2).all(|w| w[0].lo <= w[1].lo));
        assert!(log[0].lo < log[9].lo);
    }

    #[test]
    fn focused_stays_hot() {
        let log = range_query_log(
            200,
            10_000,
            0.01,
            QueryPattern::Focused { hot_fraction: 0.1 },
            2,
        );
        assert!(log.iter().all(|q| q.hi <= 1100));
    }

    #[test]
    fn skyserver_log_repeats() {
        let log = skyserver_log(1000, 4, 50, 1.1, 100_000, 7);
        assert_eq!(log.len(), 1000);
        let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        for q in &log {
            *counts.entry(format!("{q:?}")).or_default() += 1;
        }
        assert!(counts.len() <= 50);
        let max = counts.values().max().unwrap();
        assert!(
            *max > 1000 / 50 * 3,
            "head query should repeat far above the mean: {max}"
        );
        assert!(log.iter().all(|q| q.column < 4));
    }
}
