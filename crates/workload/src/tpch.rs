//! A TPC-H-like `lineitem` slice.
//!
//! The vectorized-execution experiments need a scan+filter+aggregate
//! workload with realistic column shapes (quantities, prices, discounts,
//! dates). This generator produces a deterministic slice with the same
//! value distributions TPC-H specifies, without claiming conformance
//! (substitution documented in DESIGN.md).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Columns of the slice (money in cents, dates in days since epoch).
#[derive(Debug, Clone)]
pub struct LineitemSlice {
    pub quantity: Vec<i64>,      // 1..=50
    pub extendedprice: Vec<i64>, // 90_000..=10_500_000 cents
    pub discount: Vec<i64>,      // 0..=10 (percent)
    pub tax: Vec<i64>,           // 0..=8 (percent)
    pub shipdate: Vec<i64>,      // ~7 years of days
    pub returnflag: Vec<i64>,    // 0..=2  (A/N/R)
    pub linestatus: Vec<i64>,    // 0..=1  (O/F)
}

impl LineitemSlice {
    /// Generate `n` rows.
    pub fn generate(n: usize, seed: u64) -> LineitemSlice {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = LineitemSlice {
            quantity: Vec::with_capacity(n),
            extendedprice: Vec::with_capacity(n),
            discount: Vec::with_capacity(n),
            tax: Vec::with_capacity(n),
            shipdate: Vec::with_capacity(n),
            returnflag: Vec::with_capacity(n),
            linestatus: Vec::with_capacity(n),
        };
        for _ in 0..n {
            let qty = rng.random_range(1..=50i64);
            s.quantity.push(qty);
            // price correlates with quantity, as in TPC-H
            let unit = rng.random_range(90_000..=210_000i64);
            s.extendedprice.push(qty * unit / 10);
            s.discount.push(rng.random_range(0..=10));
            s.tax.push(rng.random_range(0..=8));
            s.shipdate.push(rng.random_range(8766..=11322)); // 1994..2001-ish
            s.returnflag.push(rng.random_range(0..=2));
            s.linestatus.push(rng.random_range(0..=1));
        }
        s
    }

    pub fn len(&self) -> usize {
        self.quantity.len()
    }

    pub fn is_empty(&self) -> bool {
        self.quantity.is_empty()
    }

    /// Reference answer for the Q1-like aggregate used in E07/E08:
    /// `count, sum(qty), sum(price)` for rows with
    /// `shipdate <= cutoff AND quantity < qty_bound`.
    pub fn q1_reference(&self, cutoff: i64, qty_bound: i64) -> (i64, i64, i64) {
        let mut count = 0;
        let mut sq = 0;
        let mut sp = 0;
        for i in 0..self.len() {
            if self.shipdate[i] <= cutoff && self.quantity[i] < qty_bound {
                count += 1;
                sq += self.quantity[i];
                sp += self.extendedprice[i];
            }
        }
        (count, sq, sp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let a = LineitemSlice::generate(1000, 42);
        let b = LineitemSlice::generate(1000, 42);
        assert_eq!(a.quantity, b.quantity);
        assert_eq!(a.extendedprice, b.extendedprice);
        assert!(a.quantity.iter().all(|&q| (1..=50).contains(&q)));
        assert!(a.discount.iter().all(|&d| (0..=10).contains(&d)));
        assert!(a.returnflag.iter().all(|&f| (0..=2).contains(&f)));
    }

    #[test]
    fn q1_reference_counts() {
        let s = LineitemSlice::generate(10_000, 1);
        let (c, sq, sp) = s.q1_reference(i64::MAX, i64::MAX);
        assert_eq!(c, 10_000);
        assert_eq!(sq, s.quantity.iter().sum::<i64>());
        assert_eq!(sp, s.extendedprice.iter().sum::<i64>());
        let (c2, _, _) = s.q1_reference(10_000, 25);
        assert!(c2 < c && c2 > 0);
    }
}
