//! Column value distributions.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Uniform integers in `[lo, hi)`.
pub fn uniform_i64(n: usize, lo: i64, hi: i64, seed: u64) -> Vec<i64> {
    assert!(lo < hi);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(lo..hi)).collect()
}

/// Uniform u64 keys over the full domain (hash-like).
pub fn uniform_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random()).collect()
}

/// A random permutation of `0..n` (unique join keys).
pub fn permutation(n: usize, seed: u64) -> Vec<i64> {
    use rand::seq::SliceRandom;
    let mut v: Vec<i64> = (0..n as i64).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    v.shuffle(&mut rng);
    v
}

/// Zipf-distributed values over `0..domain` with skew `alpha`
/// (`alpha = 0` is uniform; `~1` is the classic heavy skew).
pub fn zipf_i64(n: usize, domain: usize, alpha: f64, seed: u64) -> Vec<i64> {
    assert!(domain > 0);
    // precompute the CDF once; domain sizes in the experiments are modest
    let mut weights: Vec<f64> = (1..=domain).map(|k| 1.0 / (k as f64).powf(alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.random();
            weights.partition_point(|&c| c < u) as i64
        })
        .collect()
}

/// Strictly ascending values starting at `base`, step in `[1, max_step]`.
pub fn sorted_i64(n: usize, base: i64, max_step: i64, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = base;
    (0..n)
        .map(|_| {
            cur += rng.random_range(1..=max_step.max(1));
            cur
        })
        .collect()
}

/// Mostly sorted data: ascending with occasional jumps (probability
/// `jump_prob`) — the PFOR-DELTA sweet spot.
pub fn quasi_sorted_i64(n: usize, jump_prob: f64, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = 0i64;
    (0..n)
        .map(|_| {
            if rng.random::<f64>() < jump_prob {
                cur += rng.random_range(1000..100_000i64);
            } else {
                cur += rng.random_range(0..4i64);
            }
            cur
        })
        .collect()
}

/// Values forming long runs (RLE-friendly): `n / runs` values per run.
pub fn clustered_i64(n: usize, runs: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let run_len = n.div_ceil(runs.max(1));
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let v: i64 = rng.random_range(0..1000);
        for _ in 0..run_len.min(n - out.len()) {
            out.push(v);
        }
    }
    out
}

/// Low-cardinality strings: `card` distinct values like `"val_17"`.
pub fn strings_low_card(n: usize, card: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| format!("val_{}", rng.random_range(0..card.max(1))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(uniform_i64(50, 0, 100, 7), uniform_i64(50, 0, 100, 7));
        assert_ne!(uniform_i64(50, 0, 100, 7), uniform_i64(50, 0, 100, 8));
        assert_eq!(zipf_i64(20, 100, 1.0, 3), zipf_i64(20, 100, 1.0, 3));
    }

    #[test]
    fn uniform_respects_bounds() {
        let v = uniform_i64(1000, -5, 5, 1);
        assert!(v.iter().all(|&x| (-5..5).contains(&x)));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut v = permutation(100, 2);
        v.sort_unstable();
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_skews() {
        let v = zipf_i64(10_000, 1000, 1.2, 5);
        let zeros = v.iter().filter(|&&x| x == 0).count();
        let high = v.iter().filter(|&&x| x > 500).count();
        assert!(zeros > high, "rank 0 should dominate: {zeros} vs {high}");
        assert!(v.iter().all(|&x| (0..1000).contains(&x)));
    }

    #[test]
    fn sorted_is_sorted() {
        let v = sorted_i64(500, 10, 3, 4);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        let q = quasi_sorted_i64(500, 0.01, 4);
        assert!(q.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn clustered_has_runs() {
        let v = clustered_i64(1000, 10, 6);
        assert_eq!(v.len(), 1000);
        let runs = v.windows(2).filter(|w| w[0] != w[1]).count() + 1;
        assert!(runs <= 12, "expected ~10 runs, got {runs}");
    }

    #[test]
    fn strings_cardinality() {
        let v = strings_low_card(1000, 7, 9);
        let distinct: std::collections::HashSet<_> = v.iter().collect();
        assert!(distinct.len() <= 7);
        assert!(distinct.len() >= 5);
    }
}
