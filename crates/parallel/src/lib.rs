//! Multi-core MAL execution (§3.1's `dataflow` module).
//!
//! The serial [`Interpreter`](mammoth_mal::Interpreter) walks a plan top to
//! bottom, one instruction at a time. This crate executes the same plan as
//! a *dependency DAG*: an instruction becomes runnable the moment every
//! instruction it reads from has finished, and a fixed pool of worker
//! threads drains the runnable set concurrently. Combined with the
//! `mitosis`/`mergetable` optimizer modules — which rewrite a scan into k
//! independent fragment pipelines merged by `mat.pack`/`mat.packsum` — this
//! turns one query into k parallel operator chains plus a merge, MonetDB's
//! multi-core execution model.
//!
//! The scheduler adds **no new operator semantics**: workers call the very
//! same [`execute_instr`] the serial interpreter uses, so both engines
//! compute bit-identical results by construction. `io.result` and
//! `language.pass` are handled by the scheduler itself, exactly like the
//! serial loop does:
//!
//! * `io.result` copies its (already computed) argument values into the
//!   output row — it depends on its arguments like any other node;
//! * `language.pass x` releases x's slot. It carries *anti-dependency*
//!   edges on every earlier reader of x, so a slot is freed only after all
//!   its consumers ran — the verifier already guarantees no instruction
//!   reads x after its `language.pass`, and the anti-edges enforce the
//!   same order under concurrency.
//!
//! One mutex guards the scheduler state (variable slots, in-degrees, the
//! ready queue, counters); operator execution happens strictly *outside*
//! the lock. Arguments are Arc-cloned under the lock — cloning a
//! [`MalValue`](mammoth_mal::MalValue) is O(1) — so the critical sections
//! stay tiny and workers contend only on bookkeeping, never on data.

#![deny(unsafe_code)]

use mammoth_mal::{
    analyze_props, bat_rows_bytes, check_bat, check_props_enabled, execute_instr, Analysis, Arg,
    Instr, MalValue, OpCode, PlanExecutor, Program,
};
use mammoth_storage::Catalog;
use mammoth_types::{Error, ProfiledRun, Result, TraceEvent};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Counters from one dataflow execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataflowStats {
    /// Worker threads the pool ran with.
    pub threads: usize,
    /// Instructions executed (excluding `io.result` / `language.pass`).
    pub executed: u64,
    /// Slots released by `language.pass` markers.
    pub released_early: u64,
    /// `language.pass` on an already-empty slot — always 0 for verified
    /// plans; the stress suite asserts it stays that way.
    pub double_releases: u64,
    /// Peak number of BAT-valued variables live at once.
    pub peak_live_bats: u64,
    /// Peak number of instructions in flight at once (the achieved
    /// instruction-level parallelism).
    pub max_inflight: u64,
    /// Wall time of the whole run in nanoseconds.
    pub elapsed_ns: u64,
}

impl DataflowStats {
    /// Fold the scheduler counters into the engine-neutral [`ProfiledRun`],
    /// attaching the per-instruction `events` timeline. The dataflow engine
    /// has no recycler, so `recycled` is 0.
    pub fn fold_into(&self, engine: &str, events: Vec<TraceEvent>) -> ProfiledRun {
        ProfiledRun {
            engine: engine.to_string(),
            threads: self.threads,
            executed: self.executed,
            recycled: 0,
            released_early: self.released_early,
            peak_live_bats: self.peak_live_bats,
            max_inflight: self.max_inflight,
            elapsed_ns: self.elapsed_ns,
            events,
        }
    }
}

/// Scheduler state shared by the worker pool; one mutex guards all of it.
struct State {
    vars: Vec<Option<MalValue>>,
    freed: Vec<bool>,
    indeg: Vec<usize>,
    ready: VecDeque<usize>,
    done: usize,
    inflight: u64,
    outputs: Vec<MalValue>,
    error: Option<Error>,
    live_bats: u64,
    stats: DataflowStats,
    events: Vec<TraceEvent>,
}

impl State {
    fn set_slot(&mut self, v: usize, val: MalValue) {
        if matches!(val, MalValue::Bat(_)) {
            self.live_bats += 1;
            self.stats.peak_live_bats = self.stats.peak_live_bats.max(self.live_bats);
        }
        self.vars[v] = Some(val);
    }

    fn clear_slot(&mut self, v: usize) {
        match self.vars[v].take() {
            Some(MalValue::Bat(_)) => {
                self.live_bats -= 1;
                self.stats.released_early += 1;
            }
            Some(MalValue::Scalar(_)) => {}
            None => {
                if self.freed[v] {
                    self.stats.double_releases += 1;
                }
            }
        }
        self.freed[v] = true;
    }

    fn arg_value(&self, a: &Arg) -> Result<MalValue> {
        match a {
            Arg::Const(c) => Ok(MalValue::Scalar(c.clone())),
            Arg::Var(v) => self
                .vars
                .get(*v)
                .and_then(|x| x.clone())
                .ok_or_else(|| Error::Internal(format!("use of unbound variable x{v}"))),
            Arg::Param(n) => Err(Error::Internal(format!(
                "unbound parameter ?{n} reached the dataflow engine"
            ))),
        }
    }
}

/// The dependency DAG of a plan: for each instruction, the instructions
/// that become runnable once it finishes.
struct Dag {
    succs: Vec<Vec<usize>>,
    indeg: Vec<usize>,
}

/// Build def→use edges plus the `language.pass` anti-edges (a free waits
/// for every earlier reader of its variable).
fn build_dag(prog: &Program) -> Dag {
    let n = prog.instrs.len();
    let mut def_site: Vec<Option<usize>> = vec![None; prog.nvars()];
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); prog.nvars()];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (idx, instr) in prog.instrs.iter().enumerate() {
        let mut deps: Vec<usize> = Vec::new();
        for a in &instr.args {
            if let Arg::Var(v) = a {
                if let Some(d) = def_site[*v] {
                    deps.push(d);
                }
            }
        }
        if instr.op == OpCode::Free {
            if let Some(Arg::Var(v)) = instr.args.first() {
                deps.extend_from_slice(&readers[*v]);
            }
        } else {
            for a in &instr.args {
                if let Arg::Var(v) = a {
                    readers[*v].push(idx);
                }
            }
        }
        deps.sort_unstable();
        deps.dedup();
        indeg[idx] = deps.len();
        for d in deps {
            succs[d].push(idx);
        }
        for r in &instr.results {
            def_site[*r] = Some(idx);
        }
    }
    Dag { succs, indeg }
}

/// Execute a plan as a dependency DAG on `threads` workers.
///
/// Returns the `io.result` values (in argument order) and the run's
/// counters. Instructions are dispatched the moment their dependencies
/// finish; `io.result` and `language.pass` run under the scheduler lock
/// (they only move/drop already-computed values), everything else runs on
/// a worker outside the lock via [`execute_instr`].
pub fn run_dataflow(
    catalog: &Catalog,
    prog: &Program,
    threads: usize,
) -> Result<(Vec<MalValue>, DataflowStats)> {
    let (out, stats, _) = run_dataflow_inner(catalog, prog, threads, false)?;
    Ok((out, stats))
}

/// [`run_dataflow`] with the per-instruction profiler on: each executed
/// instruction additionally yields a [`TraceEvent`] carrying the worker id
/// that ran it and its start offset / duration relative to the run's t0.
/// Event order follows completion order, which is nondeterministic under
/// concurrency — consumers compare traces as multisets.
pub fn run_dataflow_profiled(
    catalog: &Catalog,
    prog: &Program,
    threads: usize,
) -> Result<(Vec<MalValue>, DataflowStats, Vec<TraceEvent>)> {
    run_dataflow_inner(catalog, prog, threads, true)
}

fn run_dataflow_inner(
    catalog: &Catalog,
    prog: &Program,
    threads: usize,
    profiled: bool,
) -> Result<(Vec<MalValue>, DataflowStats, Vec<TraceEvent>)> {
    let t0 = Instant::now();
    let threads = threads.max(1);
    let total = prog.instrs.len();
    // MAMMOTH_CHECK_PROPS: cross-check every materialized BAT against the
    // statically inferred properties (same oracle as the serial engine)
    let analysis = match check_props_enabled() {
        false => None,
        true => Some(analyze_props(prog, catalog).map_err(|e| {
            Error::Internal(format!("MAMMOTH_CHECK_PROPS: unconfirmable claim: {e}"))
        })?),
    };
    let dag = build_dag(prog);
    let ready: VecDeque<usize> = (0..total).filter(|&i| dag.indeg[i] == 0).collect();
    let state = Mutex::new(State {
        vars: vec![None; prog.nvars()],
        freed: vec![false; prog.nvars()],
        indeg: dag.indeg,
        ready,
        done: 0,
        inflight: 0,
        outputs: Vec::new(),
        error: None,
        live_bats: 0,
        stats: DataflowStats {
            threads,
            ..DataflowStats::default()
        },
        events: Vec::new(),
    });
    let cv = Condvar::new();

    std::thread::scope(|s| {
        for wid in 0..threads {
            let state = &state;
            let cv = &cv;
            let succs = &dag.succs;
            let analysis = analysis.as_ref();
            s.spawn(move || {
                worker(
                    catalog,
                    prog,
                    succs,
                    total,
                    state,
                    cv,
                    profiled.then_some((wid, t0)),
                    analysis,
                )
            });
        }
    });

    let mut st = state.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some(e) = st.error.take() {
        return Err(e);
    }
    st.stats.elapsed_ns = t0.elapsed().as_nanos() as u64;
    Ok((st.outputs, st.stats, st.events))
}

/// Sum of input BAT rows over already-resolved argument values.
fn rows_in_of(args: &[MalValue]) -> u64 {
    args.iter()
        .filter_map(|a| a.as_bat().map(|b| b.len() as u64))
        .sum()
}

fn instr_event(
    idx: usize,
    instr: &Instr,
    wid: usize,
    t0: Instant,
    start: Instant,
    rows_in: u64,
    results: &[MalValue],
) -> TraceEvent {
    let (rows_out, bytes_out) = bat_rows_bytes(results);
    TraceEvent {
        instr: idx as i64,
        op: instr.op.name(),
        args: instr.render_args(),
        worker: wid,
        start_ns: start.duration_since(t0).as_nanos() as u64,
        dur_ns: start.elapsed().as_nanos() as u64,
        rows_in,
        rows_out,
        bytes_out,
        ..TraceEvent::default()
    }
}

#[allow(clippy::too_many_arguments)]
fn worker(
    catalog: &Catalog,
    prog: &Program,
    succs: &[Vec<usize>],
    total: usize,
    state: &Mutex<State>,
    cv: &Condvar,
    profile: Option<(usize, Instant)>,
    analysis: Option<&Analysis>,
) {
    let mut guard = state.lock().unwrap_or_else(PoisonError::into_inner);
    loop {
        while guard.ready.is_empty() && guard.done < total && guard.error.is_none() {
            guard = cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
        if guard.done >= total || guard.error.is_some() {
            cv.notify_all();
            return;
        }
        let idx = guard.ready.pop_front().expect("checked non-empty");
        guard.inflight += 1;
        guard.stats.max_inflight = guard.stats.max_inflight.max(guard.inflight);
        let instr = &prog.instrs[idx];

        let outcome: Result<()> = match instr.op {
            OpCode::Result => instr
                .args
                .iter()
                .map(|a| guard.arg_value(a))
                .collect::<Result<Vec<_>>>()
                .map(|vals| guard.outputs.extend(vals)),
            OpCode::Free => {
                if let Some(Arg::Var(v)) = instr.args.first() {
                    guard.clear_slot(*v);
                }
                Ok(())
            }
            _ => {
                // resolve args under the lock (O(1) Arc clones), execute
                // outside it
                match instr
                    .args
                    .iter()
                    .map(|a| guard.arg_value(a))
                    .collect::<Result<Vec<_>>>()
                {
                    Err(e) => Err(e),
                    Ok(args) => {
                        drop(guard);
                        let start = Instant::now();
                        let r = execute_instr(catalog, instr, &args).and_then(|vals| {
                            if let Some(an) = analysis {
                                for (rv, val) in instr.results.iter().zip(&vals) {
                                    if let (Some(p), MalValue::Bat(b)) = (an.props_of(*rv), val) {
                                        check_bat(p, b).map_err(|msg| {
                                            Error::Internal(format!(
                                                "MAMMOTH_CHECK_PROPS: instr {idx} ({}) result \
                                                 x{rv}: {msg}",
                                                instr.op.name()
                                            ))
                                        })?;
                                    }
                                }
                            }
                            Ok(vals)
                        });
                        let event = match (&profile, &r) {
                            (Some((wid, t0)), Ok(vals)) => Some(instr_event(
                                idx,
                                instr,
                                *wid,
                                *t0,
                                start,
                                rows_in_of(&args),
                                vals,
                            )),
                            _ => None,
                        };
                        guard = state.lock().unwrap_or_else(PoisonError::into_inner);
                        r.map(|vals| {
                            guard.stats.executed += 1;
                            if let Some(ev) = event {
                                guard.events.push(ev);
                            }
                            for (rv, val) in instr.results.iter().zip(vals) {
                                guard.set_slot(*rv, val);
                            }
                        })
                    }
                }
            }
        };

        guard.inflight -= 1;
        match outcome {
            Err(e) => {
                // first error wins; wake everyone up so the pool drains
                guard.error.get_or_insert(e);
                cv.notify_all();
                return;
            }
            Ok(()) => {
                guard.done += 1;
                for &nxt in &succs[idx] {
                    guard.indeg[nxt] -= 1;
                    if guard.indeg[nxt] == 0 {
                        guard.ready.push_back(nxt);
                    }
                }
                if guard.done >= total || !guard.ready.is_empty() {
                    cv.notify_all();
                }
            }
        }
    }
}

/// Resolve a requested thread count: `0` means "pick for me" — the
/// `MAMMOTH_THREADS` environment variable if set, otherwise the machine's
/// available parallelism.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(s) = std::env::var("MAMMOTH_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The dataflow engine behind the [`PlanExecutor`] trait: a fixed thread
/// count plus the counters of the most recent run.
pub struct ParallelExecutor {
    threads: usize,
    last: parking_lot::Mutex<DataflowStats>,
}

impl ParallelExecutor {
    /// `threads == 0` delegates to [`resolve_threads`].
    pub fn new(threads: usize) -> ParallelExecutor {
        ParallelExecutor {
            threads: resolve_threads(threads),
            last: parking_lot::Mutex::new(DataflowStats::default()),
        }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Counters of the most recent [`PlanExecutor::run_plan`] call.
    pub fn last_stats(&self) -> DataflowStats {
        self.last.lock().clone()
    }
}

impl PlanExecutor for ParallelExecutor {
    fn run_plan(&self, catalog: &Catalog, prog: &Program) -> Result<Vec<MalValue>> {
        let (out, stats) = run_dataflow(catalog, prog, self.threads)?;
        *self.last.lock() = stats;
        Ok(out)
    }

    fn engine_name(&self) -> &'static str {
        "dataflow"
    }

    fn run_plan_profiled(
        &self,
        catalog: &Catalog,
        prog: &Program,
    ) -> Result<(Vec<MalValue>, ProfiledRun)> {
        let (out, stats, events) = run_dataflow_profiled(catalog, prog, self.threads)?;
        let run = stats.fold_into(self.engine_name(), events);
        *self.last.lock() = stats;
        Ok((out, run))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mammoth_algebra::{AggKind, CmpOp};
    use mammoth_mal::{column_types, parallel_pipeline, Instr, Interpreter};
    use mammoth_storage::Table;
    use mammoth_types::{ColumnDef, LogicalType, TableSchema, Value};

    fn catalog(n: i64) -> Catalog {
        let mut cat = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", LogicalType::I64),
                ColumnDef::new("b", LogicalType::I64),
            ],
        ))
        .unwrap();
        for i in 0..n {
            t.insert_row(&[Value::I64(i % 31), Value::I64(i)]).unwrap();
        }
        cat.create_table(t).unwrap();
        cat
    }

    fn scan_select_sum() -> Program {
        let mut p = Program::new();
        let a = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("a".into())),
            ],
        )[0];
        let c = p.push(
            OpCode::ThetaSelect(CmpOp::Gt),
            vec![Arg::Var(a), Arg::Const(Value::I64(7))],
        )[0];
        let b = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("b".into())),
            ],
        )[0];
        let f = p.push(OpCode::Projection, vec![Arg::Var(c), Arg::Var(b)])[0];
        let s = p.push(OpCode::Aggr(AggKind::Sum), vec![Arg::Var(f)])[0];
        let n = p.push(OpCode::Count, vec![Arg::Var(f)])[0];
        p.push_result(&[s, n]);
        p
    }

    #[test]
    fn dataflow_matches_serial_across_thread_counts() {
        let cat = catalog(5000);
        let prog = scan_select_sum();
        let serial = Interpreter::new(&cat).run(&prog).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let (out, stats) = run_dataflow(&cat, &prog, threads).unwrap();
            assert_eq!(out.len(), serial.len());
            assert_eq!(out[0].as_scalar(), serial[0].as_scalar());
            assert_eq!(out[1].as_scalar(), serial[1].as_scalar());
            assert_eq!(stats.executed, 6);
            assert_eq!(stats.threads, threads);
        }
    }

    #[test]
    fn dataflow_runs_mitosis_rewritten_plans() {
        let cat = catalog(5000);
        let prog = scan_select_sum();
        let serial = Interpreter::new(&cat).run(&prog).unwrap();
        let pl = parallel_pipeline(4, column_types(&cat));
        let rewritten = pl.try_optimize(prog).unwrap();
        for threads in [1usize, 4] {
            let (out, stats) = run_dataflow(&cat, &rewritten, threads).unwrap();
            assert_eq!(out[0].as_scalar(), serial[0].as_scalar());
            assert_eq!(out[1].as_scalar(), serial[1].as_scalar());
            // GC markers release fragments as the pipelines drain
            assert!(stats.released_early > 0);
            assert_eq!(stats.double_releases, 0);
        }
    }

    #[test]
    fn frees_wait_for_all_readers() {
        // b is read by two selects; language.pass b must run after both
        let cat = catalog(100);
        let mut p = Program::new();
        let b = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("b".into())),
            ],
        )[0];
        let c1 = p.push(
            OpCode::ThetaSelect(CmpOp::Lt),
            vec![Arg::Var(b), Arg::Const(Value::I64(10))],
        )[0];
        let c2 = p.push(
            OpCode::ThetaSelect(CmpOp::Ge),
            vec![Arg::Var(b), Arg::Const(Value::I64(90))],
        )[0];
        p.instrs.push(Instr {
            results: vec![],
            op: OpCode::Free,
            args: vec![Arg::Var(b)],
        });
        let n1 = p.push(OpCode::Count, vec![Arg::Var(c1)])[0];
        let n2 = p.push(OpCode::Count, vec![Arg::Var(c2)])[0];
        p.push_result(&[n1, n2]);
        for threads in [1usize, 4, 8] {
            let (out, stats) = run_dataflow(&cat, &p, threads).unwrap();
            assert_eq!(out[0].as_scalar(), Some(&Value::I64(10)));
            assert_eq!(out[1].as_scalar(), Some(&Value::I64(10)));
            assert_eq!(stats.released_early, 1);
            assert_eq!(stats.double_releases, 0);
        }
    }

    #[test]
    fn errors_propagate_and_drain_the_pool() {
        let cat = catalog(10);
        let mut p = Program::new();
        p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("missing".into())),
                Arg::Const(Value::Str("x".into())),
            ],
        );
        let ok = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("a".into())),
            ],
        )[0];
        let n = p.push(OpCode::Count, vec![Arg::Var(ok)])[0];
        p.push_result(&[n]);
        for threads in [1usize, 4] {
            assert!(run_dataflow(&cat, &p, threads).is_err());
        }
    }

    #[test]
    fn executor_trait_and_thread_resolution() {
        let cat = catalog(500);
        let prog = scan_select_sum();
        let serial = Interpreter::new(&cat).run(&prog).unwrap();
        let ex = ParallelExecutor::new(3);
        assert_eq!(ex.threads(), 3);
        assert_eq!(ex.engine_name(), "dataflow");
        let out = ex.run_plan(&cat, &prog).unwrap();
        assert_eq!(out[0].as_scalar(), serial[0].as_scalar());
        assert_eq!(ex.last_stats().executed, 6);
        assert!(resolve_threads(5) == 5 && resolve_threads(0) >= 1);
    }
}
