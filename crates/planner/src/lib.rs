//! The planner subsystem: per-column statistics, a compiled-plan cache,
//! and the cost model feeding the cost-guided optimizer decisions.
//!
//! The paper's §3 split — front end compiles, optimizer tier rewrites,
//! kernel executes — leaves one tier this repo had not grown yet: the
//! *strategic* optimizer that knows the data. This crate holds the three
//! cooperating parts:
//!
//! * [`stats`] — a [`StatsCatalog`] of per-column row counts, null counts,
//!   distinct-value estimates, min/max bounds and equi-depth histograms,
//!   maintained incrementally on DML and folded (rebuilt from the live
//!   columns) at CHECKPOINT. Serializable, so it rides the checkpoint
//!   image and recovery restores it.
//! * [`cache`] — a [`PlanCache`] of compiled, verified, optimized MAL
//!   programs keyed by normalized statement text, with `?N` parameter
//!   slots substituted as constants at EXECUTE time. Entries carry the
//!   column-property premises they were optimized under; a premise
//!   mismatch (or DDL, or recovery) invalidates.
//! * [`cost`] — per-instruction cardinality/cost estimates over a MAL
//!   program ([`estimate_program`]), predicate selectivity from the
//!   histograms, and the small decision procedures the SQL session
//!   consults: predicate ordering, select-algorithm gating, mitosis
//!   piece count.

#![deny(unsafe_code)]

pub mod cache;
pub mod cost;
pub mod stats;

pub use cache::{bind_program, normalize_sql, referenced_columns, CachedPlan, PlanCache};
pub use cost::{
    choose_pieces, estimate_program, selectivity, use_sorted_select, InstrEstimate,
    SORTED_SELECT_MIN_ROWS,
};
pub use stats::{ColumnStats, Histogram, StatsCatalog, TableStats};
