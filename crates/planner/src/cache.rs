//! The session plan cache: compiled, verified, optimized MAL programs
//! keyed by normalized statement text.
//!
//! A cache entry is sound only while the optimizer's premises hold: every
//! rewrite the pipeline applied was proven against the column properties
//! ([`mammoth_mal::analysis::Props`]) in force at compile time. The entry
//! therefore carries a snapshot of the properties of every column the
//! plan binds; lookup re-derives the live properties and compares. DML
//! that changes a premise (a new max, sortedness lost) silently misses —
//! the statement recompiles and the entry is replaced. DDL and recovery
//! clear the cache wholesale.
//!
//! Parameterized plans carry [`Arg::Param`] slots. [`bind_program`]
//! substitutes EXECUTE's argument values as MAL constants — a pure
//! program→program map, no recompile, no re-verify (the verifier already
//! typed each slot as a scalar of statically unknown type, which a
//! constant always satisfies).

use mammoth_mal::{Arg, OpCode, Program, Props};
use mammoth_types::{Error, Result, Value};
use std::collections::HashMap;

/// A compiled statement ready to execute (after parameter binding).
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The optimized program, possibly carrying `?N` parameter slots.
    pub prog: Program,
    /// Output column names (the `io.result` projection labels).
    pub names: Vec<String>,
    /// Number of `?N` slots the program expects.
    pub nparams: usize,
    /// Column-property premises the optimizer relied on:
    /// `(table, column) -> Props` snapshot at compile time.
    pub premises: Vec<((String, String), Props)>,
    /// Whether the cached program is the parallel (mitosis) rewrite.
    pub parallel: bool,
    /// Estimated output rows at compile time (for EXPLAIN/telemetry).
    pub est_rows: Option<u64>,
}

/// Compiled-plan cache with hit/compile counters.
#[derive(Debug, Default)]
pub struct PlanCache {
    map: HashMap<String, CachedPlan>,
    hits: u64,
    compiles: u64,
}

impl PlanCache {
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Look up by normalized key, verifying the premises still hold.
    /// `live` yields the current properties of a (table, column) pair —
    /// `None` means the column no longer exists (always a miss).
    pub fn lookup(
        &mut self,
        key: &str,
        mut live: impl FnMut(&str, &str) -> Option<Props>,
    ) -> Option<CachedPlan> {
        let entry = self.map.get(key)?;
        for ((t, c), premise) in &entry.premises {
            match live(t, c) {
                Some(now) if now == *premise => {}
                _ => {
                    // premise drifted: the optimized program may no longer
                    // be sound — drop the entry, caller recompiles
                    self.map.remove(key);
                    return None;
                }
            }
        }
        self.hits += 1;
        Some(self.map[key].clone())
    }

    /// Insert (or replace) an entry, counting a compile.
    pub fn insert(&mut self, key: String, plan: CachedPlan) {
        self.compiles += 1;
        self.map.insert(key, plan);
    }

    /// Drop every entry (DDL, recovery).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn compiles(&self) -> u64 {
        self.compiles
    }
}

/// Normalize statement text into a cache key: collapse runs of
/// whitespace, trim, strip a trailing `;`, lowercase everything outside
/// single-quoted string literals. Two statements that normalize equal
/// compile to the same plan (the grammar is case-insensitive outside
/// literals).
pub fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut in_str = false;
    let mut pending_space = false;
    for ch in sql.chars() {
        if in_str {
            out.push(ch);
            if ch == '\'' {
                in_str = false;
            }
            continue;
        }
        if ch.is_whitespace() {
            pending_space = !out.is_empty();
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        if ch == '\'' {
            in_str = true;
            out.push(ch);
        } else {
            out.extend(ch.to_lowercase());
        }
    }
    while out.ends_with(';') || out.ends_with(' ') {
        out.pop();
    }
    out
}

/// The (table, column) pairs a program binds — the premise set a cache
/// entry must re-check. Derived from `sql.bind` instructions, whose two
/// arguments are string constants.
pub fn referenced_columns(prog: &Program) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for instr in &prog.instrs {
        if instr.op == OpCode::Bind {
            if let (Some(Arg::Const(Value::Str(t))), Some(Arg::Const(Value::Str(c)))) =
                (instr.args.first(), instr.args.get(1))
            {
                let pair = (t.clone(), c.clone());
                if !out.contains(&pair) {
                    out.push(pair);
                }
            }
        }
    }
    out
}

/// Substitute EXECUTE's argument values for the program's `?N` slots,
/// producing a constant-only program ready for the interpreter. Errors
/// if a slot index is out of range for `args`.
pub fn bind_program(prog: &Program, args: &[Value]) -> Result<Program> {
    let mut out = prog.clone();
    for instr in &mut out.instrs {
        for arg in &mut instr.args {
            if let Arg::Param(n) = arg {
                let v = args.get(*n).ok_or_else(|| {
                    Error::Bind(format!(
                        "EXECUTE supplies {} argument(s) but the plan uses ?{n}",
                        args.len()
                    ))
                })?;
                *arg = Arg::Const(v.clone());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mammoth_algebra::CmpOp;

    fn sample_prog() -> Program {
        let mut p = Program::new();
        let b = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("a".into())),
            ],
        )[0];
        let s = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(b), Arg::Param(0)],
        )[0];
        let f = p.push(OpCode::Projection, vec![Arg::Var(s), Arg::Var(b)])[0];
        p.push(OpCode::Result, vec![Arg::Var(f)]);
        p
    }

    #[test]
    fn normalize_collapses_case_and_whitespace() {
        assert_eq!(
            normalize_sql("SELECT  a\nFROM t  WHERE a = 1;"),
            "select a from t where a = 1"
        );
        // string literals keep their case
        assert_eq!(
            normalize_sql("select A from T where s = 'MiXeD  CaSe'"),
            "select a from t where s = 'MiXeD  CaSe'"
        );
    }

    #[test]
    fn referenced_columns_finds_binds_once() {
        let p = sample_prog();
        assert_eq!(
            referenced_columns(&p),
            vec![("t".to_string(), "a".to_string())]
        );
    }

    #[test]
    fn bind_program_substitutes_params() {
        let p = sample_prog();
        let bound = bind_program(&p, &[Value::I64(42)]).unwrap();
        assert!(bound
            .instrs
            .iter()
            .all(|i| i.args.iter().all(|a| !matches!(a, Arg::Param(_)))));
        assert!(bound.instrs.iter().any(|i| i
            .args
            .iter()
            .any(|a| matches!(a, Arg::Const(Value::I64(42))))));
        // arity mismatch is a bind error
        assert!(bind_program(&p, &[]).is_err());
    }

    #[test]
    fn cache_premise_mismatch_misses_and_evicts() {
        let mut cache = PlanCache::new();
        let premise = Props {
            card_hi: Some(10),
            ..Props::top()
        };
        cache.insert(
            "k".into(),
            CachedPlan {
                prog: sample_prog(),
                names: vec!["a".into()],
                nparams: 1,
                premises: vec![(("t".into(), "a".into()), premise.clone())],
                parallel: false,
                est_rows: None,
            },
        );
        assert_eq!(cache.compiles(), 1);
        // matching premises: hit
        assert!(cache.lookup("k", |_, _| Some(premise.clone())).is_some());
        assert_eq!(cache.hits(), 1);
        // drifted premises: miss AND evict
        let drifted = Props {
            card_hi: Some(99),
            ..premise.clone()
        };
        assert!(cache.lookup("k", |_, _| Some(drifted.clone())).is_none());
        assert!(cache.is_empty(), "stale entry must be evicted");
        // unknown key: plain miss
        assert!(cache.lookup("nope", |_, _| None).is_none());
    }
}
