//! The cost model: predicate selectivity from the statistics, per-
//! instruction cardinality/cost estimates over a MAL program, and the
//! small decision procedures the SQL session consults (select-algorithm
//! gating, mitosis piece count).
//!
//! Estimates are heuristic and advisory — classic System-R style
//! independence assumptions, refined by the equi-depth histograms when a
//! column has them. `EXPLAIN` prints them next to each instruction and
//! `TRACE` diffs them against the measured row counts (`est_rows` vs
//! `rows`), so estimation error is observable, not silent.

use crate::stats::StatsCatalog;
use mammoth_algebra::CmpOp;
use mammoth_mal::{Arg, OpCode, Program, VarId};
use mammoth_types::Value;
use std::collections::HashMap;

/// Default selectivity for a range predicate whose bound is unknown
/// (a `?N` parameter, or no histogram).
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

/// Row-count threshold below which binary-search range selection
/// (`SortedSelect`) is not worth the setup over a plain scan.
pub const SORTED_SELECT_MIN_ROWS: u64 = 256;

/// Target rows per mitosis fragment: fragments smaller than this lose
/// more to per-piece overhead than they gain from parallelism.
const MITOSIS_TARGET_ROWS: u64 = 8192;

/// Estimated output cardinality and cost of one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrEstimate {
    /// Estimated rows in the (first) result BAT; scalar results are 1.
    pub rows: u64,
    /// Estimated work in row-touch units (sum of input cardinalities).
    pub cost: u64,
}

/// Estimated fraction of a column's rows satisfying `col op value`.
/// `value == None` means the bound is statically unknown (a parameter).
/// Falls back to fixed defaults when the column has no statistics.
pub fn selectivity(
    stats: &StatsCatalog,
    table: &str,
    column: &str,
    op: CmpOp,
    value: Option<&Value>,
) -> f64 {
    // comparison with NULL selects nothing in SQL semantics
    if matches!(value, Some(v) if v.is_null()) {
        return 0.0;
    }
    let Some(cs) = stats.column(table, column) else {
        return match op {
            CmpOp::Eq => 0.1,
            CmpOp::Ne => 0.9,
            _ => DEFAULT_RANGE_SELECTIVITY,
        };
    };
    let live = (cs.rows - cs.nulls.min(cs.rows)).max(1) as f64;
    let uniq = 1.0 / cs.ndv_clamped() as f64;
    match op {
        CmpOp::Eq => match (value.and_then(|v| v.as_f64()), &cs.histogram) {
            // histogram refinement: equality is zero outside the
            // recorded value range, else the uniform 1/ndv share
            (Some(x), Some(h)) if h.total > 0 => {
                if x < h.lo || h.bounds.last().is_some_and(|&hi| x > hi) {
                    0.0
                } else {
                    uniq
                }
            }
            _ => uniq,
        },
        CmpOp::Ne => (1.0 - uniq).max(0.0),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let Some(x) = value.and_then(|v| v.as_f64()) else {
                return DEFAULT_RANGE_SELECTIVITY;
            };
            let Some(h) = &cs.histogram else {
                return DEFAULT_RANGE_SELECTIVITY;
            };
            if h.total == 0 {
                return DEFAULT_RANGE_SELECTIVITY;
            }
            let below = h.cdf(x);
            let point = 1.0 / live; // half-open adjustment for one value
            match op {
                CmpOp::Le => below,
                CmpOp::Lt => (below - point).max(0.0),
                CmpOp::Gt => (1.0 - below).max(0.0),
                CmpOp::Ge => (1.0 - below + point).min(1.0),
                _ => unreachable!(),
            }
        }
    }
}

/// Per-instruction cardinality/cost estimates for a whole program,
/// aligned index-for-index with `prog.instrs`.
///
/// Column provenance is threaded through projections so selections over
/// a fetched column still consult that column's statistics.
pub fn estimate_program(prog: &Program, stats: &StatsCatalog) -> Vec<InstrEstimate> {
    let mut rows: HashMap<VarId, f64> = HashMap::new();
    let mut origin: HashMap<VarId, (String, String)> = HashMap::new();
    let mut out = Vec::with_capacity(prog.instrs.len());

    let arg_rows = |rows: &HashMap<VarId, f64>, a: &Arg| -> Option<f64> {
        match a {
            Arg::Var(v) => rows.get(v).copied(),
            _ => None,
        }
    };

    for instr in &prog.instrs {
        let in_rows: f64 = instr.args.iter().filter_map(|a| arg_rows(&rows, a)).sum();
        let est: f64 = match &instr.op {
            OpCode::Bind => {
                let (t, c) = match (instr.args.first(), instr.args.get(1)) {
                    (Some(Arg::Const(Value::Str(t))), Some(Arg::Const(Value::Str(c)))) => {
                        (t.clone(), c.clone())
                    }
                    _ => (String::new(), String::new()),
                };
                let n = stats.table(&t).map(|ts| ts.rows as f64).unwrap_or(1000.0);
                if let Some(r) = instr.results.first() {
                    origin.insert(*r, (t, c));
                }
                n
            }
            OpCode::ThetaSelect(op) => {
                let input = instr.args.first();
                let base = input.and_then(|a| arg_rows(&rows, a)).unwrap_or(1000.0);
                let value = match instr.args.get(1) {
                    Some(Arg::Const(v)) => Some(v),
                    _ => None, // Arg::Param or variable bound: unknown
                };
                let sel = input
                    .and_then(|a| match a {
                        Arg::Var(v) => origin.get(v),
                        _ => None,
                    })
                    .map(|(t, c)| selectivity(stats, t, c, *op, value))
                    .unwrap_or(match op {
                        CmpOp::Eq => 0.1,
                        CmpOp::Ne => 0.9,
                        _ => DEFAULT_RANGE_SELECTIVITY,
                    });
                base * sel
            }
            OpCode::RangeSelect { .. } => {
                let base = instr
                    .args
                    .first()
                    .and_then(|a| arg_rows(&rows, a))
                    .unwrap_or(1000.0);
                let sel = instr
                    .args
                    .first()
                    .and_then(|a| match a {
                        Arg::Var(v) => origin.get(v),
                        _ => None,
                    })
                    .map(|(t, c)| {
                        let lo = match instr.args.get(1) {
                            Some(Arg::Const(v)) if !v.is_null() => Some(v),
                            _ => None,
                        };
                        let hi = match instr.args.get(2) {
                            Some(Arg::Const(v)) if !v.is_null() => Some(v),
                            _ => None,
                        };
                        let s_lo = lo
                            .map(|v| selectivity(stats, t, c, CmpOp::Ge, Some(v)))
                            .unwrap_or(1.0);
                        let s_hi = hi
                            .map(|v| selectivity(stats, t, c, CmpOp::Le, Some(v)))
                            .unwrap_or(1.0);
                        (s_lo + s_hi - 1.0).clamp(0.0, 1.0)
                    })
                    .unwrap_or(DEFAULT_RANGE_SELECTIVITY);
                base * sel
            }
            OpCode::Projection => {
                // rows follow the candidate list; provenance follows the
                // projected base column
                let cand = instr
                    .args
                    .first()
                    .and_then(|a| arg_rows(&rows, a))
                    .unwrap_or(0.0);
                if let (Some(Arg::Var(b)), Some(r)) = (instr.args.get(1), instr.results.first()) {
                    if let Some(o) = origin.get(b).cloned() {
                        origin.insert(*r, o);
                    }
                }
                cand
            }
            OpCode::Join => {
                let ra = instr
                    .args
                    .first()
                    .and_then(|a| arg_rows(&rows, a))
                    .unwrap_or(1.0);
                let rb = instr
                    .args
                    .get(1)
                    .and_then(|a| arg_rows(&rows, a))
                    .unwrap_or(1.0);
                let ndv = |k: usize| -> Option<f64> {
                    instr.args.get(k).and_then(|a| match a {
                        Arg::Var(v) => origin
                            .get(v)
                            .and_then(|(t, c)| stats.column(t, c))
                            .map(|cs| cs.ndv_clamped() as f64),
                        _ => None,
                    })
                };
                // classic equi-join estimate: |A|·|B| / max(ndv(a), ndv(b))
                let d = ndv(0).unwrap_or(ra).max(ndv(1).unwrap_or(rb)).max(1.0);
                (ra * rb / d).min(ra * rb)
            }
            OpCode::Group | OpCode::GroupRefine => {
                // group count bounded by input ndv when known
                let base = instr
                    .args
                    .iter()
                    .filter_map(|a| arg_rows(&rows, a))
                    .fold(0.0f64, f64::max);
                instr
                    .args
                    .iter()
                    .find_map(|a| match a {
                        Arg::Var(v) => origin
                            .get(v)
                            .and_then(|(t, c)| stats.column(t, c))
                            .map(|cs| (cs.ndv_clamped() as f64).min(base.max(1.0))),
                        _ => None,
                    })
                    .unwrap_or(base)
            }
            OpCode::Aggr(_) | OpCode::Count | OpCode::PackSum => 1.0,
            OpCode::AggrGrouped(_) => instr
                .args
                .get(2)
                .and_then(|a| arg_rows(&rows, a))
                .unwrap_or(1.0),
            OpCode::Calc(_) | OpCode::SetProps | OpCode::Mirror | OpCode::Sort { .. } => {
                // element-wise / order-only: cardinality preserved; so is
                // provenance for the identity-ish ops
                if let (Some(Arg::Var(v)), Some(r)) = (instr.args.first(), instr.results.first()) {
                    if matches!(instr.op, OpCode::SetProps | OpCode::Sort { .. }) {
                        if let Some(o) = origin.get(v).cloned() {
                            origin.insert(*r, o);
                        }
                    }
                }
                instr
                    .args
                    .iter()
                    .filter_map(|a| arg_rows(&rows, a))
                    .fold(0.0f64, f64::max)
            }
            OpCode::Slice => {
                let base = instr
                    .args
                    .first()
                    .and_then(|a| arg_rows(&rows, a))
                    .unwrap_or(0.0);
                let lo = const_i64(instr.args.get(1)).unwrap_or(0).max(0) as f64;
                let hi = const_i64(instr.args.get(2)).map(|h| h.max(0) as f64);
                match hi {
                    Some(h) => (h - lo).max(0.0).min(base),
                    None => base,
                }
            }
            OpCode::PartSlice => {
                let base = instr
                    .args
                    .first()
                    .and_then(|a| arg_rows(&rows, a))
                    .unwrap_or(0.0);
                let k = const_i64(instr.args.get(2)).unwrap_or(1).max(1) as f64;
                base / k
            }
            OpCode::Pack => in_rows,
            OpCode::Result | OpCode::Free => 0.0,
        };
        for r in &instr.results {
            rows.insert(*r, est);
        }
        out.push(InstrEstimate {
            rows: est.round().max(0.0) as u64,
            cost: in_rows.round().max(0.0) as u64,
        });
    }
    out
}

fn const_i64(a: Option<&Arg>) -> Option<i64> {
    match a {
        Some(Arg::Const(v)) => v.as_i64(),
        _ => None,
    }
}

/// Whether binary-search range selection over a sorted column is worth
/// it at this cardinality. Below [`SORTED_SELECT_MIN_ROWS`] the scan's
/// sequential sweep wins on setup cost.
pub fn use_sorted_select(estimated_rows: u64) -> bool {
    estimated_rows >= SORTED_SELECT_MIN_ROWS
}

/// Mitosis piece count for a table of `rows` rows, capped at
/// `max_pieces` (the session's configured parallelism). Scales down for
/// small tables so fragments stay at least [`MITOSIS_TARGET_ROWS`] rows.
pub fn choose_pieces(rows: u64, max_pieces: usize) -> usize {
    if max_pieces <= 1 || rows == 0 {
        return max_pieces.max(1);
    }
    let by_size = rows.div_ceil(MITOSIS_TARGET_ROWS) as usize;
    by_size.clamp(1, max_pieces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StatsCatalog;
    use mammoth_types::LogicalType;

    fn catalog_with_t() -> StatsCatalog {
        let mut sc = StatsCatalog::new();
        let vals: Vec<Value> = (0..1000).map(|i| Value::I64(i % 100)).collect();
        sc.rebuild_table("t", vec![("a".into(), LogicalType::I64, vals)]);
        sc
    }

    #[test]
    fn selectivity_uses_ndv_and_histogram() {
        let sc = catalog_with_t();
        let eq = selectivity(&sc, "t", "a", CmpOp::Eq, Some(&Value::I64(50)));
        assert!((eq - 0.01).abs() < 0.005, "1/ndv for eq, got {eq}");
        let lt = selectivity(&sc, "t", "a", CmpOp::Lt, Some(&Value::I64(50)));
        assert!((lt - 0.5).abs() < 0.1, "cdf for range, got {lt}");
        // out-of-range equality is (near) zero
        let miss = selectivity(&sc, "t", "a", CmpOp::Eq, Some(&Value::I64(5000)));
        assert_eq!(miss, 0.0);
        // NULL bound selects nothing
        assert_eq!(
            selectivity(&sc, "t", "a", CmpOp::Eq, Some(&Value::Null)),
            0.0
        );
        // unknown bound falls back to the default
        assert_eq!(
            selectivity(&sc, "t", "a", CmpOp::Lt, None),
            DEFAULT_RANGE_SELECTIVITY
        );
    }

    #[test]
    fn estimate_program_threads_provenance() {
        let sc = catalog_with_t();
        let mut p = Program::new();
        let b = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("a".into())),
            ],
        )[0];
        let s = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(b), Arg::Const(Value::I64(7))],
        )[0];
        let f = p.push(OpCode::Projection, vec![Arg::Var(s), Arg::Var(b)])[0];
        p.push_result(&[f]);
        let est = estimate_program(&p, &sc);
        assert_eq!(est.len(), 4);
        assert_eq!(est[0].rows, 1000, "bind = table rows");
        assert_eq!(est[1].rows, 10, "1000/ndv(100) for equality");
        assert_eq!(est[2].rows, 10, "projection follows candidates");
        assert_eq!(est[1].cost, 1000, "select sweeps its input");
    }

    #[test]
    fn sorted_select_gate_and_pieces() {
        assert!(!use_sorted_select(SORTED_SELECT_MIN_ROWS - 1));
        assert!(use_sorted_select(SORTED_SELECT_MIN_ROWS));
        assert_eq!(choose_pieces(0, 8), 8, "unknown/empty keeps the default");
        assert_eq!(choose_pieces(100, 8), 1, "tiny table: one piece");
        assert_eq!(choose_pieces(20_000, 8), 3);
        assert_eq!(choose_pieces(1_000_000, 8), 8, "capped at max");
        assert_eq!(choose_pieces(100, 1), 1);
    }
}
