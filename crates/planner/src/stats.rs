//! Per-column statistics: row/null counts, distinct-value estimates,
//! min/max bounds, and equi-depth histograms.
//!
//! The statistics are *advisory*: every consumer (selectivity estimation,
//! select-algorithm gating, piece-count choice) degrades gracefully when a
//! column has no stats or the stats have drifted. Correctness never
//! depends on them — the plan cache separately re-checks the *soundness*
//! premises (column properties) a cached rewrite was proven under.
//!
//! Maintenance discipline:
//! * `CREATE TABLE` registers an empty [`TableStats`].
//! * INSERT folds the new values in incrementally (counts, bounds, ndv
//!   sketch, histogram bucket bumps with clamping).
//! * DELETE decrements conservatively and marks drift.
//! * CHECKPOINT (and recovery self-heal) *rebuilds* from the live column
//!   values — the "fold" that squashes accumulated approximation error.

use mammoth_index::ZoneMap;
use mammoth_types::{Error, LogicalType, Result, Value};
use std::collections::HashMap;

/// Default number of equi-depth histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// An equi-depth histogram over the f64 projection of a numeric column.
///
/// Invariants (property-tested):
/// * `counts.len() == bounds.len()`
/// * `counts.iter().sum() == total` == number of non-null numeric values
/// * every value `v` satisfies `lo <= v <= bounds.last()` where `lo` is
///   the histogram's recorded minimum
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    /// Lowest value covered (inclusive).
    pub lo: f64,
    /// Per-bucket inclusive upper bounds, non-decreasing.
    pub bounds: Vec<f64>,
    /// Per-bucket value counts.
    pub counts: Vec<u64>,
    /// Sum of `counts`.
    pub total: u64,
}

impl Histogram {
    /// Build an equi-depth histogram from (unsorted) values.
    pub fn build(mut vals: Vec<f64>, buckets: usize) -> Option<Histogram> {
        if vals.is_empty() || buckets == 0 {
            return None;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = vals.len();
        let b = buckets.min(n);
        let mut bounds = Vec::with_capacity(b);
        let mut counts = Vec::with_capacity(b);
        let mut start = 0usize;
        for k in 0..b {
            // equal-depth split: bucket k covers ranks [start, end)
            let mut end = ((k + 1) * n) / b;
            // never split a run of equal values across buckets — the CDF
            // interpolation assumes bucket bounds are honest
            while end < n && end > 0 && vals[end] == vals[end - 1] {
                end += 1;
            }
            if end <= start {
                continue;
            }
            bounds.push(vals[end - 1]);
            counts.push((end - start) as u64);
            start = end;
            if start >= n {
                break;
            }
        }
        Some(Histogram {
            lo: vals[0],
            bounds,
            counts,
            total: n as u64,
        })
    }

    /// Fold one inserted value in: bump the covering bucket (clamped to
    /// the nearest edge bucket when the value falls outside the bounds,
    /// widening the recorded range so containment still holds).
    pub fn add(&mut self, v: f64) {
        if self.counts.is_empty() {
            self.lo = v;
            self.bounds = vec![v];
            self.counts = vec![1];
            self.total = 1;
            return;
        }
        if v < self.lo {
            self.lo = v;
        }
        let last = self.bounds.len() - 1;
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or_else(|| {
            self.bounds[last] = v; // widen the top bucket
            last
        });
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Remove one value (conservatively — the bucket may underflow to the
    /// neighbor when approximation error accumulated; the fold at
    /// CHECKPOINT rebuilds exactly).
    pub fn remove(&mut self, v: f64) {
        if self.total == 0 {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len() - 1);
        // steal from the nearest non-empty bucket if this one is empty
        let idx = (idx..self.counts.len())
            .chain((0..idx).rev())
            .find(|&k| self.counts[k] > 0)
            .unwrap_or(idx);
        if self.counts[idx] > 0 {
            self.counts[idx] -= 1;
            self.total -= 1;
        }
    }

    /// Estimated fraction of values `<= x` (linear interpolation inside
    /// the covering bucket).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if x < self.lo {
            return 0.0;
        }
        let mut below = 0u64;
        let mut prev = self.lo;
        for (k, &hi) in self.bounds.iter().enumerate() {
            if x >= hi {
                below += self.counts[k];
                prev = hi;
                continue;
            }
            // interpolate inside bucket k
            let width = hi - prev;
            let frac = if width > 0.0 {
                ((x - prev) / width).clamp(0.0, 1.0)
            } else {
                1.0
            };
            return (below as f64 + frac * self.counts[k] as f64) / self.total as f64;
        }
        1.0
    }
}

/// Statistics of one column.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// Values stored (including nulls).
    pub rows: u64,
    pub nulls: u64,
    /// Distinct-value estimate (linear-counting sketch; exact while the
    /// sketch is sparse).
    pub ndv: u64,
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub histogram: Option<Histogram>,
    /// The linear-counting bitmap backing `ndv` (fixed 2^14 bits).
    sketch: Vec<u64>,
}

const SKETCH_BITS: usize = 1 << 14;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    // FNV's low bits avalanche poorly on short keys and the sketch
    // indexes by `h mod m` — run a splitmix64 finalizer to disperse
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

fn value_hash(v: &Value) -> u64 {
    // hash through a canonical rendering so I32(5) and I64(5) agree the
    // way SQL comparison does
    match (v.as_i64(), v.as_f64(), v.as_str()) {
        (Some(x), _, _) => fnv1a(&x.to_le_bytes()),
        (None, Some(f), _) => fnv1a(&f.to_bits().to_le_bytes()),
        (None, None, Some(s)) => fnv1a(s.as_bytes()),
        _ => fnv1a(format!("{v:?}").as_bytes()),
    }
}

impl ColumnStats {
    /// Build from the live values of a column. For integer columns the
    /// min/max bounds are seeded from a `crates/index` zone map (the
    /// same structure the scan path prunes with) rather than re-derived.
    pub fn build(ty: LogicalType, values: &[Value]) -> ColumnStats {
        let mut s = ColumnStats {
            sketch: vec![0u64; SKETCH_BITS / 64],
            ..ColumnStats::default()
        };
        let mut numeric: Vec<f64> = Vec::new();
        let mut ints: Vec<i64> = Vec::new();
        for v in values {
            s.rows += 1;
            if v.is_null() {
                s.nulls += 1;
                continue;
            }
            s.sketch_add(v);
            if ty == LogicalType::I64 || ty == LogicalType::I32 {
                if let Some(x) = v.as_i64() {
                    ints.push(x);
                }
            }
            if let Some(f) = v.as_f64() {
                numeric.push(f);
            }
            s.fold_bounds(v);
        }
        // zone-map seeding: integer bounds come from the index structure
        if !ints.is_empty() {
            let zm = ZoneMap::build(&ints, 1024);
            if let Some((lo, hi)) = zm.bounds() {
                s.min = Some(Value::I64(lo));
                s.max = Some(Value::I64(hi));
            }
        }
        s.ndv = s.sketch_estimate();
        s.histogram = Histogram::build(numeric, HISTOGRAM_BUCKETS);
        s
    }

    fn fold_bounds(&mut self, v: &Value) {
        let lower = match &self.min {
            None => true,
            Some(m) => matches!(v.sql_cmp(m), Some(std::cmp::Ordering::Less)),
        };
        if lower {
            self.min = Some(v.clone());
        }
        let higher = match &self.max {
            None => true,
            Some(m) => matches!(v.sql_cmp(m), Some(std::cmp::Ordering::Greater)),
        };
        if higher {
            self.max = Some(v.clone());
        }
    }

    fn sketch_add(&mut self, v: &Value) {
        if self.sketch.is_empty() {
            self.sketch = vec![0u64; SKETCH_BITS / 64];
        }
        let bit = (value_hash(v) as usize) % SKETCH_BITS;
        self.sketch[bit / 64] |= 1u64 << (bit % 64);
    }

    fn sketch_estimate(&self) -> u64 {
        let ones: u32 = self.sketch.iter().map(|w| w.count_ones()).sum();
        let m = SKETCH_BITS as f64;
        let zeros = m - ones as f64;
        if zeros <= 0.5 {
            return self.rows - self.nulls; // sketch saturated: give up
        }
        (-(m) * (zeros / m).ln()).round() as u64
    }

    /// Fold one inserted value in.
    pub fn on_insert(&mut self, v: &Value) {
        self.rows += 1;
        if v.is_null() {
            self.nulls += 1;
            return;
        }
        self.sketch_add(v);
        self.ndv = self.sketch_estimate();
        self.fold_bounds(v);
        if let Some(f) = v.as_f64() {
            match &mut self.histogram {
                Some(h) => h.add(f),
                None => self.histogram = Histogram::build(vec![f], HISTOGRAM_BUCKETS),
            }
        }
    }

    /// Fold one deleted value out (bounds and ndv stay as upper bounds —
    /// the CHECKPOINT fold tightens them).
    pub fn on_delete(&mut self, v: &Value) {
        self.rows = self.rows.saturating_sub(1);
        if v.is_null() {
            self.nulls = self.nulls.saturating_sub(1);
            return;
        }
        if let (Some(f), Some(h)) = (v.as_f64(), &mut self.histogram) {
            h.remove(f);
        }
    }

    /// Distinct values, never reported as 0 for a non-empty column.
    pub fn ndv_clamped(&self) -> u64 {
        self.ndv
            .clamp(1, (self.rows - self.nulls.min(self.rows)).max(1))
    }
}

/// Statistics of one table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    /// Live rows now (incrementally maintained).
    pub rows: u64,
    /// Live rows when the per-column stats were last (re)built — the
    /// baseline the drift test compares against.
    pub rows_at_build: u64,
    pub columns: HashMap<String, ColumnStats>,
}

impl TableStats {
    /// Relative drift since the last rebuild: `|rows - rows_at_build|`
    /// over the baseline.
    pub fn drift(&self) -> f64 {
        let base = self.rows_at_build.max(1) as f64;
        (self.rows as f64 - self.rows_at_build as f64).abs() / base
    }
}

/// Per-table statistics for every table of a catalog.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsCatalog {
    tables: HashMap<String, TableStats>,
}

impl StatsCatalog {
    pub fn new() -> StatsCatalog {
        StatsCatalog::default()
    }

    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(&name.to_lowercase())
    }

    pub fn column(&self, table: &str, column: &str) -> Option<&ColumnStats> {
        self.table(table)?.columns.get(&column.to_lowercase())
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Register an empty table (CREATE TABLE).
    pub fn create_table(&mut self, name: &str, columns: &[String]) {
        let mut t = TableStats::default();
        for c in columns {
            t.columns.insert(c.to_lowercase(), ColumnStats::default());
        }
        self.tables.insert(name.to_lowercase(), t);
    }

    pub fn drop_table(&mut self, name: &str) {
        self.tables.remove(&name.to_lowercase());
    }

    /// Rebuild one table's stats from its live column values — the
    /// CHECKPOINT fold and the recovery self-heal.
    pub fn rebuild_table(&mut self, name: &str, columns: Vec<(String, LogicalType, Vec<Value>)>) {
        let mut t = TableStats::default();
        for (cname, ty, values) in columns {
            t.rows = t.rows.max(values.len() as u64);
            t.columns
                .insert(cname.to_lowercase(), ColumnStats::build(ty, &values));
        }
        t.rows_at_build = t.rows;
        self.tables.insert(name.to_lowercase(), t);
    }

    /// Fold inserted rows in. `columns` carries the schema's column names
    /// in row order.
    pub fn on_insert(&mut self, table: &str, columns: &[String], rows: &[Vec<Value>]) {
        let Some(t) = self.tables.get_mut(&table.to_lowercase()) else {
            return;
        };
        t.rows += rows.len() as u64;
        for row in rows {
            for (c, v) in columns.iter().zip(row) {
                t.columns.entry(c.to_lowercase()).or_default().on_insert(v);
            }
        }
    }

    /// Fold deleted rows out; `rows` carries the deleted values when the
    /// caller has them (same layout as `on_insert`), else only the count
    /// is adjusted.
    pub fn on_delete(&mut self, table: &str, columns: &[String], rows: &[Vec<Value>]) {
        let Some(t) = self.tables.get_mut(&table.to_lowercase()) else {
            return;
        };
        t.rows = t.rows.saturating_sub(rows.len() as u64);
        for row in rows {
            for (c, v) in columns.iter().zip(row) {
                if let Some(cs) = t.columns.get_mut(&c.to_lowercase()) {
                    cs.on_delete(v);
                }
            }
        }
    }

    /// Serialize to the checkpoint sidecar format (versioned, line-based).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = String::from("MSTATS1\n");
        let mut tnames: Vec<&String> = self.tables.keys().collect();
        tnames.sort();
        for tn in tnames {
            let t = &self.tables[tn];
            out.push_str(&format!("table {} {} {}\n", tn, t.rows, t.rows_at_build));
            let mut cnames: Vec<&String> = t.columns.keys().collect();
            cnames.sort();
            for cn in cnames {
                let c = &t.columns[cn];
                out.push_str(&format!(
                    "col {} {} {} {} {} {}\n",
                    cn,
                    c.rows,
                    c.nulls,
                    c.ndv,
                    encode_value(c.min.as_ref()),
                    encode_value(c.max.as_ref()),
                ));
                if let Some(h) = &c.histogram {
                    out.push_str(&format!(
                        "hist {} {} ; {}\n",
                        h.lo,
                        h.bounds
                            .iter()
                            .map(|b| format!("{b}"))
                            .collect::<Vec<_>>()
                            .join(" "),
                        h.counts
                            .iter()
                            .map(|c| c.to_string())
                            .collect::<Vec<_>>()
                            .join(" "),
                    ));
                }
            }
        }
        out.into_bytes()
    }

    /// Parse the sidecar format. The ndv *sketch* is not persisted: a
    /// loaded catalog reports the stored estimates until the next fold
    /// rebuilds the sketches.
    pub fn deserialize(bytes: &[u8]) -> Result<StatsCatalog> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| Error::Corrupt("stats sidecar is not utf-8".into()))?;
        let mut lines = text.lines();
        if lines.next() != Some("MSTATS1") {
            return Err(Error::Corrupt(
                "stats sidecar missing MSTATS1 header".into(),
            ));
        }
        let corrupt = |m: &str| Error::Corrupt(format!("stats sidecar: {m}"));
        let mut out = StatsCatalog::new();
        let mut cur_table: Option<String> = None;
        let mut cur_col: Option<String> = None;
        for line in lines {
            let mut parts = line.split(' ');
            match parts.next() {
                Some("table") => {
                    let name = parts.next().ok_or_else(|| corrupt("table name"))?;
                    let rows = parse_u64(parts.next())?;
                    let at_build = parse_u64(parts.next())?;
                    out.tables.insert(
                        name.to_string(),
                        TableStats {
                            rows,
                            rows_at_build: at_build,
                            columns: HashMap::new(),
                        },
                    );
                    cur_table = Some(name.to_string());
                    cur_col = None;
                }
                Some("col") => {
                    let t = cur_table
                        .as_ref()
                        .and_then(|n| out.tables.get_mut(n))
                        .ok_or_else(|| corrupt("col before table"))?;
                    let name = parts.next().ok_or_else(|| corrupt("col name"))?;
                    let c = ColumnStats {
                        rows: parse_u64(parts.next())?,
                        nulls: parse_u64(parts.next())?,
                        ndv: parse_u64(parts.next())?,
                        min: decode_value(parts.next().ok_or_else(|| corrupt("min"))?)?,
                        max: decode_value(parts.next().ok_or_else(|| corrupt("max"))?)?,
                        histogram: None,
                        sketch: Vec::new(),
                    };
                    t.columns.insert(name.to_string(), c);
                    cur_col = Some(name.to_string());
                }
                Some("hist") => {
                    let t = cur_table
                        .as_ref()
                        .and_then(|n| out.tables.get_mut(n))
                        .ok_or_else(|| corrupt("hist before table"))?;
                    let c = cur_col
                        .as_ref()
                        .and_then(|n| t.columns.get_mut(n))
                        .ok_or_else(|| corrupt("hist before col"))?;
                    let rest = line.strip_prefix("hist ").unwrap_or("");
                    let (head, counts_s) = rest
                        .split_once(" ; ")
                        .ok_or_else(|| corrupt("hist split"))?;
                    let mut nums = head.split(' ');
                    let lo: f64 = nums
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| corrupt("hist lo"))?;
                    let bounds: Vec<f64> = nums
                        .map(|s| s.parse().map_err(|_| corrupt("hist bound")))
                        .collect::<Result<_>>()?;
                    let counts: Vec<u64> = counts_s
                        .split(' ')
                        .filter(|s| !s.is_empty())
                        .map(|s| s.parse().map_err(|_| corrupt("hist count")))
                        .collect::<Result<_>>()?;
                    if bounds.len() != counts.len() {
                        return Err(corrupt("hist bounds/counts mismatch"));
                    }
                    let total = counts.iter().sum();
                    c.histogram = Some(Histogram {
                        lo,
                        bounds,
                        counts,
                        total,
                    });
                }
                Some("") | None => {}
                Some(other) => return Err(corrupt(&format!("unknown record {other}"))),
            }
        }
        Ok(out)
    }
}

fn parse_u64(s: Option<&str>) -> Result<u64> {
    s.and_then(|x| x.parse().ok())
        .ok_or_else(|| Error::Corrupt("stats sidecar: bad integer".into()))
}

fn encode_value(v: Option<&Value>) -> String {
    match v {
        None => "-".into(),
        Some(v) if v.is_null() => "null".into(),
        Some(v) => match (v.as_i64(), v.as_f64(), v.as_str()) {
            (Some(x), _, _) => format!("i:{x}"),
            (None, Some(f), _) => format!("f:{:016x}", f.to_bits()),
            (None, None, Some(s)) => {
                let hex: String = s.bytes().map(|b| format!("{b:02x}")).collect();
                format!("s:{hex}")
            }
            _ => "-".into(),
        },
    }
}

fn decode_value(s: &str) -> Result<Option<Value>> {
    let corrupt = || Error::Corrupt(format!("stats sidecar: bad value {s}"));
    Ok(match s {
        "-" => None,
        "null" => Some(Value::Null),
        _ => match s.split_once(':') {
            Some(("i", x)) => Some(Value::I64(x.parse().map_err(|_| corrupt())?)),
            Some(("f", x)) => Some(Value::F64(f64::from_bits(
                u64::from_str_radix(x, 16).map_err(|_| corrupt())?,
            ))),
            Some(("s", hex)) => {
                if hex.len() % 2 != 0 {
                    return Err(corrupt());
                }
                let bytes: Vec<u8> = (0..hex.len() / 2)
                    .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16))
                    .collect::<std::result::Result<_, _>>()
                    .map_err(|_| corrupt())?;
                Some(Value::Str(String::from_utf8(bytes).map_err(|_| corrupt())?))
            }
            _ => return Err(corrupt()),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&x| Value::I64(x)).collect()
    }

    #[test]
    fn build_counts_bounds_ndv() {
        let vals = ints(&[5, 1, 9, 1, 5, 7, 3, 1]);
        let s = ColumnStats::build(LogicalType::I64, &vals);
        assert_eq!(s.rows, 8);
        assert_eq!(s.nulls, 0);
        assert_eq!(s.min, Some(Value::I64(1)));
        assert_eq!(s.max, Some(Value::I64(9)));
        assert_eq!(s.ndv, 5, "small columns count distinct exactly");
        let h = s.histogram.as_ref().unwrap();
        assert_eq!(h.total, 8);
        assert_eq!(h.counts.iter().sum::<u64>(), 8);
    }

    #[test]
    fn nulls_tracked_separately() {
        let mut vals = ints(&[1, 2]);
        vals.push(Value::Null);
        let s = ColumnStats::build(LogicalType::I64, &vals);
        assert_eq!(s.rows, 3);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.histogram.as_ref().unwrap().total, 2);
    }

    #[test]
    fn ndv_estimate_stays_close_at_scale() {
        let vals: Vec<Value> = (0..50_000).map(|i| Value::I64(i % 1000)).collect();
        let s = ColumnStats::build(LogicalType::I64, &vals);
        let err = (s.ndv as f64 - 1000.0).abs() / 1000.0;
        assert!(err < 0.1, "ndv {} for 1000 distinct", s.ndv);
    }

    #[test]
    fn histogram_cdf_is_monotone_and_bounded() {
        let h = Histogram::build((0..1000).map(|i| i as f64).collect(), 16).unwrap();
        let mut prev = -1.0;
        for x in [-5.0, 0.0, 100.0, 499.5, 999.0, 2000.0] {
            let c = h.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev, "cdf must be monotone");
            prev = c;
        }
        assert_eq!(h.cdf(-5.0), 0.0);
        assert_eq!(h.cdf(2000.0), 1.0);
        // the median of 0..1000 is near 500
        assert!((h.cdf(500.0) - 0.5).abs() < 0.05);
    }

    #[test]
    fn incremental_insert_delete_keeps_totals() {
        let mut s = ColumnStats::build(LogicalType::I64, &ints(&[1, 2, 3]));
        s.on_insert(&Value::I64(10));
        s.on_insert(&Value::Null);
        assert_eq!(s.rows, 5);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.max, Some(Value::I64(10)), "bounds widen on insert");
        let h = s.histogram.as_ref().unwrap();
        assert_eq!(h.total, 4);
        assert_eq!(h.counts.iter().sum::<u64>(), h.total);
        s.on_delete(&Value::I64(2));
        assert_eq!(s.rows, 4);
        assert_eq!(s.histogram.as_ref().unwrap().total, 3);
    }

    #[test]
    fn catalog_roundtrips_through_sidecar() {
        let mut sc = StatsCatalog::new();
        sc.rebuild_table(
            "t",
            vec![
                (
                    "a".into(),
                    LogicalType::I64,
                    ints(&[3, 1, 4, 1, 5, 9, 2, 6]),
                ),
                (
                    "s".into(),
                    LogicalType::Str,
                    vec![
                        Value::Str("x".into()),
                        Value::Null,
                        Value::Str("naïve".into()),
                    ],
                ),
            ],
        );
        sc.rebuild_table(
            "u",
            vec![("f".into(), LogicalType::F64, vec![Value::F64(2.5)])],
        );
        let bytes = sc.serialize();
        let back = StatsCatalog::deserialize(&bytes).unwrap();
        for (t, c) in [("t", "a"), ("t", "s"), ("u", "f")] {
            let orig = sc.column(t, c).unwrap();
            let got = back.column(t, c).unwrap();
            assert_eq!(orig.rows, got.rows, "{t}.{c}");
            assert_eq!(orig.nulls, got.nulls);
            assert_eq!(orig.ndv, got.ndv);
            assert_eq!(orig.min, got.min);
            assert_eq!(orig.max, got.max);
            assert_eq!(orig.histogram, got.histogram);
        }
        assert_eq!(back.table("t").unwrap().rows, 8);
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(StatsCatalog::deserialize(b"nope").is_err());
        assert!(StatsCatalog::deserialize(b"MSTATS1\nbogus record").is_err());
        assert!(StatsCatalog::deserialize(b"MSTATS1\ncol a 1 0 1 - -").is_err());
        assert!(StatsCatalog::deserialize(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn drift_measures_relative_change() {
        let mut sc = StatsCatalog::new();
        sc.rebuild_table("t", vec![("a".into(), LogicalType::I64, ints(&[1, 2]))]);
        assert_eq!(sc.table("t").unwrap().drift(), 0.0);
        let cols = vec!["a".to_string()];
        sc.on_insert("t", &cols, &[vec![Value::I64(3)], vec![Value::I64(4)]]);
        assert_eq!(sc.table("t").unwrap().rows, 4);
        assert_eq!(sc.table("t").unwrap().drift(), 1.0);
    }

    #[test]
    fn zone_map_seeds_integer_bounds() {
        let s = ColumnStats::build(LogicalType::I32, &ints(&[7, -3, 12]));
        // bounds come back as I64 (the zone map's key domain)
        assert_eq!(s.min, Some(Value::I64(-3)));
        assert_eq!(s.max, Some(Value::I64(12)));
    }
}
