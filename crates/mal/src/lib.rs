//! The MAL (MonetDB Assembler Language) layer (§3, §3.1).
//!
//! "Figure 1 shows the design of MonetDB as a back-end that acts as a BAT
//! Algebra virtual machine programmed with the MonetDB Assembler Language
//! (MAL). The top consists of a variety of query language compilers that
//! produce MAL programs."
//!
//! * [`program`] — MAL programs: sequences of zero-degree-of-freedom
//!   instructions over BAT-valued variables (an instruction may bind
//!   multiple results, e.g. `(l, r) := algebra.join(a, b)`).
//! * [`parser`] — the textual MAL form, for tests, examples and debugging.
//! * [`optimizer`] — the second tier of §3.1: "a collection of optimizer
//!   modules, which are assembled into optimization pipelines … The
//!   approach breaks with the hitherto omnipresent cost-based optimizers."
//!   Implemented modules: constant folding, common-subexpression
//!   elimination, dead-code elimination.
//! * [`mitosis`] — the multi-core modules of that tier: `mitosis` slices
//!   base-column binds into horizontal fragments and `mergetable`
//!   propagates operators fragment-wise, inserting `mat.pack` /
//!   `mat.packsum` merges (§3.1's parallelization chain).
//! * [`interp`] — the third tier: the interpreter over the BAT Algebra,
//!   with optional recycler integration (§6.1) that memoizes instruction
//!   results keyed by their *provenance signature*.
//! * [`analysis`] — static analysis over plans: a verifier (SSA
//!   discipline, arity, kinds, column types, plan structure) that the
//!   pipeline runs after every pass, and a liveness analysis that powers
//!   the `garbage_collect` pass and the interpreter's eager release of
//!   dead intermediates.

#![deny(unsafe_code)]

pub mod analysis;
pub mod combine;
pub mod interp;
pub mod mitosis;
pub mod optimizer;
pub mod parser;
pub mod program;

pub use analysis::{
    analyze_props, analyze_props_with_facts, check_bat, check_props_enabled, column_facts,
    column_facts_with_zonemaps, Analysis, PropFacts, Props, PropsError, CHECK_PROPS_ENV,
};
pub use analysis::{verify, verify_with_catalog, Liveness, VerifyError, VerifyErrorKind};
pub use combine::{
    aggregate_combine, gather_combine, partial_column, shard_partials_table, shard_table_name,
    GatherColumn, PartialMerge,
};
pub use interp::{bat_rows_bytes, execute_instr, ExecStats, Interpreter, PlanExecutor};
pub use mammoth_types::{EventKind, ProfiledRun, TraceEvent, TRACE_ENV};
pub use mitosis::{
    column_types, parallel_pipeline, parallel_pipeline_with_props, ColumnTypes, Mergetable, Mitosis,
};
pub use optimizer::{
    default_pipeline, default_pipeline_with_props, CommonSubexpr, ConstantFold, DeadCode,
    GarbageCollect, OptimizerPass, PassError, Pipeline, SelectElimination, SortedSelect,
};
pub use parser::parse_program;
pub use program::{Arg, Instr, MalValue, OpCode, Program, VarId};
