//! The MAL interpreter: §3.1's third tier.
//!
//! Executes a [`Program`] against a [`Catalog`] by calling the BAT Algebra
//! operator library, materializing every intermediate (operator-at-a-time).
//! With a [`Recycler`] attached, each pure instruction's result is memoized
//! under its *provenance signature* — the canonical text of the whole
//! expression tree that produced it — so repeated (sub)queries cherry-pick
//! previous work instead of recomputing it (§6.1).

use crate::program::{Arg, Instr, MalValue, OpCode, Program, VarId};
use mammoth_algebra as alg;
use mammoth_recycler::Recycler;
use mammoth_storage::{Bat, Catalog, TailHeap};
use mammoth_types::{Error, Oid, ProfiledRun, Result, TraceEvent, Value};
use std::sync::Arc;
use std::time::Instant;

/// Counters from one program execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions actually executed (excluding recycled ones).
    pub executed: u64,
    /// Instructions answered from the recycler.
    pub recycled: u64,
    /// Wall time of the whole run in nanoseconds.
    pub elapsed_ns: u64,
    /// Maximum number of BAT-valued variables live at any point of the run
    /// (the operator-at-a-time peak-memory proxy).
    pub peak_live_bats: u64,
    /// BAT slots released before the end of the program, by `language.pass`
    /// instructions or by liveness-driven eager release.
    pub released_early: u64,
}

impl ExecStats {
    /// Fold the serial counters into the engine-neutral [`ProfiledRun`],
    /// attaching the per-instruction `events` timeline. The serial engine
    /// is single-threaded, so `threads` and `max_inflight` are both 1.
    pub fn fold_into(&self, engine: &str, events: Vec<TraceEvent>) -> ProfiledRun {
        ProfiledRun {
            engine: engine.to_string(),
            threads: 1,
            executed: self.executed,
            recycled: self.recycled,
            released_early: self.released_early,
            peak_live_bats: self.peak_live_bats,
            max_inflight: 1,
            elapsed_ns: self.elapsed_ns,
            events,
        }
    }
}

/// The interpreter. Holds the catalog immutably; queries never mutate.
pub struct Interpreter<'a> {
    catalog: &'a Catalog,
    recycler: Option<&'a mut Recycler>,
    stats: ExecStats,
    eager_release: bool,
    profiled: bool,
    check_props: bool,
    events: Vec<TraceEvent>,
}

impl<'a> Interpreter<'a> {
    pub fn new(catalog: &'a Catalog) -> Interpreter<'a> {
        Interpreter {
            catalog,
            recycler: None,
            stats: ExecStats::default(),
            eager_release: false,
            profiled: false,
            check_props: crate::analysis::check_props_enabled(),
            events: Vec::new(),
        }
    }

    /// Attach a recycler: pure instruction results will be memoized.
    pub fn with_recycler(catalog: &'a Catalog, recycler: &'a mut Recycler) -> Interpreter<'a> {
        Interpreter {
            catalog,
            recycler: Some(recycler),
            stats: ExecStats::default(),
            eager_release: false,
            profiled: false,
            check_props: crate::analysis::check_props_enabled(),
            events: Vec::new(),
        }
    }

    /// Cross-check every materialized BAT (executed *and* recycled) against
    /// the properties the abstract interpretation inferred for its variable;
    /// a violation aborts the run with an internal error naming the
    /// instruction. Defaults to the `MAMMOTH_CHECK_PROPS` environment
    /// variable; this builder pins it explicitly (tests use it to avoid
    /// process-global environment races).
    pub fn check_props(mut self, on: bool) -> Interpreter<'a> {
        self.check_props = on;
        self
    }

    /// Record one [`TraceEvent`] per executed (or recycled) instruction:
    /// opcode, rendered args, wall time, input/result BAT rows and heap
    /// bytes. `io.result` and `language.pass` are bookkeeping, not work, so
    /// they get no event — `events.len() == executed + recycled` holds.
    pub fn profiled(mut self, on: bool) -> Interpreter<'a> {
        self.profiled = on;
        self
    }

    /// Drop intermediate BATs at their last use, guided by
    /// [`crate::analysis::liveness`]. Lowers `peak_live_bats` on bushy
    /// plans without changing results. (The recycler keeps its own
    /// references; eager release shrinks the variable table only.)
    pub fn eager_release(mut self, on: bool) -> Interpreter<'a> {
        self.eager_release = on;
        self
    }

    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Drain the profiler events recorded so far (empty unless
    /// [`Interpreter::profiled`] was enabled).
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// The stats and events folded into the engine-neutral profile.
    pub fn profiled_run(&mut self, engine: &str) -> ProfiledRun {
        let events = self.take_events();
        self.stats.fold_into(engine, events)
    }

    /// Run a program; returns the values marked by `io.result`.
    pub fn run(&mut self, prog: &Program) -> Result<Vec<MalValue>> {
        let t0 = Instant::now();
        let mut vars: Vec<Option<MalValue>> = vec![None; prog.nvars()];
        let mut sigs: Vec<Option<String>> = vec![None; prog.nvars()];
        let mut deps: Vec<Vec<String>> = vec![Vec::new(); prog.nvars()];
        let mut outputs = Vec::new();
        let liveness = self
            .eager_release
            .then(|| crate::analysis::liveness::analyze(prog));
        let analysis = match self.check_props {
            false => None,
            true => Some(
                crate::analysis::analyze_props(prog, self.catalog).map_err(|e| {
                    Error::Internal(format!("MAMMOTH_CHECK_PROPS: unconfirmable claim: {e}"))
                })?,
            ),
        };
        let mut live_bats: u64 = 0;
        let mut peak_live: u64 = 0;

        for (idx, instr) in prog.instrs.iter().enumerate() {
            'exec: {
                if instr.op == OpCode::Result {
                    for a in &instr.args {
                        outputs.push(self.arg_value(a, &vars)?);
                    }
                    break 'exec;
                }
                if instr.op == OpCode::Free {
                    if let Some(Arg::Var(v)) = instr.args.first() {
                        if clear_slot(&mut vars[*v], &mut live_bats) {
                            self.stats.released_early += 1;
                        }
                    }
                    break 'exec;
                }
                // provenance signature of this instruction
                let sig = self.instr_sig(instr, &sigs);
                let instr_deps = self.instr_deps(instr, &deps);

                // recycler lookup: all result slots must hit
                if let (Some(sig), Some(r)) = (&sig, self.recycler.as_deref_mut()) {
                    let lk_start = self.profiled.then(Instant::now);
                    let hits: Vec<Option<Arc<Bat>>> = (0..instr.op.result_arity())
                        .map(|slot| r.lookup(&slot_sig(sig, slot)))
                        .collect();
                    if hits.iter().all(|h| h.is_some()) && !hits.is_empty() {
                        let rows_in = self.profiled.then(|| bat_rows_in(instr, &vars));
                        let mut rows_out = 0u64;
                        let mut bytes_out = 0u64;
                        for (rv, h) in instr.results.iter().zip(hits) {
                            let b = h.unwrap();
                            if self.profiled {
                                rows_out += b.len() as u64;
                                bytes_out += b.tail().byte_size() as u64;
                            }
                            set_slot(
                                &mut vars[*rv],
                                MalValue::Bat(b),
                                &mut live_bats,
                                &mut peak_live,
                            );
                        }
                        for rv in &instr.results {
                            sigs[*rv] = Some(slot_sig(sig, position_of(instr, *rv)));
                            deps[*rv] = instr_deps.clone();
                        }
                        self.stats.recycled += 1;
                        if let Some(lk_start) = lk_start {
                            self.events.push(TraceEvent {
                                instr: idx as i64,
                                op: instr.op.name(),
                                args: instr.render_args(),
                                start_ns: lk_start.duration_since(t0).as_nanos() as u64,
                                dur_ns: lk_start.elapsed().as_nanos() as u64,
                                rows_in: rows_in.unwrap_or(0),
                                rows_out,
                                bytes_out,
                                recycled: true,
                                ..TraceEvent::default()
                            });
                        }
                        break 'exec;
                    }
                }

                let rows_in = self.profiled.then(|| bat_rows_in(instr, &vars));
                let start = Instant::now();
                let results = self.execute(instr, &vars)?;
                let cost_ns = start.elapsed().as_nanos() as u64;
                self.stats.executed += 1;
                if let Some(rows_in) = rows_in {
                    let (rows_out, bytes_out) = bat_rows_bytes(&results);
                    self.events.push(TraceEvent {
                        instr: idx as i64,
                        op: instr.op.name(),
                        args: instr.render_args(),
                        start_ns: start.duration_since(t0).as_nanos() as u64,
                        dur_ns: cost_ns,
                        rows_in,
                        rows_out,
                        bytes_out,
                        ..TraceEvent::default()
                    });
                }

                debug_assert_eq!(results.len(), instr.results.len());
                for (slot, (rv, val)) in instr.results.iter().zip(results).enumerate() {
                    // admit BAT results to the recycler
                    if let (Some(sig), Some(r), MalValue::Bat(b)) =
                        (&sig, self.recycler.as_deref_mut(), &val)
                    {
                        if instr.op.is_pure() {
                            r.admit(
                                slot_sig(sig, slot),
                                Arc::clone(b),
                                instr_deps.clone(),
                                cost_ns,
                            );
                        }
                    }
                    if let Some(s) = &sig {
                        sigs[*rv] = Some(slot_sig(s, slot));
                    }
                    deps[*rv] = instr_deps.clone();
                    set_slot(&mut vars[*rv], val, &mut live_bats, &mut peak_live);
                }
            }
            // property checker: every BAT this instruction materialized (or
            // recycled) must satisfy the statically inferred properties
            if let Some(an) = &analysis {
                for &rv in &instr.results {
                    if let (Some(p), Some(MalValue::Bat(b))) = (an.props_of(rv), &vars[rv]) {
                        if let Err(msg) = crate::analysis::check_bat(p, b) {
                            return Err(Error::Internal(format!(
                                "MAMMOTH_CHECK_PROPS: instr {idx} ({}) result x{rv}: {msg}",
                                instr.op.name()
                            )));
                        }
                    }
                }
            }
            // liveness-driven eager release: drop every operand whose last
            // use was this instruction (outputs were cloned above, so
            // releasing at io.result is safe too)
            if let Some(lv) = &liveness {
                for &v in &lv.dies_at[idx] {
                    if clear_slot(&mut vars[v], &mut live_bats) {
                        self.stats.released_early += 1;
                    }
                }
            }
        }
        self.stats.peak_live_bats = self.stats.peak_live_bats.max(peak_live);
        self.stats.elapsed_ns += t0.elapsed().as_nanos() as u64;
        Ok(outputs)
    }

    fn arg_value(&self, a: &Arg, vars: &[Option<MalValue>]) -> Result<MalValue> {
        match a {
            Arg::Const(c) => Ok(MalValue::Scalar(c.clone())),
            Arg::Var(v) => vars
                .get(*v)
                .and_then(|x| x.clone())
                .ok_or_else(|| Error::Internal(format!("use of unbound variable x{v}"))),
            Arg::Param(n) => Err(Error::Internal(format!(
                "use of unbound parameter ?{n}: plan executed without EXECUTE bindings"
            ))),
        }
    }

    /// Provenance signature (None when any input's provenance is unknown).
    fn instr_sig(&self, instr: &Instr, sigs: &[Option<String>]) -> Option<String> {
        if !instr.op.is_pure() {
            return None;
        }
        let mut s = instr.op.name();
        s.push('(');
        for (k, a) in instr.args.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            match a {
                Arg::Const(c) => s.push_str(&format!("{c:?}")),
                Arg::Var(v) => s.push_str(sigs.get(*v)?.as_deref()?),
                // parameter slots have no provenance — never recycle them
                Arg::Param(_) => return None,
            }
        }
        s.push(')');
        Some(s)
    }

    fn instr_deps(&self, instr: &Instr, deps: &[Vec<String>]) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        if let OpCode::Bind = instr.op {
            if let (Some(Arg::Const(Value::Str(t))), Some(Arg::Const(Value::Str(c)))) =
                (instr.args.first(), instr.args.get(1))
            {
                out.push(format!("{t}.{c}"));
            }
        }
        for a in &instr.args {
            if let Arg::Var(v) = a {
                for d in &deps[*v] {
                    if !out.contains(d) {
                        out.push(d.clone());
                    }
                }
            }
        }
        out
    }

    fn execute(&self, instr: &Instr, vars: &[Option<MalValue>]) -> Result<Vec<MalValue>> {
        let args: Vec<MalValue> = instr
            .args
            .iter()
            .map(|a| self.arg_value(a, vars))
            .collect::<Result<_>>()?;
        execute_instr(self.catalog, instr, &args)
    }
}

/// An executor of verified MAL plans. The serial [`Interpreter`] and the
/// dataflow scheduler in `mammoth-parallel` both fit behind this trait, so
/// the SQL session can swap engines without knowing either.
pub trait PlanExecutor: Send + Sync {
    /// Run a program; returns the values marked by `io.result`.
    fn run_plan(&self, catalog: &Catalog, prog: &Program) -> Result<Vec<MalValue>>;
    /// A short engine name for diagnostics.
    fn engine_name(&self) -> &'static str;
    /// Run a program with per-instruction profiling. The default executes
    /// unprofiled and returns an empty profile; engines with a real
    /// profiler (the dataflow scheduler) override this.
    fn run_plan_profiled(
        &self,
        catalog: &Catalog,
        prog: &Program,
    ) -> Result<(Vec<MalValue>, ProfiledRun)> {
        let vals = self.run_plan(catalog, prog)?;
        Ok((vals, ProfiledRun::new(self.engine_name(), 1)))
    }
}

/// Sum of input BAT rows over an instruction's variable arguments.
fn bat_rows_in(instr: &Instr, vars: &[Option<MalValue>]) -> u64 {
    instr
        .args
        .iter()
        .filter_map(|a| match a {
            Arg::Var(v) => vars
                .get(*v)
                .and_then(|x| x.as_ref())
                .and_then(|m| m.as_bat())
                .map(|b| b.len() as u64),
            Arg::Const(_) | Arg::Param(_) => None,
        })
        .sum()
}

/// `(rows, heap bytes)` summed over the BAT-valued entries of `vals`.
pub fn bat_rows_bytes(vals: &[MalValue]) -> (u64, u64) {
    let mut rows = 0u64;
    let mut bytes = 0u64;
    for v in vals {
        if let MalValue::Bat(b) = v {
            rows += b.len() as u64;
            bytes += b.tail().byte_size() as u64;
        }
    }
    (rows, bytes)
}

fn instr_bat(args: &[MalValue], k: usize) -> Result<Arc<Bat>> {
    match &args[k] {
        MalValue::Bat(b) => Ok(Arc::clone(b)),
        MalValue::Scalar(s) => Err(Error::TypeMismatch {
            expected: "bat".into(),
            found: format!("{s:?}"),
        }),
    }
}

fn instr_const(args: &[MalValue], k: usize) -> Result<Value> {
    match &args[k] {
        MalValue::Scalar(v) => Ok(v.clone()),
        MalValue::Bat(_) => Err(Error::TypeMismatch {
            expected: "scalar".into(),
            found: "bat".into(),
        }),
    }
}

/// Execute one pure instruction given its resolved argument values (one
/// entry per `instr.args`, constants resolved to scalars). This is the
/// single point where MAL opcodes meet the BAT Algebra; the serial
/// interpreter and the parallel dataflow workers share it, so both engines
/// compute bit-identical results by construction.
pub fn execute_instr(catalog: &Catalog, instr: &Instr, args: &[MalValue]) -> Result<Vec<MalValue>> {
    let bat = |b: Bat| MalValue::Bat(Arc::new(b));
    Ok(match &instr.op {
        OpCode::Bind => {
            let t = instr_const(args, 0)?;
            let c = instr_const(args, 1)?;
            let (Value::Str(t), Value::Str(c)) = (t, c) else {
                return Err(Error::Bind("sql.bind expects string constants".into()));
            };
            let col = catalog.table(&t)?.column_by_name(&c)?;
            // zero-copy when the column has no pending deltas
            vec![MalValue::Bat(col.materialize_shared())]
        }
        OpCode::ThetaSelect(op) => {
            let b = instr_bat(args, 0)?;
            let c = instr_const(args, 1)?;
            vec![bat(alg::select_cmp(&b, *op, &c)?)]
        }
        OpCode::RangeSelect { lo_incl, hi_incl } => {
            let b = instr_bat(args, 0)?;
            let lo = instr_const(args, 1)?;
            let hi = instr_const(args, 2)?;
            let lo_ref = (!lo.is_null()).then_some(&lo);
            let hi_ref = (!hi.is_null()).then_some(&hi);
            vec![bat(alg::select_range(
                &b, lo_ref, hi_ref, *lo_incl, *hi_incl,
            )?)]
        }
        OpCode::Projection => {
            let cands = instr_bat(args, 0)?;
            let b = instr_bat(args, 1)?;
            vec![bat(alg::fetch_join(&cands, &b)?)]
        }
        OpCode::Join => {
            let l = instr_bat(args, 0)?;
            let r = instr_bat(args, 1)?;
            let ji = alg::hash_join(&l, &r)?;
            vec![
                bat(Bat::dense(0, TailHeap::from_vec(ji.left))),
                bat(Bat::dense(0, TailHeap::from_vec(ji.right))),
            ]
        }
        OpCode::Group => {
            let b = instr_bat(args, 0)?;
            let (gids, _n, extents) = alg::group_by(&b)?;
            let ext: Vec<Oid> = extents.iter().map(|&p| p as Oid).collect();
            vec![bat(gids), bat(Bat::dense(0, TailHeap::from_vec(ext)))]
        }
        OpCode::GroupRefine => {
            let gids = instr_bat(args, 0)?;
            let b = instr_bat(args, 1)?;
            let (gids2, _n, extents) = alg::group_refine(&gids, &b)?;
            let ext: Vec<Oid> = extents.iter().map(|&p| p as Oid).collect();
            vec![bat(gids2), bat(Bat::dense(0, TailHeap::from_vec(ext)))]
        }
        OpCode::Aggr(kind) => {
            let b = instr_bat(args, 0)?;
            vec![MalValue::Scalar(alg::aggregate_scalar(*kind, &b)?)]
        }
        OpCode::AggrGrouped(kind) => {
            let b = instr_bat(args, 0)?;
            let gids = instr_bat(args, 1)?;
            let ext = instr_bat(args, 2)?;
            vec![bat(alg::grouped_aggregate(*kind, &b, &gids, ext.len())?)]
        }
        OpCode::Calc(op) => {
            let a = instr_bat(args, 0)?;
            match &args[1] {
                MalValue::Bat(b2) => vec![bat(alg::arith_bat(*op, &a, b2)?)],
                MalValue::Scalar(c) => vec![bat(alg::arith_const(*op, &a, c)?)],
            }
        }
        OpCode::Sort { desc } => {
            let b = instr_bat(args, 0)?;
            let (sorted, order) = alg::sort_bat_dir(&b, *desc)?;
            vec![bat(sorted), bat(order)]
        }
        OpCode::Slice => {
            let b = instr_bat(args, 0)?;
            let lo = instr_const(args, 1)?.as_i64().unwrap_or(0).max(0) as usize;
            let hi = instr_const(args, 2)?.as_i64().unwrap_or(i64::MAX).max(0) as usize;
            let hi = hi.min(b.len());
            let lo = lo.min(hi);
            vec![bat(b.slice(lo, hi)?)]
        }
        OpCode::PartSlice => {
            let b = instr_bat(args, 0)?;
            let i = instr_const(args, 1)?.as_i64().unwrap_or(0);
            let k = instr_const(args, 2)?.as_i64().unwrap_or(1);
            if k < 1 || i < 0 || i >= k {
                return Err(Error::Internal(format!(
                    "algebra.slice: fragment {i} of {k} is out of range"
                )));
            }
            let (i, k) = (i as usize, k as usize);
            let lo = i * b.len() / k;
            let hi = (i + 1) * b.len() / k;
            vec![bat(b.slice(lo, hi)?)]
        }
        OpCode::Pack => {
            let bats: Vec<Arc<Bat>> = (0..args.len())
                .map(|k| instr_bat(args, k))
                .collect::<Result<_>>()?;
            let refs: Vec<&Bat> = bats.iter().map(|b| b.as_ref()).collect();
            vec![bat(alg::pack(&refs)?)]
        }
        OpCode::PackSum => {
            let parts: Vec<Value> = (0..args.len())
                .map(|k| instr_const(args, k))
                .collect::<Result<_>>()?;
            vec![MalValue::Scalar(alg::packsum(&parts)?)]
        }
        OpCode::Count => {
            let b = instr_bat(args, 0)?;
            vec![MalValue::Scalar(Value::I64(b.len() as i64))]
        }
        OpCode::Mirror => {
            let b = instr_bat(args, 0)?;
            vec![bat(b.mirror())]
        }
        OpCode::SetProps => {
            let b = instr_bat(args, 0)?;
            let claims = match instr_const(args, 1)? {
                Value::Str(s) => crate::analysis::props::parse_claims(&s).ok_or_else(|| {
                    Error::Internal(format!("bat.setprops: malformed claim '{s}'"))
                })?,
                v => {
                    return Err(Error::Internal(format!(
                        "bat.setprops expects a string claim, got {v}"
                    )))
                }
            };
            let have = b.props();
            let implied = (!claims.sorted || have.sorted)
                && (!claims.revsorted || have.revsorted)
                && (!claims.key || have.key)
                && (!claims.nonil || have.nonil);
            if implied {
                // already tagged: pass the Arc through, O(1)
                vec![MalValue::Bat(b)]
            } else {
                // tag a copy — sound because the checked pipeline only
                // emits claims the property analysis proved
                let mut nb = (*b).clone();
                let mut props = nb.props().clone();
                props.sorted |= claims.sorted;
                props.revsorted |= claims.revsorted;
                props.key |= claims.key;
                props.nonil |= claims.nonil;
                nb.set_props(props);
                vec![bat(nb)]
            }
        }
        OpCode::Result | OpCode::Free => unreachable!("handled by the scheduler"),
    })
}

fn slot_sig(sig: &str, slot: usize) -> String {
    format!("{sig}#{slot}")
}

/// Bind a variable slot, keeping the live-BAT counters current.
fn set_slot(slot: &mut Option<MalValue>, val: MalValue, live: &mut u64, peak: &mut u64) {
    if matches!(slot, Some(MalValue::Bat(_))) {
        *live -= 1;
    }
    if matches!(val, MalValue::Bat(_)) {
        *live += 1;
        *peak = (*peak).max(*live);
    }
    *slot = Some(val);
}

/// Clear a variable slot; returns whether a BAT was released.
fn clear_slot(slot: &mut Option<MalValue>, live: &mut u64) -> bool {
    let was_bat = matches!(slot, Some(MalValue::Bat(_)));
    if was_bat {
        *live -= 1;
    }
    *slot = None;
    was_bat
}

fn position_of(instr: &Instr, var: VarId) -> usize {
    instr
        .results
        .iter()
        .position(|&r| r == var)
        .expect("var is a result of this instruction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mammoth_algebra::{AggKind, CmpOp};
    use mammoth_storage::Table;
    use mammoth_types::{ColumnDef, LogicalType, TableSchema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "people",
            vec![
                ColumnDef::new("name", LogicalType::Str),
                ColumnDef::new("age", LogicalType::I32),
            ],
        ))
        .unwrap();
        for (n, a) in [
            ("John Wayne", 1907),
            ("Roger Moore", 1927),
            ("Bob Fosse", 1927),
            ("Will Smith", 1968),
        ] {
            t.insert_row(&[Value::Str(n.into()), Value::I32(a)])
                .unwrap();
        }
        cat.create_table(t).unwrap();
        cat
    }

    /// Figure 1's query as a MAL program: select(age, 1927), fetch names.
    fn figure1_program() -> Program {
        let mut p = Program::new();
        let age = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("people".into())),
                Arg::Const(Value::Str("age".into())),
            ],
        )[0];
        let cands = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(age), Arg::Const(Value::I32(1927))],
        )[0];
        let name = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("people".into())),
                Arg::Const(Value::Str("name".into())),
            ],
        )[0];
        let out = p.push(OpCode::Projection, vec![Arg::Var(cands), Arg::Var(name)])[0];
        p.push_result(&[out]);
        p
    }

    #[test]
    fn figure1_end_to_end() {
        let cat = catalog();
        let mut interp = Interpreter::new(&cat);
        let out = interp.run(&figure1_program()).unwrap();
        assert_eq!(out.len(), 1);
        let b = out[0].as_bat().unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.value_at(0), Value::Str("Roger Moore".into()));
        assert_eq!(b.value_at(1), Value::Str("Bob Fosse".into()));
        assert_eq!(interp.stats().executed, 4);
    }

    #[test]
    fn recycler_avoids_double_work() {
        let cat = catalog();
        let mut rec = Recycler::new(1 << 20, mammoth_recycler::EvictPolicy::Lru);
        {
            let mut i1 = Interpreter::with_recycler(&cat, &mut rec);
            i1.run(&figure1_program()).unwrap();
            assert_eq!(i1.stats().recycled, 0);
        }
        {
            let mut i2 = Interpreter::with_recycler(&cat, &mut rec);
            let out = i2.run(&figure1_program()).unwrap();
            assert_eq!(i2.stats().recycled, 4, "whole plan recycled");
            assert_eq!(i2.stats().executed, 0);
            assert_eq!(out[0].as_bat().unwrap().len(), 2);
        }
        // invalidation kills dependent entries
        rec.invalidate("people.age");
        {
            let mut i3 = Interpreter::with_recycler(&cat, &mut rec);
            i3.run(&figure1_program()).unwrap();
            // name-bind survives; age-bind/select/projection recompute
            assert_eq!(i3.stats().recycled, 1);
            assert_eq!(i3.stats().executed, 3);
        }
    }

    #[test]
    fn grouped_aggregation_program() {
        let cat = catalog();
        let mut p = Program::new();
        let age = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("people".into())),
                Arg::Const(Value::Str("age".into())),
            ],
        )[0];
        let g = p.push(OpCode::Group, vec![Arg::Var(age)]);
        let cnt = p.push(
            OpCode::AggrGrouped(AggKind::Count),
            vec![Arg::Var(age), Arg::Var(g[0]), Arg::Var(g[1])],
        )[0];
        let keys = p.push(OpCode::Projection, vec![Arg::Var(g[1]), Arg::Var(age)])[0];
        p.push_result(&[keys, cnt]);

        let mut interp = Interpreter::new(&cat);
        let out = interp.run(&p).unwrap();
        let keys = out[0].as_bat().unwrap();
        let counts = out[1].as_bat().unwrap();
        assert_eq!(keys.tail_slice::<i32>().unwrap(), &[1907, 1927, 1968]);
        assert_eq!(counts.tail_slice::<i64>().unwrap(), &[1, 2, 1]);
    }

    #[test]
    fn scalar_aggregates_and_calc() {
        let cat = catalog();
        let mut p = Program::new();
        let age = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("people".into())),
                Arg::Const(Value::Str("age".into())),
            ],
        )[0];
        let doubled = p.push(
            OpCode::Calc(mammoth_algebra::ArithOp::Mul),
            vec![Arg::Var(age), Arg::Const(Value::I32(2))],
        )[0];
        let s = p.push(OpCode::Aggr(AggKind::Sum), vec![Arg::Var(doubled)])[0];
        let n = p.push(OpCode::Count, vec![Arg::Var(age)])[0];
        p.push_result(&[s, n]);
        let mut interp = Interpreter::new(&cat);
        let out = interp.run(&p).unwrap();
        assert_eq!(
            out[0].as_scalar().unwrap(),
            &Value::I64(2 * (1907 + 1927 + 1927 + 1968))
        );
        assert_eq!(out[1].as_scalar().unwrap(), &Value::I64(4));
    }

    /// A two-join plan whose base and index BATs all stay live to the end
    /// without eager release.
    fn multi_join_program() -> Program {
        let mut p = Program::new();
        let age1 = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("people".into())),
                Arg::Const(Value::Str("age".into())),
            ],
        )[0];
        let age2 = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("people".into())),
                Arg::Const(Value::Str("age".into())),
            ],
        )[0];
        let j1 = p.push(OpCode::Join, vec![Arg::Var(age1), Arg::Var(age2)]);
        let f1 = p.push(OpCode::Projection, vec![Arg::Var(j1[0]), Arg::Var(age1)])[0];
        let j2 = p.push(OpCode::Join, vec![Arg::Var(f1), Arg::Var(age2)]);
        let f2 = p.push(OpCode::Projection, vec![Arg::Var(j2[0]), Arg::Var(f1)])[0];
        let s = p.push(OpCode::Aggr(AggKind::Sum), vec![Arg::Var(f2)])[0];
        p.push_result(&[s]);
        p
    }

    #[test]
    fn eager_release_lowers_peak_live_bats() {
        let cat = catalog();
        let prog = multi_join_program();

        let mut plain = Interpreter::new(&cat);
        let out_plain = plain.run(&prog).unwrap();
        // every BAT intermediate stays live: 2 binds + 2 per join + 2
        // projections = 8
        assert_eq!(plain.stats().peak_live_bats, 8);
        assert_eq!(plain.stats().released_early, 0);

        let mut eager = Interpreter::new(&cat).eager_release(true);
        let out_eager = eager.run(&prog).unwrap();
        assert!(
            eager.stats().peak_live_bats < plain.stats().peak_live_bats,
            "eager release should shrink the live set: {} vs {}",
            eager.stats().peak_live_bats,
            plain.stats().peak_live_bats
        );
        assert!(eager.stats().released_early > 0);
        // results are identical
        assert_eq!(
            out_plain[0].as_scalar().unwrap(),
            out_eager[0].as_scalar().unwrap()
        );
    }

    #[test]
    fn language_pass_releases_and_interops_with_gc_pass() {
        use crate::optimizer::{GarbageCollect, OptimizerPass};
        let cat = catalog();
        let prog = multi_join_program();
        let gc = GarbageCollect.run(prog.clone());

        let mut plain = Interpreter::new(&cat);
        let out = plain.run(&prog).unwrap();
        let mut gcd = Interpreter::new(&cat);
        let out_gc = gcd.run(&gc).unwrap();
        assert!(gcd.stats().released_early > 0);
        assert!(gcd.stats().peak_live_bats < plain.stats().peak_live_bats);
        assert_eq!(out[0].as_scalar().unwrap(), out_gc[0].as_scalar().unwrap());
    }

    #[test]
    fn errors_are_propagated() {
        let cat = catalog();
        let mut p = Program::new();
        p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("nonexistent".into())),
                Arg::Const(Value::Str("x".into())),
            ],
        );
        let mut interp = Interpreter::new(&cat);
        assert!(interp.run(&p).is_err());

        // unbound variable
        let mut p = Program::new();
        let ghost = p.var();
        p.push(OpCode::Count, vec![Arg::Var(ghost)]);
        assert!(Interpreter::new(&cat).run(&p).is_err());
    }

    #[test]
    fn sort_and_slice() {
        let cat = catalog();
        let mut p = Program::new();
        let age = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("people".into())),
                Arg::Const(Value::Str("age".into())),
            ],
        )[0];
        let s = p.push(OpCode::Sort { desc: false }, vec![Arg::Var(age)]);
        let top2 = p.push(
            OpCode::Slice,
            vec![
                Arg::Var(s[0]),
                Arg::Const(Value::I64(0)),
                Arg::Const(Value::I64(2)),
            ],
        )[0];
        p.push_result(&[top2]);
        let out = Interpreter::new(&cat).run(&p).unwrap();
        assert_eq!(
            out[0].as_bat().unwrap().tail_slice::<i32>().unwrap(),
            &[1907, 1927]
        );
    }
}
