//! The optimizer-module pipeline: §3.1's second tier.
//!
//! "The second tier consists of a collection of optimizer modules, which
//! are assembled into optimization pipelines. … The approach breaks with
//! the hitherto omnipresent cost-based optimizers by recognition that not
//! all decisions can be cast together in a single cost formula."
//!
//! Each module is a standalone program→program rewrite. The default
//! pipeline runs constant folding, common-subexpression elimination and
//! dead-code elimination, in that order.

use crate::program::{Arg, Instr, OpCode, Program};
use mammoth_algebra::ArithOp;
use mammoth_types::Value;
use std::collections::HashMap;

/// One optimizer module.
pub trait OptimizerPass {
    fn name(&self) -> &'static str;
    fn run(&self, prog: Program) -> Program;
}

/// An ordered pipeline of modules.
#[derive(Default)]
pub struct Pipeline {
    passes: Vec<Box<dyn OptimizerPass>>,
}

impl Pipeline {
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    pub fn with(mut self, pass: impl OptimizerPass + 'static) -> Pipeline {
        self.passes.push(Box::new(pass));
        self
    }

    pub fn optimize(&self, mut prog: Program) -> Program {
        for p in &self.passes {
            prog = p.run(prog);
        }
        prog
    }

    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }
}

/// The default pipeline (mirrors MonetDB's default optimizer chain in
/// spirit).
pub fn default_pipeline() -> Pipeline {
    Pipeline::new()
        .with(ConstantFold)
        .with(CommonSubexpr)
        .with(DeadCode)
}

/// Fold `batcalc` instructions whose *both* operands are constants, and
/// canonicalize constant-only arithmetic in arguments.
pub struct ConstantFold;

impl OptimizerPass for ConstantFold {
    fn name(&self) -> &'static str {
        "constant_fold"
    }

    fn run(&self, prog: Program) -> Program {
        // In this instruction set only scalar+scalar Calc can fold; the SQL
        // front-end already folds most of those, so the pass mainly
        // normalizes `x := calc(const, const)` produced by generators.
        let mut out = prog.clone();
        let mut folded: HashMap<usize, Value> = HashMap::new();
        out.instrs = prog
            .instrs
            .into_iter()
            .filter_map(|mut i| {
                // replace args that reference folded vars
                for a in &mut i.args {
                    if let Arg::Var(v) = a {
                        if let Some(c) = folded.get(v) {
                            *a = Arg::Const(c.clone());
                        }
                    }
                }
                if let OpCode::Calc(op) = &i.op {
                    if let (Some(Arg::Const(a)), Some(Arg::Const(b))) =
                        (i.args.first(), i.args.get(1))
                    {
                        if let Some(c) = fold_arith(*op, a, b) {
                            folded.insert(i.results[0], c);
                            return None; // instruction disappears
                        }
                    }
                }
                Some(i)
            })
            .collect();
        out
    }
}

fn fold_arith(op: ArithOp, a: &Value, b: &Value) -> Option<Value> {
    if a.is_null() || b.is_null() {
        return Some(Value::Null);
    }
    if let (Some(x), Some(y)) = (a.as_i64(), b.as_i64()) {
        if a.logical_type() != Some(mammoth_types::LogicalType::F64)
            && b.logical_type() != Some(mammoth_types::LogicalType::F64)
        {
            return Some(Value::I64(match op {
                ArithOp::Add => x.wrapping_add(y),
                ArithOp::Sub => x.wrapping_sub(y),
                ArithOp::Mul => x.wrapping_mul(y),
                ArithOp::Div => {
                    if y == 0 {
                        return Some(Value::Null);
                    }
                    x.wrapping_div(y)
                }
                ArithOp::Mod => {
                    if y == 0 {
                        return Some(Value::Null);
                    }
                    x.wrapping_rem(y)
                }
            }));
        }
    }
    let (x, y) = (a.as_f64()?, b.as_f64()?);
    Some(Value::F64(match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => x / y,
        ArithOp::Mod => x % y,
    }))
}

/// Replace instructions identical to an earlier one (same op, same args)
/// with the earlier result — the materialize-everything paradigm makes this
/// safe for all pure instructions.
pub struct CommonSubexpr;

impl OptimizerPass for CommonSubexpr {
    fn name(&self) -> &'static str {
        "common_subexpression"
    }

    fn run(&self, prog: Program) -> Program {
        let mut seen: HashMap<String, Vec<usize>> = HashMap::new();
        let mut replace: HashMap<usize, usize> = HashMap::new(); // var -> var
        let mut out = prog.clone();
        out.instrs = prog
            .instrs
            .into_iter()
            .filter_map(|mut i| {
                for a in &mut i.args {
                    if let Arg::Var(v) = a {
                        if let Some(&r) = replace.get(v) {
                            *a = Arg::Var(r);
                        }
                    }
                }
                if !i.op.is_pure() {
                    return Some(i);
                }
                let key = format!("{:?}|{:?}", i.op, i.args);
                match seen.get(&key) {
                    Some(prev) => {
                        for (mine, theirs) in i.results.iter().zip(prev) {
                            replace.insert(*mine, *theirs);
                        }
                        None
                    }
                    None => {
                        seen.insert(key, i.results.clone());
                        Some(i)
                    }
                }
            })
            .collect();
        out
    }
}

/// Remove pure instructions none of whose results are ever used.
pub struct DeadCode;

impl OptimizerPass for DeadCode {
    fn name(&self) -> &'static str {
        "dead_code"
    }

    fn run(&self, prog: Program) -> Program {
        // iterate to a fixed point (removing one instruction can orphan its
        // inputs)
        let mut instrs = prog.instrs.clone();
        loop {
            let mut used = vec![false; prog.nvars()];
            for i in &instrs {
                for a in &i.args {
                    if let Arg::Var(v) = a {
                        used[*v] = true;
                    }
                }
            }
            let before = instrs.len();
            instrs.retain(|i: &Instr| {
                !i.op.is_pure() || i.results.iter().any(|r| used[*r])
            });
            if instrs.len() == before {
                break;
            }
        }
        let mut out = prog.clone();
        out.instrs = instrs;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mammoth_algebra::CmpOp;

    fn bind(p: &mut Program, t: &str, c: &str) -> usize {
        p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str(t.into())),
                Arg::Const(Value::Str(c.into())),
            ],
        )[0]
    }

    #[test]
    fn dead_code_removes_unused_chains() {
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        let _unused_select = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a), Arg::Const(Value::I32(1))],
        );
        let b = bind(&mut p, "t", "b");
        p.push_result(&[b]);
        let out = DeadCode.run(p);
        // the select AND the bind feeding only it are gone
        assert_eq!(out.instrs.len(), 2);
        assert!(out
            .instrs
            .iter()
            .all(|i| !matches!(&i.op, OpCode::ThetaSelect(_))));
    }

    #[test]
    fn cse_merges_identical_instructions() {
        let mut p = Program::new();
        let a1 = bind(&mut p, "t", "a");
        let a2 = bind(&mut p, "t", "a");
        let s1 = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a1), Arg::Const(Value::I32(1))],
        )[0];
        let s2 = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a2), Arg::Const(Value::I32(1))],
        )[0];
        p.push_result(&[s1, s2]);
        let out = CommonSubexpr.run(p);
        // one bind + one select + result
        assert_eq!(out.instrs.len(), 3);
        // result now references the surviving select twice
        let res = out.instrs.last().unwrap();
        assert_eq!(res.args[0], res.args[1]);
    }

    #[test]
    fn constant_folding_removes_scalar_calc() {
        let mut p = Program::new();
        let c = p.push(
            OpCode::Calc(ArithOp::Add),
            vec![Arg::Const(Value::I32(2)), Arg::Const(Value::I32(3))],
        )[0];
        let a = bind(&mut p, "t", "a");
        let s = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a), Arg::Var(c)],
        )[0];
        p.push_result(&[s]);
        let out = ConstantFold.run(p);
        assert_eq!(out.instrs.len(), 3);
        let sel = &out.instrs[1];
        assert_eq!(sel.args[1], Arg::Const(Value::I64(5)));
    }

    #[test]
    fn fold_arith_rules() {
        assert_eq!(
            fold_arith(ArithOp::Mul, &Value::I32(6), &Value::I32(7)),
            Some(Value::I64(42))
        );
        assert_eq!(
            fold_arith(ArithOp::Div, &Value::I32(1), &Value::I32(0)),
            Some(Value::Null)
        );
        assert_eq!(
            fold_arith(ArithOp::Add, &Value::F64(0.5), &Value::I32(1)),
            Some(Value::F64(1.5))
        );
        assert_eq!(
            fold_arith(ArithOp::Add, &Value::Null, &Value::I32(1)),
            Some(Value::Null)
        );
    }

    #[test]
    fn default_pipeline_composes() {
        let pl = default_pipeline();
        assert_eq!(
            pl.pass_names(),
            vec!["constant_fold", "common_subexpression", "dead_code"]
        );
        let mut p = Program::new();
        let a1 = bind(&mut p, "t", "a");
        let _dead = bind(&mut p, "t", "zzz");
        let a2 = bind(&mut p, "t", "a"); // duplicate
        let s = p.push(
            OpCode::ThetaSelect(CmpOp::Lt),
            vec![Arg::Var(a2), Arg::Const(Value::I32(9))],
        )[0];
        p.push_result(&[s]);
        let _keep_a1_alive = a1;
        let out = pl.optimize(p);
        // bind(t.a) + select + result — dup bind and dead bind removed
        assert_eq!(out.instrs.len(), 3);
    }
}
