//! The optimizer-module pipeline: §3.1's second tier.
//!
//! "The second tier consists of a collection of optimizer modules, which
//! are assembled into optimization pipelines. … The approach breaks with
//! the hitherto omnipresent cost-based optimizers by recognition that not
//! all decisions can be cast together in a single cost formula."
//!
//! Each module is a standalone program→program rewrite. The default
//! pipeline runs constant folding, common-subexpression elimination and
//! dead-code elimination, in that order; [`GarbageCollect`] can be appended
//! to insert `language.pass` end-of-life markers. Because every pass is an
//! unconstrained rewrite, the pipeline re-verifies the plan after each pass
//! with [`crate::analysis::verify`] (always in debug builds, opt-in via
//! [`Pipeline::checked`] in release) and attributes any failure to the
//! offending pass.

use crate::analysis::{self, VerifyError};
use crate::program::{Arg, Instr, OpCode, Program};
use mammoth_algebra::ArithOp;
use mammoth_types::Value;
use std::collections::HashMap;
use std::fmt;

/// One optimizer module.
/// An optimizer module. `Send + Sync` so a [`Pipeline`] (and the session
/// holding it) can be shared across the network server's worker threads.
pub trait OptimizerPass: Send + Sync {
    fn name(&self) -> &'static str;
    fn run(&self, prog: Program) -> Program;
}

/// A verification failure attributed to the optimizer pass whose output
/// first failed to verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    pub pass: &'static str,
    pub error: VerifyError,
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "optimizer pass '{}' produced an ill-formed plan: {}",
            self.pass, self.error
        )
    }
}

impl std::error::Error for PassError {}

/// An ordered pipeline of modules.
///
/// In debug builds the pipeline re-verifies the plan after every pass; a
/// pass that emits an ill-formed program is reported by name via
/// [`Pipeline::try_optimize`] (or a panic from [`Pipeline::optimize`]).
/// Release builds skip verification unless opted in with
/// [`Pipeline::checked`].
#[derive(Default)]
pub struct Pipeline {
    passes: Vec<Box<dyn OptimizerPass>>,
    checked: bool,
}

impl Pipeline {
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    pub fn with(mut self, pass: impl OptimizerPass + 'static) -> Pipeline {
        self.passes.push(Box::new(pass));
        self
    }

    /// Verify the plan after every pass even in release builds.
    pub fn checked(mut self) -> Pipeline {
        self.checked = true;
        self
    }

    /// Whether per-pass verification is active (always in debug builds).
    pub fn is_checked(&self) -> bool {
        self.checked || cfg!(debug_assertions)
    }

    /// Run all passes, verifying after each when [`Pipeline::is_checked`].
    pub fn try_optimize(&self, mut prog: Program) -> Result<Program, Box<PassError>> {
        for p in &self.passes {
            prog = p.run(prog);
            if self.is_checked() {
                if let Err(error) = analysis::verify(&prog) {
                    return Err(Box::new(PassError {
                        pass: p.name(),
                        error,
                    }));
                }
            }
        }
        Ok(prog)
    }

    /// Run all passes; panics if a checked pass miscompiles the plan.
    pub fn optimize(&self, prog: Program) -> Program {
        self.try_optimize(prog).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }
}

/// The default pipeline (mirrors MonetDB's default optimizer chain in
/// spirit).
pub fn default_pipeline() -> Pipeline {
    Pipeline::new()
        .with(ConstantFold)
        .with(CommonSubexpr)
        .with(DeadCode)
}

/// Fold `batcalc` instructions whose *both* operands are constants, and
/// canonicalize constant-only arithmetic in arguments.
pub struct ConstantFold;

impl OptimizerPass for ConstantFold {
    fn name(&self) -> &'static str {
        "constant_fold"
    }

    fn run(&self, prog: Program) -> Program {
        // In this instruction set only scalar+scalar Calc can fold; the SQL
        // front-end already folds most of those, so the pass mainly
        // normalizes `x := calc(const, const)` produced by generators.
        let mut out = prog.clone();
        let mut folded: HashMap<usize, Value> = HashMap::new();
        out.instrs = prog
            .instrs
            .into_iter()
            .filter_map(|mut i| {
                // replace args that reference folded vars
                for a in &mut i.args {
                    if let Arg::Var(v) = a {
                        if let Some(c) = folded.get(v) {
                            *a = Arg::Const(c.clone());
                        }
                    }
                }
                // a freed var that folded to a constant has nothing left to
                // release — the marker disappears with the instruction
                if i.op == OpCode::Free && matches!(i.args.first(), Some(Arg::Const(_))) {
                    return None;
                }
                if let OpCode::Calc(op) = &i.op {
                    if let (Some(Arg::Const(a)), Some(Arg::Const(b))) =
                        (i.args.first(), i.args.get(1))
                    {
                        if let Some(c) = fold_arith(*op, a, b) {
                            folded.insert(i.results[0], c);
                            return None; // instruction disappears
                        }
                    }
                }
                Some(i)
            })
            .collect();
        out
    }
}

fn fold_arith(op: ArithOp, a: &Value, b: &Value) -> Option<Value> {
    if a.is_null() || b.is_null() {
        return Some(Value::Null);
    }
    if let (Some(x), Some(y)) = (a.as_i64(), b.as_i64()) {
        if a.logical_type() != Some(mammoth_types::LogicalType::F64)
            && b.logical_type() != Some(mammoth_types::LogicalType::F64)
        {
            return Some(Value::I64(match op {
                ArithOp::Add => x.wrapping_add(y),
                ArithOp::Sub => x.wrapping_sub(y),
                ArithOp::Mul => x.wrapping_mul(y),
                ArithOp::Div => {
                    if y == 0 {
                        return Some(Value::Null);
                    }
                    x.wrapping_div(y)
                }
                ArithOp::Mod => {
                    if y == 0 {
                        return Some(Value::Null);
                    }
                    x.wrapping_rem(y)
                }
            }));
        }
    }
    let (x, y) = (a.as_f64()?, b.as_f64()?);
    Some(Value::F64(match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => x / y,
        ArithOp::Mod => x % y,
    }))
}

/// Replace instructions identical to an earlier one (same op, same args)
/// with the earlier result — the materialize-everything paradigm makes this
/// safe for all pure instructions.
pub struct CommonSubexpr;

impl OptimizerPass for CommonSubexpr {
    fn name(&self) -> &'static str {
        "common_subexpression"
    }

    fn run(&self, prog: Program) -> Program {
        // Merging duplicates across `language.pass` markers is unsound:
        // redirecting uses onto the surviving var could read it after its
        // free. GC runs last in practice, so just leave such plans alone.
        if prog.instrs.iter().any(|i| i.op == OpCode::Free) {
            return prog;
        }
        let mut seen: HashMap<String, Vec<usize>> = HashMap::new();
        let mut replace: HashMap<usize, usize> = HashMap::new(); // var -> var
        let mut out = prog.clone();
        out.instrs = prog
            .instrs
            .into_iter()
            .filter_map(|mut i| {
                for a in &mut i.args {
                    if let Arg::Var(v) = a {
                        if let Some(&r) = replace.get(v) {
                            *a = Arg::Var(r);
                        }
                    }
                }
                if !i.op.is_pure() {
                    return Some(i);
                }
                let key = format!("{:?}|{:?}", i.op, i.args);
                match seen.get(&key) {
                    Some(prev) => {
                        for (mine, theirs) in i.results.iter().zip(prev) {
                            replace.insert(*mine, *theirs);
                        }
                        None
                    }
                    None => {
                        seen.insert(key, i.results.clone());
                        Some(i)
                    }
                }
            })
            .collect();
        out
    }
}

/// Remove pure instructions none of whose results are ever used.
pub struct DeadCode;

impl OptimizerPass for DeadCode {
    fn name(&self) -> &'static str {
        "dead_code"
    }

    fn run(&self, prog: Program) -> Program {
        // iterate to a fixed point (removing one instruction can orphan its
        // inputs)
        let mut instrs = prog.instrs.clone();
        loop {
            let mut used = vec![false; prog.nvars()];
            for i in &instrs {
                // a `language.pass` is not a real use: a var only freed is
                // dead, and its definition (plus the marker) can go
                if i.op == OpCode::Free {
                    continue;
                }
                for a in &i.args {
                    if let Arg::Var(v) = a {
                        used[*v] = true;
                    }
                }
            }
            let before = instrs.len();
            instrs.retain(|i: &Instr| !i.op.is_pure() || i.results.iter().any(|r| used[*r]));
            let mut defined = vec![false; prog.nvars()];
            for i in &instrs {
                for &r in &i.results {
                    defined[r] = true;
                }
            }
            instrs.retain(|i: &Instr| {
                i.op != OpCode::Free || matches!(i.args.first(), Some(Arg::Var(v)) if defined[*v])
            });
            if instrs.len() == before {
                break;
            }
        }
        let mut out = prog.clone();
        out.instrs = instrs;
        out
    }
}

/// Materialize the liveness analysis as explicit `language.pass` end-of-life
/// markers: after each variable's last use, a marker releases its value, so
/// the interpreter's variable table holds no dead BATs (MonetDB's
/// `garbagecollector` module). Idempotent: a var whose life already ends at
/// a `language.pass` gets no second marker.
pub struct GarbageCollect;

impl OptimizerPass for GarbageCollect {
    fn name(&self) -> &'static str {
        "garbage_collect"
    }

    fn run(&self, prog: Program) -> Program {
        let lv = analysis::analyze_liveness(&prog);
        let mut out = prog.clone();
        out.instrs = Vec::with_capacity(prog.instrs.len());
        for (idx, instr) in prog.instrs.iter().enumerate() {
            let op = instr.op.clone();
            out.instrs.push(instr.clone());
            // outputs die at io.result (nothing follows); a pass's operand
            // is already released by the pass itself
            if op == OpCode::Result || op == OpCode::Free {
                continue;
            }
            for &v in &lv.dies_at[idx] {
                out.instrs.push(Instr {
                    results: vec![],
                    op: OpCode::Free,
                    args: vec![Arg::Var(v)],
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mammoth_algebra::CmpOp;

    fn bind(p: &mut Program, t: &str, c: &str) -> usize {
        p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str(t.into())),
                Arg::Const(Value::Str(c.into())),
            ],
        )[0]
    }

    #[test]
    fn dead_code_removes_unused_chains() {
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        let _unused_select = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a), Arg::Const(Value::I32(1))],
        );
        let b = bind(&mut p, "t", "b");
        p.push_result(&[b]);
        let out = DeadCode.run(p);
        // the select AND the bind feeding only it are gone
        assert_eq!(out.instrs.len(), 2);
        assert!(out
            .instrs
            .iter()
            .all(|i| !matches!(&i.op, OpCode::ThetaSelect(_))));
    }

    #[test]
    fn cse_merges_identical_instructions() {
        let mut p = Program::new();
        let a1 = bind(&mut p, "t", "a");
        let a2 = bind(&mut p, "t", "a");
        let s1 = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a1), Arg::Const(Value::I32(1))],
        )[0];
        let s2 = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a2), Arg::Const(Value::I32(1))],
        )[0];
        p.push_result(&[s1, s2]);
        let out = CommonSubexpr.run(p);
        // one bind + one select + result
        assert_eq!(out.instrs.len(), 3);
        // result now references the surviving select twice
        let res = out.instrs.last().unwrap();
        assert_eq!(res.args[0], res.args[1]);
    }

    #[test]
    fn constant_folding_removes_scalar_calc() {
        let mut p = Program::new();
        let c = p.push(
            OpCode::Calc(ArithOp::Add),
            vec![Arg::Const(Value::I32(2)), Arg::Const(Value::I32(3))],
        )[0];
        let a = bind(&mut p, "t", "a");
        let s = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a), Arg::Var(c)],
        )[0];
        p.push_result(&[s]);
        let out = ConstantFold.run(p);
        assert_eq!(out.instrs.len(), 3);
        let sel = &out.instrs[1];
        assert_eq!(sel.args[1], Arg::Const(Value::I64(5)));
    }

    #[test]
    fn fold_arith_rules() {
        assert_eq!(
            fold_arith(ArithOp::Mul, &Value::I32(6), &Value::I32(7)),
            Some(Value::I64(42))
        );
        assert_eq!(
            fold_arith(ArithOp::Div, &Value::I32(1), &Value::I32(0)),
            Some(Value::Null)
        );
        assert_eq!(
            fold_arith(ArithOp::Add, &Value::F64(0.5), &Value::I32(1)),
            Some(Value::F64(1.5))
        );
        assert_eq!(
            fold_arith(ArithOp::Add, &Value::Null, &Value::I32(1)),
            Some(Value::Null)
        );
    }

    #[test]
    fn garbage_collect_inserts_end_of_life_markers() {
        let mut p = Program::new();
        let age = bind(&mut p, "t", "age");
        let c = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(age), Arg::Const(Value::I32(1))],
        )[0];
        let name = bind(&mut p, "t", "name");
        let out = p.push(OpCode::Projection, vec![Arg::Var(c), Arg::Var(name)])[0];
        p.push_result(&[out]);

        let gc = GarbageCollect.run(p);
        // age, c and name die at the projection: three markers appear
        let frees: Vec<&Instr> = gc.instrs.iter().filter(|i| i.op == OpCode::Free).collect();
        assert_eq!(frees.len(), 3);
        assert!(frees.iter().all(|i| i.results.is_empty()));
        // the program stays well-formed, and GC is idempotent
        analysis::verify(&gc).unwrap();
        let gc2 = GarbageCollect.run(gc.clone());
        assert_eq!(gc, gc2);
    }

    #[test]
    fn garbage_collect_skips_outputs() {
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        p.push_result(&[a]);
        let gc = GarbageCollect.run(p);
        assert!(gc.instrs.iter().all(|i| i.op != OpCode::Free));
    }

    #[test]
    fn dead_code_drops_vars_that_are_only_freed() {
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        let b = bind(&mut p, "t", "b");
        p.push(OpCode::Free, vec![Arg::Var(b)]); // b's only "use"
        p.push_result(&[a]);
        let out = DeadCode.run(p);
        assert_eq!(out.instrs.len(), 2); // bind a + result
        assert!(out.instrs.iter().all(|i| i.op != OpCode::Free));
    }

    #[test]
    fn cse_leaves_garbage_collected_plans_alone() {
        let mut p = Program::new();
        let a1 = bind(&mut p, "t", "a");
        let a2 = bind(&mut p, "t", "a"); // duplicate bind
        let s = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a2), Arg::Const(Value::I32(1))],
        )[0];
        p.push_result(&[s]);
        let _keep = a1;
        let gc = GarbageCollect.run(p);
        let out = CommonSubexpr.run(gc.clone());
        assert_eq!(out, gc, "CSE must not rewrite across language.pass");
    }

    #[test]
    fn checked_pipeline_reports_the_offending_pass() {
        struct Clobber;
        impl OptimizerPass for Clobber {
            fn name(&self) -> &'static str {
                "clobber"
            }
            fn run(&self, mut prog: Program) -> Program {
                // drop the first instruction: its result becomes undefined
                prog.instrs.remove(0);
                prog
            }
        }
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        let m = p.push(OpCode::Mirror, vec![Arg::Var(a)])[0];
        p.push_result(&[m]);

        let pl = Pipeline::new().with(Clobber).checked();
        let err = pl.try_optimize(p.clone()).unwrap_err();
        assert_eq!(err.pass, "clobber");
        assert!(matches!(
            err.error.kind,
            crate::analysis::VerifyErrorKind::UseBeforeDef { .. }
        ));
        assert!(err.to_string().contains("clobber"), "{err}");

        // a sound pipeline passes its own checks
        let pl = default_pipeline().with(GarbageCollect).checked();
        pl.try_optimize(p).unwrap();
    }

    #[test]
    fn default_pipeline_composes() {
        let pl = default_pipeline();
        assert_eq!(
            pl.pass_names(),
            vec!["constant_fold", "common_subexpression", "dead_code"]
        );
        let mut p = Program::new();
        let a1 = bind(&mut p, "t", "a");
        let _dead = bind(&mut p, "t", "zzz");
        let a2 = bind(&mut p, "t", "a"); // duplicate
        let s = p.push(
            OpCode::ThetaSelect(CmpOp::Lt),
            vec![Arg::Var(a2), Arg::Const(Value::I32(9))],
        )[0];
        p.push_result(&[s]);
        let _keep_a1_alive = a1;
        let out = pl.optimize(p);
        // bind(t.a) + select + result — dup bind and dead bind removed
        assert_eq!(out.instrs.len(), 3);
    }
}
