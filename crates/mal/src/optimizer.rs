//! The optimizer-module pipeline: §3.1's second tier.
//!
//! "The second tier consists of a collection of optimizer modules, which
//! are assembled into optimization pipelines. … The approach breaks with
//! the hitherto omnipresent cost-based optimizers by recognition that not
//! all decisions can be cast together in a single cost formula."
//!
//! Each module is a standalone program→program rewrite. The default
//! pipeline runs constant folding, common-subexpression elimination and
//! dead-code elimination, in that order; [`GarbageCollect`] can be appended
//! to insert `language.pass` end-of-life markers. Because every pass is an
//! unconstrained rewrite, the pipeline re-verifies the plan after each pass
//! with [`crate::analysis::verify`] (always in debug builds, opt-in via
//! [`Pipeline::checked`] in release) and attributes any failure to the
//! offending pass.

use crate::analysis::props::{BatFacts, SelectVerdict};
use crate::analysis::{self, VerifyError};
use crate::program::{Arg, Instr, OpCode, Program, VarId};
use mammoth_algebra::{ArithOp, CmpOp};
use mammoth_types::Value;
use std::collections::HashMap;
use std::fmt;

/// One optimizer module.
/// An optimizer module. `Send + Sync` so a [`Pipeline`] (and the session
/// holding it) can be shared across the network server's worker threads.
pub trait OptimizerPass: Send + Sync {
    fn name(&self) -> &'static str;
    fn run(&self, prog: Program) -> Program;
}

/// A verification failure attributed to the optimizer pass whose output
/// first failed to verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    pub pass: &'static str,
    pub error: VerifyError,
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "optimizer pass '{}' produced an ill-formed plan: {}",
            self.pass, self.error
        )
    }
}

impl std::error::Error for PassError {}

/// An ordered pipeline of modules.
///
/// In debug builds the pipeline re-verifies the plan after every pass; a
/// pass that emits an ill-formed program is reported by name via
/// [`Pipeline::try_optimize`] (or a panic from [`Pipeline::optimize`]).
/// Release builds skip verification unless opted in with
/// [`Pipeline::checked`].
#[derive(Default)]
pub struct Pipeline {
    passes: Vec<Box<dyn OptimizerPass>>,
    checked: bool,
}

impl Pipeline {
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    pub fn with(mut self, pass: impl OptimizerPass + 'static) -> Pipeline {
        self.passes.push(Box::new(pass));
        self
    }

    /// Verify the plan after every pass even in release builds.
    pub fn checked(mut self) -> Pipeline {
        self.checked = true;
        self
    }

    /// Whether per-pass verification is active (always in debug builds).
    pub fn is_checked(&self) -> bool {
        self.checked || cfg!(debug_assertions)
    }

    /// Run all passes, verifying after each when [`Pipeline::is_checked`].
    pub fn try_optimize(&self, mut prog: Program) -> Result<Program, Box<PassError>> {
        for p in &self.passes {
            prog = p.run(prog);
            if self.is_checked() {
                if let Err(error) = analysis::verify(&prog) {
                    return Err(Box::new(PassError {
                        pass: p.name(),
                        error,
                    }));
                }
            }
        }
        Ok(prog)
    }

    /// Run all passes; panics if a checked pass miscompiles the plan.
    pub fn optimize(&self, prog: Program) -> Program {
        self.try_optimize(prog).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }
}

/// The default pipeline (mirrors MonetDB's default optimizer chain in
/// spirit).
pub fn default_pipeline() -> Pipeline {
    Pipeline::new()
        .with(ConstantFold)
        .with(CommonSubexpr)
        .with(DeadCode)
}

/// [`default_pipeline`] extended with the abstract-interpretation property
/// tier: after folding and CSE, [`SelectElimination`] and [`SortedSelect`]
/// rewrite selections using per-column statistics (`facts`, from
/// [`analysis::column_facts`] over the catalog the plan will run against),
/// then dead code is swept. The pipeline is [`Pipeline::checked`] because
/// these passes rewrite based on facts external to the plan text.
///
/// Invariant: `facts` must describe the catalog state the plan executes
/// against — the passes' proofs are only as sound as their premises.
pub fn default_pipeline_with_props(facts: analysis::PropFacts) -> Pipeline {
    Pipeline::new()
        .with(ConstantFold)
        .with(CommonSubexpr)
        .with(SelectElimination::new(facts.clone()))
        .with(SortedSelect::new(facts))
        .with(DeadCode)
        .checked()
}

/// Fold `batcalc` instructions whose *both* operands are constants, and
/// canonicalize constant-only arithmetic in arguments.
pub struct ConstantFold;

impl OptimizerPass for ConstantFold {
    fn name(&self) -> &'static str {
        "constant_fold"
    }

    fn run(&self, prog: Program) -> Program {
        // In this instruction set only scalar+scalar Calc can fold; the SQL
        // front-end already folds most of those, so the pass mainly
        // normalizes `x := calc(const, const)` produced by generators.
        let mut out = prog.clone();
        let mut folded: HashMap<usize, Value> = HashMap::new();
        out.instrs = prog
            .instrs
            .into_iter()
            .filter_map(|mut i| {
                // replace args that reference folded vars
                for a in &mut i.args {
                    if let Arg::Var(v) = a {
                        if let Some(c) = folded.get(v) {
                            *a = Arg::Const(c.clone());
                        }
                    }
                }
                // a freed var that folded to a constant has nothing left to
                // release — the marker disappears with the instruction
                if i.op == OpCode::Free && matches!(i.args.first(), Some(Arg::Const(_))) {
                    return None;
                }
                if let OpCode::Calc(op) = &i.op {
                    if let (Some(Arg::Const(a)), Some(Arg::Const(b))) =
                        (i.args.first(), i.args.get(1))
                    {
                        if let Some(c) = fold_arith(*op, a, b) {
                            folded.insert(i.results[0], c);
                            return None; // instruction disappears
                        }
                    }
                }
                Some(i)
            })
            .collect();
        out
    }
}

fn fold_arith(op: ArithOp, a: &Value, b: &Value) -> Option<Value> {
    if a.is_null() || b.is_null() {
        return Some(Value::Null);
    }
    if let (Some(x), Some(y)) = (a.as_i64(), b.as_i64()) {
        if a.logical_type() != Some(mammoth_types::LogicalType::F64)
            && b.logical_type() != Some(mammoth_types::LogicalType::F64)
        {
            return Some(Value::I64(match op {
                ArithOp::Add => x.wrapping_add(y),
                ArithOp::Sub => x.wrapping_sub(y),
                ArithOp::Mul => x.wrapping_mul(y),
                ArithOp::Div => {
                    if y == 0 {
                        return Some(Value::Null);
                    }
                    x.wrapping_div(y)
                }
                ArithOp::Mod => {
                    if y == 0 {
                        return Some(Value::Null);
                    }
                    x.wrapping_rem(y)
                }
            }));
        }
    }
    let (x, y) = (a.as_f64()?, b.as_f64()?);
    Some(Value::F64(match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => x / y,
        ArithOp::Mod => x % y,
    }))
}

/// Replace instructions identical to an earlier one (same op, same args)
/// with the earlier result — the materialize-everything paradigm makes this
/// safe for all pure instructions.
pub struct CommonSubexpr;

impl OptimizerPass for CommonSubexpr {
    fn name(&self) -> &'static str {
        "common_subexpression"
    }

    fn run(&self, prog: Program) -> Program {
        // Merging duplicates across `language.pass` markers is unsound:
        // redirecting uses onto the surviving var could read it after its
        // free. GC runs last in practice, so just leave such plans alone.
        if prog.instrs.iter().any(|i| i.op == OpCode::Free) {
            return prog;
        }
        let mut seen: HashMap<String, Vec<usize>> = HashMap::new();
        let mut replace: HashMap<usize, usize> = HashMap::new(); // var -> var
        let mut out = prog.clone();
        out.instrs = prog
            .instrs
            .into_iter()
            .filter_map(|mut i| {
                for a in &mut i.args {
                    if let Arg::Var(v) = a {
                        if let Some(&r) = replace.get(v) {
                            *a = Arg::Var(r);
                        }
                    }
                }
                if !i.op.is_pure() {
                    return Some(i);
                }
                let key = format!("{:?}|{:?}", i.op, i.args);
                match seen.get(&key) {
                    Some(prev) => {
                        for (mine, theirs) in i.results.iter().zip(prev) {
                            replace.insert(*mine, *theirs);
                        }
                        None
                    }
                    None => {
                        seen.insert(key, i.results.clone());
                        Some(i)
                    }
                }
            })
            .collect();
        out
    }
}

/// Remove pure instructions none of whose results are ever used.
pub struct DeadCode;

impl OptimizerPass for DeadCode {
    fn name(&self) -> &'static str {
        "dead_code"
    }

    fn run(&self, prog: Program) -> Program {
        // iterate to a fixed point (removing one instruction can orphan its
        // inputs)
        let mut instrs = prog.instrs.clone();
        loop {
            let mut used = vec![false; prog.nvars()];
            for i in &instrs {
                // a `language.pass` is not a real use: a var only freed is
                // dead, and its definition (plus the marker) can go
                if i.op == OpCode::Free {
                    continue;
                }
                for a in &i.args {
                    if let Arg::Var(v) = a {
                        used[*v] = true;
                    }
                }
            }
            let before = instrs.len();
            instrs.retain(|i: &Instr| !i.op.is_pure() || i.results.iter().any(|r| used[*r]));
            let mut defined = vec![false; prog.nvars()];
            for i in &instrs {
                for &r in &i.results {
                    defined[r] = true;
                }
            }
            instrs.retain(|i: &Instr| {
                i.op != OpCode::Free || matches!(i.args.first(), Some(Arg::Var(v)) if defined[*v])
            });
            if instrs.len() == before {
                break;
            }
        }
        let mut out = prog.clone();
        out.instrs = instrs;
        out
    }
}

/// Materialize the liveness analysis as explicit `language.pass` end-of-life
/// markers: after each variable's last use, a marker releases its value, so
/// the interpreter's variable table holds no dead BATs (MonetDB's
/// `garbagecollector` module). Idempotent: a var whose life already ends at
/// a `language.pass` gets no second marker.
pub struct GarbageCollect;

impl OptimizerPass for GarbageCollect {
    fn name(&self) -> &'static str {
        "garbage_collect"
    }

    fn run(&self, prog: Program) -> Program {
        let lv = analysis::analyze_liveness(&prog);
        let mut out = prog.clone();
        out.instrs = Vec::with_capacity(prog.instrs.len());
        for (idx, instr) in prog.instrs.iter().enumerate() {
            let op = instr.op.clone();
            out.instrs.push(instr.clone());
            // outputs die at io.result (nothing follows); a pass's operand
            // is already released by the pass itself
            if op == OpCode::Result || op == OpCode::Free {
                continue;
            }
            for &v in &lv.dies_at[idx] {
                out.instrs.push(Instr {
                    results: vec![],
                    op: OpCode::Free,
                    args: vec![Arg::Var(v)],
                });
            }
        }
        out
    }
}

/// Interval-based select elimination — the property tier's first consumer
/// (§3.1's "properties drive rewriting"). A selection whose predicate the
/// analysis proves accepts *every* row is replaced by a `bat.mirror`
/// pass-through (the candidate list of a dense-headed input at seqbase 0
/// is exactly its mirror); one that provably accepts *no* row becomes an
/// empty candidate list built as `bat.slice(b, 0, 0)` + `bat.mirror`.
/// Both proofs compare the input's inferred value interval (seeded from
/// column statistics and zone maps) against the constant predicate.
///
/// Soundness guards, in order:
/// * plans containing `language.pass` are left untouched (the rewrite
///   would have to re-derive end-of-life markers);
/// * the input must have a statically dense head at seqbase 0, so the
///   mirrored oid list is bit-identical to the select's candidate output;
/// * every non-nil predicate constant must coerce losslessly into the
///   column's value type — otherwise the select would raise a type error
///   at runtime, and eliminating it would mask that error.
pub struct SelectElimination {
    facts: analysis::PropFacts,
}

impl SelectElimination {
    pub fn new(facts: analysis::PropFacts) -> SelectElimination {
        SelectElimination { facts }
    }

    fn verdict(an: &analysis::Analysis, instr: &Instr) -> SelectVerdict {
        let Some(Arg::Var(v)) = instr.args.first() else {
            return SelectVerdict::Unknown;
        };
        let Some(f) = an.bat_facts(*v) else {
            return SelectVerdict::Unknown;
        };
        if !(f.props.void_head && f.seqbase == Some(0)) {
            return SelectVerdict::Unknown;
        }
        if !consts_coerce(f, &instr.args[1..]) {
            return SelectVerdict::Unknown;
        }
        match &instr.op {
            OpCode::ThetaSelect(op) => analysis::props::select_verdict_theta(f, instr, *op),
            OpCode::RangeSelect { lo_incl, hi_incl } => {
                analysis::props::select_verdict_range(f, instr, *lo_incl, *hi_incl)
            }
            _ => SelectVerdict::Unknown,
        }
    }
}

/// True when every constant predicate argument either is nil (an open /
/// no-candidates bound the runtime handles without touching the column
/// type) or coerces losslessly into the type of the column's bounds.
fn consts_coerce(f: &BatFacts, preds: &[Arg]) -> bool {
    let consts = preds.iter().map(|a| match a {
        Arg::Const(c) => Some(c),
        // a parameter's value (and thus coercibility) is unknown until
        // EXECUTE binds it — treat like a variable: not provably safe
        Arg::Var(_) | Arg::Param(_) => None,
    });
    let bty = f
        .props
        .min
        .as_ref()
        .or(f.props.max.as_ref())
        .and_then(|v| v.logical_type());
    match bty {
        Some(ty) => consts
            .flatten()
            .all(|c| c.is_null() || c.coerce(ty).is_some()),
        None => consts.flatten().all(|c| c.is_null()),
    }
}

impl OptimizerPass for SelectElimination {
    fn name(&self) -> &'static str {
        "select_elimination"
    }

    fn run(&self, prog: Program) -> Program {
        if prog.instrs.iter().any(|i| i.op == OpCode::Free) {
            return prog;
        }
        let Ok(an) = analysis::analyze_props_with_facts(&prog, &self.facts) else {
            return prog;
        };
        let mut out = prog.clone();
        out.instrs = Vec::with_capacity(prog.instrs.len());
        for instr in &prog.instrs {
            match Self::verdict(&an, instr) {
                SelectVerdict::All => out.instrs.push(Instr {
                    results: instr.results.clone(),
                    op: OpCode::Mirror,
                    args: vec![instr.args[0].clone()],
                }),
                SelectVerdict::None => {
                    let empty = out.var();
                    out.instrs.push(Instr {
                        results: vec![empty],
                        op: OpCode::Slice,
                        args: vec![
                            instr.args[0].clone(),
                            Arg::Const(Value::I64(0)),
                            Arg::Const(Value::I64(0)),
                        ],
                    });
                    out.instrs.push(Instr {
                        results: instr.results.clone(),
                        op: OpCode::Mirror,
                        args: vec![Arg::Var(empty)],
                    });
                }
                SelectVerdict::Unknown => out.instrs.push(instr.clone()),
            }
        }
        out
    }
}

/// Sorted-input select specialization. A theta-select over a column the
/// analysis proves `sorted` and `nonil` is rewritten into the equivalent
/// `algebra.select` range form over a `bat.setprops(b, "sorted,nonil")`
/// annotated input; the interpreter's binary-search fast path keys off the
/// *runtime* sorted/nonil flags the annotation establishes, replacing the
/// scan with two `partition_point` probes. Existing range selects over
/// proven-sorted inputs get the same annotation.
///
/// Answer preservation is independent of the annotation: the range form
/// computes the identical candidate set by scan whenever the runtime flags
/// are absent, and `bat.setprops` itself only asserts claims the analysis
/// already confirmed (the plan would not pass the property walk
/// otherwise). `!=` selects are not range-expressible and stay scans.
pub struct SortedSelect {
    facts: analysis::PropFacts,
}

impl SortedSelect {
    pub fn new(facts: analysis::PropFacts) -> SortedSelect {
        SortedSelect { facts }
    }

    /// Reuse or insert `sv := bat.setprops(v, "sorted,nonil")`.
    fn annotate(out: &mut Program, annotated: &mut HashMap<VarId, VarId>, v: VarId) -> VarId {
        if let Some(&sv) = annotated.get(&v) {
            return sv;
        }
        let sv = out.var();
        out.instrs.push(Instr {
            results: vec![sv],
            op: OpCode::SetProps,
            args: vec![Arg::Var(v), Arg::Const(Value::Str("sorted,nonil".into()))],
        });
        annotated.insert(v, sv);
        sv
    }
}

impl OptimizerPass for SortedSelect {
    fn name(&self) -> &'static str {
        "sorted_select"
    }

    fn run(&self, prog: Program) -> Program {
        if prog.instrs.iter().any(|i| i.op == OpCode::Free) {
            return prog;
        }
        let Ok(an) = analysis::analyze_props_with_facts(&prog, &self.facts) else {
            return prog;
        };
        let mut out = prog.clone();
        out.instrs = Vec::with_capacity(prog.instrs.len());
        let mut annotated: HashMap<VarId, VarId> = HashMap::new();
        for instr in &prog.instrs {
            let sorted_input = match instr.args.first() {
                Some(Arg::Var(v)) => an
                    .bat_facts(*v)
                    .filter(|f| f.props.sorted && f.props.nonil)
                    .map(|_| *v),
                _ => None,
            };
            match (&instr.op, sorted_input) {
                (OpCode::ThetaSelect(op), Some(v)) if *op != CmpOp::Ne => {
                    let c = match instr.args.get(1) {
                        Some(Arg::Const(c)) if !c.is_null() => c.clone(),
                        _ => {
                            out.instrs.push(instr.clone());
                            continue;
                        }
                    };
                    let sv = Self::annotate(&mut out, &mut annotated, v);
                    let nil = || Arg::Const(Value::Null);
                    let cst = Arg::Const(c);
                    let (op2, lo, hi) = match op {
                        CmpOp::Lt => (range_op(true, false), nil(), cst),
                        CmpOp::Le => (range_op(true, true), nil(), cst),
                        CmpOp::Gt => (range_op(false, true), cst, nil()),
                        CmpOp::Ge => (range_op(true, true), cst, nil()),
                        CmpOp::Eq => (range_op(true, true), cst.clone(), cst),
                        CmpOp::Ne => unreachable!("guarded above"),
                    };
                    out.instrs.push(Instr {
                        results: instr.results.clone(),
                        op: op2,
                        args: vec![Arg::Var(sv), lo, hi],
                    });
                }
                (OpCode::RangeSelect { .. }, Some(v)) => {
                    let sv = Self::annotate(&mut out, &mut annotated, v);
                    let mut ni = instr.clone();
                    ni.args[0] = Arg::Var(sv);
                    out.instrs.push(ni);
                }
                _ => out.instrs.push(instr.clone()),
            }
        }
        out
    }
}

fn range_op(lo_incl: bool, hi_incl: bool) -> OpCode {
    OpCode::RangeSelect { lo_incl, hi_incl }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use mammoth_storage::{Bat, Catalog, Table};
    use mammoth_types::{ColumnDef, LogicalType, TableSchema};

    fn bind(p: &mut Program, t: &str, c: &str) -> usize {
        p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str(t.into())),
                Arg::Const(Value::Str(c.into())),
            ],
        )[0]
    }

    #[test]
    fn dead_code_removes_unused_chains() {
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        let _unused_select = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a), Arg::Const(Value::I32(1))],
        );
        let b = bind(&mut p, "t", "b");
        p.push_result(&[b]);
        let out = DeadCode.run(p);
        // the select AND the bind feeding only it are gone
        assert_eq!(out.instrs.len(), 2);
        assert!(out
            .instrs
            .iter()
            .all(|i| !matches!(&i.op, OpCode::ThetaSelect(_))));
    }

    #[test]
    fn cse_merges_identical_instructions() {
        let mut p = Program::new();
        let a1 = bind(&mut p, "t", "a");
        let a2 = bind(&mut p, "t", "a");
        let s1 = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a1), Arg::Const(Value::I32(1))],
        )[0];
        let s2 = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a2), Arg::Const(Value::I32(1))],
        )[0];
        p.push_result(&[s1, s2]);
        let out = CommonSubexpr.run(p);
        // one bind + one select + result
        assert_eq!(out.instrs.len(), 3);
        // result now references the surviving select twice
        let res = out.instrs.last().unwrap();
        assert_eq!(res.args[0], res.args[1]);
    }

    #[test]
    fn constant_folding_removes_scalar_calc() {
        let mut p = Program::new();
        let c = p.push(
            OpCode::Calc(ArithOp::Add),
            vec![Arg::Const(Value::I32(2)), Arg::Const(Value::I32(3))],
        )[0];
        let a = bind(&mut p, "t", "a");
        let s = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a), Arg::Var(c)],
        )[0];
        p.push_result(&[s]);
        let out = ConstantFold.run(p);
        assert_eq!(out.instrs.len(), 3);
        let sel = &out.instrs[1];
        assert_eq!(sel.args[1], Arg::Const(Value::I64(5)));
    }

    #[test]
    fn fold_arith_rules() {
        assert_eq!(
            fold_arith(ArithOp::Mul, &Value::I32(6), &Value::I32(7)),
            Some(Value::I64(42))
        );
        assert_eq!(
            fold_arith(ArithOp::Div, &Value::I32(1), &Value::I32(0)),
            Some(Value::Null)
        );
        assert_eq!(
            fold_arith(ArithOp::Add, &Value::F64(0.5), &Value::I32(1)),
            Some(Value::F64(1.5))
        );
        assert_eq!(
            fold_arith(ArithOp::Add, &Value::Null, &Value::I32(1)),
            Some(Value::Null)
        );
    }

    #[test]
    fn garbage_collect_inserts_end_of_life_markers() {
        let mut p = Program::new();
        let age = bind(&mut p, "t", "age");
        let c = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(age), Arg::Const(Value::I32(1))],
        )[0];
        let name = bind(&mut p, "t", "name");
        let out = p.push(OpCode::Projection, vec![Arg::Var(c), Arg::Var(name)])[0];
        p.push_result(&[out]);

        let gc = GarbageCollect.run(p);
        // age, c and name die at the projection: three markers appear
        let frees: Vec<&Instr> = gc.instrs.iter().filter(|i| i.op == OpCode::Free).collect();
        assert_eq!(frees.len(), 3);
        assert!(frees.iter().all(|i| i.results.is_empty()));
        // the program stays well-formed, and GC is idempotent
        analysis::verify(&gc).unwrap();
        let gc2 = GarbageCollect.run(gc.clone());
        assert_eq!(gc, gc2);
    }

    #[test]
    fn garbage_collect_skips_outputs() {
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        p.push_result(&[a]);
        let gc = GarbageCollect.run(p);
        assert!(gc.instrs.iter().all(|i| i.op != OpCode::Free));
    }

    #[test]
    fn dead_code_drops_vars_that_are_only_freed() {
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        let b = bind(&mut p, "t", "b");
        p.push(OpCode::Free, vec![Arg::Var(b)]); // b's only "use"
        p.push_result(&[a]);
        let out = DeadCode.run(p);
        assert_eq!(out.instrs.len(), 2); // bind a + result
        assert!(out.instrs.iter().all(|i| i.op != OpCode::Free));
    }

    #[test]
    fn cse_leaves_garbage_collected_plans_alone() {
        let mut p = Program::new();
        let a1 = bind(&mut p, "t", "a");
        let a2 = bind(&mut p, "t", "a"); // duplicate bind
        let s = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a2), Arg::Const(Value::I32(1))],
        )[0];
        p.push_result(&[s]);
        let _keep = a1;
        let gc = GarbageCollect.run(p);
        let out = CommonSubexpr.run(gc.clone());
        assert_eq!(out, gc, "CSE must not rewrite across language.pass");
    }

    #[test]
    fn checked_pipeline_reports_the_offending_pass() {
        struct Clobber;
        impl OptimizerPass for Clobber {
            fn name(&self) -> &'static str {
                "clobber"
            }
            fn run(&self, mut prog: Program) -> Program {
                // drop the first instruction: its result becomes undefined
                prog.instrs.remove(0);
                prog
            }
        }
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        let m = p.push(OpCode::Mirror, vec![Arg::Var(a)])[0];
        p.push_result(&[m]);

        let pl = Pipeline::new().with(Clobber).checked();
        let err = pl.try_optimize(p.clone()).unwrap_err();
        assert_eq!(err.pass, "clobber");
        assert!(matches!(
            err.error.kind,
            crate::analysis::VerifyErrorKind::UseBeforeDef { .. }
        ));
        assert!(err.to_string().contains("clobber"), "{err}");

        // a sound pipeline passes its own checks
        let pl = default_pipeline().with(GarbageCollect).checked();
        pl.try_optimize(p).unwrap();
    }

    #[test]
    fn default_pipeline_composes() {
        let pl = default_pipeline();
        assert_eq!(
            pl.pass_names(),
            vec!["constant_fold", "common_subexpression", "dead_code"]
        );
        let mut p = Program::new();
        let a1 = bind(&mut p, "t", "a");
        let _dead = bind(&mut p, "t", "zzz");
        let a2 = bind(&mut p, "t", "a"); // duplicate
        let s = p.push(
            OpCode::ThetaSelect(CmpOp::Lt),
            vec![Arg::Var(a2), Arg::Const(Value::I32(9))],
        )[0];
        p.push_result(&[s]);
        let _keep_a1_alive = a1;
        let out = pl.optimize(p);
        // bind(t.a) + select + result — dup bind and dead bind removed
        assert_eq!(out.instrs.len(), 3);
    }

    /// t.s is sorted 0..100 (statistics known); t.r is a scramble of the
    /// same values, so its interval is known but its order is not.
    fn props_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let t = Table::from_bats(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("s", LogicalType::I64),
                    ColumnDef::new("r", LogicalType::I64),
                ],
            ),
            vec![
                Bat::from_vec((0..100i64).collect::<Vec<_>>()),
                Bat::from_vec((0..100i64).map(|i| (i * 37) % 100).collect::<Vec<_>>()),
            ],
        )
        .unwrap();
        cat.create_table(t).unwrap();
        cat
    }

    fn select_plan(col: &str, op: CmpOp, cut: i64) -> Program {
        let mut p = Program::new();
        let b = bind(&mut p, "t", col);
        let c = p.push(
            OpCode::ThetaSelect(op),
            vec![Arg::Var(b), Arg::Const(Value::I64(cut))],
        )[0];
        let v = p.push(OpCode::Projection, vec![Arg::Var(c), Arg::Var(b)])[0];
        p.push_result(&[v]);
        p
    }

    fn run_tail(cat: &Catalog, p: &Program) -> Vec<i64> {
        let out = Interpreter::new(cat).run(p).unwrap();
        out[0]
            .as_bat()
            .unwrap()
            .tail_slice::<i64>()
            .unwrap()
            .to_vec()
    }

    #[test]
    fn select_elimination_rewrites_trivial_selects() {
        let cat = props_catalog();
        let facts = analysis::column_facts(&cat);

        // every row < 1000: the select collapses into a mirror
        let p = select_plan("s", CmpOp::Lt, 1000);
        let out = SelectElimination::new(facts.clone()).run(p.clone());
        assert!(out.instrs.iter().any(|i| i.op == OpCode::Mirror));
        assert!(!out
            .instrs
            .iter()
            .any(|i| matches!(i.op, OpCode::ThetaSelect(_))));
        assert_eq!(run_tail(&cat, &p), run_tail(&cat, &out));

        // no row > 1000: the select collapses into an empty candidate list
        let p = select_plan("s", CmpOp::Gt, 1000);
        let out = SelectElimination::new(facts.clone()).run(p.clone());
        assert!(!out
            .instrs
            .iter()
            .any(|i| matches!(i.op, OpCode::ThetaSelect(_))));
        assert_eq!(run_tail(&cat, &p), Vec::<i64>::new());
        assert_eq!(run_tail(&cat, &out), Vec::<i64>::new());

        // a cut inside the interval: no proof, no rewrite
        let p = select_plan("r", CmpOp::Lt, 50);
        let out = SelectElimination::new(facts).run(p.clone());
        assert_eq!(out.instrs.len(), p.instrs.len());
    }

    #[test]
    fn select_elimination_keeps_type_error_behavior() {
        // i8 column, predicate constant outside the i8 range: the select
        // raises a type error at runtime, so the pass must leave it in
        // place even though the interval proof says "all rows match".
        let mut cat = Catalog::new();
        let t = Table::from_bats(
            TableSchema::new("t8", vec![ColumnDef::new("c", LogicalType::I8)]),
            vec![Bat::from_vec((0..10i8).collect::<Vec<_>>())],
        )
        .unwrap();
        cat.create_table(t).unwrap();
        let mut p = Program::new();
        let b = bind(&mut p, "t8", "c");
        let s = p.push(
            OpCode::ThetaSelect(CmpOp::Lt),
            vec![Arg::Var(b), Arg::Const(Value::I64(1000))],
        )[0];
        p.push_result(&[s]);
        let out = SelectElimination::new(analysis::column_facts(&cat)).run(p.clone());
        assert!(out
            .instrs
            .iter()
            .any(|i| matches!(i.op, OpCode::ThetaSelect(_))));
        assert!(Interpreter::new(&cat).run(&out).is_err());
    }

    #[test]
    fn sorted_select_specializes_to_annotated_range() {
        let cat = props_catalog();
        let facts = analysis::column_facts(&cat);
        for (op, cut) in [
            (CmpOp::Lt, 50),
            (CmpOp::Le, 50),
            (CmpOp::Gt, 97),
            (CmpOp::Ge, 0),
            (CmpOp::Eq, 42),
        ] {
            let p = select_plan("s", op, cut);
            let out = SortedSelect::new(facts.clone()).run(p.clone());
            assert!(
                out.instrs.iter().any(|i| i.op == OpCode::SetProps),
                "{op:?}"
            );
            assert!(
                out.instrs
                    .iter()
                    .any(|i| matches!(i.op, OpCode::RangeSelect { .. })),
                "{op:?}"
            );
            assert_eq!(run_tail(&cat, &p), run_tail(&cat, &out), "{op:?}");
        }
        // unsorted column: untouched
        let p = select_plan("r", CmpOp::Lt, 50);
        let out = SortedSelect::new(facts.clone()).run(p.clone());
        assert!(!out.instrs.iter().any(|i| i.op == OpCode::SetProps));
        // != is not range-expressible: untouched
        let p = select_plan("s", CmpOp::Ne, 50);
        let out = SortedSelect::new(facts).run(p.clone());
        assert!(!out
            .instrs
            .iter()
            .any(|i| matches!(i.op, OpCode::RangeSelect { .. })));
    }

    #[test]
    fn props_pipelines_preserve_answers() {
        let cat = props_catalog();
        let facts = analysis::column_facts(&cat);
        for (col, op, cut) in [
            ("s", CmpOp::Lt, 30),
            ("s", CmpOp::Gt, 1000),
            ("s", CmpOp::Lt, -5),
            ("s", CmpOp::Eq, 42),
            ("r", CmpOp::Ge, 50),
            ("r", CmpOp::Lt, 1000),
        ] {
            let p = select_plan(col, op, cut);
            let base = run_tail(&cat, &p);
            let opt = default_pipeline_with_props(facts.clone()).optimize(p);
            assert_eq!(base, run_tail(&cat, &opt), "{col} {op:?} {cut}");
        }
    }
}
