//! Combine plans for shard scatter-gather.
//!
//! The shard coordinator (`crates/shard`) treats a network hop as a slower
//! slice boundary: each shard ships back either a *horizontal fragment* of
//! the referenced columns or a *partial aggregate*, staged in per-shard
//! tables of a scratch catalog. The builders here emit the plans that glue
//! those fragments back together — the same two merge operators the
//! in-process mergetable ([`crate::mitosis`]) inserts around `PartSlice`
//! fragments:
//!
//! * **gather** — per-shard column fragments are [`Kind::LocalValues`]
//!   groups (seqbase-0 values, concatenated in shard order), merged with
//!   `mat.pack` exactly like mergetable's `ensure_whole`;
//! * **partial aggregates** — per-shard scalar partials merged with
//!   `mat.packsum` (counts and integer sums) or `mat.pack` + `aggr.min`/
//!   `aggr.max`, mirroring mergetable's `rewrite_aggregate`. Like the
//!   mergetable, float sums are *not* merged this way (f64 addition is not
//!   associative); the coordinator routes those through the gather path so
//!   the distributed result stays bit-identical to single-node.
//!
//! Every emitted plan is a plain [`Program`]: the coordinator runs it
//! through `verify_with_catalog` and the property analysis before
//! executing, so the existing MAL analysis tier keeps holding on the
//! recombined plan.

use crate::mitosis::{Kind, Lineage};
use crate::program::{Arg, OpCode, Program, VarId};
use mammoth_algebra::AggKind;
use mammoth_types::{Error, Result, Value};

/// Name of shard `i`'s staging table for `table` in the combine catalog.
/// The `__shard` prefix keeps staging names out of the user namespace
/// (the SQL lexer never produces identifiers with leading underscores
/// into DDL the coordinator accepts — see `crates/shard`).
pub fn shard_table_name(i: usize, table: &str) -> String {
    format!("__shard{i}__{table}")
}

/// One fragment group delivered over the wire: the per-shard variables
/// holding the same logical column, tagged with the mergetable taxonomy so
/// merges are gated the same way the in-process rewriter gates them.
struct ShardGroup {
    parts: Vec<VarId>,
    kind: Kind,
    #[allow(dead_code)] // documents row-alignment; asserted in tests
    lineage: Lineage,
}

impl ShardGroup {
    /// Emit `v := mat.pack(parts…)` — legal for value-space fragment
    /// groups only. [`Kind::AbsCands`] fragments (absolute base oids)
    /// never cross the wire: shards ship values, not candidate lists.
    fn pack(&self, prog: &mut Program) -> Result<VarId> {
        if self.kind == Kind::AbsCands {
            return Err(Error::Unsupported(
                "candidate fragments cannot be packed across shards".into(),
            ));
        }
        let args = self.parts.iter().map(|&p| Arg::Var(p)).collect();
        Ok(prog.push(OpCode::Pack, args)[0])
    }
}

/// One column of the gather: bind `table.column` from every shard's
/// staging table and concatenate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatherColumn {
    pub table: String,
    pub column: String,
}

/// Build the gather-combine plan: for every requested column, bind its
/// fragment from each shard's staging table, `mat.pack` the fragments in
/// shard order, and mark the packed columns as outputs (one output per
/// column, in input order).
///
/// The packed outputs are dense void-headed BATs starting at 0, exactly
/// what [`mammoth_storage`]'s `Table::from_bats` accepts — the coordinator
/// rebuilds each logical table from them and runs the original verified
/// plan unchanged.
pub fn gather_combine(columns: &[GatherColumn], nshards: usize) -> Result<Program> {
    if columns.is_empty() || nshards == 0 {
        return Err(Error::Unsupported(
            "gather needs at least one column and one shard".into(),
        ));
    }
    let mut prog = Program::new();
    let mut outputs = Vec::with_capacity(columns.len());
    for col in columns {
        let parts: Vec<VarId> = (0..nshards)
            .map(|i| {
                prog.push(
                    OpCode::Bind,
                    vec![
                        Arg::Const(Value::Str(shard_table_name(i, &col.table))),
                        Arg::Const(Value::Str(col.column.clone())),
                    ],
                )[0]
            })
            .collect();
        let group = ShardGroup {
            parts,
            // Staging tables rebase every fragment to seqbase 0: value
            // fragments in fragment-local space, packed in shard order.
            kind: Kind::LocalValues,
            lineage: Lineage::Table(col.table.clone()),
        };
        outputs.push(group.pack(&mut prog)?);
    }
    prog.push_result(&outputs);
    Ok(prog)
}

/// How one output column's per-shard partials merge back into the final
/// scalar. The set is exactly what mergetable's `rewrite_aggregate`
/// accepts plus min/max (which merge by packing and re-aggregating).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartialMerge {
    /// Partial counts sum: `mat.packsum` over the per-shard scalars.
    Count,
    /// Partial integer sums sum (wrapping i64 — associative, so any
    /// shard order matches the serial result). Float sums are excluded
    /// upstream, mirroring the mergetable.
    SumInt,
    /// min(min_0, …, min_{n-1}) — pack the 1-row partials, re-minimize.
    Min,
    /// max of the per-shard maxima, same shape as [`PartialMerge::Min`].
    Max,
}

/// Name of the single-row staging table holding shard `i`'s partials.
pub fn shard_partials_table(i: usize) -> String {
    shard_table_name(i, "partials")
}

/// Column name of partial `j` inside a shard's partials staging table.
pub fn partial_column(j: usize) -> String {
    format!("p{j}")
}

/// Build the aggregate-combine plan: shard `i`'s partials are staged as a
/// one-row table `__shard{i}__partials` with columns `p0..p{m-1}`; output
/// `j` merges column `p{j}` across shards per `merges[j]`. Outputs are
/// scalars, one per merge, in input order.
pub fn aggregate_combine(merges: &[PartialMerge], nshards: usize) -> Result<Program> {
    if merges.is_empty() || nshards == 0 {
        return Err(Error::Unsupported(
            "aggregate combine needs at least one partial and one shard".into(),
        ));
    }
    let mut prog = Program::new();
    let mut outputs = Vec::with_capacity(merges.len());
    for (j, merge) in merges.iter().enumerate() {
        let parts: Vec<VarId> = (0..nshards)
            .map(|i| {
                prog.push(
                    OpCode::Bind,
                    vec![
                        Arg::Const(Value::Str(shard_partials_table(i))),
                        Arg::Const(Value::Str(partial_column(j))),
                    ],
                )[0]
            })
            .collect();
        let out = match merge {
            PartialMerge::Count | PartialMerge::SumInt => {
                // Scalarize each 1-row partial (sum of a single value is
                // the value; a nil partial stays nil and packsum skips
                // it), then merge with the mergetable's partial-sum op.
                let scalars: Vec<Arg> = parts
                    .into_iter()
                    .map(|p| Arg::Var(prog.push(OpCode::Aggr(AggKind::Sum), vec![Arg::Var(p)])[0]))
                    .collect();
                prog.push(OpCode::PackSum, scalars)[0]
            }
            PartialMerge::Min | PartialMerge::Max => {
                let group = ShardGroup {
                    parts,
                    kind: Kind::LocalValues,
                    lineage: Lineage::Table(shard_partials_table(0)),
                };
                let packed = group.pack(&mut prog)?;
                let kind = if *merge == PartialMerge::Min {
                    AggKind::Min
                } else {
                    AggKind::Max
                };
                prog.push(OpCode::Aggr(kind), vec![Arg::Var(packed)])[0]
            }
        };
        outputs.push(out);
    }
    prog.push_result(&outputs);
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::verify_with_catalog;
    use crate::interp::Interpreter;
    use mammoth_storage::{Catalog, Table};
    use mammoth_types::{ColumnDef, LogicalType, TableSchema};

    fn schema(name: &str, cols: &[(&str, LogicalType)]) -> TableSchema {
        TableSchema::new(
            name,
            cols.iter().map(|&(n, t)| ColumnDef::new(n, t)).collect(),
        )
    }

    fn staged_catalog() -> Catalog {
        // Two shards, one logical table t(a INT, s TEXT) split 2 + 1 rows,
        // plus one-row partials tables for [count, sum, min, max].
        let mut cat = Catalog::new();
        for (i, rows) in [vec![(1i64, "x"), (2, "y")], vec![(3i64, "z")]]
            .into_iter()
            .enumerate()
        {
            let mut t = Table::new(schema(
                &shard_table_name(i, "t"),
                &[("a", LogicalType::I64), ("s", LogicalType::Str)],
            ))
            .unwrap();
            for (a, s) in rows {
                t.insert_row(&[Value::I64(a), Value::Str(s.into())])
                    .unwrap();
            }
            cat.create_table(t).unwrap();
        }
        for (i, (cnt, sum, min, max)) in [(2i64, 3i64, 1i64, 2i64), (1, 3, 3, 3)]
            .into_iter()
            .enumerate()
        {
            let mut t = Table::new(schema(
                &shard_partials_table(i),
                &[
                    ("p0", LogicalType::I64),
                    ("p1", LogicalType::I64),
                    ("p2", LogicalType::I64),
                    ("p3", LogicalType::I64),
                ],
            ))
            .unwrap();
            t.insert_row(&[
                Value::I64(cnt),
                Value::I64(sum),
                Value::I64(min),
                Value::I64(max),
            ])
            .unwrap();
            cat.create_table(t).unwrap();
        }
        cat
    }

    #[test]
    fn gather_combine_packs_in_shard_order() {
        let cat = staged_catalog();
        let prog = gather_combine(
            &[
                GatherColumn {
                    table: "t".into(),
                    column: "a".into(),
                },
                GatherColumn {
                    table: "t".into(),
                    column: "s".into(),
                },
            ],
            2,
        )
        .unwrap();
        verify_with_catalog(&prog, &cat).expect("combine plan must verify");
        let out = Interpreter::new(&cat).run(&prog).unwrap();
        let a = out[0].as_bat().unwrap();
        assert_eq!(
            (0..3).map(|i| a.value_at(i)).collect::<Vec<_>>(),
            vec![Value::I64(1), Value::I64(2), Value::I64(3)]
        );
        let s = out[1].as_bat().unwrap();
        assert_eq!(s.value_at(2), Value::Str("z".into()));
        // Packed fragments are dense from 0 — Table::from_bats material.
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn aggregate_combine_merges_partials() {
        let cat = staged_catalog();
        let prog = aggregate_combine(
            &[
                PartialMerge::Count,
                PartialMerge::SumInt,
                PartialMerge::Min,
                PartialMerge::Max,
            ],
            2,
        )
        .unwrap();
        verify_with_catalog(&prog, &cat).expect("combine plan must verify");
        let out = Interpreter::new(&cat).run(&prog).unwrap();
        let scalars: Vec<Value> = out.iter().map(|v| v.as_scalar().unwrap().clone()).collect();
        assert_eq!(
            scalars,
            vec![Value::I64(3), Value::I64(6), Value::I64(1), Value::I64(3)]
        );
    }

    #[test]
    fn empty_shard_partials_stay_nil_skipping() {
        // One shard saw no rows: its SUM partial is nil; packsum skips it.
        let mut cat = Catalog::new();
        for (i, v) in [Some(5i64), None].into_iter().enumerate() {
            let mut t = Table::new(schema(
                &shard_partials_table(i),
                &[("p0", LogicalType::I64)],
            ))
            .unwrap();
            t.insert_row(&[v.map(Value::I64).unwrap_or(Value::Null)])
                .unwrap();
            cat.create_table(t).unwrap();
        }
        let prog = aggregate_combine(&[PartialMerge::SumInt], 2).unwrap();
        verify_with_catalog(&prog, &cat).unwrap();
        let out = Interpreter::new(&cat).run(&prog).unwrap();
        assert_eq!(out[0].as_scalar(), Some(&Value::I64(5)));
        // All shards empty → nil, matching the single-node empty SUM.
        let prog2 = aggregate_combine(&[PartialMerge::Min], 2).unwrap();
        let mut cat2 = Catalog::new();
        for i in 0..2 {
            let mut t = Table::new(schema(
                &shard_partials_table(i),
                &[("p0", LogicalType::I64)],
            ))
            .unwrap();
            t.insert_row(&[Value::Null]).unwrap();
            cat2.create_table(t).unwrap();
        }
        let out2 = Interpreter::new(&cat2).run(&prog2).unwrap();
        assert_eq!(out2[0].as_scalar(), Some(&Value::Null));
    }

    #[test]
    fn candidate_fragments_refuse_to_pack() {
        let mut prog = Program::new();
        let v = prog.var();
        let g = ShardGroup {
            parts: vec![v],
            kind: Kind::AbsCands,
            lineage: Lineage::Instr(0),
        };
        assert!(g.pack(&mut prog).is_err());
    }
}
