//! Horizontal parallelization: the `mitosis` and `mergetable` optimizer
//! modules (MonetDB's multi-core path).
//!
//! [`Mitosis`] splits every base-column `sql.bind` into `k` range fragments
//! via `algebra.slice(b, i, k)`. Fragments keep their void head with the
//! absolute seqbase, so fragment `i` addresses the same rows as positions
//! `[i*n/k, (i+1)*n/k)` of the parent — selections over a fragment emit
//! *absolute* base oids, which is what makes fragment-wise rewriting sound.
//!
//! [`Mergetable`] then propagates operators fragment-wise where the oid
//! spaces provably line up, and re-merges everywhere else:
//!
//! * `thetaselect`/`select` over a **range-aligned** fragment group → one
//!   select per fragment, yielding absolute-oid candidate fragments;
//! * `projection(cands_i, base)` when the candidate fragments carry
//!   absolute oids and the value operand is a full base column → one fetch
//!   per fragment;
//! * `batcalc` over one fragment group (with a scalar) or two groups of the
//!   same lineage → element-wise per fragment;
//! * `aggr.sum` / `aggr.count_nonnil` / `aggr.count` over a fragment group
//!   → per-fragment partials merged by `mat.packsum` (integer sums only:
//!   float addition is not associative, so f64 sums stay serial to remain
//!   bit-identical to the serial interpreter);
//! * every other consumer of a fragment group reads the whole value: a
//!   `mat.pack(f_0, …, f_k-1)` is emitted (once) right before the first
//!   such consumer, *defining the original variable id*, so downstream
//!   instructions need no rewriting at all.
//!
//! Selections over *derived* (seqbase-0) fragments are deliberately **not**
//! propagated: their candidates would be fragment-local positions, and
//! packing those would corrupt the plan. The pass tracks, per fragment
//! group, whether tails hold absolute base oids, fragment-local values, or
//! the base rows themselves, and only fires a rewrite when the rule's space
//! precondition holds. Everything it cannot prove stays serial — the
//! fallback is always the packed (or original) value, never a wrong one.
//!
//! Both passes are plain `Program → Program` rewrites, so
//! [`Pipeline::checked`](crate::optimizer::Pipeline::checked) re-verifies
//! the plan after each of them like after any other module.

use crate::optimizer::{
    CommonSubexpr, ConstantFold, DeadCode, GarbageCollect, OptimizerPass, Pipeline,
    SelectElimination, SortedSelect,
};
use crate::program::{Arg, Instr, OpCode, Program, VarId};
use mammoth_algebra::AggKind;
use mammoth_storage::Catalog;
use mammoth_types::{LogicalType, Value};
use std::collections::HashMap;

/// Column types keyed by `(table, column)` (lowercased), used by
/// [`Mergetable`] to keep float sums serial. Snapshot with
/// [`column_types`].
pub type ColumnTypes = HashMap<(String, String), LogicalType>;

/// Snapshot the catalog's column types for [`Mergetable::with_types`].
pub fn column_types(catalog: &Catalog) -> ColumnTypes {
    let mut out = ColumnTypes::new();
    for name in catalog.table_names() {
        if let Ok(t) = catalog.table(name) {
            for c in &t.schema.columns {
                out.insert((name.to_lowercase(), c.name.to_lowercase()), c.ty);
            }
        }
    }
    out
}

/// Split every `sql.bind` into `pieces` horizontal fragments.
pub struct Mitosis {
    pieces: usize,
}

impl Mitosis {
    pub fn new(pieces: usize) -> Mitosis {
        Mitosis { pieces }
    }
}

impl OptimizerPass for Mitosis {
    fn name(&self) -> &'static str {
        "mitosis"
    }

    fn run(&self, prog: Program) -> Program {
        // fragmenting across end-of-life markers would need free-site
        // surgery; mitosis runs before garbage collection
        if self.pieces < 2 || prog.instrs.iter().any(|i| i.op == OpCode::Free) {
            return prog;
        }
        let mut out = prog.clone();
        out.instrs = Vec::with_capacity(prog.instrs.len() * (1 + self.pieces));
        for instr in prog.instrs {
            let is_bind = instr.op == OpCode::Bind;
            let src = instr.results.first().copied();
            out.instrs.push(instr);
            if let (true, Some(src)) = (is_bind, src) {
                for i in 0..self.pieces {
                    let r = out.var();
                    out.instrs.push(Instr {
                        results: vec![r],
                        op: OpCode::PartSlice,
                        args: vec![
                            Arg::Var(src),
                            Arg::Const(Value::I64(i as i64)),
                            Arg::Const(Value::I64(self.pieces as i64)),
                        ],
                    });
                }
            }
        }
        out
    }
}

/// What a fragment group's tails hold, relative to the base row space.
/// Public so the shard scatter-gather combine builder ([`crate::combine`])
/// can tag network-delivered fragment groups with the same taxonomy the
/// in-process mergetable uses, and gate merges on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Range-aligned slices of a base column: fragment heads are void with
    /// the absolute seqbase, and packing them reproduces the original.
    AlignedBase,
    /// Candidate fragments whose tails are absolute base oids (selects
    /// over [`Kind::AlignedBase`] fragments).
    AbsCands,
    /// Value fragments in fragment-local (seqbase-0) space, aligned with
    /// the candidate group of the same lineage; packing concatenates them
    /// in fragment order, matching the serial result.
    LocalValues,
}

/// Which selection a fragment group is row-aligned with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lineage {
    /// The base rows of a table: all bind fragments of one table share it.
    Table(String),
    /// The candidate group born at this instruction index.
    Instr(usize),
}

struct Group {
    parts: Vec<VarId>,
    kind: Kind,
    ty: Option<LogicalType>,
    lineage: Lineage,
    /// Whether `<var> := mat.pack(parts…)` has been emitted already.
    packed: bool,
}

/// Propagate operators fragment-wise through a mitosis-sliced plan and
/// insert `mat.pack` / `mat.packsum` merges.
#[derive(Default)]
pub struct Mergetable {
    types: ColumnTypes,
}

impl Mergetable {
    pub fn new() -> Mergetable {
        Mergetable::default()
    }

    /// Knowing column types lets the pass merge integer sums with
    /// `mat.packsum` while keeping f64 sums serial.
    pub fn with_types(types: ColumnTypes) -> Mergetable {
        Mergetable { types }
    }
}

impl OptimizerPass for Mergetable {
    fn name(&self) -> &'static str {
        "mergetable"
    }

    fn run(&self, prog: Program) -> Program {
        if prog.instrs.iter().any(|i| i.op == OpCode::Free) {
            return prog;
        }
        Rewriter {
            types: &self.types,
            groups: HashMap::new(),
            binds: HashMap::new(),
            out: prog.clone(),
        }
        .run(prog)
    }
}

struct Rewriter<'a> {
    types: &'a ColumnTypes,
    /// Fragment groups keyed by the variable they fragment.
    groups: HashMap<VarId, Group>,
    /// `sql.bind` results: table name and column type.
    binds: HashMap<VarId, (String, Option<LogicalType>)>,
    out: Program,
}

impl Rewriter<'_> {
    fn run(mut self, prog: Program) -> Program {
        self.out.instrs = Vec::with_capacity(prog.instrs.len());
        // collect complete fragment groups emitted by mitosis:
        // src -> [(i, k, var)]
        let mut frags: HashMap<VarId, Vec<(i64, i64, VarId)>> = HashMap::new();
        for i in &prog.instrs {
            if i.op == OpCode::PartSlice {
                if let [Arg::Var(src), Arg::Const(a), Arg::Const(b)] = &i.args[..] {
                    if let (Some(x), Some(k)) = (a.as_i64(), b.as_i64()) {
                        frags.entry(*src).or_default().push((x, k, i.results[0]));
                    }
                }
            }
        }

        for (idx, instr) in prog.instrs.iter().enumerate() {
            match &instr.op {
                OpCode::Bind => {
                    if let [Arg::Const(Value::Str(t)), Arg::Const(Value::Str(c))] = &instr.args[..]
                    {
                        let ty = self
                            .types
                            .get(&(t.to_lowercase(), c.to_lowercase()))
                            .copied();
                        self.binds.insert(instr.results[0], (t.to_lowercase(), ty));
                    }
                    self.out.instrs.push(instr.clone());
                }
                OpCode::PartSlice => {
                    self.out.instrs.push(instr.clone());
                    // once the last fragment of a complete bind group is in
                    // place, the source becomes a range-aligned group
                    if let Some(Arg::Var(src)) = instr.args.first() {
                        if instr.results[0] == last_of_complete_group(&frags, *src) {
                            if let Some((table, ty)) = self.binds.get(src).cloned() {
                                let mut parts = frags[src].clone();
                                parts.sort_by_key(|&(i, _, _)| i);
                                self.groups.insert(
                                    *src,
                                    Group {
                                        parts: parts.iter().map(|&(_, _, v)| v).collect(),
                                        kind: Kind::AlignedBase,
                                        ty,
                                        lineage: Lineage::Table(table),
                                        packed: true, // the bind itself is the whole
                                    },
                                );
                            }
                        }
                    }
                }
                OpCode::ThetaSelect(_) | OpCode::RangeSelect { .. } => {
                    self.rewrite_select(idx, instr);
                }
                OpCode::Projection => {
                    self.rewrite_projection(idx, instr);
                }
                OpCode::Calc(_) => {
                    self.rewrite_calc(instr);
                }
                OpCode::Aggr(AggKind::Sum) | OpCode::Aggr(AggKind::Count) | OpCode::Count => {
                    self.rewrite_aggregate(instr);
                }
                _ => {
                    // a consumer with no fragment rule reads whole values
                    self.push_with_whole_args(instr.clone());
                }
            }
        }
        self.out
    }

    /// Emit the instruction, packing any fragment-group argument back into
    /// its original variable first.
    fn push_with_whole_args(&mut self, instr: Instr) {
        for a in &instr.args {
            if let Arg::Var(v) = a {
                self.ensure_whole(*v);
            }
        }
        self.out.instrs.push(instr);
    }

    /// Make sure `v` is defined as a whole BAT: for a fragment group whose
    /// pack has not been emitted yet, emit `v := mat.pack(parts…)` here.
    fn ensure_whole(&mut self, v: VarId) {
        if let Some(g) = self.groups.get_mut(&v) {
            if !g.packed {
                g.packed = true;
                let args = g.parts.iter().map(|&p| Arg::Var(p)).collect();
                self.out.instrs.push(Instr {
                    results: vec![v],
                    op: OpCode::Pack,
                    args,
                });
            }
        }
    }

    /// Selections propagate only over range-aligned base fragments: each
    /// fragment keeps its absolute seqbase, so per-fragment candidates are
    /// absolute base oids and concatenate in ascending order.
    fn rewrite_select(&mut self, idx: usize, instr: &Instr) {
        let Some(Arg::Var(src)) = instr.args.first() else {
            self.push_with_whole_args(instr.clone());
            return;
        };
        let Some(g) = self.groups.get(src) else {
            self.out.instrs.push(instr.clone());
            return;
        };
        if g.kind != Kind::AlignedBase {
            self.push_with_whole_args(instr.clone());
            return;
        }
        let src_parts = g.parts.clone();
        let mut parts = Vec::with_capacity(src_parts.len());
        for p in src_parts {
            let r = self.out.var();
            let mut args = instr.args.clone();
            args[0] = Arg::Var(p);
            parts.push(r);
            self.out.instrs.push(Instr {
                results: vec![r],
                op: instr.op.clone(),
                args,
            });
        }
        self.groups.insert(
            instr.results[0],
            Group {
                parts,
                kind: Kind::AbsCands,
                ty: Some(LogicalType::Oid),
                lineage: Lineage::Instr(idx),
                packed: false,
            },
        );
    }

    /// `projection(cands, base)` propagates when the candidate fragments
    /// carry absolute base oids and the value operand is a full base
    /// column (a `sql.bind` result): each fetch stays in base space.
    fn rewrite_projection(&mut self, _idx: usize, instr: &Instr) {
        let (Some(Arg::Var(c)), Some(Arg::Var(v))) = (instr.args.first(), instr.args.get(1)) else {
            self.push_with_whole_args(instr.clone());
            return;
        };
        let cands_ok = self.groups.get(c).is_some_and(|g| g.kind == Kind::AbsCands);
        let base_ok = self.binds.contains_key(v);
        if !(cands_ok && base_ok) {
            self.push_with_whole_args(instr.clone());
            return;
        }
        let (c, v) = (*c, *v);
        let (src_parts, lineage) = {
            let g = &self.groups[&c];
            (g.parts.clone(), g.lineage.clone())
        };
        let ty = self.binds[&v].1;
        let mut parts = Vec::with_capacity(src_parts.len());
        for p in src_parts {
            let r = self.out.var();
            parts.push(r);
            self.out.instrs.push(Instr {
                results: vec![r],
                op: OpCode::Projection,
                args: vec![Arg::Var(p), Arg::Var(v)],
            });
        }
        self.groups.insert(
            instr.results[0],
            Group {
                parts,
                kind: Kind::LocalValues,
                ty,
                lineage,
                packed: false,
            },
        );
    }

    /// `batcalc` propagates over one fragment group with a scalar operand,
    /// or two groups of identical lineage (their fragments are row-aligned
    /// by construction).
    fn rewrite_calc(&mut self, instr: &Instr) {
        let Some(Arg::Var(a)) = instr.args.first() else {
            self.push_with_whole_args(instr.clone());
            return;
        };
        let Some(ga) = self.groups.get(a) else {
            self.push_with_whole_args(instr.clone());
            return;
        };
        let (a_parts, a_ty, a_lineage) = (ga.parts.clone(), ga.ty, ga.lineage.clone());
        let other = match instr.args.get(1) {
            Some(Arg::Const(c)) => Some((None, c.logical_type())),
            // a parameter slot is a scalar operand of unknown type; it is
            // fragment-invariant like any other scalar
            Some(Arg::Param(_)) => Some((None, None)),
            Some(Arg::Var(b)) => match self.groups.get(b) {
                // a fragmented second operand must be row-aligned with the
                // first; different lineages would mix selections
                Some(gb) if gb.lineage == a_lineage && gb.parts.len() == a_parts.len() => {
                    Some((Some(gb.parts.clone()), gb.ty))
                }
                Some(_) => None,
                // a scalar variable is fragment-invariant
                None => Some((None, None)),
            },
            None => None,
        };
        let Some((b_parts, b_ty)) = other else {
            self.push_with_whole_args(instr.clone());
            return;
        };
        let mut parts = Vec::with_capacity(a_parts.len());
        for (i, p) in a_parts.iter().enumerate() {
            let r = self.out.var();
            let mut args = instr.args.clone();
            args[0] = Arg::Var(*p);
            if let Some(bp) = &b_parts {
                args[1] = Arg::Var(bp[i]);
            }
            parts.push(r);
            self.out.instrs.push(Instr {
                results: vec![r],
                op: instr.op.clone(),
                args,
            });
        }
        let ty = match (a_ty, b_ty) {
            (Some(x), Some(y)) => LogicalType::widen(x, y),
            _ => None,
        };
        self.groups.insert(
            instr.results[0],
            Group {
                parts,
                kind: Kind::LocalValues,
                ty,
                lineage: a_lineage,
                packed: false,
            },
        );
    }

    /// Sums and counts merge per-fragment partials with `mat.packsum`.
    /// Integer sums only: wrapping i64 addition is associative, f64
    /// addition is not, and the parallel engine must stay bit-identical to
    /// the serial interpreter.
    fn rewrite_aggregate(&mut self, instr: &Instr) {
        let Some(Arg::Var(src)) = instr.args.first() else {
            self.push_with_whole_args(instr.clone());
            return;
        };
        let mergeable = match (&instr.op, self.groups.get(src)) {
            (_, None) => false,
            (OpCode::Count | OpCode::Aggr(AggKind::Count), Some(_)) => true,
            (OpCode::Aggr(AggKind::Sum), Some(g)) => matches!(
                g.ty,
                Some(LogicalType::I8 | LogicalType::I16 | LogicalType::I32 | LogicalType::I64)
            ),
            _ => false,
        };
        if !mergeable {
            self.push_with_whole_args(instr.clone());
            return;
        }
        let src_parts = self.groups[src].parts.clone();
        let mut partials = Vec::with_capacity(src_parts.len());
        for p in src_parts {
            let r = self.out.var();
            partials.push(r);
            self.out.instrs.push(Instr {
                results: vec![r],
                op: instr.op.clone(),
                args: vec![Arg::Var(p)],
            });
        }
        self.out.instrs.push(Instr {
            results: instr.results.clone(),
            op: OpCode::PackSum,
            args: partials.into_iter().map(Arg::Var).collect(),
        });
    }
}

/// The fragment var that completes `src`'s group, or `usize::MAX` when the
/// group is incomplete (missing or duplicated coordinates).
fn last_of_complete_group(frags: &HashMap<VarId, Vec<(i64, i64, VarId)>>, src: VarId) -> VarId {
    let Some(parts) = frags.get(&src) else {
        return VarId::MAX;
    };
    let Some(&(_, k, _)) = parts.first() else {
        return VarId::MAX;
    };
    if k < 1 || parts.len() != k as usize {
        return VarId::MAX;
    }
    let mut seen = vec![false; k as usize];
    for &(i, kk, _) in parts {
        if kk != k || i < 0 || i >= k || seen[i as usize] {
            return VarId::MAX;
        }
        seen[i as usize] = true;
    }
    parts.iter().map(|&(_, _, v)| v).max().unwrap_or(VarId::MAX)
}

/// The optimizer pipeline the parallel engine runs: the default chain, then
/// mitosis + mergetable, dead-code cleanup of unused fragments, and
/// end-of-life markers — re-verified after every pass even in release.
pub fn parallel_pipeline(pieces: usize, types: ColumnTypes) -> Pipeline {
    Pipeline::new()
        .with(ConstantFold)
        .with(CommonSubexpr)
        .with(Mitosis::new(pieces))
        .with(Mergetable::with_types(types))
        .with(DeadCode)
        .with(GarbageCollect)
        .checked()
}

/// [`parallel_pipeline`] extended with the property tier. Interval-based
/// select elimination runs *before* mitosis (a select proven trivial need
/// not be fragmented at all); sorted-input specialization runs *after*
/// mergetable, because the per-fragment `algebra.slice` results inherit
/// the base column's sortedness through the analysis's exact slice
/// transfer function — so each fragment's select gets its own
/// binary-search annotation. `facts` must describe the catalog the plan
/// executes against.
pub fn parallel_pipeline_with_props(
    pieces: usize,
    types: ColumnTypes,
    facts: crate::analysis::PropFacts,
) -> Pipeline {
    Pipeline::new()
        .with(ConstantFold)
        .with(CommonSubexpr)
        .with(SelectElimination::new(facts.clone()))
        .with(Mitosis::new(pieces))
        .with(Mergetable::with_types(types))
        .with(SortedSelect::new(facts))
        .with(DeadCode)
        .with(GarbageCollect)
        .checked()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::interp::Interpreter;
    use mammoth_algebra::CmpOp;
    use mammoth_storage::Table;
    use mammoth_types::{ColumnDef, TableSchema};

    fn catalog(n: i64) -> Catalog {
        let mut cat = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", LogicalType::I64),
                ColumnDef::new("b", LogicalType::I64),
            ],
        ))
        .unwrap();
        for i in 0..n {
            t.insert_row(&[Value::I64(i % 17), Value::I64(i)]).unwrap();
        }
        cat.create_table(t).unwrap();
        cat
    }

    fn scan_select_sum() -> Program {
        let mut p = Program::new();
        let a = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("a".into())),
            ],
        )[0];
        let c = p.push(
            OpCode::ThetaSelect(CmpOp::Gt),
            vec![Arg::Var(a), Arg::Const(Value::I64(5))],
        )[0];
        let b = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("b".into())),
            ],
        )[0];
        let f = p.push(OpCode::Projection, vec![Arg::Var(c), Arg::Var(b)])[0];
        let s = p.push(OpCode::Aggr(AggKind::Sum), vec![Arg::Var(f)])[0];
        let n = p.push(OpCode::Count, vec![Arg::Var(f)])[0];
        p.push_result(&[s, n]);
        p
    }

    #[test]
    fn mitosis_emits_complete_fragment_groups() {
        let p = scan_select_sum();
        let out = Mitosis::new(4).run(p);
        let slices: Vec<&Instr> = out
            .instrs
            .iter()
            .filter(|i| i.op == OpCode::PartSlice)
            .collect();
        assert_eq!(slices.len(), 8, "4 fragments per bind");
        analysis::verify(&out).unwrap();
    }

    #[test]
    fn mergetable_merges_sums_and_counts() {
        let cat = catalog(1000);
        let pl = parallel_pipeline(4, column_types(&cat));
        let out = pl.try_optimize(scan_select_sum()).unwrap();
        assert!(out.instrs.iter().any(|i| i.op == OpCode::PackSum));
        // the serial select/fetch chain is gone: fully fragment-parallel
        let selects = out
            .instrs
            .iter()
            .filter(|i| matches!(i.op, OpCode::ThetaSelect(_)))
            .count();
        assert_eq!(selects, 4);
        analysis::verify_with_catalog(&out, &cat).unwrap();
    }

    #[test]
    fn rewritten_plan_matches_serial_results() {
        let cat = catalog(1000);
        let prog = scan_select_sum();
        let serial = Interpreter::new(&cat).run(&prog).unwrap();
        for pieces in [2usize, 3, 7] {
            let pl = parallel_pipeline(pieces, column_types(&cat));
            let rewritten = pl.try_optimize(prog.clone()).unwrap();
            let par = Interpreter::new(&cat).run(&rewritten).unwrap();
            assert_eq!(
                serial[0].as_scalar().unwrap(),
                par[0].as_scalar().unwrap(),
                "pieces={pieces}"
            );
            assert_eq!(
                serial[1].as_scalar().unwrap(),
                par[1].as_scalar().unwrap(),
                "pieces={pieces}"
            );
        }
    }

    #[test]
    fn projection_output_packs_before_result() {
        let cat = catalog(100);
        let mut p = Program::new();
        let a = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("a".into())),
            ],
        )[0];
        let c = p.push(
            OpCode::ThetaSelect(CmpOp::Lt),
            vec![Arg::Var(a), Arg::Const(Value::I64(3))],
        )[0];
        let b = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("b".into())),
            ],
        )[0];
        let f = p.push(OpCode::Projection, vec![Arg::Var(c), Arg::Var(b)])[0];
        p.push_result(&[f]);

        let pl = parallel_pipeline(3, column_types(&cat));
        let out = pl.try_optimize(p.clone()).unwrap();
        assert!(out.instrs.iter().any(|i| i.op == OpCode::Pack));
        let serial = Interpreter::new(&cat).run(&p).unwrap();
        let par = Interpreter::new(&cat).run(&out).unwrap();
        let (sb, pb) = (serial[0].as_bat().unwrap(), par[0].as_bat().unwrap());
        assert_eq!(
            sb.tail_slice::<i64>().unwrap(),
            pb.tail_slice::<i64>().unwrap()
        );
    }

    #[test]
    fn derived_selects_and_float_sums_stay_serial() {
        // select over a projection result (fragment-local values) must not
        // fragment; the consumer sees the packed whole instead
        let cat = catalog(100);
        let mut p = Program::new();
        let a = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("a".into())),
            ],
        )[0];
        let c1 = p.push(
            OpCode::ThetaSelect(CmpOp::Gt),
            vec![Arg::Var(a), Arg::Const(Value::I64(2))],
        )[0];
        let b = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("b".into())),
            ],
        )[0];
        let f = p.push(OpCode::Projection, vec![Arg::Var(c1), Arg::Var(b)])[0];
        let c2 = p.push(
            OpCode::ThetaSelect(CmpOp::Lt),
            vec![Arg::Var(f), Arg::Const(Value::I64(50))],
        )[0];
        let f2 = p.push(OpCode::Projection, vec![Arg::Var(c2), Arg::Var(c1)])[0];
        let s = p.push(OpCode::Aggr(AggKind::Sum), vec![Arg::Var(f2)])[0];
        p.push_result(&[s]);

        let pl = parallel_pipeline(4, column_types(&cat));
        let out = pl.try_optimize(p.clone()).unwrap();
        let serial = Interpreter::new(&cat).run(&p).unwrap();
        let par = Interpreter::new(&cat).run(&out).unwrap();
        assert_eq!(serial[0].as_scalar().unwrap(), par[0].as_scalar().unwrap());
    }

    #[test]
    fn mitosis_is_a_noop_below_two_pieces_and_after_gc() {
        let p = scan_select_sum();
        assert_eq!(Mitosis::new(1).run(p.clone()), p);
        let gc = GarbageCollect.run(p);
        assert_eq!(Mitosis::new(4).run(gc.clone()), gc);
        assert_eq!(Mergetable::new().run(gc.clone()), gc);
    }
}
