//! Last-use (liveness) analysis over MAL programs.
//!
//! MAL plans are straight-line SSA, so liveness needs no fixpoint: a single
//! backward scan finds each variable's last use. The interpreter uses the
//! result to drop `Arc<Bat>` intermediates as soon as they are dead
//! (shrinking peak memory on bushy plans), and the `garbage_collect`
//! optimizer pass materializes the same information as explicit
//! `language.pass` instructions.

use crate::program::{Arg, Program, VarId};

/// Per-variable and per-instruction lifetime facts for one [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    /// Per variable: the index of the last instruction that reads it
    /// (`None` for variables never read).
    pub last_use: Vec<Option<usize>>,
    /// Per instruction: variables whose lifetime ends once it has executed
    /// — arguments read for the last time, plus results never read at all.
    pub dies_at: Vec<Vec<VarId>>,
    /// Per instruction: number of variables still live after it executes.
    pub live_after: Vec<usize>,
    /// Maximum number of simultaneously live variables at any point
    /// (counted after an instruction binds its results, before its dead
    /// operands are released).
    pub peak_live: usize,
}

/// Compute lifetimes with a single backward scan plus a forward replay.
pub fn analyze(prog: &Program) -> Liveness {
    let n = prog.nvars();
    let mut last_use: Vec<Option<usize>> = vec![None; n];
    for (idx, instr) in prog.instrs.iter().enumerate().rev() {
        for a in &instr.args {
            if let Arg::Var(v) = a {
                if *v < n && last_use[*v].is_none() {
                    last_use[*v] = Some(idx);
                }
            }
        }
    }

    let mut dies_at: Vec<Vec<VarId>> = vec![Vec::new(); prog.instrs.len()];
    for (idx, instr) in prog.instrs.iter().enumerate() {
        for &r in &instr.results {
            if r < n && last_use[r].is_none() {
                // defined but never read: dies the moment it is bound
                dies_at[idx].push(r);
            }
        }
        for a in &instr.args {
            if let Arg::Var(v) = a {
                if *v < n && last_use[*v] == Some(idx) && !dies_at[idx].contains(v) {
                    dies_at[idx].push(*v);
                }
            }
        }
    }

    // forward replay for the live-set profile
    let mut live = 0usize;
    let mut peak = 0usize;
    let mut live_after = Vec::with_capacity(prog.instrs.len());
    for (idx, instr) in prog.instrs.iter().enumerate() {
        live += instr.results.len();
        peak = peak.max(live);
        // note: a `language.pass` argument is by construction at its last
        // use here, so dies_at already accounts for the release
        live = live.saturating_sub(dies_at[idx].len());
        live_after.push(live);
    }

    Liveness {
        last_use,
        dies_at,
        live_after,
        peak_live: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Arg, OpCode, Program};
    use mammoth_algebra::CmpOp;
    use mammoth_types::Value;

    fn sample() -> (Program, Vec<VarId>) {
        let mut p = Program::new();
        let b = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("a".into())),
            ],
        )[0];
        let c = p.push(
            OpCode::ThetaSelect(CmpOp::Gt),
            vec![Arg::Var(b), Arg::Const(Value::I32(0))],
        )[0];
        let f = p.push(OpCode::Projection, vec![Arg::Var(c), Arg::Var(b)])[0];
        p.push_result(&[f]);
        (p, vec![b, c, f])
    }

    #[test]
    fn last_use_and_death_sites() {
        let (p, vars) = sample();
        let lv = analyze(&p);
        let [b, c, f] = vars[..] else { panic!() };
        assert_eq!(lv.last_use[b], Some(2)); // projection reads the base bat
        assert_eq!(lv.last_use[c], Some(2));
        assert_eq!(lv.last_use[f], Some(3)); // io.result
        assert_eq!(lv.dies_at[2], vec![c, b]);
        assert_eq!(lv.dies_at[3], vec![f]);
        assert!(lv.dies_at[0].is_empty() && lv.dies_at[1].is_empty());
    }

    #[test]
    fn unused_result_dies_at_definition() {
        let mut p = Program::new();
        let b = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("t".into())),
                Arg::Const(Value::Str("a".into())),
            ],
        )[0];
        let rs = p.push(OpCode::Sort { desc: false }, vec![Arg::Var(b)]);
        p.push_result(&[rs[0]]);
        let lv = analyze(&p);
        assert_eq!(lv.last_use[rs[1]], None);
        assert!(lv.dies_at[1].contains(&rs[1]));
    }

    #[test]
    fn live_profile_peaks_mid_plan() {
        let (p, _) = sample();
        let lv = analyze(&p);
        // bind:1 → select:2 → projection peaks at 3, then b and c die → 1
        assert_eq!(lv.live_after, vec![1, 2, 1, 0]);
        assert_eq!(lv.peak_live, 3);
    }
}
