//! The MAL plan verifier.
//!
//! Every optimizer module is an independent program→program rewrite, which
//! makes each pass a chance to silently miscompile a plan. The verifier is
//! the safety net: a linear walk over a [`Program`] that checks
//!
//! * **SSA discipline** — every variable is defined exactly once, before
//!   any use, and never used after `language.pass` ends its life;
//! * **arity** — each opcode receives exactly the argument count and binds
//!   exactly the result count it declares;
//! * **kind** — BAT-valued and scalar-valued argument slots get the right
//!   kind of operand;
//! * **types** — column types are inferred through selections, joins,
//!   groupings, `batcalc` arithmetic and aggregation, and checked at every
//!   consumer (with a [`Catalog`], `sql.bind` seeds exact column types;
//!   without one, unknown types stay unknown and only contradictions are
//!   reported);
//! * **structure** — the plan ends with a single `io.result` and no
//!   instruction follows it.
//!
//! Errors carry the instruction index and opcode name, so a broken
//! optimizer pass is caught at the pass boundary with an exact location.

use crate::program::{Arg, Instr, OpCode, Program, VarId};
use mammoth_algebra::AggKind;
use mammoth_storage::Catalog;
use mammoth_types::{LogicalType, Value};
use std::fmt;

/// What the verifier statically knows about one MAL variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarTy {
    /// A BAT; the tail type may be statically unknown (`None`).
    Bat(Option<LogicalType>),
    /// A scalar; the type may be statically unknown (`None`).
    Scalar(Option<LogicalType>),
}

impl VarTy {
    pub fn kind_name(&self) -> &'static str {
        match self {
            VarTy::Bat(_) => "bat",
            VarTy::Scalar(_) => "scalar",
        }
    }

    pub fn ty(&self) -> Option<LogicalType> {
        match self {
            VarTy::Bat(t) | VarTy::Scalar(t) => *t,
        }
    }
}

/// The specific well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// A variable id at or beyond the program's declared variable count.
    UnknownVar { var: VarId },
    /// A variable read before any instruction defines it.
    UseBeforeDef { var: VarId },
    /// A variable read after `language.pass` ended its life.
    UseAfterFree { var: VarId, freed_at: usize },
    /// A variable bound as a result twice (the plan is not SSA).
    Redefinition { var: VarId, first_def: usize },
    /// Wrong number of arguments for the opcode.
    BadArgCount { expected: usize, got: usize },
    /// Wrong number of bound results for the opcode.
    BadResultCount { expected: usize, got: usize },
    /// A BAT slot got a scalar or vice versa.
    KindMismatch {
        arg: usize,
        expected: &'static str,
        found: &'static str,
    },
    /// The opcode requires a literal constant in this slot.
    ConstArgExpected { arg: usize },
    /// The opcode requires a variable (not a constant) in this slot.
    VarArgExpected { arg: usize },
    /// Statically known operand types contradict the opcode's typing rule.
    TypeMismatch { arg: usize, detail: String },
    /// `sql.bind` names a table the catalog does not have.
    NoSuchTable { table: String },
    /// `sql.bind` names a column the catalog does not have.
    NoSuchColumn { table: String, column: String },
    /// An instruction appears after `io.result` closed the plan.
    CodeAfterResult { result_at: usize },
    /// The plan never reaches an `io.result`.
    MissingResult,
}

/// A verification failure located at an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Index into [`Program::instrs`]; `None` for whole-program failures.
    pub instr: Option<usize>,
    /// `module.function` name of the offending instruction, when located.
    pub op: Option<String>,
    pub kind: VerifyErrorKind,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.instr, &self.op) {
            (Some(i), Some(op)) => write!(f, "instr {i} ({op}): ")?,
            (Some(i), None) => write!(f, "instr {i}: ")?,
            _ => {}
        }
        match &self.kind {
            VerifyErrorKind::UnknownVar { var } => {
                write!(f, "variable x{var} is outside the program's variable space")
            }
            VerifyErrorKind::UseBeforeDef { var } => {
                write!(f, "use of x{var} before definition")
            }
            VerifyErrorKind::UseAfterFree { var, freed_at } => {
                write!(f, "use of x{var} after language.pass at instr {freed_at}")
            }
            VerifyErrorKind::Redefinition { var, first_def } => {
                write!(f, "x{var} redefined (first defined at instr {first_def})")
            }
            VerifyErrorKind::BadArgCount { expected, got } => {
                write!(f, "expects {expected} argument(s), got {got}")
            }
            VerifyErrorKind::BadResultCount { expected, got } => {
                write!(f, "binds {expected} result(s), got {got}")
            }
            VerifyErrorKind::KindMismatch {
                arg,
                expected,
                found,
            } => write!(f, "argument {arg}: expected a {expected}, found a {found}"),
            VerifyErrorKind::ConstArgExpected { arg } => {
                write!(f, "argument {arg}: must be a literal constant")
            }
            VerifyErrorKind::VarArgExpected { arg } => {
                write!(f, "argument {arg}: must be a variable")
            }
            VerifyErrorKind::TypeMismatch { arg, detail } => {
                write!(f, "argument {arg}: {detail}")
            }
            VerifyErrorKind::NoSuchTable { table } => {
                write!(f, "no such table: {table}")
            }
            VerifyErrorKind::NoSuchColumn { table, column } => {
                write!(f, "no such column: {table}.{column}")
            }
            VerifyErrorKind::CodeAfterResult { result_at } => {
                write!(f, "instruction after io.result (at instr {result_at})")
            }
            VerifyErrorKind::MissingResult => {
                write!(f, "plan does not end with io.result")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify structural well-formedness without a catalog: `sql.bind` results
/// get unknown tail types, and only statically contradictory types error.
pub fn verify(prog: &Program) -> Result<(), VerifyError> {
    Verifier { catalog: None }.check(prog)
}

/// Verify against a catalog: `sql.bind` targets must exist, and their
/// column types seed exact type inference through the whole plan.
pub fn verify_with_catalog(prog: &Program, catalog: &Catalog) -> Result<(), VerifyError> {
    Verifier {
        catalog: Some(catalog),
    }
    .check(prog)
}

/// A non-fatal observation about a well-formed plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// A pure instruction binds a result no later instruction reads.
    UnusedResult { instr: usize, var: VarId },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::UnusedResult { instr, var } => {
                write!(f, "instr {instr}: result x{var} is never used")
            }
        }
    }
}

/// Report lints over a (presumed well-formed) program.
pub fn lint(prog: &Program) -> Vec<Lint> {
    let mut used = vec![false; prog.nvars()];
    for i in &prog.instrs {
        for a in &i.args {
            if let Arg::Var(v) = a {
                if let Some(u) = used.get_mut(*v) {
                    *u = true;
                }
            }
        }
    }
    let mut out = Vec::new();
    for (idx, i) in prog.instrs.iter().enumerate() {
        if !i.op.is_pure() {
            continue;
        }
        for &r in &i.results {
            if !used.get(r).copied().unwrap_or(false) {
                out.push(Lint::UnusedResult { instr: idx, var: r });
            }
        }
    }
    out
}

#[derive(Debug, Clone, Copy)]
enum VarState {
    Undefined,
    Defined { at: usize, ty: VarTy },
    Freed { at: usize },
}

struct Verifier<'a> {
    catalog: Option<&'a Catalog>,
}

impl Verifier<'_> {
    fn check(&self, prog: &Program) -> Result<(), VerifyError> {
        let mut state = vec![VarState::Undefined; prog.nvars()];
        let mut result_at: Option<usize> = None;

        for (idx, instr) in prog.instrs.iter().enumerate() {
            let err = |kind| VerifyError {
                instr: Some(idx),
                op: Some(instr.op.name()),
                kind,
            };
            if let Some(r) = result_at {
                return Err(err(VerifyErrorKind::CodeAfterResult { result_at: r }));
            }
            if instr.results.len() != instr.op.result_arity() {
                return Err(err(VerifyErrorKind::BadResultCount {
                    expected: instr.op.result_arity(),
                    got: instr.results.len(),
                }));
            }

            let result_tys = self.check_instr(idx, instr, &state)?;

            if instr.op == OpCode::Free {
                if let Some(Arg::Var(v)) = instr.args.first() {
                    state[*v] = VarState::Freed { at: idx };
                }
            }
            debug_assert_eq!(result_tys.len(), instr.results.len());
            for (&rv, &ty) in instr.results.iter().zip(&result_tys) {
                match state.get(rv) {
                    None => return Err(err(VerifyErrorKind::UnknownVar { var: rv })),
                    Some(VarState::Defined { at, .. }) => {
                        return Err(err(VerifyErrorKind::Redefinition {
                            var: rv,
                            first_def: *at,
                        }))
                    }
                    // a freed slot may not be re-bound either: the plan
                    // would no longer be SSA
                    Some(VarState::Freed { at }) => {
                        return Err(err(VerifyErrorKind::Redefinition {
                            var: rv,
                            first_def: *at,
                        }))
                    }
                    Some(VarState::Undefined) => state[rv] = VarState::Defined { at: idx, ty },
                }
            }
            if instr.op == OpCode::Result {
                result_at = Some(idx);
            }
        }

        match result_at {
            Some(_) => Ok(()),
            None => Err(VerifyError {
                instr: None,
                op: None,
                kind: VerifyErrorKind::MissingResult,
            }),
        }
    }

    /// Check one instruction's argument count, kinds and types; return the
    /// inferred types of its results.
    fn check_instr(
        &self,
        idx: usize,
        instr: &Instr,
        state: &[VarState],
    ) -> Result<Vec<VarTy>, VerifyError> {
        let err = |kind| VerifyError {
            instr: Some(idx),
            op: Some(instr.op.name()),
            kind,
        };

        // `io.result` and `language.pass` take variables of any kind.
        match instr.op {
            OpCode::Result => {
                if instr.args.is_empty() {
                    return Err(err(VerifyErrorKind::BadArgCount {
                        expected: 1,
                        got: 0,
                    }));
                }
                for (k, a) in instr.args.iter().enumerate() {
                    match a {
                        Arg::Var(v) => {
                            self.arg_ty(idx, instr, k, *v, state)?;
                        }
                        Arg::Const(_) | Arg::Param(_) => {
                            return Err(err(VerifyErrorKind::VarArgExpected { arg: k }))
                        }
                    }
                }
                return Ok(vec![]);
            }
            OpCode::Free => {
                if instr.args.len() != 1 {
                    return Err(err(VerifyErrorKind::BadArgCount {
                        expected: 1,
                        got: instr.args.len(),
                    }));
                }
                match &instr.args[0] {
                    Arg::Var(v) => {
                        self.arg_ty(idx, instr, 0, *v, state)?;
                    }
                    Arg::Const(_) | Arg::Param(_) => {
                        return Err(err(VerifyErrorKind::VarArgExpected { arg: 0 }))
                    }
                }
                return Ok(vec![]);
            }
            // variadic merge operators: at least one argument, uniform kind
            OpCode::Pack => {
                if instr.args.is_empty() {
                    return Err(err(VerifyErrorKind::BadArgCount {
                        expected: 1,
                        got: 0,
                    }));
                }
                let mut ty: Option<LogicalType> = None;
                for k in 0..instr.args.len() {
                    let t = self.bat_arg(idx, instr, k, state)?;
                    match (ty, t) {
                        (Some(a), Some(b)) if a != b => {
                            return Err(err(VerifyErrorKind::TypeMismatch {
                                arg: k,
                                detail: format!(
                                    "cannot pack a {} fragment with {} fragments",
                                    b.name(),
                                    a.name()
                                ),
                            }))
                        }
                        (None, Some(b)) => ty = Some(b),
                        _ => {}
                    }
                }
                return Ok(vec![VarTy::Bat(ty)]);
            }
            OpCode::PackSum => {
                if instr.args.is_empty() {
                    return Err(err(VerifyErrorKind::BadArgCount {
                        expected: 1,
                        got: 0,
                    }));
                }
                let mut out: Option<LogicalType> = None;
                let mut all_known = true;
                for k in 0..instr.args.len() {
                    let t = self.scalar_arg(idx, instr, k, state)?;
                    self.numeric(idx, instr, k, t)?;
                    match (out, t) {
                        (Some(a), Some(b)) => out = LogicalType::widen(a, b),
                        (None, Some(b)) => out = Some(b),
                        _ => all_known = false,
                    }
                }
                return Ok(vec![VarTy::Scalar(if all_known { out } else { None })]);
            }
            _ => {}
        }

        let expected_args = match instr.op {
            OpCode::Bind
            | OpCode::ThetaSelect(_)
            | OpCode::Projection
            | OpCode::Join
            | OpCode::GroupRefine
            | OpCode::Calc(_) => 2,
            OpCode::RangeSelect { .. }
            | OpCode::AggrGrouped(_)
            | OpCode::Slice
            | OpCode::PartSlice => 3,
            OpCode::Group
            | OpCode::Aggr(_)
            | OpCode::Sort { .. }
            | OpCode::Count
            | OpCode::Mirror => 1,
            OpCode::SetProps => 2,
            OpCode::Result | OpCode::Free | OpCode::Pack | OpCode::PackSum => {
                unreachable!("handled above")
            }
        };
        if instr.args.len() != expected_args {
            return Err(err(VerifyErrorKind::BadArgCount {
                expected: expected_args,
                got: instr.args.len(),
            }));
        }

        match &instr.op {
            OpCode::Bind => {
                let mut names = Vec::with_capacity(2);
                for (k, a) in instr.args.iter().enumerate() {
                    match a {
                        Arg::Const(Value::Str(s)) => names.push(s.clone()),
                        Arg::Const(other) => {
                            return Err(err(VerifyErrorKind::TypeMismatch {
                                arg: k,
                                detail: format!("expected a string constant, found {other:?}"),
                            }))
                        }
                        Arg::Var(_) | Arg::Param(_) => {
                            return Err(err(VerifyErrorKind::ConstArgExpected { arg: k }))
                        }
                    }
                }
                let (table, column) = (&names[0], &names[1]);
                let ty = match self.catalog {
                    None => None,
                    Some(cat) => {
                        let t = cat.table(table).map_err(|_| {
                            err(VerifyErrorKind::NoSuchTable {
                                table: table.clone(),
                            })
                        })?;
                        let (_, col) = t.schema.column(column).map_err(|_| {
                            err(VerifyErrorKind::NoSuchColumn {
                                table: table.clone(),
                                column: column.clone(),
                            })
                        })?;
                        Some(col.ty)
                    }
                };
                Ok(vec![VarTy::Bat(ty)])
            }
            OpCode::ThetaSelect(_) => {
                let b = self.bat_arg(idx, instr, 0, state)?;
                let c = self.scalar_arg(idx, instr, 1, state)?;
                self.comparable(idx, instr, 1, b, c)?;
                Ok(vec![VarTy::Bat(Some(LogicalType::Oid))])
            }
            OpCode::RangeSelect { .. } => {
                let b = self.bat_arg(idx, instr, 0, state)?;
                for k in 1..=2 {
                    let c = self.scalar_arg(idx, instr, k, state)?;
                    self.comparable(idx, instr, k, b, c)?;
                }
                Ok(vec![VarTy::Bat(Some(LogicalType::Oid))])
            }
            OpCode::Projection => {
                self.candidate_arg(idx, instr, 0, state)?;
                let t = self.bat_arg(idx, instr, 1, state)?;
                Ok(vec![VarTy::Bat(t)])
            }
            OpCode::Join => {
                let l = self.bat_arg(idx, instr, 0, state)?;
                let r = self.bat_arg(idx, instr, 1, state)?;
                self.comparable(idx, instr, 1, l, r)?;
                Ok(vec![
                    VarTy::Bat(Some(LogicalType::Oid)),
                    VarTy::Bat(Some(LogicalType::Oid)),
                ])
            }
            OpCode::Group => {
                self.bat_arg(idx, instr, 0, state)?;
                Ok(vec![
                    VarTy::Bat(Some(LogicalType::Oid)),
                    VarTy::Bat(Some(LogicalType::Oid)),
                ])
            }
            OpCode::GroupRefine => {
                self.candidate_arg(idx, instr, 0, state)?;
                self.bat_arg(idx, instr, 1, state)?;
                Ok(vec![
                    VarTy::Bat(Some(LogicalType::Oid)),
                    VarTy::Bat(Some(LogicalType::Oid)),
                ])
            }
            OpCode::Aggr(kind) => {
                let t = self.bat_arg(idx, instr, 0, state)?;
                self.aggregable(idx, instr, *kind, t)?;
                Ok(vec![VarTy::Scalar(agg_result_ty(*kind, t))])
            }
            OpCode::AggrGrouped(kind) => {
                let t = self.bat_arg(idx, instr, 0, state)?;
                self.aggregable(idx, instr, *kind, t)?;
                self.candidate_arg(idx, instr, 1, state)?;
                self.candidate_arg(idx, instr, 2, state)?;
                Ok(vec![VarTy::Bat(agg_result_ty(*kind, t))])
            }
            OpCode::Calc(_) => {
                let a = self.bat_arg(idx, instr, 0, state)?;
                self.numeric(idx, instr, 0, a)?;
                // the second operand may be a BAT or a scalar
                let b = match self.arg_any(idx, instr, 1, state)? {
                    VarTy::Bat(t) | VarTy::Scalar(t) => t,
                };
                if matches!(&instr.args[1], Arg::Const(Value::Null)) {
                    return Err(err(VerifyErrorKind::TypeMismatch {
                        arg: 1,
                        detail: "batcalc operand must not be the NULL literal".into(),
                    }));
                }
                self.numeric(idx, instr, 1, b)?;
                let out = match (a, b) {
                    (Some(x), Some(y)) => LogicalType::widen(x, y),
                    _ => None,
                };
                Ok(vec![VarTy::Bat(out)])
            }
            OpCode::Sort { .. } => {
                let t = self.bat_arg(idx, instr, 0, state)?;
                Ok(vec![VarTy::Bat(t), VarTy::Bat(Some(LogicalType::Oid))])
            }
            OpCode::Slice => {
                let t = self.bat_arg(idx, instr, 0, state)?;
                for k in 1..=2 {
                    let c = self.scalar_arg(idx, instr, k, state)?;
                    if let Some(ty) = c {
                        if !matches!(
                            ty,
                            LogicalType::I8
                                | LogicalType::I16
                                | LogicalType::I32
                                | LogicalType::I64
                        ) {
                            return Err(err(VerifyErrorKind::TypeMismatch {
                                arg: k,
                                detail: format!(
                                    "slice bound must be an integer, found {}",
                                    ty.name()
                                ),
                            }));
                        }
                    } else if matches!(&instr.args[k], Arg::Const(Value::Null)) {
                        return Err(err(VerifyErrorKind::TypeMismatch {
                            arg: k,
                            detail: "slice bound must not be NULL".into(),
                        }));
                    }
                }
                Ok(vec![VarTy::Bat(t)])
            }
            OpCode::PartSlice => {
                let t = self.bat_arg(idx, instr, 0, state)?;
                // the fragment coordinates are literal integer constants
                // with 0 <= i < k, so a malformed mitosis rewrite is caught
                // statically, not at runtime
                let mut vals = [0i64; 2];
                for (slot, k) in (1..=2).enumerate() {
                    match &instr.args[k] {
                        Arg::Var(_) | Arg::Param(_) => {
                            return Err(err(VerifyErrorKind::ConstArgExpected { arg: k }))
                        }
                        Arg::Const(c) => match (c.logical_type(), c.as_i64()) {
                            (
                                Some(
                                    LogicalType::I8
                                    | LogicalType::I16
                                    | LogicalType::I32
                                    | LogicalType::I64,
                                ),
                                Some(x),
                            ) => vals[slot] = x,
                            _ => {
                                return Err(err(VerifyErrorKind::TypeMismatch {
                                    arg: k,
                                    detail: format!(
                                    "fragment coordinate must be an integer constant, found {c:?}"
                                ),
                                }))
                            }
                        },
                    }
                }
                let (i, n) = (vals[0], vals[1]);
                if n < 1 || i < 0 || i >= n {
                    return Err(err(VerifyErrorKind::TypeMismatch {
                        arg: 1,
                        detail: format!("fragment {i} of {n} is out of range"),
                    }));
                }
                Ok(vec![VarTy::Bat(t)])
            }
            OpCode::Count => {
                self.bat_arg(idx, instr, 0, state)?;
                Ok(vec![VarTy::Scalar(Some(LogicalType::I64))])
            }
            OpCode::Mirror => {
                self.bat_arg(idx, instr, 0, state)?;
                Ok(vec![VarTy::Bat(Some(LogicalType::Oid))])
            }
            OpCode::SetProps => {
                let t = self.bat_arg(idx, instr, 0, state)?;
                match instr.args.get(1) {
                    Some(Arg::Const(Value::Str(s)))
                        if crate::analysis::props::parse_claims(s).is_some() => {}
                    _ => {
                        return Err(err(VerifyErrorKind::TypeMismatch {
                            arg: 1,
                            detail: "expected a string constant of property claims \
                                     (sorted, revsorted, key, nonil)"
                                .into(),
                        }))
                    }
                }
                Ok(vec![VarTy::Bat(t)])
            }
            OpCode::Result | OpCode::Free | OpCode::Pack | OpCode::PackSum => {
                unreachable!("handled above")
            }
        }
    }

    /// Resolve an argument to the verifier's view of its type.
    fn arg_any(
        &self,
        idx: usize,
        instr: &Instr,
        argno: usize,
        state: &[VarState],
    ) -> Result<VarTy, VerifyError> {
        match &instr.args[argno] {
            Arg::Const(c) => Ok(VarTy::Scalar(c.logical_type())),
            Arg::Var(v) => self.arg_ty(idx, instr, argno, *v, state),
            // a parameter slot is a scalar of (statically) unknown type;
            // EXECUTE substitutes a concrete constant before execution
            Arg::Param(_) => Ok(VarTy::Scalar(None)),
        }
    }

    fn arg_ty(
        &self,
        idx: usize,
        instr: &Instr,
        _argno: usize,
        v: VarId,
        state: &[VarState],
    ) -> Result<VarTy, VerifyError> {
        let err = |kind| VerifyError {
            instr: Some(idx),
            op: Some(instr.op.name()),
            kind,
        };
        match state.get(v) {
            None => Err(err(VerifyErrorKind::UnknownVar { var: v })),
            Some(VarState::Undefined) => Err(err(VerifyErrorKind::UseBeforeDef { var: v })),
            Some(VarState::Freed { at }) => Err(err(VerifyErrorKind::UseAfterFree {
                var: v,
                freed_at: *at,
            })),
            Some(VarState::Defined { ty, .. }) => Ok(*ty),
        }
    }

    /// The argument must be a BAT; returns its (possibly unknown) tail type.
    fn bat_arg(
        &self,
        idx: usize,
        instr: &Instr,
        argno: usize,
        state: &[VarState],
    ) -> Result<Option<LogicalType>, VerifyError> {
        match self.arg_any(idx, instr, argno, state)? {
            VarTy::Bat(t) => Ok(t),
            VarTy::Scalar(_) => Err(VerifyError {
                instr: Some(idx),
                op: Some(instr.op.name()),
                kind: VerifyErrorKind::KindMismatch {
                    arg: argno,
                    expected: "bat",
                    found: "scalar",
                },
            }),
        }
    }

    /// The argument must be a candidate/grouping BAT: tail type oid (or
    /// statically unknown).
    fn candidate_arg(
        &self,
        idx: usize,
        instr: &Instr,
        argno: usize,
        state: &[VarState],
    ) -> Result<(), VerifyError> {
        let t = self.bat_arg(idx, instr, argno, state)?;
        match t {
            None | Some(LogicalType::Oid) => Ok(()),
            Some(other) => Err(VerifyError {
                instr: Some(idx),
                op: Some(instr.op.name()),
                kind: VerifyErrorKind::TypeMismatch {
                    arg: argno,
                    detail: format!("expected a candidate (oid) bat, found {}", other.name()),
                },
            }),
        }
    }

    /// The argument must be scalar; returns its (possibly unknown) type.
    fn scalar_arg(
        &self,
        idx: usize,
        instr: &Instr,
        argno: usize,
        state: &[VarState],
    ) -> Result<Option<LogicalType>, VerifyError> {
        match self.arg_any(idx, instr, argno, state)? {
            VarTy::Scalar(t) => Ok(t),
            VarTy::Bat(_) => Err(VerifyError {
                instr: Some(idx),
                op: Some(instr.op.name()),
                kind: VerifyErrorKind::KindMismatch {
                    arg: argno,
                    expected: "scalar",
                    found: "bat",
                },
            }),
        }
    }

    /// Two operand types that are compared or joined must agree: identical,
    /// or both from the numeric/oid family. Unknown types pass.
    fn comparable(
        &self,
        idx: usize,
        instr: &Instr,
        argno: usize,
        a: Option<LogicalType>,
        b: Option<LogicalType>,
    ) -> Result<(), VerifyError> {
        let (Some(a), Some(b)) = (a, b) else {
            return Ok(());
        };
        let num_like =
            |t: LogicalType| t.is_numeric() || t == LogicalType::Oid || t == LogicalType::Bool;
        if a == b || (num_like(a) && num_like(b)) {
            Ok(())
        } else {
            Err(VerifyError {
                instr: Some(idx),
                op: Some(instr.op.name()),
                kind: VerifyErrorKind::TypeMismatch {
                    arg: argno,
                    detail: format!("cannot compare {} with {}", a.name(), b.name()),
                },
            })
        }
    }

    /// SUM/AVG/MIN/MAX need numeric input; COUNT takes anything.
    fn aggregable(
        &self,
        idx: usize,
        instr: &Instr,
        kind: AggKind,
        t: Option<LogicalType>,
    ) -> Result<(), VerifyError> {
        if kind == AggKind::Count {
            return Ok(());
        }
        self.numeric(idx, instr, 0, t)
    }

    fn numeric(
        &self,
        idx: usize,
        instr: &Instr,
        argno: usize,
        t: Option<LogicalType>,
    ) -> Result<(), VerifyError> {
        match t {
            None => Ok(()),
            Some(t) if t.is_numeric() || t == LogicalType::Oid => Ok(()),
            Some(t) => Err(VerifyError {
                instr: Some(idx),
                op: Some(instr.op.name()),
                kind: VerifyErrorKind::TypeMismatch {
                    arg: argno,
                    detail: format!("expected a numeric operand, found {}", t.name()),
                },
            }),
        }
    }
}

/// Result type of an aggregate: COUNT yields i64, AVG f64, and SUM/MIN/MAX
/// keep f64 and widen every integer input to i64 (matching the BAT algebra's
/// accumulator).
fn agg_result_ty(kind: AggKind, input: Option<LogicalType>) -> Option<LogicalType> {
    match kind {
        AggKind::Count => Some(LogicalType::I64),
        AggKind::Avg => Some(LogicalType::F64),
        AggKind::Sum | AggKind::Min | AggKind::Max => input.map(|t| {
            if t == LogicalType::F64 {
                LogicalType::F64
            } else {
                LogicalType::I64
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use mammoth_algebra::CmpOp;
    use mammoth_storage::Table;
    use mammoth_types::{ColumnDef, TableSchema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let t = Table::new(TableSchema::new(
            "people",
            vec![
                ColumnDef::new("name", LogicalType::Str),
                ColumnDef::new("age", LogicalType::I32),
            ],
        ))
        .unwrap();
        cat.create_table(t).unwrap();
        cat
    }

    fn bind(p: &mut Program, t: &str, c: &str) -> VarId {
        p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str(t.into())),
                Arg::Const(Value::Str(c.into())),
            ],
        )[0]
    }

    #[test]
    fn accepts_a_well_formed_plan() {
        let mut p = Program::new();
        let age = bind(&mut p, "people", "age");
        let c = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(age), Arg::Const(Value::I32(1927))],
        )[0];
        let name = bind(&mut p, "people", "name");
        let out = p.push(OpCode::Projection, vec![Arg::Var(c), Arg::Var(name)])[0];
        p.push_result(&[out]);
        verify(&p).unwrap();
        verify_with_catalog(&p, &catalog()).unwrap();
    }

    #[test]
    fn rejects_use_before_def() {
        let mut p = Program::new();
        let ghost = p.var();
        let c = p.push(OpCode::Mirror, vec![Arg::Var(ghost)])[0];
        p.push_result(&[c]);
        let e = verify(&p).unwrap_err();
        assert_eq!(e.instr, Some(0));
        assert!(matches!(e.kind, VerifyErrorKind::UseBeforeDef { var } if var == ghost));
    }

    #[test]
    fn rejects_redefinition() {
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        p.instrs.push(Instr {
            results: vec![a],
            op: OpCode::Mirror,
            args: vec![Arg::Var(a)],
        });
        p.push_result(&[a]);
        let e = verify(&p).unwrap_err();
        assert!(matches!(
            e.kind,
            VerifyErrorKind::Redefinition { var, first_def: 0 } if var == a
        ));
    }

    #[test]
    fn rejects_bad_arity() {
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        let r = p.var();
        p.instrs.push(Instr {
            results: vec![r],
            op: OpCode::Projection,
            args: vec![Arg::Var(a)], // missing the values bat
        });
        let e = verify(&p).unwrap_err();
        assert_eq!(e.instr, Some(1));
        assert!(matches!(
            e.kind,
            VerifyErrorKind::BadArgCount {
                expected: 2,
                got: 1
            }
        ));

        // result-arity violation: join binding one var
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        let b = bind(&mut p, "t", "b");
        let r = p.var();
        p.instrs.push(Instr {
            results: vec![r],
            op: OpCode::Join,
            args: vec![Arg::Var(a), Arg::Var(b)],
        });
        let e = verify(&p).unwrap_err();
        assert!(matches!(
            e.kind,
            VerifyErrorKind::BadResultCount {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn rejects_kind_mismatch() {
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        let n = p.push(OpCode::Count, vec![Arg::Var(a)])[0]; // scalar
        let m = p.push(OpCode::Mirror, vec![Arg::Var(n)])[0]; // needs a bat
        p.push_result(&[m]);
        let e = verify(&p).unwrap_err();
        assert_eq!(e.instr, Some(2));
        assert!(matches!(
            e.kind,
            VerifyErrorKind::KindMismatch {
                arg: 0,
                expected: "bat",
                found: "scalar"
            }
        ));

        // bat where a scalar belongs
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        let s = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(a), Arg::Var(a)],
        )[0];
        p.push_result(&[s]);
        let e = verify(&p).unwrap_err();
        assert!(matches!(
            e.kind,
            VerifyErrorKind::KindMismatch {
                arg: 1,
                expected: "scalar",
                found: "bat"
            }
        ));
    }

    #[test]
    fn rejects_type_mismatch_through_inference() {
        // comparing a string column with an integer constant
        let mut p = Program::new();
        let name = bind(&mut p, "people", "name");
        let c = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(name), Arg::Const(Value::I32(7))],
        )[0];
        p.push_result(&[c]);
        verify(&p).unwrap(); // without a catalog the column type is unknown
        let e = verify_with_catalog(&p, &catalog()).unwrap_err();
        assert_eq!(e.instr, Some(1));
        assert!(matches!(
            e.kind,
            VerifyErrorKind::TypeMismatch { arg: 1, .. }
        ));

        // summing a string column
        let mut p = Program::new();
        let name = bind(&mut p, "people", "name");
        let s = p.push(OpCode::Aggr(AggKind::Sum), vec![Arg::Var(name)])[0];
        p.push_result(&[s]);
        let e = verify_with_catalog(&p, &catalog()).unwrap_err();
        assert!(matches!(e.kind, VerifyErrorKind::TypeMismatch { .. }));

        // joining a string column against an int column
        let mut p = Program::new();
        let name = bind(&mut p, "people", "name");
        let age = bind(&mut p, "people", "age");
        let j = p.push(OpCode::Join, vec![Arg::Var(name), Arg::Var(age)]);
        p.push_result(&[j[0]]);
        let e = verify_with_catalog(&p, &catalog()).unwrap_err();
        assert!(matches!(e.kind, VerifyErrorKind::TypeMismatch { .. }));

        // a value bat where a candidate list belongs
        let mut p = Program::new();
        let name = bind(&mut p, "people", "name");
        let age = bind(&mut p, "people", "age");
        let f = p.push(OpCode::Projection, vec![Arg::Var(name), Arg::Var(age)])[0];
        p.push_result(&[f]);
        let e = verify_with_catalog(&p, &catalog()).unwrap_err();
        assert!(matches!(
            e.kind,
            VerifyErrorKind::TypeMismatch { arg: 0, .. }
        ));
    }

    #[test]
    fn types_flow_through_joins_and_aggregates() {
        // join two int columns, fetch through the index, sum: all legal
        let mut p = Program::new();
        let a = bind(&mut p, "people", "age");
        let b = bind(&mut p, "people", "age");
        let j = p.push(OpCode::Join, vec![Arg::Var(a), Arg::Var(b)]);
        let f = p.push(OpCode::Projection, vec![Arg::Var(j[0]), Arg::Var(a)])[0];
        let s = p.push(OpCode::Aggr(AggKind::Sum), vec![Arg::Var(f)])[0];
        p.push_result(&[s]);
        verify_with_catalog(&p, &catalog()).unwrap();
    }

    #[test]
    fn rejects_code_after_result_and_missing_result() {
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        p.push_result(&[a]);
        bind(&mut p, "t", "b");
        let e = verify(&p).unwrap_err();
        assert_eq!(e.instr, Some(2));
        assert!(matches!(
            e.kind,
            VerifyErrorKind::CodeAfterResult { result_at: 1 }
        ));

        let mut p = Program::new();
        bind(&mut p, "t", "a");
        let e = verify(&p).unwrap_err();
        assert_eq!(e.instr, None);
        assert!(matches!(e.kind, VerifyErrorKind::MissingResult));
    }

    #[test]
    fn rejects_use_after_free() {
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        p.push(OpCode::Free, vec![Arg::Var(a)]);
        let m = p.push(OpCode::Mirror, vec![Arg::Var(a)])[0];
        p.push_result(&[m]);
        let e = verify(&p).unwrap_err();
        assert_eq!(e.instr, Some(2));
        assert!(matches!(
            e.kind,
            VerifyErrorKind::UseAfterFree { var, freed_at: 1 } if var == a
        ));
    }

    #[test]
    fn rejects_unknown_binds_with_catalog() {
        let mut p = Program::new();
        let a = bind(&mut p, "nope", "x");
        p.push_result(&[a]);
        let e = verify_with_catalog(&p, &catalog()).unwrap_err();
        assert!(matches!(e.kind, VerifyErrorKind::NoSuchTable { .. }));

        let mut p = Program::new();
        let a = bind(&mut p, "people", "height");
        p.push_result(&[a]);
        let e = verify_with_catalog(&p, &catalog()).unwrap_err();
        assert!(matches!(e.kind, VerifyErrorKind::NoSuchColumn { .. }));
    }

    #[test]
    fn error_display_carries_location() {
        let mut p = Program::new();
        let ghost = p.var();
        p.push(OpCode::Count, vec![Arg::Var(ghost)]);
        let e = verify(&p).unwrap_err();
        let text = e.to_string();
        assert!(text.contains("instr 0"), "{text}");
        assert!(text.contains("aggr.count"), "{text}");
        assert!(text.contains("x0"), "{text}");
    }

    #[test]
    fn lints_unused_results() {
        let mut p = Program::new();
        let a = bind(&mut p, "t", "a");
        let rs = p.push(OpCode::Sort { desc: false }, vec![Arg::Var(a)]);
        p.push_result(&[rs[0]]);
        let lints = lint(&p);
        assert_eq!(
            lints,
            vec![Lint::UnusedResult {
                instr: 1,
                var: rs[1]
            }]
        );
    }
}
