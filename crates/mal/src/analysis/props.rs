//! Abstract interpretation of MAL plans over a property lattice.
//!
//! One forward walk infers, per SSA variable, a [`Props`] element:
//! cardinality bounds, a value interval over the non-nil tail values,
//! order/key/nullability flags, and head density. Base binds are seeded
//! from catalog statistics ([`column_facts`], optionally sharpened by zone
//! maps via [`column_facts_with_zonemaps`]); every opcode has a transfer
//! function documented in `docs/mal-analysis.md`, and anything unmodeled
//! falls back to the conservative [`Props::top`].
//!
//! Soundness contract: every fact claimed must hold for the BAT the
//! interpreter actually materializes for that variable. The runtime
//! checker (`MAMMOTH_CHECK_PROPS`, see [`check_bat`]) turns any breach
//! into a hard error, in both the serial and the dataflow engine.
//!
//! The analysis is total: malformed programs degrade to `Top` rather than
//! panic. The only error it reports is an explicit `bat.setprops` claim it
//! cannot confirm — the verifier's hook for rejecting annotated plans
//! whose annotations the dataflow facts do not support.

use crate::program::{Arg, Instr, OpCode, Program, VarId};
use mammoth_algebra::{AggKind, ArithOp, CmpOp};
use mammoth_index::ZoneMap;
use mammoth_storage::{Bat, Catalog};
use mammoth_types::{LogicalType, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

/// Inferred properties of one BAT-valued variable. Every field is a
/// *may*-bound: `sorted == false` means "not proven sorted", never "proven
/// unsorted". `min`/`max` bound the non-nil tail values only (nil sorts
/// below everything at runtime but carries no value).
#[derive(Debug, Clone, PartialEq)]
pub struct Props {
    /// Inclusive lower bound on the row count.
    pub card_lo: u64,
    /// Inclusive upper bound on the row count; `None` = unbounded.
    pub card_hi: Option<u64>,
    /// Lower bound on every non-nil tail value.
    pub min: Option<Value>,
    /// Upper bound on every non-nil tail value.
    pub max: Option<Value>,
    /// Tail is non-decreasing (nils first).
    pub sorted: bool,
    /// Tail is non-increasing (nils last).
    pub revsorted: bool,
    /// Tail values are pairwise distinct. The analysis only ever claims
    /// `key` together with `sorted || revsorted`, matching what the
    /// runtime ground truth can confirm in one pass.
    pub key: bool,
    /// All tail values are non-nil.
    pub nonil: bool,
    /// Head is void (dense oids).
    pub void_head: bool,
}

impl Props {
    /// The no-information element: anything at all may have happened.
    pub fn top() -> Props {
        Props {
            card_lo: 0,
            card_hi: None,
            min: None,
            max: None,
            sorted: false,
            revsorted: false,
            key: false,
            nonil: false,
            void_head: false,
        }
    }

    /// An exact cardinality `[n, n]`.
    pub fn with_card(mut self, n: u64) -> Props {
        self.card_lo = n;
        self.card_hi = Some(n);
        self
    }

    /// Whether this element proves every flag in `claims`.
    fn implies(&self, claims: &Claims) -> Option<&'static str> {
        if claims.sorted && !self.sorted {
            return Some("sorted");
        }
        if claims.revsorted && !self.revsorted {
            return Some("revsorted");
        }
        if claims.key && !self.key {
            return Some("key");
        }
        if claims.nonil && !self.nonil {
            return Some("nonil");
        }
        None
    }
}

impl fmt::Display for Props {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.card_hi {
            Some(hi) if hi == self.card_lo => write!(f, "rows={hi}")?,
            Some(hi) => write!(f, "rows={}..{hi}", self.card_lo)?,
            None => write!(f, "rows={}..", self.card_lo)?,
        }
        if self.min.is_some() || self.max.is_some() {
            let side = |v: &Option<Value>| match v {
                Some(v) => v.to_string(),
                None => "?".to_string(),
            };
            write!(f, " vals=[{}, {}]", side(&self.min), side(&self.max))?;
        }
        for (on, name) in [
            (self.sorted, "sorted"),
            (self.revsorted, "revsorted"),
            (self.key, "key"),
            (self.nonil, "nonil"),
            (self.void_head, "dense"),
        ] {
            if on {
                write!(f, " {name}")?;
            }
        }
        Ok(())
    }
}

/// Facts the analysis tracks per BAT variable beyond [`Props`]: the head
/// seqbase when statically known, and — for `algebra.slice(b, i, k)`
/// fragments — the mitosis lineage, so `mat.pack` of a complete fragment
/// group can restore the parent's facts exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct BatFacts {
    pub props: Props,
    /// Void-head seqbase when statically known.
    pub seqbase: Option<u64>,
    /// `(parent var, fragment index, fragment count)` lineage.
    frag: Option<(VarId, u64, u64)>,
}

impl BatFacts {
    fn top() -> BatFacts {
        BatFacts {
            props: Props::top(),
            seqbase: None,
            frag: None,
        }
    }

    /// A freshly materialized result: dense head with seqbase 0.
    fn dense0(mut props: Props) -> BatFacts {
        props.void_head = true;
        BatFacts {
            props,
            seqbase: Some(0),
            frag: None,
        }
    }
}

/// Per-variable verdict of the walk.
#[derive(Debug, Clone, PartialEq)]
enum VarFacts {
    Bat(BatFacts),
    Scalar,
}

/// An explicit `bat.setprops` claim the analysis could not confirm.
#[derive(Debug, Clone, PartialEq)]
pub struct PropsError {
    /// Instruction index of the offending claim.
    pub instr: usize,
    /// `module.function` name.
    pub op: String,
    pub message: String,
}

impl fmt::Display for PropsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instr {} ({}): {}", self.instr, self.op, self.message)
    }
}

impl std::error::Error for PropsError {}

/// Catalog statistics for base binds, keyed by lowercased
/// `(table, column)` — the catalog's own name normalization.
pub type ColumnFacts = HashMap<(String, String), Props>;

/// Compare two bound values; `None` when incomparable (nil, or mixed
/// non-numeric types). Numeric values compare across widths.
pub fn cmp_vals(a: &Value, b: &Value) -> Option<Ordering> {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        (Value::Oid(x), Value::Oid(y)) => Some(x.cmp(y)),
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
        (Value::F64(_), _) | (_, Value::F64(_)) => a.as_f64()?.partial_cmp(&b.as_f64()?),
        _ => Some(a.as_i64()?.cmp(&b.as_i64()?)),
    }
}

fn le(a: &Value, b: &Value) -> bool {
    matches!(cmp_vals(a, b), Some(Ordering::Less | Ordering::Equal))
}

fn lt(a: &Value, b: &Value) -> bool {
    matches!(cmp_vals(a, b), Some(Ordering::Less))
}

/// Cheap per-column facts from the delta layer's eager base statistics:
/// exact cardinality always; order/key/nullability flags and the exact
/// min/max whenever the column has no pending deltas
/// ([`mammoth_storage::VersionedColumn::stable_props`]).
pub fn column_facts(catalog: &Catalog) -> ColumnFacts {
    facts_impl(catalog, false)
}

/// [`column_facts`], additionally folding a zone map over each clean `i64`
/// column into the value interval — the zone-map fact path the tentpole
/// calls for. Costs one scan per column; meant for tests, `malcheck`, and
/// benchmark setup rather than the per-query path.
pub fn column_facts_with_zonemaps(catalog: &Catalog) -> ColumnFacts {
    facts_impl(catalog, true)
}

fn facts_impl(catalog: &Catalog, zonemaps: bool) -> ColumnFacts {
    let mut out = ColumnFacts::new();
    for name in catalog.table_names() {
        let Ok(t) = catalog.table(name) else { continue };
        for (i, cdef) in t.schema.columns.iter().enumerate() {
            let col = t.column(i);
            let mut p = Props::top().with_card(col.total_len() as u64);
            p.void_head = true;
            if let Some(sp) = col.stable_props() {
                p.sorted = sp.sorted;
                p.revsorted = sp.revsorted;
                p.key = sp.key && (sp.sorted || sp.revsorted);
                p.nonil = sp.nonil;
                p.min = sp.min.clone();
                p.max = sp.max.clone();
                if zonemaps && p.min.is_none() && cdef.ty == LogicalType::I64 {
                    if let Ok(vals) = col.base().tail_slice::<i64>() {
                        let live: Vec<i64> =
                            vals.iter().copied().filter(|&v| v != i64::MIN).collect();
                        if let Some((lo, hi)) = ZoneMap::build(&live, 1024).bounds() {
                            p.min = Some(Value::I64(lo));
                            p.max = Some(Value::I64(hi));
                        }
                    }
                }
            }
            out.insert((name.to_lowercase(), cdef.name.to_lowercase()), p);
        }
    }
    out
}

/// The result of one analysis walk: facts per variable, in plan order.
#[derive(Debug, Clone)]
pub struct Analysis {
    facts: Vec<Option<VarFacts>>,
}

impl Analysis {
    /// The inferred properties of BAT variable `v`, if it is one.
    pub fn props_of(&self, v: VarId) -> Option<&Props> {
        match self.facts.get(v)? {
            Some(VarFacts::Bat(b)) => Some(&b.props),
            _ => None,
        }
    }

    /// Full facts (props + seqbase) of BAT variable `v`.
    pub fn bat_facts(&self, v: VarId) -> Option<&BatFacts> {
        match self.facts.get(v)? {
            Some(VarFacts::Bat(b)) => Some(b),
            _ => None,
        }
    }

    /// Render the inferred facts of an instruction's results, one clause
    /// per result — the `EXPLAIN`/`malcheck --props` line.
    pub fn describe_instr(&self, instr: &Instr) -> String {
        let mut parts = Vec::new();
        for &r in &instr.results {
            match self.facts.get(r) {
                Some(Some(VarFacts::Bat(b))) => parts.push(format!("x{r}: {}", b.props)),
                Some(Some(VarFacts::Scalar)) => parts.push(format!("x{r}: scalar")),
                _ => parts.push(format!("x{r}: ?")),
            }
        }
        parts.join("; ")
    }
}

/// Analyze with no base-bind statistics: binds start at `Top` (plus the
/// dense-head fact every materialized column has).
pub fn analyze(prog: &Program) -> Result<Analysis, PropsError> {
    analyze_with_facts(prog, &ColumnFacts::new())
}

/// Analyze against a live catalog ([`column_facts`] seeds the binds).
pub fn analyze_with_catalog(prog: &Program, catalog: &Catalog) -> Result<Analysis, PropsError> {
    analyze_with_facts(prog, &column_facts(catalog))
}

/// The forward walk. `Err` only for unconfirmable `bat.setprops` claims.
pub fn analyze_with_facts(prog: &Program, facts: &ColumnFacts) -> Result<Analysis, PropsError> {
    let mut a = Analyzer {
        facts: vec![None; prog.nvars()],
        columns: facts,
    };
    for (idx, instr) in prog.instrs.iter().enumerate() {
        a.transfer(idx, instr)?;
    }
    Ok(Analysis { facts: a.facts })
}

struct Analyzer<'a> {
    facts: Vec<Option<VarFacts>>,
    columns: &'a ColumnFacts,
}

impl Analyzer<'_> {
    /// Facts of a BAT argument; `Top` for anything unknown or non-BAT.
    fn bat_arg(&self, instr: &Instr, k: usize) -> BatFacts {
        match instr.args.get(k) {
            Some(Arg::Var(v)) => match self.facts.get(*v) {
                Some(Some(VarFacts::Bat(b))) => b.clone(),
                _ => BatFacts::top(),
            },
            _ => BatFacts::top(),
        }
    }

    fn const_arg<'i>(&self, instr: &'i Instr, k: usize) -> Option<&'i Value> {
        match instr.args.get(k) {
            Some(Arg::Const(v)) => Some(v),
            _ => None,
        }
    }

    fn set(&mut self, instr: &Instr, k: usize, f: VarFacts) {
        if let Some(&r) = instr.results.get(k) {
            if let Some(slot) = self.facts.get_mut(r) {
                *slot = Some(f);
            }
        }
    }

    fn set_bat(&mut self, instr: &Instr, k: usize, f: BatFacts) {
        self.set(instr, k, VarFacts::Bat(f));
    }

    fn transfer(&mut self, idx: usize, instr: &Instr) -> Result<(), PropsError> {
        match &instr.op {
            OpCode::Bind => self.t_bind(instr),
            OpCode::ThetaSelect(op) => {
                let f = self.t_select(
                    instr,
                    select_verdict_theta(&self.bat_arg(instr, 0), instr, *op),
                );
                self.set_bat(instr, 0, f);
            }
            OpCode::RangeSelect { lo_incl, hi_incl } => {
                let f = self.t_select(
                    instr,
                    select_verdict_range(&self.bat_arg(instr, 0), instr, *lo_incl, *hi_incl),
                );
                self.set_bat(instr, 0, f);
            }
            OpCode::Projection => self.t_projection(instr),
            OpCode::Join => self.t_join(instr),
            OpCode::Group => self.t_group(instr),
            OpCode::GroupRefine => self.t_group_refine(instr),
            OpCode::Aggr(_) | OpCode::Count | OpCode::PackSum => {
                self.set(instr, 0, VarFacts::Scalar);
            }
            OpCode::AggrGrouped(kind) => self.t_aggr_grouped(instr, *kind),
            OpCode::Calc(op) => self.t_calc(instr, *op),
            OpCode::Sort { desc } => self.t_sort(instr, *desc),
            OpCode::Slice => self.t_slice(instr),
            OpCode::PartSlice => self.t_part_slice(instr),
            OpCode::Pack => self.t_pack(instr),
            OpCode::Mirror => self.t_mirror(instr),
            OpCode::SetProps => self.t_set_props(idx, instr)?,
            OpCode::Result | OpCode::Free => {}
        }
        Ok(())
    }

    /// `sql.bind` materializes a column: dense head, seqbase 0, and
    /// whatever the catalog statistics say about the rows.
    fn t_bind(&mut self, instr: &Instr) {
        let key = match (self.const_arg(instr, 0), self.const_arg(instr, 1)) {
            (Some(Value::Str(t)), Some(Value::Str(c))) => {
                Some((t.to_lowercase(), c.to_lowercase()))
            }
            _ => None,
        };
        let props = key
            .and_then(|k| self.columns.get(&k).cloned())
            .unwrap_or_else(|| {
                let mut p = Props::top();
                p.void_head = true;
                p
            });
        self.set_bat(instr, 0, BatFacts::dense0(props));
    }

    /// Selections yield candidate lists: over a dense input the result's
    /// oids are strictly ascending, so it is sorted+key+nonil; its values
    /// sit inside `[seqbase, seqbase + n - 1]`. Cardinality is refined by
    /// the interval verdict when the predicate provably keeps all/none.
    fn t_select(&mut self, instr: &Instr, verdict: SelectVerdict) -> BatFacts {
        let input = self.bat_arg(instr, 0);
        let mut p = Props::top();
        p.void_head = true;
        p.nonil = true;
        match verdict {
            SelectVerdict::None => {
                p.card_lo = 0;
                p.card_hi = Some(0);
            }
            SelectVerdict::All => {
                p.card_lo = input.props.card_lo;
                p.card_hi = input.props.card_hi;
            }
            SelectVerdict::Unknown => {
                p.card_lo = 0;
                p.card_hi = input.props.card_hi;
            }
        }
        if input.props.void_head {
            p.sorted = true;
            p.key = true;
            if let (Some(s), Some(hi)) = (input.seqbase, input.props.card_hi) {
                p.min = Some(Value::Oid(s));
                p.max = Some(Value::Oid(s + hi.saturating_sub(1)));
            }
        }
        p.revsorted = matches!(p.card_hi, Some(hi) if hi <= 1);
        BatFacts::dense0(p)
    }

    /// `algebra.projection(cands, values)` fetches `values[cands]`: the
    /// result has exactly the candidates' cardinality and draws its values
    /// from the values BAT, so the interval and `nonil` carry over. Order
    /// facts carry over only when the candidates are sorted *and* the
    /// values BAT is dense (ascending oids then fetch ascending positions).
    fn t_projection(&mut self, instr: &Instr) {
        let cands = self.bat_arg(instr, 0);
        let vals = self.bat_arg(instr, 1);
        let mut p = Props::top();
        p.card_lo = cands.props.card_lo;
        p.card_hi = cands.props.card_hi;
        p.min = vals.props.min.clone();
        p.max = vals.props.max.clone();
        p.nonil = vals.props.nonil;
        let monotone = cands.props.sorted && vals.props.void_head;
        p.sorted = monotone && vals.props.sorted;
        p.revsorted = monotone && vals.props.revsorted;
        p.key = monotone && cands.props.key && vals.props.key && (p.sorted || p.revsorted);
        self.set_bat(instr, 0, BatFacts::dense0(p));
    }

    /// `algebra.join(l, r)` emits two aligned position lists of unknown
    /// order; rows are at most `|l| * |r|`, and positions are never nil.
    fn t_join(&mut self, instr: &Instr) {
        let l = self.bat_arg(instr, 0);
        let r = self.bat_arg(instr, 1);
        let hi = match (l.props.card_hi, r.props.card_hi) {
            (Some(a), Some(b)) => a.checked_mul(b),
            _ => None,
        };
        for k in 0..2 {
            let mut p = Props::top();
            p.card_hi = hi;
            p.nonil = true;
            self.set_bat(instr, k, BatFacts::dense0(p));
        }
    }

    /// `group.new(b)`: ids are one oid per row in `[0, |b|)`; extents are
    /// first-occurrence positions in ascending order (sorted+key+nonil).
    fn t_group(&mut self, instr: &Instr) {
        let b = self.bat_arg(instr, 0);
        self.set_bat(instr, 0, BatFacts::dense0(group_ids_props(&b)));
        self.set_bat(instr, 1, BatFacts::dense0(group_ext_props(&b)));
    }

    /// `group.refine(b, gids)` has the same output shapes as `group.new`.
    fn t_group_refine(&mut self, instr: &Instr) {
        let b = self.bat_arg(instr, 0);
        self.set_bat(instr, 0, BatFacts::dense0(group_ids_props(&b)));
        self.set_bat(instr, 1, BatFacts::dense0(group_ext_props(&b)));
    }

    /// Grouped aggregates emit one row per group (the extents' length).
    /// `count` rows are non-nil and bounded by the input's cardinality;
    /// `min`/`max`/`avg` values stay inside the input's interval.
    fn t_aggr_grouped(&mut self, instr: &Instr, kind: AggKind) {
        let vals = self.bat_arg(instr, 0);
        let ext = self.bat_arg(instr, 2);
        let mut p = Props::top();
        p.card_lo = ext.props.card_lo;
        p.card_hi = ext.props.card_hi;
        match kind {
            AggKind::Count => {
                p.nonil = true;
                p.min = Some(Value::I64(0));
                p.max = vals
                    .props
                    .card_hi
                    .and_then(|n| i64::try_from(n).ok())
                    .map(Value::I64);
            }
            AggKind::Min | AggKind::Max => {
                p.min = vals.props.min.clone();
                p.max = vals.props.max.clone();
            }
            AggKind::Avg => {
                // averages of values in [min, max] stay in [min, max]
                p.min = vals
                    .props
                    .min
                    .as_ref()
                    .and_then(|v| v.as_f64())
                    .map(Value::F64);
                p.max = vals
                    .props
                    .max
                    .as_ref()
                    .and_then(|v| v.as_f64())
                    .map(Value::F64);
            }
            AggKind::Sum => {}
        }
        self.set_bat(instr, 0, BatFacts::dense0(p));
    }

    /// `batcalc` is element-wise, so cardinality carries over exactly.
    /// Interval/order transfer is attempted for integer column ⍟ integer
    /// constant only, and only when evaluating the operator on both
    /// interval endpoints provably stays inside the widened type's non-nil
    /// domain — integer batcalc wraps, and a wrap (or a landing on the nil
    /// sentinel) would break monotonicity and the bounds alike.
    fn t_calc(&mut self, instr: &Instr, op: ArithOp) {
        let a = self.bat_arg(instr, 0);
        let mut p = Props::top();
        p.card_lo = a.props.card_lo;
        p.card_hi = a.props.card_hi;
        if let Some(t) = self.calc_interval(instr, op, &a) {
            (p.min, p.max) = (Some(t.lo), Some(t.hi));
            p.nonil = a.props.nonil;
            (p.sorted, p.revsorted) = if t.flips {
                (a.props.revsorted, a.props.sorted)
            } else {
                (a.props.sorted, a.props.revsorted)
            };
            p.key = t.strict && a.props.key && (p.sorted || p.revsorted);
        }
        self.set_bat(instr, 0, BatFacts::dense0(p));
    }

    /// The endpoint evaluation behind [`Analyzer::t_calc`]: `None` unless
    /// the no-wrap proof goes through.
    fn calc_interval(&self, instr: &Instr, op: ArithOp, a: &BatFacts) -> Option<CalcInterval> {
        // Div/Mod have nil-on-zero and truncation corners; leave them Top.
        if matches!(op, ArithOp::Div | ArithOp::Mod) {
            return None;
        }
        let c = self.const_arg(instr, 1)?;
        let (amin, amax) = (a.props.min.as_ref()?, a.props.max.as_ref()?);
        let in_ty = amin.logical_type()?;
        if amax.logical_type()? != in_ty {
            return None;
        }
        let widened = LogicalType::widen(in_ty, c.logical_type()?)?;
        let int_domain = |t: LogicalType| -> Option<(i128, i128)> {
            match t {
                LogicalType::I8 => Some((i8::MIN as i128 + 1, i8::MAX as i128)),
                LogicalType::I16 => Some((i16::MIN as i128 + 1, i16::MAX as i128)),
                LogicalType::I32 => Some((i32::MIN as i128 + 1, i32::MAX as i128)),
                LogicalType::I64 => Some((i64::MIN as i128 + 1, i64::MAX as i128)),
                _ => None,
            }
        };
        let (dom_lo, dom_hi) = int_domain(widened)?;
        let (lo, hi, k) = (
            amin.as_i64()? as i128,
            amax.as_i64()? as i128,
            c.as_i64()? as i128,
        );
        let (rlo, rhi, flips, strict) = match op {
            ArithOp::Add => (lo + k, hi + k, false, true),
            ArithOp::Sub => (lo - k, hi - k, false, true),
            ArithOp::Mul if k > 0 => (lo * k, hi * k, false, true),
            ArithOp::Mul if k < 0 => (hi * k, lo * k, true, true),
            ArithOp::Mul => (0, 0, false, false), // k == 0
            _ => return None,
        };
        if rlo < dom_lo || rhi > dom_hi {
            return None;
        }
        let as_val = |x: i128| -> Option<Value> {
            match widened {
                LogicalType::I8 => Some(Value::I8(x as i8)),
                LogicalType::I16 => Some(Value::I16(x as i16)),
                LogicalType::I32 => Some(Value::I32(x as i32)),
                LogicalType::I64 => Some(Value::I64(x as i64)),
                _ => None,
            }
        };
        Some(CalcInterval {
            lo: as_val(rlo)?,
            hi: as_val(rhi)?,
            flips,
            strict,
        })
    }

    /// `algebra.sort` permutes the input: same rows, same multiset of
    /// values, sorted one way or the other. The order BAT holds the `|b|`
    /// source positions (non-nil oids).
    fn t_sort(&mut self, instr: &Instr, desc: bool) {
        let b = self.bat_arg(instr, 0);
        let mut p = Props::top();
        p.card_lo = b.props.card_lo;
        p.card_hi = b.props.card_hi;
        p.min = b.props.min.clone();
        p.max = b.props.max.clone();
        p.nonil = b.props.nonil;
        p.sorted = !desc;
        p.revsorted = desc;
        self.set_bat(instr, 0, BatFacts::dense0(p));
        let mut o = Props::top();
        o.card_lo = b.props.card_lo;
        o.card_hi = b.props.card_hi;
        o.nonil = true;
        self.set_bat(instr, 1, BatFacts::dense0(o));
    }

    /// `bat.slice(b, lo, hi)` keeps a contiguous run: every filter-stable
    /// flag and the interval carry over; the head keeps its void seqbase
    /// shifted by `lo`.
    fn t_slice(&mut self, instr: &Instr) {
        let b = self.bat_arg(instr, 0);
        let bounds = match (self.const_arg(instr, 1), self.const_arg(instr, 2)) {
            (Some(l), Some(h)) => match (l.as_i64(), h.as_i64()) {
                (Some(l), Some(h)) if l >= 0 && h >= l => Some((l as u64, h as u64)),
                _ => None,
            },
            _ => None,
        };
        let mut p = Props::top();
        p.sorted = b.props.sorted;
        p.revsorted = b.props.revsorted;
        p.key = b.props.key;
        p.nonil = b.props.nonil;
        p.min = b.props.min.clone();
        p.max = b.props.max.clone();
        p.void_head = b.props.void_head;
        let taken = |n: u64, lo: u64, hi: u64| n.min(hi).saturating_sub(lo.min(n.min(hi)));
        match bounds {
            Some((lo, hi)) => {
                p.card_lo = taken(b.props.card_lo, lo, hi);
                p.card_hi = Some(match b.props.card_hi {
                    Some(n) => taken(n, lo, hi),
                    None => hi - lo,
                });
            }
            None => {
                p.card_lo = 0;
                p.card_hi = b.props.card_hi;
            }
        }
        let seqbase = match (b.props.void_head, b.seqbase, bounds) {
            (true, Some(s), Some((lo, _))) => Some(s + lo),
            _ => None,
        };
        self.set_bat(
            instr,
            0,
            BatFacts {
                props: p,
                seqbase,
                frag: None,
            },
        );
    }

    /// `algebra.slice(b, i, k)` — the mitosis fragment: rows
    /// `[i*n/k, (i+1)*n/k)` of `b` with the absolute seqbase. It inherits
    /// every filter-stable fact and records its lineage so `mat.pack` of
    /// the complete group can restore `b`'s facts wholesale.
    fn t_part_slice(&mut self, instr: &Instr) {
        let b = self.bat_arg(instr, 0);
        let parent = match instr.args.first() {
            Some(Arg::Var(v)) => Some(*v),
            _ => None,
        };
        let coords = match (self.const_arg(instr, 1), self.const_arg(instr, 2)) {
            (Some(i), Some(k)) => match (i.as_i64(), k.as_i64()) {
                (Some(i), Some(k)) if i >= 0 && k > i => Some((i as u64, k as u64)),
                _ => None,
            },
            _ => None,
        };
        let mut p = Props::top();
        p.sorted = b.props.sorted;
        p.revsorted = b.props.revsorted;
        p.key = b.props.key;
        p.nonil = b.props.nonil;
        p.min = b.props.min.clone();
        p.max = b.props.max.clone();
        p.void_head = b.props.void_head;
        let mut seqbase = None;
        if let (Some((i, k)), Some(hi)) = (coords, b.props.card_hi) {
            if b.props.card_lo == hi {
                let (lo_pos, hi_pos) = (i * hi / k, (i + 1) * hi / k);
                p = p.with_card(hi_pos - lo_pos);
                if b.props.void_head {
                    seqbase = b.seqbase.map(|s| s + lo_pos);
                }
            } else {
                p.card_lo = 0;
                p.card_hi = Some(hi);
            }
        } else {
            p.card_lo = 0;
            p.card_hi = b.props.card_hi;
        }
        self.set_bat(
            instr,
            0,
            BatFacts {
                props: p,
                seqbase,
                frag: parent.zip(coords).map(|(v, (i, k))| (v, i, k)),
            },
        );
    }

    /// `mat.pack` concatenates fragments. Two regimes:
    ///
    /// * the arguments are exactly fragments `0..k` of one parent, in
    ///   order — the concatenation *is* the parent, so its facts (seqbase
    ///   included) are restored wholesale;
    /// * otherwise, fold pairwise: cardinalities add, intervals and
    ///   `nonil` fold, and order survives only when every boundary
    ///   provably keeps it (`prev.max <= next.min` with `next` non-nil —
    ///   a nil in `next` would sort below `prev`'s tail values).
    ///
    /// The runtime always re-derives a dense head for the packed result.
    fn t_pack(&mut self, instr: &Instr) {
        let parts: Vec<BatFacts> = (0..instr.args.len())
            .map(|k| self.bat_arg(instr, k))
            .collect();
        if let Some(parent) = self.exact_pack_parent(&parts) {
            self.set_bat(instr, 0, parent);
            return;
        }
        let mut p = match parts.first() {
            Some(f) => f.props.clone(),
            None => Props::top(),
        };
        for next in parts.iter().skip(1) {
            let n = &next.props;
            p.card_lo = p.card_lo.saturating_add(n.card_lo);
            p.card_hi = match (p.card_hi, n.card_hi) {
                (Some(a), Some(b)) => a.checked_add(b),
                _ => None,
            };
            let a_empty = p.card_hi == Some(p.card_lo) && p.card_lo == 0;
            let boundary = |strict: bool| match (&p.max, &n.min) {
                _ if a_empty || n.card_hi == Some(0) => true,
                (Some(am), Some(nm)) if n.nonil => {
                    if strict {
                        lt(am, nm)
                    } else {
                        le(am, nm)
                    }
                }
                _ => false,
            };
            p.key = p.key && n.key && boundary(true);
            p.sorted = p.sorted && n.sorted && boundary(false);
            // a reverse-sorted boundary would need prev.min >= next.max
            // *and* prev non-nil; rare enough to leave unclaimed
            p.revsorted = false;
            p.nonil = p.nonil && n.nonil;
            p.min = match (&p.min, &n.min) {
                (Some(a), Some(b)) => Some(if le(a, b) { a.clone() } else { b.clone() }),
                _ => None,
            };
            p.max = match (&p.max, &n.max) {
                (Some(a), Some(b)) => Some(if le(a, b) { b.clone() } else { a.clone() }),
                _ => None,
            };
        }
        p.key = p.key && (p.sorted || p.revsorted);
        self.set_bat(instr, 0, BatFacts::dense0(p));
    }

    /// The exact-pack detector: all arguments are `algebra.slice`
    /// fragments of one parent with matching `k`, indices `0..k` in order.
    fn exact_pack_parent(&self, parts: &[BatFacts]) -> Option<BatFacts> {
        let (parent, _, k) = parts.first()?.frag?;
        if k as usize != parts.len() {
            return None;
        }
        for (want, part) in parts.iter().enumerate() {
            let (pv, i, kk) = part.frag?;
            if pv != parent || kk != k || i != want as u64 {
                return None;
            }
        }
        match self.facts.get(parent)? {
            Some(VarFacts::Bat(b)) => Some(b.clone()),
            _ => None,
        }
    }

    /// `bat.mirror(b)` maps head→head: over a dense input the tail is the
    /// oid run `[s, s+n)` — sorted, key, nonil, with an exact interval.
    fn t_mirror(&mut self, instr: &Instr) {
        let b = self.bat_arg(instr, 0);
        let mut p = Props::top();
        p.card_lo = b.props.card_lo;
        p.card_hi = b.props.card_hi;
        if b.props.void_head {
            p.sorted = true;
            p.key = true;
            p.nonil = true;
            if let (Some(s), Some(hi)) = (b.seqbase, b.props.card_hi) {
                p.min = Some(Value::Oid(s));
                p.max = Some(Value::Oid(s + hi.saturating_sub(1)));
            }
        }
        p.revsorted = matches!(p.card_hi, Some(hi) if hi <= 1);
        let seqbase = if b.props.void_head { b.seqbase } else { None };
        p.void_head = b.props.void_head;
        self.set_bat(
            instr,
            0,
            BatFacts {
                props: p,
                seqbase,
                frag: None,
            },
        );
    }

    /// `bat.setprops(b, "claims")` is a runtime identity carrying an
    /// explicit annotation. The analysis must be able to *confirm* every
    /// claimed flag — an unconfirmable claim is the one hard error this
    /// pass reports, which is how annotated-but-wrong plans get rejected.
    fn t_set_props(&mut self, idx: usize, instr: &Instr) -> Result<(), PropsError> {
        let b = self.bat_arg(instr, 0);
        let claims = self
            .const_arg(instr, 1)
            .and_then(|v| match v {
                Value::Str(s) => parse_claims(s),
                _ => None,
            })
            .ok_or_else(|| PropsError {
                instr: idx,
                op: instr.op.name(),
                message: "malformed property claim".into(),
            })?;
        if let Some(flag) = b.props.implies(&claims) {
            return Err(PropsError {
                instr: idx,
                op: instr.op.name(),
                message: format!(
                    "claims '{flag}' but the analysis cannot confirm it (inferred: {})",
                    b.props
                ),
            });
        }
        self.set_bat(instr, 0, b);
        Ok(())
    }
}

/// Outputs of `group.new`/`group.refine`, first result: one group id per
/// input row, ids in `[0, n)`.
fn group_ids_props(b: &BatFacts) -> Props {
    let mut p = Props::top();
    p.card_lo = b.props.card_lo;
    p.card_hi = b.props.card_hi;
    p.nonil = true;
    p.min = Some(Value::Oid(0));
    p.max = b.props.card_hi.map(|hi| Value::Oid(hi.saturating_sub(1)));
    p
}

/// Second result: first-occurrence positions, emitted in ascending order.
fn group_ext_props(b: &BatFacts) -> Props {
    let mut p = group_ids_props(b);
    p.card_lo = b.props.card_lo.min(1);
    p.sorted = true;
    p.key = true;
    p
}

struct CalcInterval {
    lo: Value,
    hi: Value,
    flips: bool,
    strict: bool,
}

/// What an interval proof says a selection keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectVerdict {
    /// Every row qualifies (requires `nonil`: nil rows never qualify).
    All,
    /// No row qualifies.
    None,
    Unknown,
}

/// Interval verdict for `algebra.thetaselect[op](b, c)`. Public so the
/// optimizer passes prove their rewrites with the same logic the checker
/// validates.
pub fn select_verdict_theta(b: &BatFacts, instr: &Instr, op: CmpOp) -> SelectVerdict {
    let Some(Arg::Const(c)) = instr.args.get(1) else {
        return SelectVerdict::Unknown;
    };
    if c.is_null() {
        // nil compares with nothing: the runtime returns no candidates
        return SelectVerdict::None;
    }
    let (min, max) = (&b.props.min, &b.props.max);
    let all = |cond: bool| cond && b.props.nonil;
    let some_all = |lo: &Option<Value>, f: &dyn Fn(&Value) -> bool| lo.as_ref().is_some_and(f);
    let verdict_all = match op {
        CmpOp::Lt => some_all(max, &|m| lt(m, c)),
        CmpOp::Le => some_all(max, &|m| le(m, c)),
        CmpOp::Gt => some_all(min, &|m| lt(c, m)),
        CmpOp::Ge => some_all(min, &|m| le(c, m)),
        CmpOp::Eq => {
            some_all(min, &|m| cmp_vals(m, c) == Some(Ordering::Equal))
                && some_all(max, &|m| cmp_vals(m, c) == Some(Ordering::Equal))
        }
        CmpOp::Ne => some_all(max, &|m| lt(m, c)) || some_all(min, &|m| lt(c, m)),
    };
    if all(verdict_all) {
        return SelectVerdict::All;
    }
    // rows outside the interval can never qualify, nil rows never qualify
    let verdict_none = match op {
        CmpOp::Lt => some_all(min, &|m| le(c, m)),
        CmpOp::Le => some_all(min, &|m| lt(c, m)),
        CmpOp::Gt => some_all(max, &|m| le(m, c)),
        CmpOp::Ge => some_all(max, &|m| lt(m, c)),
        CmpOp::Eq => some_all(max, &|m| lt(m, c)) || some_all(min, &|m| lt(c, m)),
        CmpOp::Ne => {
            some_all(min, &|m| cmp_vals(m, c) == Some(Ordering::Equal))
                && some_all(max, &|m| cmp_vals(m, c) == Some(Ordering::Equal))
                && b.props.nonil
        }
    };
    if verdict_none {
        return SelectVerdict::None;
    }
    SelectVerdict::Unknown
}

/// Interval verdict for `algebra.select(b, lo, hi, li, hi_incl)`.
pub fn select_verdict_range(
    b: &BatFacts,
    instr: &Instr,
    lo_incl: bool,
    hi_incl: bool,
) -> SelectVerdict {
    let (lo, hi) = match (instr.args.get(1), instr.args.get(2)) {
        (Some(Arg::Const(l)), Some(Arg::Const(h))) => (l, h),
        _ => return SelectVerdict::Unknown,
    };
    let (bmin, bmax) = (&b.props.min, &b.props.max);
    // open (nil) bounds are unbounded on that side
    let lo_ok_all = lo.is_null()
        || bmin
            .as_ref()
            .is_some_and(|m| if lo_incl { le(lo, m) } else { lt(lo, m) });
    let hi_ok_all = hi.is_null()
        || bmax
            .as_ref()
            .is_some_and(|m| if hi_incl { le(m, hi) } else { lt(m, hi) });
    if lo_ok_all && hi_ok_all && b.props.nonil {
        return SelectVerdict::All;
    }
    let below = !hi.is_null()
        && bmin
            .as_ref()
            .is_some_and(|m| if hi_incl { lt(hi, m) } else { le(hi, m) });
    let above = !lo.is_null()
        && bmax
            .as_ref()
            .is_some_and(|m| if lo_incl { lt(m, lo) } else { le(m, lo) });
    if below || above {
        return SelectVerdict::None;
    }
    SelectVerdict::Unknown
}

/// The flag set a `bat.setprops` annotation may claim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Claims {
    pub sorted: bool,
    pub revsorted: bool,
    pub key: bool,
    pub nonil: bool,
}

/// Parse a `"sorted,nonil"`-style claim string; `None` on any unknown
/// token (shared by the verifier, the analysis, and the interpreter).
pub fn parse_claims(s: &str) -> Option<Claims> {
    let mut c = Claims::default();
    for tok in s.split(',') {
        match tok.trim() {
            "sorted" => c.sorted = true,
            "revsorted" => c.revsorted = true,
            "key" => c.key = true,
            "nonil" => c.nonil = true,
            "" => {}
            _ => return None,
        }
    }
    Some(c)
}

/// Environment switch for the runtime checker: `MAMMOTH_CHECK_PROPS` set
/// to anything but `0`/empty.
pub const CHECK_PROPS_ENV: &str = "MAMMOTH_CHECK_PROPS";

pub fn check_props_enabled() -> bool {
    std::env::var(CHECK_PROPS_ENV).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The runtime oracle: does `bat` satisfy the inferred `props`? Ground
/// truth comes from a full recomputation
/// ([`Bat::computed_props`]) plus direct head/cardinality checks; the
/// BAT's own runtime property flags are cross-checked too, so a
/// mis-tagged runtime BAT fails even when the analysis claimed nothing.
pub fn check_bat(props: &Props, bat: &Bat) -> Result<(), String> {
    let n = bat.len() as u64;
    if n < props.card_lo {
        return Err(format!(
            "cardinality {n} below inferred floor {}",
            props.card_lo
        ));
    }
    if let Some(hi) = props.card_hi {
        if n > hi {
            return Err(format!("cardinality {n} above inferred ceiling {hi}"));
        }
    }
    if props.void_head && !bat.head().is_void() {
        return Err("inferred dense head, found materialized oids".into());
    }
    let ground = bat.computed_props();
    for (claimed, actual, name) in [
        (props.sorted, ground.sorted, "sorted"),
        (props.revsorted, ground.revsorted, "revsorted"),
        (props.key, ground.key, "key"),
        (props.nonil, ground.nonil, "nonil"),
    ] {
        if claimed && !actual {
            return Err(format!("inferred '{name}' does not hold"));
        }
    }
    if let (Some(bound), Some(actual)) = (&props.min, &ground.min) {
        if lt(actual, bound) {
            return Err(format!("value {actual} below inferred min {bound}"));
        }
    }
    if let (Some(bound), Some(actual)) = (&props.max, &ground.max) {
        if lt(bound, actual) {
            return Err(format!("value {actual} above inferred max {bound}"));
        }
    }
    // runtime-tagged props must be honest as well
    let rt = bat.props();
    for (claimed, actual, name) in [
        (rt.sorted, ground.sorted, "sorted"),
        (rt.revsorted, ground.revsorted, "revsorted"),
        (rt.nonil, ground.nonil, "nonil"),
        (
            rt.key && (ground.sorted || ground.revsorted),
            ground.key,
            "key",
        ),
    ] {
        if claimed && !actual {
            return Err(format!("runtime props claim '{name}' but it does not hold"));
        }
    }
    for (tag, truth, name) in [(&rt.min, &ground.min, "min"), (&rt.max, &ground.max, "max")] {
        if let (Some(t), Some(g)) = (tag, truth) {
            if cmp_vals(t, g) != Some(Ordering::Equal) {
                return Err(format!("runtime {name} {t} disagrees with actual {g}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use mammoth_storage::Table;
    use mammoth_types::{ColumnDef, TableSchema};

    fn catalog_sorted() -> Catalog {
        let mut cat = Catalog::new();
        let t = Table::from_bats(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("s", LogicalType::I64),
                    ColumnDef::new("r", LogicalType::I64),
                ],
            ),
            vec![
                Bat::from_vec((0..100i64).collect::<Vec<_>>()),
                Bat::from_vec((0..100i64).map(|i| (i * 37) % 100).collect::<Vec<_>>()),
            ],
        )
        .unwrap();
        cat.create_table(t).unwrap();
        cat
    }

    fn bind(p: &mut Program, t: &str, c: &str) -> VarId {
        p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str(t.into())),
                Arg::Const(Value::Str(c.into())),
            ],
        )[0]
    }

    #[test]
    fn bind_seeds_exact_column_facts() {
        let cat = catalog_sorted();
        let mut p = Program::new();
        let s = bind(&mut p, "t", "s");
        p.push_result(&[s]);
        let a = analyze_with_catalog(&p, &cat).unwrap();
        let props = a.props_of(s).unwrap();
        assert_eq!((props.card_lo, props.card_hi), (100, Some(100)));
        assert!(props.sorted && props.key && props.nonil && props.void_head);
        assert_eq!(props.min, Some(Value::I64(0)));
        assert_eq!(props.max, Some(Value::I64(99)));
    }

    #[test]
    fn select_verdicts_and_candidate_interval() {
        let cat = catalog_sorted();
        let mut p = Program::new();
        let s = bind(&mut p, "t", "s");
        let all = p.push(
            OpCode::ThetaSelect(CmpOp::Lt),
            vec![Arg::Var(s), Arg::Const(Value::I64(1000))],
        )[0];
        let none = p.push(
            OpCode::ThetaSelect(CmpOp::Gt),
            vec![Arg::Var(s), Arg::Const(Value::I64(1000))],
        )[0];
        p.push_result(&[all, none]);
        let a = analyze_with_catalog(&p, &cat).unwrap();
        let pa = a.props_of(all).unwrap();
        assert_eq!((pa.card_lo, pa.card_hi), (100, Some(100)));
        assert!(pa.sorted && pa.key && pa.nonil);
        assert_eq!(pa.min, Some(Value::Oid(0)));
        assert_eq!(pa.max, Some(Value::Oid(99)));
        let pn = a.props_of(none).unwrap();
        assert_eq!(pn.card_hi, Some(0));
    }

    #[test]
    fn projection_and_calc_transfer() {
        let cat = catalog_sorted();
        let mut p = Program::new();
        let s = bind(&mut p, "t", "s");
        let c = p.push(
            OpCode::ThetaSelect(CmpOp::Lt),
            vec![Arg::Var(s), Arg::Const(Value::I64(50))],
        )[0];
        let v = p.push(OpCode::Projection, vec![Arg::Var(c), Arg::Var(s)])[0];
        let w = p.push(
            OpCode::Calc(ArithOp::Mul),
            vec![Arg::Var(v), Arg::Const(Value::I64(-2))],
        )[0];
        p.push_result(&[w]);
        let a = analyze_with_catalog(&p, &cat).unwrap();
        let pv = a.props_of(v).unwrap();
        assert!(pv.sorted && pv.key && pv.nonil);
        assert_eq!(pv.min, Some(Value::I64(0)));
        let pw = a.props_of(w).unwrap();
        assert!(pw.revsorted && !pw.sorted && pw.nonil && pw.key);
        assert_eq!(pw.min, Some(Value::I64(-198)));
        assert_eq!(pw.max, Some(Value::I64(0)));
    }

    #[test]
    fn calc_without_overflow_proof_stays_top() {
        let cat = catalog_sorted();
        let mut p = Program::new();
        let s = bind(&mut p, "t", "s");
        let w = p.push(
            OpCode::Calc(ArithOp::Add),
            vec![Arg::Var(s), Arg::Const(Value::I64(i64::MAX))],
        )[0];
        p.push_result(&[w]);
        let a = analyze_with_catalog(&p, &cat).unwrap();
        let pw = a.props_of(w).unwrap();
        assert!(!pw.sorted && pw.min.is_none(), "wrap risk must drop facts");
        assert_eq!(pw.card_hi, Some(100), "cardinality still exact");
    }

    #[test]
    fn pack_of_fragments_restores_parent_facts() {
        let cat = catalog_sorted();
        let mut p = Program::new();
        let s = bind(&mut p, "t", "s");
        let mut parts = Vec::new();
        for i in 0..3i64 {
            parts.push(
                p.push(
                    OpCode::PartSlice,
                    vec![
                        Arg::Var(s),
                        Arg::Const(Value::I64(i)),
                        Arg::Const(Value::I64(3)),
                    ],
                )[0],
            );
        }
        let packed = p.push(OpCode::Pack, parts.iter().map(|&v| Arg::Var(v)).collect())[0];
        p.push_result(&[packed]);
        let a = analyze_with_catalog(&p, &cat).unwrap();
        // fragments keep order facts and the absolute seqbase
        let f1 = a.bat_facts(parts[1]).unwrap();
        assert!(f1.props.sorted && f1.props.nonil);
        assert_eq!(f1.seqbase, Some(33));
        assert_eq!((f1.props.card_lo, f1.props.card_hi), (33, Some(33)));
        // and the pack is the parent again
        assert_eq!(a.bat_facts(packed).unwrap(), a.bat_facts(s).unwrap());
    }

    #[test]
    fn pack_of_unrelated_sorted_parts_needs_boundary_proof() {
        // two selects over the same sorted column: candidate oid intervals
        // overlap, so sortedness of the pack must NOT be claimed... unless
        // the boundary fact holds. Build a case where it provably holds.
        let cat = catalog_sorted();
        let mut p = Program::new();
        let s = bind(&mut p, "t", "s");
        let a1 = p.push(
            OpCode::ThetaSelect(CmpOp::Lt),
            vec![Arg::Var(s), Arg::Const(Value::I64(10))],
        )[0];
        let a2 = p.push(
            OpCode::ThetaSelect(CmpOp::Ge),
            vec![Arg::Var(s), Arg::Const(Value::I64(10))],
        )[0];
        let packed = p.push(OpCode::Pack, vec![Arg::Var(a1), Arg::Var(a2)])[0];
        p.push_result(&[packed]);
        let a = analyze_with_catalog(&p, &cat).unwrap();
        let pp = a.props_of(packed).unwrap();
        // both candidate intervals are [0,99]: boundary unprovable
        assert!(!pp.sorted);
        assert!(pp.nonil);
        assert_eq!(pp.card_hi, Some(200));
        assert_eq!(pp.min, Some(Value::Oid(0)));
        assert_eq!(pp.max, Some(Value::Oid(99)));
    }

    #[test]
    fn setprops_claims_must_be_confirmed() {
        let cat = catalog_sorted();
        let mut p = Program::new();
        let r = bind(&mut p, "t", "r"); // NOT sorted
        let sp = p.push(
            OpCode::SetProps,
            vec![Arg::Var(r), Arg::Const(Value::Str("sorted".into()))],
        )[0];
        p.push_result(&[sp]);
        let err = analyze_with_catalog(&p, &cat).unwrap_err();
        assert!(err.message.contains("sorted"), "{err}");
        // a confirmable claim passes and carries the facts through
        let mut p2 = Program::new();
        let s = bind(&mut p2, "t", "s");
        let sp2 = p2.push(
            OpCode::SetProps,
            vec![Arg::Var(s), Arg::Const(Value::Str("sorted,nonil".into()))],
        )[0];
        p2.push_result(&[sp2]);
        let a = analyze_with_catalog(&p2, &cat).unwrap();
        assert!(a.props_of(sp2).unwrap().sorted);
    }

    #[test]
    fn check_bat_validates_and_rejects() {
        let b = Bat::from_vec(vec![1i64, 2, 3]);
        let mut good = Props::top().with_card(3);
        good.sorted = true;
        good.nonil = true;
        good.min = Some(Value::I64(0));
        good.max = Some(Value::I64(10));
        good.void_head = true;
        check_bat(&good, &b).unwrap();
        let mut bad = good.clone();
        bad.revsorted = true;
        assert!(check_bat(&bad, &b).is_err());
        let mut tight = good.clone();
        tight.max = Some(Value::I64(2));
        assert!(check_bat(&tight, &b).is_err());
        let mut count = good;
        count.card_lo = 4;
        assert!(check_bat(&count, &b).is_err());
    }

    #[test]
    fn unknown_ops_and_malformed_args_degrade_to_top() {
        let mut p = Program::new();
        // join of two unknown binds: Top-ish but still nonil positions
        let a = bind(&mut p, "t", "x");
        let b = bind(&mut p, "u", "y");
        let j = p.push(OpCode::Join, vec![Arg::Var(a), Arg::Var(b)]);
        p.push_result(&[j[0]]);
        let an = analyze(&p).unwrap();
        let pj = an.props_of(j[0]).unwrap();
        assert!(!pj.sorted && pj.card_hi.is_none() && pj.nonil);
    }

    #[test]
    fn display_is_stable() {
        let mut p = Props::top().with_card(42);
        p.sorted = true;
        p.nonil = true;
        p.void_head = true;
        p.min = Some(Value::I64(-3));
        p.max = Some(Value::I64(7));
        assert_eq!(p.to_string(), "rows=42 vals=[-3, 7] sorted nonil dense");
        assert_eq!(Props::top().to_string(), "rows=0..");
    }
}
