//! Static analysis over MAL plans: the plan verifier and liveness.
//!
//! This is the optimizer's safety tier. [`verify`] checks any [`Program`]
//! for SSA discipline, opcode arity, BAT/scalar kinds, column types and
//! plan structure; [`liveness::analyze`] computes last-use information that
//! the interpreter and the `garbage_collect` pass use to release
//! intermediates eagerly. [`crate::optimizer::Pipeline`] re-verifies the
//! plan after every pass (always in debug builds, opt-in via
//! [`crate::optimizer::Pipeline::checked`] in release builds), so a buggy
//! rewrite is pinned to the pass that introduced it.
//!
//! [`Program`]: crate::program::Program

pub mod liveness;
pub mod props;
pub mod verify;

pub use liveness::{analyze as analyze_liveness, Liveness};
pub use props::{
    analyze_with_catalog as analyze_props, analyze_with_facts as analyze_props_with_facts,
    check_bat, check_props_enabled, column_facts, column_facts_with_zonemaps, Analysis,
    ColumnFacts as PropFacts, Props, PropsError, CHECK_PROPS_ENV,
};
pub use verify::{lint, verify, verify_with_catalog, Lint, VarTy, VerifyError, VerifyErrorKind};
