//! Static analysis over MAL plans: the plan verifier and liveness.
//!
//! This is the optimizer's safety tier. [`verify`] checks any [`Program`]
//! for SSA discipline, opcode arity, BAT/scalar kinds, column types and
//! plan structure; [`liveness::analyze`] computes last-use information that
//! the interpreter and the `garbage_collect` pass use to release
//! intermediates eagerly. [`crate::optimizer::Pipeline`] re-verifies the
//! plan after every pass (always in debug builds, opt-in via
//! [`crate::optimizer::Pipeline::checked`] in release builds), so a buggy
//! rewrite is pinned to the pass that introduced it.
//!
//! [`Program`]: crate::program::Program

pub mod liveness;
pub mod verify;

pub use liveness::{analyze as analyze_liveness, Liveness};
pub use verify::{lint, verify, verify_with_catalog, Lint, VarTy, VerifyError, VerifyErrorKind};
