//! MAL program representation.

use mammoth_algebra::{AggKind, ArithOp, CmpOp};
use mammoth_storage::Bat;
use mammoth_types::Value;
use std::fmt;
use std::sync::Arc;

/// A MAL variable id.
pub type VarId = usize;

/// A runtime value: a BAT or a scalar. BATs are shared so a recycler hit
/// costs a pointer copy, exactly like MonetDB's reference-counted BATs.
#[derive(Debug, Clone)]
pub enum MalValue {
    Bat(Arc<Bat>),
    Scalar(Value),
}

impl MalValue {
    pub fn as_bat(&self) -> Option<&Arc<Bat>> {
        match self {
            MalValue::Bat(b) => Some(b),
            MalValue::Scalar(_) => None,
        }
    }

    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            MalValue::Scalar(v) => Some(v),
            MalValue::Bat(_) => None,
        }
    }
}

/// An instruction argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    Var(VarId),
    Const(Value),
    /// A prepared-statement parameter slot (`?N`), substituted to a
    /// [`Arg::Const`] by the plan cache before execution. The interpreter
    /// rejects plans that still carry one.
    Param(usize),
}

/// The zero-degrees-of-freedom instruction set.
#[derive(Debug, Clone, PartialEq)]
pub enum OpCode {
    /// `sql.bind(table, column)` — materialize a base column (live rows).
    Bind,
    /// `algebra.thetaselect(b, op, const)` — candidates where `tail op c`.
    ThetaSelect(CmpOp),
    /// `algebra.select(b, lo, hi, li, hi_i)` — range candidates. NULL
    /// bounds are open.
    RangeSelect { lo_incl: bool, hi_incl: bool },
    /// `algebra.projection(cands, b)` — positional fetch.
    Projection,
    /// `(l, r) := algebra.join(a, b)` — equi-join producing two aligned
    /// candidate BATs.
    Join,
    /// `(gids, ext) := group.group(b)`.
    Group,
    /// `(gids, ext) := group.refine(gids, b)`.
    GroupRefine,
    /// `aggr.<kind>(b)` — scalar aggregate.
    Aggr(AggKind),
    /// `aggr.sub<kind>(b, gids, ext)` — grouped aggregate (one row per
    /// group; `ext` fixes the group count).
    AggrGrouped(AggKind),
    /// `batcalc.<op>(a, b)` — element-wise arithmetic (b may be a const).
    Calc(ArithOp),
    /// `(sorted, order) := algebra.sort(b)` (optionally descending).
    Sort { desc: bool },
    /// `bat.slice(b, lo, hi)` — positional slice.
    Slice,
    /// `algebra.slice(b, i, k)` — the i-th of k horizontal range
    /// fragments of `b` (the mitosis fragment operator). Void heads keep
    /// their absolute seqbase, so fragments address the same row space as
    /// the parent.
    PartSlice,
    /// `mat.pack(b1, ..., bn)` — concatenate fragments back into one BAT
    /// (the mergetable merge operator). Variadic, at least one argument.
    Pack,
    /// `mat.packsum(s1, ..., sn)` — merge per-fragment partial aggregates:
    /// the nil-skipping sum of its scalar arguments (nil when all inputs
    /// are nil). Variadic, at least one argument.
    PackSum,
    /// `aggr.count(b)` — BAT length as a scalar (counts rows, not nils).
    Count,
    /// `bat.mirror(b)` — dense identity candidates over b.
    Mirror,
    /// `bat.setprops(b, "sorted,nonil")` — runtime identity carrying an
    /// explicit property annotation. The property analysis must confirm
    /// every claimed flag; the interpreter tags the BAT's runtime props so
    /// downstream operators (binary-search range selection) can exploit
    /// them.
    SetProps,
    /// `io.result(b, ...)` — mark outputs (side effect; ends the plan).
    Result,
    /// `language.pass(v)` — end-of-life marker: the variable's value is
    /// released and may not be referenced afterwards (MonetDB's
    /// garbage-collection hint, emitted by the `garbage_collect` pass).
    Free,
}

impl OpCode {
    /// Number of results the instruction binds.
    pub fn result_arity(&self) -> usize {
        match self {
            OpCode::Join | OpCode::Group | OpCode::GroupRefine | OpCode::Sort { .. } => 2,
            OpCode::Result | OpCode::Free => 0,
            _ => 1,
        }
    }

    /// The MonetDB-style `module.function` name.
    pub fn name(&self) -> String {
        match self {
            OpCode::Bind => "sql.bind".into(),
            OpCode::ThetaSelect(op) => format!("algebra.thetaselect[{}]", cmp_name(*op)),
            OpCode::RangeSelect { .. } => "algebra.select".into(),
            OpCode::Projection => "algebra.projection".into(),
            OpCode::Join => "algebra.join".into(),
            OpCode::Group => "group.group".into(),
            OpCode::GroupRefine => "group.refine".into(),
            OpCode::Aggr(k) => format!("aggr.{}", agg_name(*k)),
            OpCode::AggrGrouped(k) => format!("aggr.sub{}", agg_name(*k)),
            OpCode::Calc(op) => format!("batcalc.{}", arith_name(*op)),
            OpCode::Sort { desc: false } => "algebra.sort".into(),
            OpCode::Sort { desc: true } => "algebra.sort[desc]".into(),
            OpCode::Slice => "bat.slice".into(),
            OpCode::PartSlice => "algebra.slice".into(),
            OpCode::Pack => "mat.pack".into(),
            OpCode::PackSum => "mat.packsum".into(),
            OpCode::Count => "aggr.count".into(),
            OpCode::Mirror => "bat.mirror".into(),
            OpCode::SetProps => "bat.setprops".into(),
            OpCode::Result => "io.result".into(),
            OpCode::Free => "language.pass".into(),
        }
    }

    /// Instructions without side effects whose unused results may be
    /// removed, and whose results are recyclable.
    pub fn is_pure(&self) -> bool {
        !matches!(self, OpCode::Result | OpCode::Free)
    }
}

pub(crate) fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

pub(crate) fn agg_name(k: AggKind) -> &'static str {
    match k {
        AggKind::Count => "count_nonnil",
        AggKind::Sum => "sum",
        AggKind::Min => "min",
        AggKind::Max => "max",
        AggKind::Avg => "avg",
    }
}

pub(crate) fn arith_name(op: ArithOp) -> &'static str {
    match op {
        ArithOp::Add => "+",
        ArithOp::Sub => "-",
        ArithOp::Mul => "*",
        ArithOp::Div => "/",
        ArithOp::Mod => "%",
    }
}

/// One MAL instruction: `results := op(args)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    pub results: Vec<VarId>,
    pub op: OpCode,
    pub args: Vec<Arg>,
}

impl Instr {
    /// The argument list in the program's textual form (`x3, 1927`) — the
    /// profiler records this per event so traces read like the plan.
    pub fn render_args(&self) -> String {
        let mut out = String::new();
        for (k, a) in self.args.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            match a {
                Arg::Var(v) => out.push_str(&format!("x{v}")),
                Arg::Const(Value::Str(s)) => out.push_str(&format!("{s:?}")),
                Arg::Const(c) => out.push_str(&format!("{c}")),
                Arg::Param(n) => out.push_str(&format!("?{n}")),
            }
        }
        out
    }
}

/// A MAL program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    pub instrs: Vec<Instr>,
    nvars: usize,
}

impl Program {
    pub fn new() -> Program {
        Program::default()
    }

    /// Allocate a fresh variable.
    pub fn var(&mut self) -> VarId {
        self.nvars += 1;
        self.nvars - 1
    }

    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Reserve ids up to `n` (used by the parser).
    pub fn ensure_vars(&mut self, n: usize) {
        self.nvars = self.nvars.max(n);
    }

    /// Append `results := op(args)` with fresh result vars; returns them.
    pub fn push(&mut self, op: OpCode, args: Vec<Arg>) -> Vec<VarId> {
        let results: Vec<VarId> = (0..op.result_arity()).map(|_| self.var()).collect();
        self.instrs.push(Instr {
            results: results.clone(),
            op,
            args,
        });
        results
    }

    /// Append an `io.result` marking the output variables.
    pub fn push_result(&mut self, vars: &[VarId]) {
        self.instrs.push(Instr {
            results: vec![],
            op: OpCode::Result,
            args: vars.iter().map(|&v| Arg::Var(v)).collect(),
        });
    }

    /// The variables marked as outputs.
    pub fn outputs(&self) -> Vec<VarId> {
        self.instrs
            .iter()
            .filter(|i| i.op == OpCode::Result)
            .flat_map(|i| {
                i.args.iter().filter_map(|a| match a {
                    Arg::Var(v) => Some(*v),
                    Arg::Const(_) | Arg::Param(_) => None,
                })
            })
            .collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in &self.instrs {
            match i.results.len() {
                0 => {}
                1 => write!(f, "x{} := ", i.results[0])?,
                _ => {
                    write!(f, "(")?;
                    for (k, r) in i.results.iter().enumerate() {
                        if k > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "x{r}")?;
                    }
                    write!(f, ") := ")?;
                }
            }
            writeln!(f, "{}({});", i.op.name(), i.render_args())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut p = Program::new();
        let [b] = p.push(
            OpCode::Bind,
            vec![
                Arg::Const(Value::Str("people".into())),
                Arg::Const(Value::Str("age".into())),
            ],
        )[..] else {
            panic!()
        };
        let [c] = p.push(
            OpCode::ThetaSelect(CmpOp::Eq),
            vec![Arg::Var(b), Arg::Const(Value::I32(1927))],
        )[..] else {
            panic!()
        };
        p.push_result(&[c]);
        let text = p.to_string();
        assert!(text.contains("x0 := sql.bind(\"people\", \"age\");"));
        assert!(text.contains("x1 := algebra.thetaselect[==](x0, 1927);"));
        assert!(text.contains("io.result(x1);"));
        assert_eq!(p.outputs(), vec![c]);
    }

    #[test]
    fn multi_result_instr() {
        let mut p = Program::new();
        let a = p.var();
        let b = p.var();
        let rs = p.push(OpCode::Join, vec![Arg::Var(a), Arg::Var(b)]);
        assert_eq!(rs.len(), 2);
        assert!(p.to_string().contains(") := algebra.join("));
    }

    #[test]
    fn purity() {
        assert!(OpCode::Bind.is_pure());
        assert!(!OpCode::Result.is_pure());
        assert_eq!(OpCode::Result.result_arity(), 0);
        assert_eq!(OpCode::Sort { desc: false }.result_arity(), 2);
    }
}
