//! `malcheck` — lint and verify textual MAL plans.
//!
//! For each `.mal` file: parse it, run the plan verifier, run the property
//! analysis (any `bat.setprops` claim the abstract interpretation cannot
//! confirm rejects the plan), report the liveness profile, then push the
//! plan through the default optimizer pipeline (plus `garbage_collect`)
//! one pass at a time, re-verifying and printing an instruction-count diff
//! after each pass. With `--props`, additionally dump the inferred
//! per-instruction properties (the golden-snapshot surface).
//!
//! ```text
//! malcheck [--expect-error] [--no-pipeline] [--props] <plan.mal>...
//! ```
//!
//! Exits non-zero if any plan fails to parse or verify (or, with
//! `--expect-error`, if any plan unexpectedly verifies — for keeping a
//! corpus of must-be-rejected plans honest).

use mammoth_mal::analysis;
use mammoth_mal::optimizer::{
    CommonSubexpr, ConstantFold, DeadCode, GarbageCollect, OptimizerPass,
};
use mammoth_mal::{parse_program, OpCode, Program};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut expect_error = false;
    let mut run_pipeline = true;
    let mut show_props = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--expect-error" => expect_error = true,
            "--no-pipeline" => run_pipeline = false,
            "--props" => show_props = true,
            "-h" | "--help" => {
                eprintln!(
                    "usage: malcheck [--expect-error] [--no-pipeline] [--props] <plan.mal>..."
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("malcheck: unknown flag {other}");
                return ExitCode::FAILURE;
            }
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: malcheck [--expect-error] [--no-pipeline] [--props] <plan.mal>...");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    for file in &files {
        if !check_file(file, expect_error, run_pipeline, show_props) {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("malcheck: {failures} of {} plan(s) failed", files.len());
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Returns true when the file meets expectations (verifies, or fails to
/// verify under `--expect-error`).
fn check_file(file: &str, expect_error: bool, run_pipeline: bool, show_props: bool) -> bool {
    println!("== {file}");
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            println!("   read error: {e}");
            return false;
        }
    };
    let prog = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            println!("   parse error: {e}");
            // an unparsable plan counts as rejected
            return expect_error;
        }
    };
    println!(
        "   parsed: {} instruction(s), {} variable(s)",
        prog.instrs.len(),
        prog.nvars()
    );

    match analysis::verify(&prog) {
        Err(e) => {
            println!("   verify: FAIL — {e}");
            return expect_error;
        }
        Ok(()) => println!("   verify: ok"),
    }
    // the property walk: a `bat.setprops` claim the analysis cannot
    // confirm (with no catalog, binds carry no statistics) rejects the plan
    let an = match analysis::props::analyze(&prog) {
        Err(e) => {
            println!("   props: FAIL — {e}");
            return expect_error;
        }
        Ok(a) => a,
    };
    if expect_error {
        println!("   expected this plan to be rejected, but it verifies");
        return false;
    }
    if show_props {
        for (idx, instr) in prog.instrs.iter().enumerate() {
            if instr.results.is_empty() {
                continue;
            }
            println!("   props[{idx}]: {}", an.describe_instr(instr));
        }
    }

    let lv = analysis::analyze_liveness(&prog);
    let eol = prog.instrs.iter().filter(|i| i.op == OpCode::Free).count();
    println!(
        "   liveness: peak {} live var(s){}",
        lv.peak_live,
        if eol > 0 {
            format!(", {eol} language.pass marker(s)")
        } else {
            String::new()
        }
    );
    for l in analysis::lint(&prog) {
        println!("   lint: {l}");
    }

    if !run_pipeline {
        return true;
    }
    let passes: Vec<Box<dyn OptimizerPass>> = vec![
        Box::new(ConstantFold),
        Box::new(CommonSubexpr),
        Box::new(DeadCode),
        Box::new(GarbageCollect),
    ];
    let mut cur: Program = prog;
    for pass in &passes {
        let before = cur.instrs.len();
        cur = pass.run(cur);
        let delta = cur.instrs.len() as i64 - before as i64;
        let diff = match delta {
            0 => "±0".to_string(),
            d if d > 0 => format!("+{d}"),
            d => d.to_string(),
        };
        match analysis::verify(&cur) {
            Ok(()) => println!(
                "   pass {:<20} {} -> {} instr(s) ({diff}), verify ok",
                pass.name(),
                before,
                cur.instrs.len()
            ),
            Err(e) => {
                println!("   pass {:<20} verify: FAIL — {e}", pass.name());
                return false;
            }
        }
    }
    true
}
