//! Textual MAL.
//!
//! A small concrete syntax matching [`Program`]'s `Display` output, so
//! programs round-trip. Example:
//!
//! ```text
//! age := sql.bind("people", "age");
//! c := algebra.thetaselect[==](age, 1927);
//! name := sql.bind("people", "name");
//! out := algebra.projection(c, name);
//! io.result(out);
//! ```

use crate::program::{Arg, Instr, OpCode, Program};
use mammoth_algebra::{AggKind, ArithOp, CmpOp};
use mammoth_types::{Error, Result, Value};
use std::collections::HashMap;

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(char),
    Assign, // :=
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse {
            pos: self.pos,
            message: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                b'#' => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn next(&mut self) -> Result<Tok> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Ok(Tok::Eof);
        }
        let c = self.src[self.pos];
        match c {
            b'(' | b')' | b',' | b';' | b'[' | b']' | b'?' => {
                self.pos += 1;
                Ok(Tok::Sym(c as char))
            }
            b':' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Ok(Tok::Assign)
                } else {
                    Err(self.err("expected ':='"))
                }
            }
            b'"' => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos] != b'"' {
                    self.pos += 1;
                }
                if self.pos >= self.src.len() {
                    return Err(self.err("unterminated string"));
                }
                let s = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid utf8"))?
                    .to_string();
                self.pos += 1;
                Ok(Tok::Str(s))
            }
            b'0'..=b'9' | b'-' => {
                let start = self.pos;
                self.pos += 1;
                let mut float = false;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_digit() || self.src[self.pos] == b'.')
                {
                    float |= self.src[self.pos] == b'.';
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                if float {
                    text.parse::<f64>()
                        .map(Tok::Float)
                        .map_err(|_| self.err("bad float literal"))
                } else {
                    text.parse::<i64>()
                        .map(Tok::Int)
                        .map_err(|_| self.err("bad int literal"))
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric()
                        || self.src[self.pos] == b'_'
                        || self.src[self.pos] == b'.')
                {
                    self.pos += 1;
                }
                Ok(Tok::Ident(
                    std::str::from_utf8(&self.src[start..self.pos])
                        .unwrap()
                        .to_string(),
                ))
            }
            // operator names inside thetaselect brackets: ==, !=, <, <=, >, >=
            b'=' | b'!' | b'<' | b'>' | b'+' | b'*' | b'/' | b'%' => {
                let start = self.pos;
                self.pos += 1;
                while self.pos < self.src.len() && matches!(self.src[self.pos], b'=' | b'<' | b'>')
                {
                    self.pos += 1;
                }
                Ok(Tok::Ident(
                    std::str::from_utf8(&self.src[start..self.pos])
                        .unwrap()
                        .to_string(),
                ))
            }
            other => Err(self.err(format!("unexpected character '{}'", other as char))),
        }
    }

    fn peek(&mut self) -> Result<Tok> {
        let save = self.pos;
        let t = self.next();
        self.pos = save;
        t
    }
}

fn cmp_from(s: &str) -> Option<CmpOp> {
    Some(match s {
        "==" => CmpOp::Eq,
        "!=" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        _ => return None,
    })
}

fn arith_from(s: &str) -> Option<ArithOp> {
    Some(match s {
        "+" => ArithOp::Add,
        "-" => ArithOp::Sub,
        "*" => ArithOp::Mul,
        "/" => ArithOp::Div,
        "%" => ArithOp::Mod,
        _ => return None,
    })
}

fn agg_from(s: &str) -> Option<AggKind> {
    Some(match s {
        "sum" => AggKind::Sum,
        "min" => AggKind::Min,
        "max" => AggKind::Max,
        "avg" => AggKind::Avg,
        "count_nonnil" => AggKind::Count,
        _ => return None,
    })
}

/// Parse the textual MAL form into a [`Program`].
pub fn parse_program(src: &str) -> Result<Program> {
    let mut lex = Lexer::new(src);
    let mut prog = Program::new();
    let mut names: HashMap<String, usize> = HashMap::new();

    loop {
        let tok = lex.next()?;
        match tok {
            Tok::Eof => break,
            Tok::Ident(first) => {
                parse_stmt(&mut lex, &mut prog, &mut names, Tok::Ident(first))?;
            }
            Tok::Sym('(') => {
                parse_stmt(&mut lex, &mut prog, &mut names, Tok::Sym('('))?;
            }
            other => {
                return Err(Error::Parse {
                    pos: 0,
                    message: format!("unexpected token {other:?}"),
                })
            }
        }
    }
    Ok(prog)
}

fn get_var(prog: &mut Program, names: &mut HashMap<String, usize>, name: &str) -> usize {
    if let Some(&v) = names.get(name) {
        return v;
    }
    let v = prog.var();
    names.insert(name.to_string(), v);
    v
}

fn parse_stmt(
    lex: &mut Lexer,
    prog: &mut Program,
    names: &mut HashMap<String, usize>,
    first: Tok,
) -> Result<()> {
    // targets
    let mut targets: Vec<String> = Vec::new();
    #[allow(unused_assignments)]
    let mut call_name: Option<String> = None;
    match first {
        Tok::Sym('(') => {
            loop {
                match lex.next()? {
                    Tok::Ident(n) => targets.push(n),
                    t => return Err(lex.err_at(format!("expected target name, got {t:?}"))),
                }
                match lex.next()? {
                    Tok::Sym(',') => continue,
                    Tok::Sym(')') => break,
                    t => return Err(lex.err_at(format!("expected ',' or ')', got {t:?}"))),
                }
            }
            match lex.next()? {
                Tok::Assign => {}
                t => return Err(lex.err_at(format!("expected ':=', got {t:?}"))),
            }
            match lex.next()? {
                Tok::Ident(f) => call_name = Some(f),
                t => return Err(lex.err_at(format!("expected function, got {t:?}"))),
            }
        }
        Tok::Ident(name) => {
            // either `name := call` or a bare call like io.result(...)
            if name.contains('.') {
                call_name = Some(name);
            } else {
                targets.push(name);
                match lex.next()? {
                    Tok::Assign => {}
                    t => return Err(lex.err_at(format!("expected ':=', got {t:?}"))),
                }
                match lex.next()? {
                    Tok::Ident(f) => call_name = Some(f),
                    t => return Err(lex.err_at(format!("expected function, got {t:?}"))),
                }
            }
        }
        t => return Err(lex.err_at(format!("unexpected {t:?}"))),
    }
    let mut fname = call_name.expect("set above");
    // symbol-named functions lex as `batcalc.` followed by the operator
    if fname.ends_with('.') {
        match lex.next()? {
            Tok::Ident(op) => fname.push_str(&op),
            t => return Err(lex.err_at(format!("expected operator after '{fname}', got {t:?}"))),
        }
    }

    // optional [op] suffix
    let mut bracket_op: Option<String> = None;
    if lex.peek()? == Tok::Sym('[') {
        lex.next()?;
        match lex.next()? {
            Tok::Ident(op) => bracket_op = Some(op),
            t => return Err(lex.err_at(format!("expected operator, got {t:?}"))),
        }
        match lex.next()? {
            Tok::Sym(']') => {}
            t => return Err(lex.err_at(format!("expected ']', got {t:?}"))),
        }
    }

    // argument list
    match lex.next()? {
        Tok::Sym('(') => {}
        t => return Err(lex.err_at(format!("expected '(', got {t:?}"))),
    }
    let mut args: Vec<Arg> = Vec::new();
    if lex.peek()? == Tok::Sym(')') {
        lex.next()?;
    } else {
        loop {
            let a = match lex.next()? {
                Tok::Ident(n) if n == "nil" => Arg::Const(Value::Null),
                Tok::Ident(n) if n == "true" => Arg::Const(Value::Bool(true)),
                Tok::Ident(n) if n == "false" => Arg::Const(Value::Bool(false)),
                Tok::Ident(n) => Arg::Var(get_var(prog, names, &n)),
                Tok::Int(x) => Arg::Const(if i32::try_from(x).is_ok() {
                    Value::I32(x as i32)
                } else {
                    Value::I64(x)
                }),
                Tok::Float(f) => Arg::Const(Value::F64(f)),
                Tok::Str(s) => Arg::Const(Value::Str(s)),
                // `?N` — a prepared-statement parameter slot
                Tok::Sym('?') => match lex.next()? {
                    Tok::Int(n) if n >= 0 => Arg::Param(n as usize),
                    t => return Err(lex.err_at(format!("expected parameter index, got {t:?}"))),
                },
                t => return Err(lex.err_at(format!("bad argument {t:?}"))),
            };
            args.push(a);
            match lex.next()? {
                Tok::Sym(',') => continue,
                Tok::Sym(')') => break,
                t => return Err(lex.err_at(format!("expected ',' or ')', got {t:?}"))),
            }
        }
    }
    match lex.next()? {
        Tok::Sym(';') => {}
        t => return Err(lex.err_at(format!("expected ';', got {t:?}"))),
    }

    // resolve the opcode
    let op = match fname.as_str() {
        "sql.bind" => OpCode::Bind,
        "algebra.thetaselect" => {
            let op = bracket_op
                .as_deref()
                .and_then(cmp_from)
                .ok_or_else(|| lex.err_at("thetaselect needs [op]".to_string()))?;
            OpCode::ThetaSelect(op)
        }
        "algebra.select" => {
            // last two args are the inclusivity booleans
            let hi_incl = pop_bool(&mut args).ok_or_else(|| {
                lex.err_at("algebra.select needs inclusivity booleans".to_string())
            })?;
            let lo_incl = pop_bool(&mut args).ok_or_else(|| {
                lex.err_at("algebra.select needs inclusivity booleans".to_string())
            })?;
            OpCode::RangeSelect { lo_incl, hi_incl }
        }
        "algebra.projection" => OpCode::Projection,
        "algebra.join" => OpCode::Join,
        "group.group" => OpCode::Group,
        "group.refine" => OpCode::GroupRefine,
        "algebra.sort" => OpCode::Sort {
            desc: bracket_op.as_deref() == Some("desc"),
        },
        "bat.slice" => OpCode::Slice,
        "algebra.slice" => OpCode::PartSlice,
        "mat.pack" => OpCode::Pack,
        "mat.packsum" => OpCode::PackSum,
        "bat.mirror" => OpCode::Mirror,
        "bat.setprops" => OpCode::SetProps,
        "aggr.count" => OpCode::Count,
        "io.result" => OpCode::Result,
        "language.pass" => OpCode::Free,
        name if name.starts_with("aggr.sub") => {
            let k = agg_from(&name["aggr.sub".len()..])
                .ok_or_else(|| lex.err_at(format!("unknown aggregate {name}")))?;
            OpCode::AggrGrouped(k)
        }
        name if name.starts_with("aggr.") => {
            let k = agg_from(&name["aggr.".len()..])
                .ok_or_else(|| lex.err_at(format!("unknown aggregate {name}")))?;
            OpCode::Aggr(k)
        }
        "batcalc" => {
            let op = bracket_op
                .as_deref()
                .and_then(arith_from)
                .ok_or_else(|| lex.err_at("batcalc needs [op]".to_string()))?;
            OpCode::Calc(op)
        }
        other => {
            // batcalc.+ parses as ident "batcalc." followed by op token;
            // accept the dotted form too
            if let Some(rest) = other.strip_prefix("batcalc.") {
                if let Some(op) = arith_from(rest) {
                    OpCode::Calc(op)
                } else {
                    return Err(lex.err_at(format!("unknown function {other}")));
                }
            } else {
                return Err(lex.err_at(format!("unknown function {other}")));
            }
        }
    };

    if op.result_arity() != targets.len() {
        return Err(lex.err_at(format!(
            "{} binds {} results, {} given",
            op.name(),
            op.result_arity(),
            targets.len()
        )));
    }
    let results: Vec<usize> = targets.iter().map(|t| get_var(prog, names, t)).collect();
    prog.instrs.push(Instr { results, op, args });
    Ok(())
}

fn pop_bool(args: &mut Vec<Arg>) -> Option<bool> {
    match args.pop()? {
        Arg::Const(Value::Bool(b)) => Some(b),
        _ => None,
    }
}

impl Lexer<'_> {
    fn err_at(&self, message: String) -> Error {
        Error::Parse {
            pos: self.pos,
            message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_program() {
        let src = r#"
            # Figure 1: who was born in 1927?
            age := sql.bind("people", "age");
            c := algebra.thetaselect[==](age, 1927);
            name := sql.bind("people", "name");
            out := algebra.projection(c, name);
            io.result(out);
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.instrs.len(), 5);
        assert_eq!(p.instrs[0].op, OpCode::Bind);
        assert!(matches!(p.instrs[1].op, OpCode::ThetaSelect(CmpOp::Eq)));
        assert_eq!(p.outputs().len(), 1);
    }

    #[test]
    fn parses_multi_result_and_aggregates() {
        let src = r#"
            a := sql.bind("t", "a");
            (g, e) := group.group(a);
            s := aggr.subsum(a, g, e);
            total := aggr.sum(a);
            io.result(s, total);
        "#;
        let p = parse_program(src).unwrap();
        assert!(matches!(p.instrs[1].op, OpCode::Group));
        assert_eq!(p.instrs[1].results.len(), 2);
        assert!(matches!(p.instrs[2].op, OpCode::AggrGrouped(AggKind::Sum)));
        assert!(matches!(p.instrs[3].op, OpCode::Aggr(AggKind::Sum)));
    }

    #[test]
    fn parses_range_select_and_calc() {
        let src = r#"
            a := sql.bind("t", "a");
            r := algebra.select(a, 10, 20, true, false);
            d := batcalc.*(r, 2);
            io.result(d);
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(
            p.instrs[1].op,
            OpCode::RangeSelect {
                lo_incl: true,
                hi_incl: false
            }
        );
        assert_eq!(p.instrs[1].args.len(), 3);
        assert!(matches!(p.instrs[2].op, OpCode::Calc(ArithOp::Mul)));
    }

    #[test]
    fn roundtrips_through_display() {
        let src = r#"
            age := sql.bind("people", "age");
            c := algebra.thetaselect[==](age, 1927);
            io.result(c);
        "#;
        let p = parse_program(src).unwrap();
        let text = p.to_string();
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p.instrs.len(), p2.instrs.len());
        for (a, b) in p.instrs.iter().zip(&p2.instrs) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.args.len(), b.args.len());
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_program("x := unknown.fn(y);").is_err());
        assert!(parse_program("x := sql.bind(\"unterminated;").is_err());
        assert!(parse_program("x := algebra.thetaselect(a, 1);").is_err());
        assert!(parse_program("(a) := algebra.join(x, y);").is_err()); // arity
        assert!(parse_program("x := sql.bind(\"t\", \"c\")").is_err()); // no ;
    }

    #[test]
    fn parses_language_pass() {
        let src = r#"
            a := sql.bind("t", "a");
            c := algebra.thetaselect[>](a, 5);
            language.pass(a);
            io.result(c);
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.instrs[2].op, OpCode::Free);
        assert!(p.instrs[2].results.is_empty());
        assert_eq!(p.instrs[2].args, vec![Arg::Var(p.instrs[0].results[0])]);
        // round-trips through Display
        let p2 = parse_program(&p.to_string()).unwrap();
        assert_eq!(p2.instrs[2].op, OpCode::Free);
    }

    #[test]
    fn literals() {
        let p =
            parse_program("x := algebra.select(y, nil, 3000000000, true, true);\nio.result(x);")
                .unwrap();
        assert_eq!(p.instrs[0].args[1], Arg::Const(Value::Null));
        assert_eq!(p.instrs[0].args[2], Arg::Const(Value::I64(3000000000)));
    }
}
