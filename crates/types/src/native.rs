//! The bridge between Rust native types and the engine's logical types.

use crate::oid::{Oid, OID_NIL};
use crate::value::{LogicalType, Value};

/// A fixed-width Rust type that can live directly in a column heap.
///
/// Implementors are plain-old-data: a column of `T: NativeType` is stored as
/// a `Vec<T>` and persisted by copying the raw bytes. Each type designates an
/// in-domain `NIL` sentinel, mirroring MonetDB's nil representation, so no
/// validity bitmap is needed.
pub trait NativeType: Copy + PartialEq + PartialOrd + Send + Sync + 'static {
    /// The logical type this native type backs.
    const LOGICAL: LogicalType;
    /// The in-domain sentinel representing NULL.
    const NIL: Self;

    /// Is this value the nil sentinel? (Needed because `NaN != NaN`.)
    fn is_nil(&self) -> bool {
        *self == Self::NIL
    }

    /// Wrap into a dynamic [`Value`].
    fn to_value(&self) -> Value;

    /// Extract from a dynamic [`Value`]; `None` on type or nil mismatch.
    fn from_value(v: &Value) -> Option<Self>;

    /// A total order usable for sorting: nil sorts first, NaN handled.
    fn nil_cmp(&self, other: &Self) -> std::cmp::Ordering;

    /// Raw bytes for persistence.
    fn write_le(&self, out: &mut Vec<u8>);
    /// Parse back from persisted little-endian bytes.
    fn read_le(buf: &[u8]) -> Self;
    /// Width in bytes on disk and in memory.
    const WIDTH: usize = std::mem::size_of::<Self>();
}

macro_rules! impl_native_int {
    ($t:ty, $logical:expr, $nil:expr, $variant:ident) => {
        impl NativeType for $t {
            const LOGICAL: LogicalType = $logical;
            const NIL: Self = $nil;

            fn to_value(&self) -> Value {
                if self.is_nil() {
                    Value::Null
                } else {
                    Value::$variant(*self)
                }
            }

            fn from_value(v: &Value) -> Option<Self> {
                match v {
                    Value::Null => Some(Self::NIL),
                    Value::$variant(x) => Some(*x),
                    _ => None,
                }
            }

            fn nil_cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.cmp(other)
            }

            fn write_le(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn read_le(buf: &[u8]) -> Self {
                let mut b = [0u8; std::mem::size_of::<Self>()];
                b.copy_from_slice(&buf[..std::mem::size_of::<Self>()]);
                Self::from_le_bytes(b)
            }
        }
    };
}

impl_native_int!(i8, LogicalType::I8, i8::MIN, I8);
impl_native_int!(i16, LogicalType::I16, i16::MIN, I16);
impl_native_int!(i32, LogicalType::I32, i32::MIN, I32);
impl_native_int!(i64, LogicalType::I64, i64::MIN, I64);

impl NativeType for Oid {
    const LOGICAL: LogicalType = LogicalType::Oid;
    const NIL: Self = OID_NIL;

    fn to_value(&self) -> Value {
        if self.is_nil() {
            Value::Null
        } else {
            Value::Oid(*self)
        }
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Null => Some(Self::NIL),
            Value::Oid(x) => Some(*x),
            _ => None,
        }
    }

    fn nil_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp(other)
    }

    fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_le(buf: &[u8]) -> Self {
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[..8]);
        Self::from_le_bytes(b)
    }
}

impl NativeType for f64 {
    const LOGICAL: LogicalType = LogicalType::F64;
    // MonetDB uses NaN-like nil for floats; we use a specific quiet NaN so
    // `is_nil` can distinguish it from computational NaN via bit pattern.
    const NIL: Self = f64::NAN;

    fn is_nil(&self) -> bool {
        self.is_nan()
    }

    fn to_value(&self) -> Value {
        if self.is_nan() {
            Value::Null
        } else {
            Value::F64(*self)
        }
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Null => Some(f64::NAN),
            Value::F64(x) => Some(*x),
            Value::I32(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            _ => None,
        }
    }

    fn nil_cmp(&self, other: &Self) -> std::cmp::Ordering {
        // nil (NaN) sorts first to match integer NIL = MIN.
        match (self.is_nan(), other.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => self.partial_cmp(other).unwrap(),
        }
    }

    fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_le(buf: &[u8]) -> Self {
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[..8]);
        Self::from_le_bytes(b)
    }
}

impl NativeType for bool {
    const LOGICAL: LogicalType = LogicalType::Bool;
    // bool has no spare value; nil-ness for bool columns is handled at the
    // Value layer. `NIL = false` keeps the trait total but `is_nil` is never
    // true for bool.
    const NIL: Self = false;

    fn is_nil(&self) -> bool {
        false
    }

    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Bool(x) => Some(*x),
            _ => None,
        }
    }

    fn nil_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp(other)
    }

    fn write_le(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }

    fn read_le(buf: &[u8]) -> Self {
        buf[0] != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_nil_roundtrip() {
        assert!(i32::MIN.is_nil());
        assert_eq!(i32::from_value(&Value::Null), Some(i32::MIN));
        assert_eq!(i32::MIN.to_value(), Value::Null);
        assert_eq!(5i32.to_value(), Value::I32(5));
        assert_eq!(i64::from_value(&Value::I64(-3)), Some(-3));
    }

    #[test]
    fn float_nil_is_nan() {
        assert!(f64::NIL.is_nil());
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert_eq!(2.5f64.to_value(), Value::F64(2.5));
        // nil sorts first
        assert_eq!(f64::NAN.nil_cmp(&1.0), std::cmp::Ordering::Less);
    }

    #[test]
    fn le_roundtrip_all_widths() {
        fn rt<T: NativeType + std::fmt::Debug>(v: T) {
            let mut buf = Vec::new();
            v.write_le(&mut buf);
            assert_eq!(buf.len(), T::WIDTH);
            let back = T::read_le(&buf);
            assert_eq!(back.nil_cmp(&v), std::cmp::Ordering::Equal);
        }
        rt(42i8);
        rt(-1234i16);
        rt(123456i32);
        rt(-98765432101i64);
        rt(3.25f64);
        rt(true);
        rt(77u64 as Oid);
    }

    #[test]
    fn oid_nil() {
        assert!(OID_NIL.is_nil());
        assert_eq!(OID_NIL.to_value(), Value::Null);
        assert_eq!(Oid::from_value(&Value::Oid(3)), Some(3));
    }

    #[test]
    fn cross_type_from_value_fails() {
        assert_eq!(i32::from_value(&Value::I64(1)), None);
        assert_eq!(bool::from_value(&Value::I32(1)), None);
        // f64 accepts integer widening (useful for SQL literals)
        assert_eq!(f64::from_value(&Value::I32(2)), Some(2.0));
    }
}
