//! `tracecheck` — validate MAMMOTH_TRACE files.
//!
//! For each file: parse every line as a trace record and check it against
//! the JSON-lines schema (exact key sets, value types, non-negative
//! counters). Reports the run/event counts per file.
//!
//! ```text
//! tracecheck <trace.jsonl>...
//! ```
//!
//! Exits non-zero if any file fails to validate — schema drift in the
//! profiler shows up here (and in CI) as a hard error, not a silently
//! changed field.

use mammoth_types::validate_trace;
use std::process::ExitCode;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() || files.iter().any(|f| f == "-h" || f == "--help") {
        eprintln!("usage: tracecheck <trace.jsonl>...");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    for file in &files {
        println!("== {file}");
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                println!("   read error: {e}");
                failures += 1;
                continue;
            }
        };
        match validate_trace(&text) {
            Ok((runs, events)) => {
                println!("   ok: {runs} run(s), {events} event(s)");
            }
            Err(e) => {
                println!("   schema error: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("tracecheck: {failures} of {} file(s) failed", files.len());
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
