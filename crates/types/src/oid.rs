//! Object identifiers.
//!
//! MonetDB's BATs pair every value with a surrogate *oid*. In the common
//! case the head column is a densely ascending oid sequence starting at some
//! *seqbase*, which is then not stored at all (a "void" column) and lookups
//! become O(1) array reads.

/// A surrogate object identifier (MonetDB `oid`).
///
/// A plain integer alias (not a newtype) so that positional arithmetic in
/// operator inner loops stays free of wrapper noise.
pub type Oid = u64;

/// The nil oid, MonetDB's in-domain NULL for the oid type.
pub const OID_NIL: Oid = u64::MAX;

/// Returns true if `o` is the nil oid.
#[inline(always)]
pub fn oid_is_nil(o: Oid) -> bool {
    o == OID_NIL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_is_max() {
        assert!(oid_is_nil(OID_NIL));
        assert!(!oid_is_nil(0));
        assert!(!oid_is_nil(u64::MAX - 1));
    }
}
