//! Relational schemas.
//!
//! A table in mammoth is, per the Decomposed Storage Model, nothing more
//! than a set of aligned single-column BATs plus this logical description.

use crate::error::{Error, Result};
use crate::value::LogicalType;

/// One column of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: LogicalType,
    pub nullable: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, ty: LogicalType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// The logical schema of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
        }
    }

    /// Index of a column by name (case-insensitive, SQL style).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Look up a column, erroring with a proper message when absent.
    pub fn column(&self, name: &str) -> Result<(usize, &ColumnDef)> {
        self.column_index(name)
            .map(|i| (i, &self.columns[i]))
            .ok_or_else(|| Error::NotFound {
                kind: "column",
                name: format!("{}.{}", self.name, name),
            })
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Validate that column names are unique (case-insensitively).
    pub fn validate(&self) -> Result<()> {
        for (i, c) in self.columns.iter().enumerate() {
            if self.columns[..i]
                .iter()
                .any(|p| p.name.eq_ignore_ascii_case(&c.name))
            {
                return Err(Error::AlreadyExists {
                    kind: "column",
                    name: c.name.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        TableSchema::new(
            "people",
            vec![
                ColumnDef::new("name", LogicalType::Str),
                ColumnDef::new("age", LogicalType::I32).not_null(),
            ],
        )
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.column_index("AGE"), Some(1));
        assert_eq!(s.column_index("Name"), Some(0));
        assert_eq!(s.column_index("missing"), None);
        let (i, c) = s.column("age").unwrap();
        assert_eq!(i, 1);
        assert!(!c.nullable);
    }

    #[test]
    fn missing_column_error() {
        let s = sample();
        let e = s.column("salary").unwrap_err();
        assert_eq!(e.to_string(), "column not found: people.salary");
    }

    #[test]
    fn duplicate_names_rejected() {
        let s = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", LogicalType::I32),
                ColumnDef::new("A", LogicalType::I64),
            ],
        );
        assert!(s.validate().is_err());
        assert!(sample().validate().is_ok());
    }
}
