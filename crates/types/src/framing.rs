//! The CRC32 length-prefixed frame codec shared by the WAL and the wire
//! protocol.
//!
//! ```text
//! frame := u32-le payload_len | u32-le crc32(payload) | payload
//! ```
//!
//! `crates/storage/src/wal.rs` frames redo records with it on disk and
//! `crates/server/src/frame.rs` frames protocol messages with it on a
//! socket; WAL-shipping replication is what makes the two the *same*
//! discipline rather than merely similar ones — a replica appends the
//! byte ranges it received over the wire directly to its local log. The
//! two call sites differ only in their sanity cap and in what a bad frame
//! means (torn tail vs. protocol error), so the codec takes the cap as a
//! parameter and reports outcomes instead of policies.

use crate::{Error, Result};
use std::io::{Read, Write};

/// Frame header size: u32 length + u32 CRC.
pub const FRAME_HEADER: usize = 8;

// --------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven. Small and dependency-free.
// --------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = crc32_table();
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Append one frame (header + payload) to `out`.
pub fn frame_into(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The outcome of examining the front of a byte buffer for one frame.
///
/// The codec reports what it saw; the caller decides what it means. The
/// WAL replayer treats both non-`Complete` outcomes as a discarded tail
/// (a crash tears frames and a torn CRC is indistinguishable from
/// corruption), while a socket reader treats `Corrupt` as a fatal
/// protocol error and `Incomplete` as "keep reading".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame<'a> {
    /// A whole, CRC-clean frame: its payload and the total bytes consumed
    /// (header + payload).
    Complete { payload: &'a [u8], consumed: usize },
    /// The buffer ends mid-header or mid-payload.
    Incomplete,
    /// The frame is framed wrong: over the length cap or CRC mismatch.
    Corrupt(&'static str),
}

/// Examine the front of `buf` for one frame with payloads capped at `max`.
pub fn split_frame(buf: &[u8], max: usize) -> Frame<'_> {
    if buf.len() < FRAME_HEADER {
        return Frame::Incomplete;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > max {
        return Frame::Corrupt("frame length exceeds cap");
    }
    let Some(end) = FRAME_HEADER.checked_add(len).filter(|&e| e <= buf.len()) else {
        return Frame::Incomplete;
    };
    let payload = &buf[FRAME_HEADER..end];
    if crc32(payload) != crc {
        return Frame::Corrupt("frame CRC mismatch");
    }
    Frame::Complete {
        payload,
        consumed: end,
    }
}

/// Write one frame (header + payload) with a single `write_all`.
///
/// This is the wire half of the codec (the WAL appends frames through the
/// pure [`frame_into`]), so it is also the write-side FaultNet injection
/// point: a scheduled fault here models a broken pipe or a one-way
/// partition on a live socket.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    match crate::netfault::on_write() {
        Some(crate::netfault::WriteFault::Broken) => {
            return Err(Error::Io("injected fault: broken pipe".into()));
        }
        // One-way partition: report success, send nothing. Only the
        // peer's read deadline can surface this.
        Some(crate::netfault::WriteFault::Drop) => return Ok(()),
        None => {}
    }
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame_into(payload, &mut buf);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Read one frame with payloads capped at `max`, verifying the CRC. Blocks
/// until a whole frame arrives; returns `Err` on EOF, oversized frames, or
/// CRC mismatch. The length bound is enforced *before* the payload
/// allocation, so an 8-byte header cannot make the reader allocate
/// gigabytes.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>> {
    let fault = crate::netfault::on_read();
    if let Some(crate::netfault::ReadFault::Disconnect) = fault {
        return Err(Error::Io(
            "injected fault: peer disconnected before frame".into(),
        ));
    }
    if let Some(crate::netfault::ReadFault::Stall(d)) = fault {
        // The read blocks past its deadline, then fails as the timeout
        // would. The sleep is what real stall victims pay.
        std::thread::sleep(d);
        return Err(Error::Io(
            "injected fault: read stalled past deadline".into(),
        ));
    }
    let mut head = [0u8; FRAME_HEADER];
    r.read_exact(&mut head)?;
    if let Some(crate::netfault::ReadFault::Torn) = fault {
        // Header consumed, connection dies mid-payload: the stream is now
        // desynchronized, which is exactly what connection poisoning must
        // catch — a reused stream would misparse from here on.
        return Err(Error::Io(
            "injected fault: connection torn mid-frame".into(),
        ));
    }
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
    let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if len > max {
        return Err(Error::Corrupt(format!(
            "frame length {len} exceeds the {max}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(Error::Corrupt("frame CRC mismatch".into()));
    }
    if let Some(crate::netfault::ReadFault::Corrupt) = fault {
        // The real payload is dropped on the floor: injected corruption
        // must never be able to leak the genuine bytes upward.
        return Err(Error::Corrupt("injected fault: frame CRC mismatch".into()));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn split_parses_what_frame_into_wrote() {
        let mut buf = Vec::new();
        frame_into(b"hello", &mut buf);
        frame_into(b"", &mut buf);
        match split_frame(&buf, 1 << 20) {
            Frame::Complete { payload, consumed } => {
                assert_eq!(payload, b"hello");
                match split_frame(&buf[consumed..], 1 << 20) {
                    Frame::Complete { payload, consumed } => {
                        assert_eq!(payload, b"");
                        assert_eq!(consumed, FRAME_HEADER);
                    }
                    other => panic!("second frame: {other:?}"),
                }
            }
            other => panic!("first frame: {other:?}"),
        }
    }

    #[test]
    fn torn_frames_are_incomplete_not_corrupt() {
        let mut buf = Vec::new();
        frame_into(b"payload", &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(split_frame(&buf[..cut], 1 << 20), Frame::Incomplete);
        }
    }

    #[test]
    fn bitflips_and_oversize_are_corrupt() {
        let mut buf = Vec::new();
        frame_into(b"payload", &mut buf);
        let mut bad = buf.clone();
        bad[FRAME_HEADER + 2] ^= 0x01;
        assert!(matches!(split_frame(&bad, 1 << 20), Frame::Corrupt(_)));
        assert!(matches!(split_frame(&buf, 3), Frame::Corrupt(_)));
    }

    // Property suite for the former call sites: the WAL replayer splits
    // frames out of a byte image (truncation = torn tail, must parse the
    // clean prefix and never panic or fabricate), the socket reader pulls
    // frames off a stream (corruption must be rejected).
    use proptest::prelude::*;

    fn frame_starts(payloads: &[Vec<u8>]) -> Vec<usize> {
        let mut starts = vec![0usize];
        for p in payloads {
            starts.push(starts.last().unwrap() + FRAME_HEADER + p.len());
        }
        starts
    }

    proptest! {
        #[test]
        fn prop_split_roundtrip(payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..40), 1..8)
        ) {
            let mut buf = Vec::new();
            for p in &payloads {
                frame_into(p, &mut buf);
            }
            let mut rest: &[u8] = &buf;
            let mut got = Vec::new();
            while let Frame::Complete { payload, consumed } = split_frame(rest, 1 << 20) {
                got.push(payload.to_vec());
                rest = &rest[consumed..];
            }
            prop_assert_eq!(&got, &payloads);
            prop_assert_eq!(rest.len(), 0);
        }

        #[test]
        fn prop_torn_tail_yields_clean_prefix(
            payloads in proptest::collection::vec(
                proptest::collection::vec(0u8..=255, 0..40), 1..8),
            cut_seed in 0usize..10_000,
        ) {
            let mut buf = Vec::new();
            for p in &payloads {
                frame_into(p, &mut buf);
            }
            let cut = cut_seed % (buf.len() + 1);
            let mut rest = &buf[..cut];
            let mut n = 0usize;
            loop {
                match split_frame(rest, 1 << 20) {
                    Frame::Complete { payload, consumed } => {
                        prop_assert_eq!(payload, &payloads[n][..]);
                        n += 1;
                        rest = &rest[consumed..];
                    }
                    Frame::Incomplete => break,
                    Frame::Corrupt(e) => prop_assert!(false, "truncation became corruption: {}", e),
                }
            }
            // exactly the frames wholly before the cut survive
            let starts = frame_starts(&payloads);
            let expect = starts[1..].iter().filter(|&&end| end <= cut).count();
            prop_assert_eq!(n, expect);
        }

        #[test]
        fn prop_bitflip_never_fabricates(
            payloads in proptest::collection::vec(
                proptest::collection::vec(0u8..=255, 0..40), 1..8),
            flip_seed in 0usize..10_000,
        ) {
            let mut buf = Vec::new();
            for p in &payloads {
                frame_into(p, &mut buf);
            }
            let flip = flip_seed % buf.len();
            buf[flip] ^= 1 << (flip_seed % 8);
            // frames wholly before the flipped byte still parse intact;
            // nothing past it is trusted, but nothing panics either
            let starts = frame_starts(&payloads);
            let intact = starts[1..].iter().filter(|&&end| end <= flip).count();
            let mut rest: &[u8] = &buf;
            for p in payloads.iter().take(intact) {
                match split_frame(rest, 1 << 20) {
                    Frame::Complete { payload, consumed } => {
                        prop_assert_eq!(payload, &p[..]);
                        rest = &rest[consumed..];
                    }
                    other => prop_assert!(false, "intact frame misparsed: {:?}", other),
                }
            }
            let _ = split_frame(rest, 1 << 20);
        }
    }

    proptest! {
        // Decoder fuzz against FaultNet-shaped damage: mangled streams
        // (torn tails, bit flips, both) must decode to a genuine prefix or
        // a clean error — never a panic, never a read past the buffer.
        #[test]
        fn prop_mangled_streams_decode_cleanly(
            payloads in proptest::collection::vec(
                proptest::collection::vec(0u8..=255, 0..40), 1..8),
            seed in 0u64..512,
        ) {
            let _g = crate::netfault::test_lock()
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let mut buf = Vec::new();
            for p in &payloads {
                frame_into(p, &mut buf);
            }
            let bad = crate::netfault::mangle(&buf, seed);
            prop_assert_ne!(&bad, &buf, "mangle must damage the stream");
            // pure decoder: terminates, never consumes past the buffer
            let mut rest: &[u8] = &bad;
            while let Frame::Complete { consumed, .. } = split_frame(rest, 1 << 20) {
                prop_assert!(consumed <= rest.len());
                rest = &rest[consumed..];
            }
            // io decoder: every successful read is a genuine prefix frame
            let mut r: &[u8] = &bad;
            let mut k = 0usize;
            while let Ok(p) = read_frame(&mut r, 1 << 20) {
                prop_assert!(k < payloads.len(), "fabricated frame past the input");
                prop_assert_eq!(&p, &payloads[k]);
                k += 1;
            }
        }
    }

    #[test]
    fn injected_faults_surface_as_clean_errors() {
        let _g = crate::netfault::test_lock()
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        use crate::netfault::{self, NetFaultPlan, ReadFault, WriteFault};
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        let mut plan = NetFaultPlan::none();
        plan.reads.push((0, ReadFault::Disconnect));
        plan.reads.push((1, ReadFault::Torn));
        plan.reads.push((2, ReadFault::Corrupt));
        plan.writes.push((0, WriteFault::Drop));
        plan.writes.push((1, WriteFault::Broken));
        netfault::install(plan);
        assert!(read_frame(&mut &wire[..], 1 << 20).is_err(), "disconnect");
        let mut r: &[u8] = &wire;
        assert!(read_frame(&mut r, 1 << 20).is_err(), "torn");
        assert_eq!(
            r.len(),
            wire.len() - FRAME_HEADER,
            "torn fault consumed the header: the stream is desynchronized"
        );
        let mut r: &[u8] = &wire;
        assert!(
            matches!(read_frame(&mut r, 1 << 20), Err(Error::Corrupt(_))),
            "corrupt fault reports a CRC failure"
        );
        assert_eq!(r.len(), 0, "corrupt fault consumed the whole frame");
        assert_eq!(
            read_frame(&mut &wire[..], 1 << 20).unwrap(),
            b"payload",
            "faults are transient: the next read is clean"
        );
        let mut out = Vec::new();
        write_frame(&mut out, b"x").unwrap();
        assert!(
            out.is_empty(),
            "dropped write reported success, sent nothing"
        );
        assert!(write_frame(&mut out, b"x").is_err(), "broken pipe");
        assert_eq!(netfault::fired(), 5);
        netfault::clear();
    }

    #[test]
    fn io_roundtrip_and_rejection() {
        // serialize against tests that arm the process-global FaultNet
        let _g = crate::netfault::test_lock()
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r, 1 << 20).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1 << 20).unwrap(), b"");
        assert!(read_frame(&mut r, 1 << 20).is_err(), "EOF is an error");
        let mut bad = wire.clone();
        bad[FRAME_HEADER + 1] ^= 0x40;
        assert!(read_frame(&mut &bad[..], 1 << 20).is_err());
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_frame(&mut &huge[..], 1 << 20).is_err());
    }
}
