//! Shared value types, schemas and errors for the `mammoth` engine.
//!
//! `mammoth` reproduces the MonetDB architecture described in *Database
//! Architecture Evolution: Mammals Flourished long before Dinosaurs became
//! Extinct* (VLDB 2009). This crate holds the vocabulary every other crate
//! speaks: logical types, runtime values, object identifiers (oids), table
//! schemas and the common error type.
//!
//! Following MonetDB, NULL ("nil") is represented *in-domain*: every native
//! type reserves one sentinel value (e.g. `i32::MIN`) rather than keeping a
//! separate validity bitmap. This keeps column heaps plain arrays, which is
//! the property the whole BAT architecture builds on.

#![deny(unsafe_code)]

pub mod error;
pub mod framing;
pub mod native;
pub mod netfault;
pub mod oid;
pub mod retry;
pub mod schema;
pub mod trace;
pub mod value;

pub use error::{Error, Result};
pub use framing::crc32;
pub use native::NativeType;
pub use oid::{Oid, OID_NIL};
pub use retry::{Backoff, RetryPolicy};
pub use schema::{ColumnDef, TableSchema};
pub use trace::{
    validate_trace, validate_trace_line, EventKind, FlushGuard, ProfiledRun, TraceEvent, TRACE_ENV,
};
pub use value::{LogicalType, Value};
