//! FaultNet: deterministic network fault injection at the framing boundary.
//!
//! The storage layer earned its durability guarantees by surviving a
//! scripted `FaultFs` (`crates/storage/src/fault.rs`): every write path is
//! swept with kill-points and the recovery invariant is checked after each
//! one. This module applies the same discipline to the *network*. A seeded
//! schedule of transient faults is installed process-wide and fires at
//! exact framed-I/O operation counts, so a failure interleaving that broke
//! the cluster once can be replayed byte-for-byte with the same seed
//! (`MAMMOTH_NET_FAULT_SEED`).
//!
//! Faults are injected inside [`crate::framing::read_frame`] /
//! [`crate::framing::write_frame`] and at client connect time, which is
//! exactly the wire boundary: the WAL writes frames to disk through the
//! *pure* `split_frame`/`frame_into` half of the codec and is untouched —
//! a network fault can never damage durable state directly, only the
//! traffic about it.
//!
//! Unlike `FaultFs` (whose faults model a crashed process and leave the
//! filesystem dead), FaultNet faults are **transient**: the fault fires
//! once at its scheduled operation and traffic continues afterwards. That
//! models real networks — a refused connect, a torn frame, or a stalled
//! read is an event, not a terminal state — and it is what makes chaos
//! workloads meaningful: the cluster is expected to *recover around* every
//! injected fault, not merely fail cleanly.
//!
//! The fault menu:
//!
//! * **connect refusal** — the nth client connect attempt fails with
//!   `ConnectionRefused` before any socket is opened;
//! * **mid-frame disconnect** ([`ReadFault::Disconnect`]) — a framed read
//!   fails as if the peer vanished before the header arrived;
//! * **torn frame** ([`ReadFault::Torn`]) — the header is consumed and
//!   then the connection dies, leaving the stream desynchronized (this is
//!   the case connection poisoning exists for);
//! * **corrupted frame** ([`ReadFault::Corrupt`]) — the frame arrives but
//!   fails its CRC; the real payload is discarded so corruption can never
//!   leak data upward;
//! * **stall** ([`ReadFault::Stall`]) — the read blocks past its deadline
//!   and then fails as a timeout;
//! * **one-way partition** ([`WriteFault::Drop`]) — a framed write
//!   pretends to succeed but sends nothing; only the peer's read deadline
//!   can surface it, which is why deadlines are not optional in this
//!   codebase.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::retry::splitmix_next;

/// Environment variable the chaos tier (and any opted-in process) reads to
/// install a seeded schedule via [`install_from_env`].
pub const NET_FAULT_SEED_ENV: &str = "MAMMOTH_NET_FAULT_SEED";

/// A fault fired by a framed read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The peer vanished before the frame header arrived.
    Disconnect,
    /// The header arrived, then the connection died mid-payload. The
    /// stream is desynchronized afterwards.
    Torn,
    /// The frame arrived but its CRC does not match.
    Corrupt,
    /// The read blocked for this long, then failed as a timeout.
    Stall(Duration),
}

/// A fault fired by a framed write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write fails immediately (broken pipe).
    Broken,
    /// One-way partition: the write "succeeds" but nothing is sent.
    Drop,
}

/// A scripted schedule of transient network faults. Operation counts are
/// 0-based and per-class: the nth connect attempt, the nth framed read,
/// the nth framed write — process-wide, in whatever order threads reach
/// the hooks. With a single-threaded workload the interleaving is exact;
/// under concurrency the *schedule* is still deterministic even though
/// which connection draws each fault may vary.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    /// Connect attempts to refuse.
    pub connects: Vec<u64>,
    /// Framed reads to fault, with the fault to fire.
    pub reads: Vec<(u64, ReadFault)>,
    /// Framed writes to fault, with the fault to fire.
    pub writes: Vec<(u64, WriteFault)>,
}

impl NetFaultPlan {
    /// The empty schedule: installs as armed-but-harmless.
    pub fn none() -> NetFaultPlan {
        NetFaultPlan::default()
    }
}

#[derive(Default)]
struct State {
    plan: NetFaultPlan,
    connects_seen: u64,
    reads_seen: u64,
    writes_seen: u64,
    fired: u64,
}

/// Fast-path switch: hooks bail without locking while disarmed, so the
/// production cost of FaultNet is one relaxed atomic load per framed op.
static ARMED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::default()))
}

fn lock() -> std::sync::MutexGuard<'static, State> {
    state().lock().unwrap_or_else(|e| e.into_inner())
}

/// Install `plan` process-wide and reset all operation counters.
pub fn install(plan: NetFaultPlan) {
    let mut st = lock();
    *st = State {
        plan,
        ..State::default()
    };
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarm fault injection and drop the current schedule.
pub fn clear() {
    ARMED.store(false, Ordering::SeqCst);
    let mut st = lock();
    *st = State::default();
}

/// Whether a schedule is currently armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::SeqCst)
}

/// How many scheduled faults have fired since the last [`install`].
pub fn fired() -> u64 {
    lock().fired
}

/// Derive a bounded transient-fault schedule from a seed. Same seed, same
/// schedule — this is what `MAMMOTH_NET_FAULT_SEED=n` replays. The
/// schedule front-loads faults (the first few hundred framed ops) so short
/// chaos workloads actually meet them, and draws only recoverable kinds.
pub fn plan_from_seed(seed: u64) -> NetFaultPlan {
    let mut s = seed ^ 0x6c62_272e_07bb_0142;
    let mut plan = NetFaultPlan::none();
    plan.connects.push(splitmix_next(&mut s) % 8);
    let mut op = 0u64;
    for _ in 0..6 {
        op += 8 + splitmix_next(&mut s) % 48;
        let fault = match splitmix_next(&mut s) % 4 {
            0 => ReadFault::Disconnect,
            1 => ReadFault::Torn,
            2 => ReadFault::Corrupt,
            _ => ReadFault::Stall(Duration::from_millis(25)),
        };
        plan.reads.push((op, fault));
    }
    let mut op = 0u64;
    for _ in 0..3 {
        op += 15 + splitmix_next(&mut s) % 60;
        let fault = if splitmix_next(&mut s).is_multiple_of(2) {
            WriteFault::Broken
        } else {
            WriteFault::Drop
        };
        plan.writes.push((op, fault));
    }
    plan
}

/// Read `MAMMOTH_NET_FAULT_SEED` and install [`plan_from_seed`] when set;
/// returns the seed that was installed. Processes opt in explicitly (the
/// chaos tier calls this once its cluster is up) — framing hooks never
/// consult the environment on their own.
pub fn install_from_env() -> Option<u64> {
    let seed: u64 = std::env::var(NET_FAULT_SEED_ENV)
        .ok()?
        .trim()
        .parse()
        .ok()?;
    install(plan_from_seed(seed));
    Some(seed)
}

/// Hook: the client is about to open a TCP connection. Returns the error
/// to fail with when this attempt is scheduled to be refused.
pub fn on_connect() -> Option<std::io::Error> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let mut st = lock();
    let op = st.connects_seen;
    st.connects_seen += 1;
    if st.plan.connects.contains(&op) {
        st.fired += 1;
        Some(std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            "injected fault: connection refused",
        ))
    } else {
        None
    }
}

/// Hook: a framed read is starting. Returns the fault to fire, if any.
pub fn on_read() -> Option<ReadFault> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let mut st = lock();
    let op = st.reads_seen;
    st.reads_seen += 1;
    let hit = st
        .plan
        .reads
        .iter()
        .find(|(at, _)| *at == op)
        .map(|(_, f)| *f);
    if hit.is_some() {
        st.fired += 1;
    }
    hit
}

/// Hook: a framed write is starting. Returns the fault to fire, if any.
pub fn on_write() -> Option<WriteFault> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let mut st = lock();
    let op = st.writes_seen;
    st.writes_seen += 1;
    let hit = st
        .plan
        .writes
        .iter()
        .find(|(at, _)| *at == op)
        .map(|(_, f)| *f);
    if hit.is_some() {
        st.fired += 1;
    }
    hit
}

/// Deterministically damage a framed byte stream the way live FaultNet
/// faults damage connections: truncate it (torn frame), flip one bit
/// (corruption), or both. Decoder fuzz tests feed these to `WalCursor` and
/// `split_frame` and assert clean errors — never a panic, never an
/// over-read, never fabricated records.
pub fn mangle(stream: &[u8], seed: u64) -> Vec<u8> {
    let mut s = seed ^ 0x517c_c1b7_2722_0a95;
    let mut out = stream.to_vec();
    if out.is_empty() {
        return out;
    }
    let mode = splitmix_next(&mut s) % 3;
    if mode != 0 {
        let i = (splitmix_next(&mut s) % out.len() as u64) as usize;
        out[i] ^= 1 << (splitmix_next(&mut s) % 8);
    }
    if mode != 1 {
        // strictly shorter, so a mangle is never a no-op
        let cut = (splitmix_next(&mut s) % out.len() as u64) as usize;
        out.truncate(cut);
    }
    out
}

/// Serializes tests that arm the process-global schedule (hook counters are
/// shared, so two arming tests running on parallel test threads would steal
/// each other's faults). Not part of the public API.
#[doc(hidden)]
pub fn test_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = plan_from_seed(42);
        let b = plan_from_seed(42);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = plan_from_seed(43);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
        assert_eq!(a.connects.len(), 1);
        assert_eq!(a.reads.len(), 6);
        assert_eq!(a.writes.len(), 3);
        for (at, _) in &a.reads {
            assert!(*at < 400, "read faults front-loaded, got op {at}");
        }
    }

    #[test]
    fn hooks_fire_on_schedule_and_disarm_cleanly() {
        let _g = test_lock().lock().unwrap_or_else(|e| e.into_inner());
        let mut plan = NetFaultPlan::none();
        plan.connects.push(1);
        plan.reads.push((0, ReadFault::Torn));
        plan.writes.push((2, WriteFault::Drop));
        install(plan);
        assert!(on_connect().is_none(), "connect 0 passes");
        assert!(on_connect().is_some(), "connect 1 refused");
        assert!(on_connect().is_none(), "transient: connect 2 passes again");
        assert_eq!(on_read(), Some(ReadFault::Torn));
        assert_eq!(on_read(), None);
        assert_eq!(on_write(), None);
        assert_eq!(on_write(), None);
        assert_eq!(on_write(), Some(WriteFault::Drop));
        assert_eq!(fired(), 3);
        clear();
        assert!(!armed());
        assert!(on_connect().is_none() && on_read().is_none() && on_write().is_none());
    }

    #[test]
    fn mangle_is_deterministic_and_damages() {
        let stream = vec![7u8; 64];
        let a = mangle(&stream, 9);
        assert_eq!(a, mangle(&stream, 9));
        assert!(mangle(&[], 9).is_empty());
        // across a spread of seeds, every mangled stream differs from the
        // original (truncated, flipped, or both)
        for seed in 0..32 {
            assert_ne!(mangle(&stream, seed), stream, "seed {seed} was a no-op");
        }
    }
}
