//! The unified retry/timeout/backoff policy.
//!
//! Before this module existed the repo had three hand-rolled copies of
//! "sleep a bit and try again": the client's reconnect loop, the shard
//! coordinator's redial, and the replica puller's reconnect. They agreed
//! on the shape (capped exponential backoff, deterministic jitter) but
//! not on the details, which is exactly how retry storms are born. This
//! is the one implementation all of them now share.
//!
//! Design points:
//!
//! * **Capped exponential** — delays double from `base_delay` up to
//!   `max_delay` and stay there; an unreachable peer costs a bounded,
//!   predictable amount of waiting per attempt.
//! * **Seeded jitter** — each delay is scaled by a factor in [0.5, 1.0)
//!   drawn from a SplitMix64 stream seeded by the policy, so a fleet of
//!   reconnecting replicas does not stampede in sync, yet a test can
//!   replay the exact schedule. The generator is local (no `rand`
//!   dependency): this crate stays std-only.
//! * **Deadline budgets** — a [`Backoff`] can carry a deadline; once the
//!   next sleep would land past it, the iterator ends. Retries that run
//!   inside a statement's deadline (the coordinator's redial) use this so
//!   backoff can never spend more than the statement is allowed to.

use std::time::{Duration, Instant};

/// Reconnect discipline: bounded attempts, capped exponential backoff,
/// deterministic jitter. Retryability itself is the caller's judgment —
/// the policy paces retries, it does not classify errors.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (>= 1).
    pub attempts: u32,
    /// Sleep before the first retry; doubles per retry up to `max_delay`.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed for the jitter stream — deterministic so tests can replay a
    /// schedule. Each delay is scaled by a factor in [0.5, 1.0).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 6,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_secs(1),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The jittered delay sequence this policy paces retries with. The
    /// iterator is infinite (the *attempts* bound lives in [`RetryPolicy::run`];
    /// long-lived reconnect loops like the replica puller deliberately
    /// outlive it) unless a deadline is attached.
    pub fn backoff(&self) -> Backoff {
        Backoff {
            delay: self.base_delay,
            max: self.max_delay,
            rng: splitmix_seed(self.seed),
            deadline: None,
        }
    }

    /// Like [`RetryPolicy::backoff`], but the sequence ends once the next
    /// sleep would finish after `deadline`.
    pub fn backoff_until(&self, deadline: Instant) -> Backoff {
        let mut b = self.backoff();
        b.deadline = Some(deadline);
        b
    }

    /// Run `op` up to `attempts` times, sleeping a jittered backoff delay
    /// between tries. Only errors `retryable` approves are retried;
    /// anything else surfaces immediately. `op` receives the 0-based
    /// attempt index.
    pub fn run<T, E>(
        &self,
        retryable: impl Fn(&E) -> bool,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        self.run_paced(self.backoff(), retryable, &mut op)
    }

    /// Like [`RetryPolicy::run`], additionally bounded by a wall-clock
    /// budget measured from now: no retry sleep may extend past it. The
    /// attempt in flight is not interrupted — the budget bounds *waiting*,
    /// the same way the statement timeout bounds queueing.
    pub fn run_with_deadline<T, E>(
        &self,
        budget: Duration,
        retryable: impl Fn(&E) -> bool,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        self.run_paced(
            self.backoff_until(Instant::now() + budget),
            retryable,
            &mut op,
        )
    }

    fn run_paced<T, E>(
        &self,
        mut backoff: Backoff,
        retryable: impl Fn(&E) -> bool,
        op: &mut impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let attempts = self.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                match backoff.next() {
                    Some(d) => std::thread::sleep(d),
                    // Deadline exhausted: report the newest failure.
                    None => break,
                }
            }
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if retryable(&e) && attempt + 1 < attempts => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt was made"))
    }
}

/// The jittered capped-exponential delay sequence of a [`RetryPolicy`].
#[derive(Debug, Clone)]
pub struct Backoff {
    delay: Duration,
    max: Duration,
    rng: u64,
    deadline: Option<Instant>,
}

impl Iterator for Backoff {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        let jittered = self.delay.mul_f64(jitter_frac(&mut self.rng));
        if let Some(deadline) = self.deadline {
            if Instant::now() + jittered > deadline {
                return None;
            }
        }
        self.delay = (self.delay * 2).min(self.max);
        Some(jittered)
    }
}

/// SplitMix64: the minimal statistically-decent generator, used only for
/// jitter. Seeds are decorated so seed 0 still produces a useful stream.
fn splitmix_seed(seed: u64) -> u64 {
    seed ^ 0x9e37_79b9_7f4a_7c15
}

pub(crate) fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fraction in [0.5, 1.0) from the top 53 bits of the next draw.
fn jitter_frac(state: &mut u64) -> f64 {
    let x = splitmix_next(state);
    0.5 + (x >> 11) as f64 / (1u64 << 53) as f64 * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_caps_and_jitters_deterministically() {
        let p = RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(40),
            seed: 7,
        };
        let a: Vec<Duration> = p.backoff().take(6).collect();
        let b: Vec<Duration> = p.backoff().take(6).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for (i, d) in a.iter().enumerate() {
            let nominal = Duration::from_millis(10 * (1 << i.min(2)) as u64);
            assert!(*d >= nominal / 2 && *d < nominal, "delay {i} = {d:?}");
        }
        let c: Vec<Duration> = RetryPolicy { seed: 8, ..p }.backoff().take(6).collect();
        assert_ne!(a, c, "different seed, different jitter");
    }

    #[test]
    fn run_bounds_attempts_and_respects_retryability() {
        let p = RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            seed: 0,
        };
        let mut calls = 0;
        let out: Result<(), &str> = p.run(
            |_| true,
            |_| {
                calls += 1;
                Err("nope")
            },
        );
        assert_eq!(out, Err("nope"));
        assert_eq!(calls, 4, "attempts includes the first try");

        let mut calls = 0;
        let out: Result<(), &str> = p.run(
            |e| *e != "fatal",
            |_| {
                calls += 1;
                Err("fatal")
            },
        );
        assert_eq!(out, Err("fatal"));
        assert_eq!(calls, 1, "non-retryable errors surface immediately");

        let mut calls = 0;
        let out: Result<u32, &str> = p.run(
            |_| true,
            |attempt| {
                calls += 1;
                if attempt == 2 {
                    Ok(attempt)
                } else {
                    Err("later")
                }
            },
        );
        assert_eq!(out, Ok(2));
        assert_eq!(calls, 3);
    }

    #[test]
    fn deadline_budget_stops_the_backoff() {
        let p = RetryPolicy {
            attempts: 1000,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(20),
            seed: 3,
        };
        let t0 = Instant::now();
        let out: Result<(), &str> =
            p.run_with_deadline(Duration::from_millis(60), |_| true, |_| Err("down"));
        assert_eq!(out, Err("down"));
        // ~3 sleeps fit in the budget; 1000 attempts would take 20 s.
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "{:?}",
            t0.elapsed()
        );
    }
}
