//! Dynamic values and logical types.

use crate::oid::Oid;
use std::fmt;

/// The logical (SQL-level) type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalType {
    Bool,
    I8,
    I16,
    I32,
    I64,
    F64,
    Str,
    Oid,
}

impl LogicalType {
    /// Width in bytes of the fixed part of a value of this type
    /// (strings store an 8-byte offset into a variable heap).
    pub fn fixed_width(&self) -> usize {
        match self {
            LogicalType::Bool => 1,
            LogicalType::I8 => 1,
            LogicalType::I16 => 2,
            LogicalType::I32 => 4,
            LogicalType::I64 | LogicalType::F64 | LogicalType::Oid => 8,
            LogicalType::Str => 8,
        }
    }

    /// True for types stored via a variable-width heap.
    pub fn is_varwidth(&self) -> bool {
        matches!(self, LogicalType::Str)
    }

    /// True for the numeric family (arithmetic is defined).
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            LogicalType::I8
                | LogicalType::I16
                | LogicalType::I32
                | LogicalType::I64
                | LogicalType::F64
        )
    }

    /// The common type two numeric operands widen to, if any.
    pub fn widen(a: LogicalType, b: LogicalType) -> Option<LogicalType> {
        use LogicalType::*;
        if a == b {
            return Some(a);
        }
        if !a.is_numeric() || !b.is_numeric() {
            return None;
        }
        if a == F64 || b == F64 {
            return Some(F64);
        }
        let rank = |t: LogicalType| match t {
            I8 => 0,
            I16 => 1,
            I32 => 2,
            I64 => 3,
            _ => 4,
        };
        Some(if rank(a) >= rank(b) { a } else { b })
    }

    /// Canonical lower-case name (used by MAL textual form and SQL).
    pub fn name(&self) -> &'static str {
        match self {
            LogicalType::Bool => "bool",
            LogicalType::I8 => "tinyint",
            LogicalType::I16 => "smallint",
            LogicalType::I32 => "int",
            LogicalType::I64 => "bigint",
            LogicalType::F64 => "double",
            LogicalType::Str => "string",
            LogicalType::Oid => "oid",
        }
    }

    /// Parse a type name as produced by [`LogicalType::name`] (plus common
    /// SQL aliases).
    pub fn parse(s: &str) -> Option<LogicalType> {
        Some(match s.to_ascii_lowercase().as_str() {
            "bool" | "boolean" => LogicalType::Bool,
            "tinyint" => LogicalType::I8,
            "smallint" => LogicalType::I16,
            "int" | "integer" => LogicalType::I32,
            "bigint" => LogicalType::I64,
            "double" | "float" | "real" => LogicalType::F64,
            "string" | "varchar" | "text" | "clob" => LogicalType::Str,
            "oid" => LogicalType::Oid,
            _ => return None,
        })
    }
}

impl fmt::Display for LogicalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed runtime value.
///
/// Bulk execution never materializes `Value`s in inner loops — they exist for
/// query constants, result rendering and tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I8(i8),
    I16(i16),
    I32(i32),
    I64(i64),
    F64(f64),
    Str(String),
    Oid(Oid),
}

impl Value {
    /// The logical type, if determinable (`Null` has none).
    pub fn logical_type(&self) -> Option<LogicalType> {
        Some(match self {
            Value::Null => return None,
            Value::Bool(_) => LogicalType::Bool,
            Value::I8(_) => LogicalType::I8,
            Value::I16(_) => LogicalType::I16,
            Value::I32(_) => LogicalType::I32,
            Value::I64(_) => LogicalType::I64,
            Value::F64(_) => LogicalType::F64,
            Value::Str(_) => LogicalType::Str,
            Value::Oid(_) => LogicalType::Oid,
        })
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as f64 (for aggregation/rendering).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I8(x) => Some(*x as f64),
            Value::I16(x) => Some(*x as f64),
            Value::I32(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric view as i64, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I8(x) => Some(*x as i64),
            Value::I16(x) => Some(*x as i64),
            Value::I32(x) => Some(*x as i64),
            Value::I64(x) => Some(*x),
            Value::Oid(x) => i64::try_from(*x).ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Coerce to `ty` if a lossless conversion exists.
    pub fn coerce(&self, ty: LogicalType) -> Option<Value> {
        if self.is_null() {
            return Some(Value::Null);
        }
        if self.logical_type() == Some(ty) {
            return Some(self.clone());
        }
        match ty {
            LogicalType::I8 => self
                .as_i64()
                .and_then(|x| i8::try_from(x).ok())
                .map(Value::I8),
            LogicalType::I16 => self
                .as_i64()
                .and_then(|x| i16::try_from(x).ok())
                .map(Value::I16),
            LogicalType::I32 => self
                .as_i64()
                .and_then(|x| i32::try_from(x).ok())
                .map(Value::I32),
            LogicalType::I64 => self.as_i64().map(Value::I64),
            LogicalType::F64 => self.as_f64().map(Value::F64),
            LogicalType::Oid => self
                .as_i64()
                .and_then(|x| u64::try_from(x).ok())
                .map(Value::Oid),
            _ => None,
        }
    }

    /// SQL-style comparison: `None` when either side is NULL or the types
    /// are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => a.partial_cmp(b),
            (Str(a), Str(b)) => a.partial_cmp(b),
            (Oid(a), Oid(b)) => a.partial_cmp(b),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I8(x) => write!(f, "{x}"),
            Value::I16(x) => write!(f, "{x}"),
            Value::I32(x) => write!(f, "{x}"),
            Value::I64(x) => write!(f, "{x}"),
            Value::F64(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Oid(x) => write!(f, "{x}@0"),
        }
    }
}

impl From<i32> for Value {
    fn from(x: i32) -> Self {
        Value::I32(x)
    }
}
impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::I64(x)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::F64(x)
    }
}
impl From<bool> for Value {
    fn from(x: bool) -> Self {
        Value::Bool(x)
    }
}
impl From<&str> for Value {
    fn from(x: &str) -> Self {
        Value::Str(x.to_string())
    }
}
impl From<String> for Value {
    fn from(x: String) -> Self {
        Value::Str(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widen_rules() {
        use LogicalType::*;
        assert_eq!(LogicalType::widen(I32, I64), Some(I64));
        assert_eq!(LogicalType::widen(I8, I16), Some(I16));
        assert_eq!(LogicalType::widen(I64, F64), Some(F64));
        assert_eq!(LogicalType::widen(Str, I32), None);
        assert_eq!(LogicalType::widen(Str, Str), Some(Str));
    }

    #[test]
    fn type_name_roundtrip() {
        for t in [
            LogicalType::Bool,
            LogicalType::I8,
            LogicalType::I16,
            LogicalType::I32,
            LogicalType::I64,
            LogicalType::F64,
            LogicalType::Str,
            LogicalType::Oid,
        ] {
            assert_eq!(LogicalType::parse(t.name()), Some(t));
        }
        assert_eq!(LogicalType::parse("VARCHAR"), Some(LogicalType::Str));
        assert_eq!(LogicalType::parse("nonsense"), None);
    }

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::I32(1)), None);
        assert_eq!(Value::I32(1).sql_cmp(&Value::Null), None);
        assert_eq!(
            Value::I32(1).sql_cmp(&Value::I64(2)),
            Some(std::cmp::Ordering::Less)
        );
        assert_eq!(
            Value::Str("b".into()).sql_cmp(&Value::Str("a".into())),
            Some(std::cmp::Ordering::Greater)
        );
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::I64(7).coerce(LogicalType::I32), Some(Value::I32(7)));
        assert_eq!(Value::I64(i64::MAX).coerce(LogicalType::I32), None);
        assert_eq!(
            Value::I32(7).coerce(LogicalType::F64),
            Some(Value::F64(7.0))
        );
        assert_eq!(Value::Null.coerce(LogicalType::I32), Some(Value::Null));
        assert_eq!(Value::Str("x".into()).coerce(LogicalType::I32), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::I32(-5).to_string(), "-5");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::Oid(3).to_string(), "3@0");
    }
}
