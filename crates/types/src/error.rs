//! The common error type for all mammoth crates.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by any layer of the engine.
///
/// Lower layers (storage, algebra) use the structural variants; the language
/// front-ends use `Parse`/`Bind`; `Internal` is reserved for invariant
/// violations that indicate a bug rather than bad input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A type mismatch between an operator and its operands.
    TypeMismatch { expected: String, found: String },
    /// Two columns that must be aligned (same length) are not.
    LengthMismatch { left: usize, right: usize },
    /// An oid or position outside the valid range of a BAT.
    OutOfRange { index: u64, len: u64 },
    /// A named object (BAT, table, column, variable) does not exist.
    NotFound { kind: &'static str, name: String },
    /// A named object already exists and cannot be created again.
    AlreadyExists { kind: &'static str, name: String },
    /// Query-language lexing/parsing failure.
    Parse { pos: usize, message: String },
    /// Name-resolution / typing failure while binding a query.
    Bind(String),
    /// The feature is recognized but not supported by this engine.
    Unsupported(String),
    /// I/O error while persisting or loading heaps.
    Io(String),
    /// Corrupt or unreadable persisted data.
    Corrupt(String),
    /// Crash recovery could not restore a consistent state (a checkpoint
    /// referenced by the manifest is missing, or a WAL record does not
    /// apply to the checkpoint it follows).
    Recovery(String),
    /// A statement routed down the read-only fast path turned out to
    /// need the write path (EXECUTE of a prepared DML statement). Not a
    /// user-visible failure: callers holding a write-capable session
    /// catch this and retry through `execute`.
    NeedsWrite,
    /// An internal invariant was violated: this is a bug.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            Error::OutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            Error::NotFound { kind, name } => write!(f, "{kind} not found: {name}"),
            Error::AlreadyExists { kind, name } => write!(f, "{kind} already exists: {name}"),
            Error::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            Error::Bind(m) => write!(f, "bind error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Io(m) => write!(f, "i/o error: {m}"),
            Error::Corrupt(m) => write!(f, "corrupt data: {m}"),
            Error::Recovery(m) => write!(f, "recovery failed: {m}"),
            Error::NeedsWrite => write!(f, "statement requires the write path"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = Error::TypeMismatch {
            expected: "int".into(),
            found: "str".into(),
        };
        assert_eq!(e.to_string(), "type mismatch: expected int, found str");
        let e = Error::OutOfRange { index: 9, len: 4 };
        assert_eq!(e.to_string(), "index 9 out of range for length 4");
        let e = Error::NotFound {
            kind: "bat",
            name: "t_a".into(),
        };
        assert_eq!(e.to_string(), "bat not found: t_a");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
