//! The observability substrate: profiler events and unified run profiles.
//!
//! MonetDB ships `EXPLAIN`/`TRACE` and a per-instruction profiler because an
//! operator-at-a-time engine only earns trust when you can *see* what a plan
//! did. This module is the common vocabulary for that: every execution
//! engine (the serial interpreter, the serial interpreter with the recycler,
//! the dataflow worker pool) and every adaptive component (the recycler,
//! the cracker) reports [`TraceEvent`]s, and a whole run folds into one
//! [`ProfiledRun`].
//!
//! The JSON export is **one event per line** with a stable schema — the
//! golden files under `tests/golden/` and the `tracecheck` binary pin it.
//! Setting the [`TRACE_ENV`] environment variable (`MAMMOTH_TRACE=<path>`)
//! makes the SQL session append every profiled run to that file; the whole
//! run is written with a single `write` call so concurrent test processes
//! appending to one file do not interleave mid-line.

use std::fmt;
use std::io::Write as _;

/// Environment variable naming the JSON-lines trace sink.
pub const TRACE_ENV: &str = "MAMMOTH_TRACE";

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// One executed (or recycled) plan instruction.
    Instr,
    /// The recycler answered an instruction from its cache.
    RecyclerHit,
    /// The recycler admitted a computed intermediate.
    RecyclerAdmit,
    /// The recycler evicted an entry to make room.
    RecyclerEvict,
    /// A DML statement invalidated dependent cache entries.
    RecyclerInvalidate,
    /// A cracker select split a piece (physical reorganization).
    CrackPartition,
    /// The cracker merged its pending delta into the cracked store.
    CrackMerge,
    /// A batch of redo records was appended (and fsync'd) to the WAL.
    WalAppend,
    /// An atomic checkpoint was written and the WAL truncated.
    Checkpoint,
    /// Crash recovery loaded a checkpoint and replayed the WAL tail.
    Recover,
    /// The network server accepted (and admitted) a client connection.
    ServerAccept,
    /// A client completed the protocol handshake (greeting + login).
    ServerHandshake,
    /// The server executed one client statement end to end.
    ServerStatement,
    /// Admission control shed work (`SERVER_BUSY`): a connection over the
    /// backlog bound, or a statement past its admission deadline.
    ServerShed,
    /// The server drained in-flight work and shut down gracefully.
    ServerShutdown,
    /// A replica subscribed to the primary's WAL stream.
    ReplSubscribe,
    /// The primary shipped a WAL byte range (or checkpoint image chunk).
    ReplShip,
    /// A replica (re-)bootstrapped from a checkpoint image.
    ReplBootstrap,
    /// A replica applied a committed statement group from the stream.
    ReplApply,
    /// A replica drained the stream to the primary's durable tip.
    ReplCaughtUp,
    /// A replica was promoted to read-write primary.
    ReplPromote,
    /// The shard coordinator fanned a statement out to its shards.
    ShardScatter,
    /// A shard server executed one read-only fragment for a coordinator.
    ShardFragment,
    /// The coordinator merged per-shard partials into one result.
    ShardGather,
    /// A DML statement was routed to the owning shard(s) by partition key.
    ShardRoute,
    /// A scatter leg failed (dead shard, deadline) — `SHARD_UNAVAILABLE`.
    ShardUnavailable,
    /// A heartbeat probe failed; the shard is suspect but not yet written
    /// off (consecutive failures below the degrade threshold).
    HaSuspect,
    /// Consecutive probe failures crossed the threshold: the shard primary
    /// is considered dead, reads degrade to its replica (`SHARD_DEGRADED`).
    HaDegraded,
    /// The coordinator sent `PROMOTE` to a degraded shard's replica.
    HaPromote,
    /// Promotion confirmed: the replica reports `role=primary` and the
    /// shard's address was swapped — the cluster is healthy again.
    HaRecovered,
    /// A statement was compiled, verified and optimized into the plan
    /// cache (a cache miss, or the first PREPARE).
    PlanCompile,
    /// A statement was answered from the plan cache — no recompile, the
    /// cached program's premises re-checked sound.
    PlanCacheHit,
}

impl EventKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Instr => "instr",
            EventKind::RecyclerHit => "recycler.hit",
            EventKind::RecyclerAdmit => "recycler.admit",
            EventKind::RecyclerEvict => "recycler.evict",
            EventKind::RecyclerInvalidate => "recycler.invalidate",
            EventKind::CrackPartition => "crack.partition",
            EventKind::CrackMerge => "crack.merge",
            EventKind::WalAppend => "wal.append",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Recover => "recover",
            EventKind::ServerAccept => "server.accept",
            EventKind::ServerHandshake => "server.handshake",
            EventKind::ServerStatement => "server.statement",
            EventKind::ServerShed => "server.shed",
            EventKind::ServerShutdown => "server.shutdown",
            EventKind::ReplSubscribe => "repl.subscribe",
            EventKind::ReplShip => "repl.ship",
            EventKind::ReplBootstrap => "repl.bootstrap",
            EventKind::ReplApply => "repl.apply",
            EventKind::ReplCaughtUp => "repl.caughtup",
            EventKind::ReplPromote => "repl.promote",
            EventKind::ShardScatter => "shard.scatter",
            EventKind::ShardFragment => "shard.fragment",
            EventKind::ShardGather => "shard.gather",
            EventKind::ShardRoute => "shard.route",
            EventKind::ShardUnavailable => "shard.unavailable",
            EventKind::HaSuspect => "ha.suspect",
            EventKind::HaDegraded => "ha.degraded",
            EventKind::HaPromote => "ha.promote",
            EventKind::HaRecovered => "ha.recovered",
            EventKind::PlanCompile => "plan.compile",
            EventKind::PlanCacheHit => "plan.cache_hit",
        }
    }

    pub fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "instr" => EventKind::Instr,
            "recycler.hit" => EventKind::RecyclerHit,
            "recycler.admit" => EventKind::RecyclerAdmit,
            "recycler.evict" => EventKind::RecyclerEvict,
            "recycler.invalidate" => EventKind::RecyclerInvalidate,
            "crack.partition" => EventKind::CrackPartition,
            "crack.merge" => EventKind::CrackMerge,
            "wal.append" => EventKind::WalAppend,
            "checkpoint" => EventKind::Checkpoint,
            "recover" => EventKind::Recover,
            "server.accept" => EventKind::ServerAccept,
            "server.handshake" => EventKind::ServerHandshake,
            "server.statement" => EventKind::ServerStatement,
            "server.shed" => EventKind::ServerShed,
            "server.shutdown" => EventKind::ServerShutdown,
            "repl.subscribe" => EventKind::ReplSubscribe,
            "repl.ship" => EventKind::ReplShip,
            "repl.bootstrap" => EventKind::ReplBootstrap,
            "repl.apply" => EventKind::ReplApply,
            "repl.caughtup" => EventKind::ReplCaughtUp,
            "repl.promote" => EventKind::ReplPromote,
            "shard.scatter" => EventKind::ShardScatter,
            "shard.fragment" => EventKind::ShardFragment,
            "shard.gather" => EventKind::ShardGather,
            "shard.route" => EventKind::ShardRoute,
            "shard.unavailable" => EventKind::ShardUnavailable,
            "ha.suspect" => EventKind::HaSuspect,
            "ha.degraded" => EventKind::HaDegraded,
            "ha.promote" => EventKind::HaPromote,
            "ha.recovered" => EventKind::HaRecovered,
            "plan.compile" => EventKind::PlanCompile,
            "plan.cache_hit" => EventKind::PlanCacheHit,
            _ => return None,
        })
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One profiler event. Fields that do not apply to a kind are zero / empty;
/// the JSON line always carries the full schema so consumers never branch
/// on optional keys.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub kind: EventKind,
    /// Instruction index within the executed plan (`-1` for events not tied
    /// to a plan instruction, e.g. recycler evictions).
    pub instr: i64,
    /// The MonetDB-style `module.function` opcode, or the component label
    /// for non-instruction events.
    pub op: String,
    /// Rendered arguments (short form, e.g. `x3, 1927`).
    pub args: String,
    /// Worker thread that ran the instruction (0 for the serial engine).
    pub worker: usize,
    /// Start offset from the run's t0, in nanoseconds.
    pub start_ns: u64,
    /// Wall time of this event, in nanoseconds.
    pub dur_ns: u64,
    /// Input BAT rows (summed over BAT-valued arguments).
    pub rows_in: u64,
    /// Result BAT rows (summed over BAT-valued results).
    pub rows_out: u64,
    /// The planner's compile-time estimate of `rows_out` (`-1` when the
    /// instruction was not estimated — no statistics, or a non-plan
    /// event). `TRACE` diffs this against the measured `rows_out`.
    pub est_rows: i64,
    /// Result heap bytes (summed over BAT-valued results).
    pub bytes_out: u64,
    /// Whether the result came from the recycler instead of being computed.
    pub recycled: bool,
}

impl Default for TraceEvent {
    fn default() -> TraceEvent {
        TraceEvent {
            kind: EventKind::Instr,
            instr: -1,
            op: String::new(),
            args: String::new(),
            worker: 0,
            start_ns: 0,
            dur_ns: 0,
            rows_in: 0,
            rows_out: 0,
            est_rows: -1,
            bytes_out: 0,
            recycled: false,
        }
    }
}

impl TraceEvent {
    /// One JSON object, keys in schema order. This exact shape is pinned by
    /// `tests/golden/` — extending it is a schema change and must update the
    /// golden files and `validate_trace_line` together.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"instr\":{},\"op\":\"{}\",\"args\":\"{}\",\
             \"worker\":{},\"start_ns\":{},\"dur_ns\":{},\"rows_in\":{},\
             \"rows_out\":{},\"est_rows\":{},\"bytes_out\":{},\"recycled\":{}}}",
            self.kind,
            self.instr,
            escape_json(&self.op),
            escape_json(&self.args),
            self.worker,
            self.start_ns,
            self.dur_ns,
            self.rows_in,
            self.rows_out,
            self.est_rows,
            self.bytes_out,
            self.recycled
        )
    }
}

/// The unified profile of one plan execution: what `ExecStats` (serial
/// interpreter) and `DataflowStats` (worker pool) both fold into, plus the
/// per-instruction event timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfiledRun {
    /// Engine label: `serial`, `serial+recycler`, or `dataflow`.
    pub engine: String,
    /// Worker threads the run used (1 for the serial engines).
    pub threads: usize,
    /// Instructions actually executed (excluding recycled ones and the
    /// `io.result` / `language.pass` markers).
    pub executed: u64,
    /// Instructions answered from the recycler.
    pub recycled: u64,
    /// BAT slots released before end of program.
    pub released_early: u64,
    /// Peak number of BAT-valued variables live at once.
    pub peak_live_bats: u64,
    /// Peak instructions in flight at once (1 for the serial engines).
    pub max_inflight: u64,
    /// Wall time of the whole run, nanoseconds.
    pub elapsed_ns: u64,
    /// The per-instruction timeline (plus recycler/cracker events routed
    /// through this run).
    pub events: Vec<TraceEvent>,
}

impl ProfiledRun {
    pub fn new(engine: impl Into<String>, threads: usize) -> ProfiledRun {
        ProfiledRun {
            engine: engine.into(),
            threads,
            max_inflight: 1,
            ..ProfiledRun::default()
        }
    }

    /// The run-summary JSON line (kind `run`), emitted ahead of the events.
    pub fn header_json(&self) -> String {
        format!(
            "{{\"kind\":\"run\",\"engine\":\"{}\",\"threads\":{},\"executed\":{},\
             \"recycled\":{},\"released_early\":{},\"peak_live_bats\":{},\
             \"max_inflight\":{},\"elapsed_ns\":{},\"events\":{}}}",
            escape_json(&self.engine),
            self.threads,
            self.executed,
            self.recycled,
            self.released_early,
            self.peak_live_bats,
            self.max_inflight,
            self.elapsed_ns,
            self.events.len()
        )
    }

    /// The whole run as JSON lines: the `run` header, then one line per
    /// event, each `\n`-terminated.
    pub fn to_json_lines(&self) -> String {
        let mut out = self.header_json();
        out.push('\n');
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Zero every wall-clock field (run and events) so the serialization is
    /// deterministic — the golden-file tests compare this form.
    pub fn zero_timestamps(&mut self) {
        self.elapsed_ns = 0;
        for e in &mut self.events {
            e.start_ns = 0;
            e.dur_ns = 0;
        }
    }

    /// Aggregate the `instr` events per opcode: `(op, total_ns, count)`,
    /// sorted by descending total time. This is the per-phase breakdown the
    /// bench harness and EXPERIMENTS.md report.
    pub fn per_op_breakdown(&self) -> Vec<(String, u64, u64)> {
        let mut agg: Vec<(String, u64, u64)> = Vec::new();
        for e in self.events.iter().filter(|e| e.kind == EventKind::Instr) {
            match agg.iter_mut().find(|(op, _, _)| *op == e.op) {
                Some((_, ns, n)) => {
                    *ns += e.dur_ns;
                    *n += 1;
                }
                None => agg.push((e.op.clone(), e.dur_ns, 1)),
            }
        }
        agg.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        agg
    }

    /// Append the run to `path` as JSON lines. The full block goes through
    /// one `write` call, so concurrent appenders do not interleave; the
    /// [`FlushGuard`] flushes again on drop so a panic between the write
    /// and the close still leaves complete lines behind.
    pub fn append_to_path(&self, path: &str) -> std::io::Result<()> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut guard = FlushGuard::new(f);
        guard.write_all(self.to_json_lines().as_bytes())?;
        guard.finish()
    }

    /// Export to the file named by `MAMMOTH_TRACE`, when set. Returns
    /// whether an export happened; I/O errors are reported, not panicked.
    pub fn export_env(&self) -> std::io::Result<bool> {
        match std::env::var(TRACE_ENV) {
            Ok(path) if !path.is_empty() => {
                self.append_to_path(&path)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

/// A file wrapper that flushes on drop. Trace sinks are append-only side
/// channels: losing buffered bytes on an early return or panic would leave
/// a silently truncated trace, so the drop path flushes best-effort while
/// [`FlushGuard::finish`] reports errors to callers that care.
pub struct FlushGuard {
    file: Option<std::fs::File>,
}

impl FlushGuard {
    pub fn new(file: std::fs::File) -> FlushGuard {
        FlushGuard { file: Some(file) }
    }

    pub fn write_all(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file
            .as_mut()
            .expect("guard not finished")
            .write_all(bytes)
    }

    /// Flush explicitly, consuming the guard and reporting the error.
    pub fn finish(mut self) -> std::io::Result<()> {
        match self.file.take() {
            Some(mut f) => f.flush(),
            None => Ok(()),
        }
    }
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        if let Some(mut f) = self.file.take() {
            let _ = f.flush();
        }
    }
}

/// Escape a string for embedding in a JSON document.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Schema validation (used by the `tracecheck` binary and the CI gate).
// ---------------------------------------------------------------------------

/// A minimal JSON scalar, as far as the trace schema needs.
#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
}

/// Parse one flat JSON object (no nesting — the trace schema is flat).
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| "not a JSON object".to_string())?;
    let bytes = inner.as_bytes();
    let mut pos = 0usize;
    let mut out: Vec<(String, JsonVal)> = Vec::new();

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && (b[*pos] as char).is_whitespace() {
            *pos += 1;
        }
    }
    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err("expected '\"'".into());
        }
        *pos += 1;
        let mut s = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = inner_slice(b, *pos + 1, 4)?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    *pos += 1;
                }
                Some(&c) => {
                    s.push(c as char);
                    *pos += 1;
                }
            }
        }
    }
    fn inner_slice(b: &[u8], start: usize, len: usize) -> Result<&str, String> {
        if start + len > b.len() {
            return Err("truncated escape".into());
        }
        std::str::from_utf8(&b[start..start + len]).map_err(|_| "bad utf8".into())
    }

    loop {
        skip_ws(bytes, &mut pos);
        if pos >= bytes.len() {
            break;
        }
        let key = parse_string(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        pos += 1;
        skip_ws(bytes, &mut pos);
        let val = match bytes.get(pos) {
            Some(b'"') => JsonVal::Str(parse_string(bytes, &mut pos)?),
            Some(b't') if inner.get(pos..pos + 4) == Some("true") => {
                pos += 4;
                JsonVal::Bool(true)
            }
            Some(b'f') if inner.get(pos..pos + 5) == Some("false") => {
                pos += 5;
                JsonVal::Bool(false)
            }
            Some(b'n') if inner.get(pos..pos + 4) == Some("null") => {
                pos += 4;
                JsonVal::Null
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = pos;
                pos += 1;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_digit()
                        || bytes[pos] == b'.'
                        || bytes[pos] == b'e'
                        || bytes[pos] == b'E'
                        || bytes[pos] == b'+'
                        || bytes[pos] == b'-')
                {
                    pos += 1;
                }
                let text = &inner[start..pos];
                JsonVal::Num(text.parse().map_err(|_| format!("bad number {text:?}"))?)
            }
            _ => return Err(format!("bad value for key {key:?}")),
        };
        if out.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key {key:?}"));
        }
        out.push((key, val));
        skip_ws(bytes, &mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            None => break,
            _ => return Err("expected ',' between members".into()),
        }
    }
    Ok(out)
}

fn require<'a>(
    fields: &'a [(String, JsonVal)],
    key: &str,
    line_kind: &str,
) -> Result<&'a JsonVal, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("{line_kind} line missing key {key:?}"))
}

fn require_num(fields: &[(String, JsonVal)], key: &str, line_kind: &str) -> Result<f64, String> {
    match require(fields, key, line_kind)? {
        JsonVal::Num(n) => Ok(*n),
        other => Err(format!(
            "{line_kind} key {key:?} must be a number, got {other:?}"
        )),
    }
}

fn require_str(fields: &[(String, JsonVal)], key: &str, line_kind: &str) -> Result<(), String> {
    match require(fields, key, line_kind)? {
        JsonVal::Str(_) => Ok(()),
        other => Err(format!(
            "{line_kind} key {key:?} must be a string, got {other:?}"
        )),
    }
}

fn require_bool(fields: &[(String, JsonVal)], key: &str, line_kind: &str) -> Result<(), String> {
    match require(fields, key, line_kind)? {
        JsonVal::Bool(_) => Ok(()),
        other => Err(format!(
            "{line_kind} key {key:?} must be a bool, got {other:?}"
        )),
    }
}

const RUN_KEYS: &[&str] = &[
    "kind",
    "engine",
    "threads",
    "executed",
    "recycled",
    "released_early",
    "peak_live_bats",
    "max_inflight",
    "elapsed_ns",
    "events",
];

const EVENT_KEYS: &[&str] = &[
    "kind",
    "instr",
    "op",
    "args",
    "worker",
    "start_ns",
    "dur_ns",
    "rows_in",
    "rows_out",
    "est_rows",
    "bytes_out",
    "recycled",
];

/// Validate one trace line against the schema. Returns the line's kind
/// (`"run"` or an [`EventKind`] name) on success.
pub fn validate_trace_line(line: &str) -> Result<String, String> {
    let fields = parse_flat_object(line)?;
    let kind = match require(&fields, "kind", "trace")? {
        JsonVal::Str(s) => s.clone(),
        other => return Err(format!("key \"kind\" must be a string, got {other:?}")),
    };
    if kind == "run" {
        require_str(&fields, "engine", "run")?;
        for key in &[
            "threads",
            "executed",
            "recycled",
            "released_early",
            "peak_live_bats",
            "max_inflight",
            "elapsed_ns",
            "events",
        ] {
            require_num(&fields, key, "run")?;
        }
        for (k, _) in &fields {
            if !RUN_KEYS.contains(&k.as_str()) {
                return Err(format!("run line has unknown key {k:?} (schema drift)"));
            }
        }
        return Ok(kind);
    }
    if EventKind::parse(&kind).is_none() {
        return Err(format!("unknown event kind {kind:?}"));
    }
    require_str(&fields, "op", "event")?;
    require_str(&fields, "args", "event")?;
    require_bool(&fields, "recycled", "event")?;
    for key in &[
        "instr",
        "worker",
        "start_ns",
        "dur_ns",
        "rows_in",
        "rows_out",
        "est_rows",
        "bytes_out",
    ] {
        require_num(&fields, key, "event")?;
    }
    for (k, _) in &fields {
        if !EVENT_KEYS.contains(&k.as_str()) {
            return Err(format!("event line has unknown key {k:?} (schema drift)"));
        }
    }
    Ok(kind)
}

/// Validate a whole JSON-lines trace document. Returns `(runs, events)`
/// counts; empty lines are ignored.
pub fn validate_trace(text: &str) -> Result<(usize, usize), String> {
    let mut runs = 0usize;
    let mut events = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let kind = validate_trace_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if kind == "run" {
            runs += 1;
        } else {
            events += 1;
        }
    }
    Ok((runs, events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> ProfiledRun {
        let mut run = ProfiledRun::new("serial", 1);
        run.executed = 2;
        run.elapsed_ns = 100;
        run.events = vec![
            TraceEvent {
                instr: 0,
                op: "sql.bind".into(),
                args: "\"t\", \"a\"".into(),
                dur_ns: 10,
                rows_out: 4,
                bytes_out: 32,
                ..TraceEvent::default()
            },
            TraceEvent {
                instr: 1,
                op: "aggr.count".into(),
                args: "x0".into(),
                start_ns: 12,
                dur_ns: 5,
                rows_in: 4,
                ..TraceEvent::default()
            },
        ];
        run
    }

    #[test]
    fn json_roundtrips_through_validator() {
        let run = sample_run();
        let text = run.to_json_lines();
        let (runs, events) = validate_trace(&text).unwrap();
        assert_eq!((runs, events), (1, 2));
        for line in text.lines() {
            validate_trace_line(line).unwrap();
        }
    }

    #[test]
    fn validator_rejects_schema_drift() {
        assert!(validate_trace_line("{\"kind\":\"nope\"}").is_err());
        assert!(validate_trace_line("not json").is_err());
        // missing a required key
        assert!(validate_trace_line("{\"kind\":\"instr\",\"instr\":0}").is_err());
        // unknown extra key
        let mut line = sample_run().events[0].to_json();
        line.insert_str(line.len() - 1, ",\"extra\":1");
        assert!(validate_trace_line(&line).is_err());
        // wrong type
        let bad = "{\"kind\":\"run\",\"engine\":7,\"threads\":1,\"executed\":0,\
                   \"recycled\":0,\"released_early\":0,\"peak_live_bats\":0,\
                   \"max_inflight\":1,\"elapsed_ns\":0,\"events\":0}";
        assert!(validate_trace_line(bad).is_err());
    }

    #[test]
    fn zero_timestamps_makes_serialization_deterministic() {
        let mut a = sample_run();
        let mut b = sample_run();
        b.elapsed_ns = 9999;
        b.events[0].dur_ns = 77;
        b.events[1].start_ns = 1;
        a.zero_timestamps();
        b.zero_timestamps();
        assert_eq!(a.to_json_lines(), b.to_json_lines());
    }

    #[test]
    fn per_op_breakdown_aggregates() {
        let mut run = sample_run();
        run.events.push(TraceEvent {
            instr: 2,
            op: "sql.bind".into(),
            args: "\"t\", \"b\"".into(),
            dur_ns: 30,
            ..TraceEvent::default()
        });
        let b = run.per_op_breakdown();
        assert_eq!(b[0], ("sql.bind".to_string(), 40, 2));
        assert_eq!(b[1], ("aggr.count".to_string(), 5, 1));
    }

    #[test]
    fn escapes_strings() {
        let e = TraceEvent {
            op: "a\"b\\c\n".into(),
            ..TraceEvent::default()
        };
        let line = e.to_json();
        validate_trace_line(&line).unwrap();
        assert!(line.contains("a\\\"b\\\\c\\n"));
    }

    #[test]
    fn env_export_appends() {
        let dir = std::env::temp_dir().join(format!("mammoth-trace-{}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        let run = sample_run();
        run.append_to_path(dir.to_str().unwrap()).unwrap();
        run.append_to_path(dir.to_str().unwrap()).unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        let (runs, events) = validate_trace(&text).unwrap();
        assert_eq!((runs, events), (2, 4));
        std::fs::remove_file(&dir).unwrap();
    }

    #[test]
    fn event_kind_names_roundtrip() {
        for k in [
            EventKind::Instr,
            EventKind::RecyclerHit,
            EventKind::RecyclerAdmit,
            EventKind::RecyclerEvict,
            EventKind::RecyclerInvalidate,
            EventKind::CrackPartition,
            EventKind::CrackMerge,
            EventKind::WalAppend,
            EventKind::Checkpoint,
            EventKind::Recover,
            EventKind::ServerAccept,
            EventKind::ServerHandshake,
            EventKind::ServerStatement,
            EventKind::ServerShed,
            EventKind::ServerShutdown,
            EventKind::ReplSubscribe,
            EventKind::ReplShip,
            EventKind::ReplBootstrap,
            EventKind::ReplApply,
            EventKind::ReplCaughtUp,
            EventKind::ReplPromote,
            EventKind::ShardScatter,
            EventKind::ShardFragment,
            EventKind::ShardGather,
            EventKind::ShardRoute,
            EventKind::ShardUnavailable,
            EventKind::HaSuspect,
            EventKind::HaDegraded,
            EventKind::HaPromote,
            EventKind::HaRecovered,
            EventKind::PlanCompile,
            EventKind::PlanCacheHit,
        ] {
            assert_eq!(EventKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(EventKind::parse("run"), None);
    }
}
