//! Cooperative scans vs. demand-paged LRU scans (§5, [45]).
//!
//! A discrete-event model: a table of `npages` chunks on a device that
//! delivers one chunk per tick, a buffer of `bufpages` chunks, and `Q`
//! concurrent full-table scans (optionally staggered). Consuming a resident
//! chunk is free (the experiment isolates I/O scheduling).
//!
//! * **LRU regime** — every query demands *its own next sequential chunk*;
//!   the device serves the queries round-robin; replacement is LRU. With
//!   more concurrent scans than buffer headroom, queries evict each other's
//!   chunks and each re-reads the whole table: total I/O ≈ `Q × npages`.
//! * **Cooperative regime** — queries only declare *which chunks they still
//!   need*; the Active Buffer Manager loads the chunk relevant to the most
//!   queries (preferring chunks that keep the slowest query moving), and
//!   every interested query consumes it the moment it is resident. One
//!   physical pass can feed everyone: total I/O ≈ `npages`.

/// Scheduling regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanPolicy {
    Lru,
    Cooperative,
}

/// Result of simulating a scan workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanReport {
    /// Chunks physically read from the device.
    pub disk_reads: u64,
    /// Tick at which each query finished (index = query).
    pub completion: Vec<u64>,
    /// Average completion tick.
    pub avg_completion: f64,
    /// Last completion tick (makespan).
    pub makespan: u64,
}

/// Simulate `queries` full scans of a `npages` table through a
/// `bufpages` buffer. `arrivals[i]` is query `i`'s start tick.
pub fn simulate_scans(
    npages: usize,
    bufpages: usize,
    arrivals: &[u64],
    policy: ScanPolicy,
) -> ScanReport {
    assert!(npages > 0 && bufpages > 0);
    let q = arrivals.len();
    // per-query remaining chunks
    let mut needs: Vec<Vec<bool>> = vec![vec![true; npages]; q];
    let mut remaining: Vec<usize> = vec![npages; q];
    let mut next_seq: Vec<usize> = vec![0; q]; // LRU regime cursor
    let mut done_at: Vec<Option<u64>> = vec![None; q];

    // buffer: resident chunks with last-used ticks
    let mut resident: Vec<Option<usize>> = Vec::new(); // chunk per frame
    let mut last_used: Vec<u64> = Vec::new();
    let mut where_is = vec![usize::MAX; npages]; // chunk -> frame (or MAX)

    let mut disk_reads = 0u64;
    let mut tick = 0u64;
    let mut rr = 0usize; // round-robin pointer for the LRU regime

    let active = |done_at: &Vec<Option<u64>>, arrivals: &[u64], i: usize, tick: u64| {
        done_at[i].is_none() && arrivals[i] <= tick
    };

    // consume everything consumable: free, instantaneous
    let consume = |needs: &mut Vec<Vec<bool>>,
                   remaining: &mut Vec<usize>,
                   done_at: &mut Vec<Option<u64>>,
                   next_seq: &mut Vec<usize>,
                   resident: &Vec<Option<usize>>,
                   last_used: &mut Vec<u64>,
                   arrivals: &[u64],
                   policy: ScanPolicy,
                   tick: u64| {
        for i in 0..needs.len() {
            if done_at[i].is_some() || arrivals[i] > tick {
                continue;
            }
            match policy {
                ScanPolicy::Cooperative => {
                    // attach: consume ANY resident chunk still needed
                    for (f, r) in resident.iter().enumerate() {
                        if let Some(c) = r {
                            if needs[i][*c] {
                                needs[i][*c] = false;
                                remaining[i] -= 1;
                                last_used[f] = tick;
                            }
                        }
                    }
                }
                ScanPolicy::Lru => {
                    // strict order: consume only the next sequential chunk
                    while next_seq[i] < needs[i].len() {
                        let c = next_seq[i];
                        let f = resident.iter().position(|r| *r == Some(c));
                        match f {
                            Some(f) => {
                                needs[i][c] = false;
                                remaining[i] -= 1;
                                next_seq[i] += 1;
                                last_used[f] = tick;
                            }
                            None => break,
                        }
                    }
                }
            }
            if remaining[i] == 0 {
                done_at[i] = Some(tick);
            }
        }
    };

    let all_done = |done_at: &Vec<Option<u64>>| done_at.iter().all(|d| d.is_some());

    // guard against pathological infinite loops
    let tick_limit = (npages as u64 + 2) * (q as u64 + 2) * 4 + arrivals.iter().max().unwrap_or(&0);

    while !all_done(&done_at) && tick <= tick_limit {
        consume(
            &mut needs,
            &mut remaining,
            &mut done_at,
            &mut next_seq,
            &resident,
            &mut last_used,
            arrivals,
            policy,
            tick,
        );
        if all_done(&done_at) {
            break;
        }

        // choose the chunk to load this tick
        let choice: Option<usize> = match policy {
            ScanPolicy::Lru => {
                // serve the active queries round-robin: the next miss wins
                let mut pick = None;
                for k in 0..q {
                    let i = (rr + k) % q;
                    if active(&done_at, arrivals, i, tick) && next_seq[i] < npages {
                        pick = Some(next_seq[i]);
                        rr = (i + 1) % q;
                        break;
                    }
                }
                pick
            }
            ScanPolicy::Cooperative => {
                // relevance: the chunk needed by the most active queries
                // (ties broken toward lower chunk id for determinism)
                let mut best: Option<(usize, usize)> = None;
                for c in 0..npages {
                    if where_is[c] != usize::MAX {
                        continue;
                    }
                    let rel = (0..q)
                        .filter(|&i| active(&done_at, arrivals, i, tick) && needs[i][c])
                        .count();
                    if rel > 0 && best.is_none_or(|(_, b)| rel > b) {
                        best = Some((c, rel));
                    }
                }
                best.map(|(c, _)| c)
            }
        };

        if let Some(chunk) = choice {
            if where_is[chunk] == usize::MAX {
                disk_reads += 1;
                // place into a frame
                let frame = if resident.len() < bufpages {
                    resident.push(None);
                    last_used.push(tick);
                    resident.len() - 1
                } else {
                    // evict: LRU regime uses last_used; cooperative evicts
                    // the chunk with the lowest remaining relevance
                    match policy {
                        ScanPolicy::Lru => {
                            (0..resident.len()).min_by_key(|&f| last_used[f]).unwrap()
                        }
                        ScanPolicy::Cooperative => (0..resident.len())
                            .min_by_key(|&f| {
                                let c = resident[f].unwrap();
                                (0..q)
                                    .filter(|&i| active(&done_at, arrivals, i, tick) && needs[i][c])
                                    .count()
                            })
                            .unwrap(),
                    }
                };
                if let Some(old) = resident[frame] {
                    where_is[old] = usize::MAX;
                }
                resident[frame] = Some(chunk);
                where_is[chunk] = frame;
                last_used[frame] = tick;
            }
        }
        tick += 1;
    }
    // final consumption pass
    consume(
        &mut needs,
        &mut remaining,
        &mut done_at,
        &mut next_seq,
        &resident,
        &mut last_used,
        arrivals,
        policy,
        tick,
    );

    let completion: Vec<u64> = done_at.iter().map(|d| d.unwrap_or(tick)).collect();
    let avg = completion.iter().sum::<u64>() as f64 / completion.len().max(1) as f64;
    ScanReport {
        disk_reads,
        makespan: completion.iter().copied().max().unwrap_or(0),
        avg_completion: avg,
        completion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_query_costs_one_pass_either_way() {
        for policy in [ScanPolicy::Lru, ScanPolicy::Cooperative] {
            let r = simulate_scans(100, 10, &[0], policy);
            assert_eq!(r.disk_reads, 100, "{policy:?}");
            assert_eq!(r.completion.len(), 1);
        }
    }

    #[test]
    fn concurrent_scans_cooperate() {
        // 8 staggered scans (the realistic case: queries arrive over time),
        // buffer is 1/8 of the table. Under LRU each query insists on its
        // own position and they evict each other; under the cooperative
        // regime arrivals attach to the ongoing pass.
        let arrivals: Vec<u64> = (0..8).map(|i| i * 30).collect();
        let lru = simulate_scans(256, 32, &arrivals, ScanPolicy::Lru);
        let coop = simulate_scans(256, 32, &arrivals, ScanPolicy::Cooperative);
        assert!(
            lru.disk_reads >= 2 * coop.disk_reads,
            "lru {} vs coop {}",
            lru.disk_reads,
            coop.disk_reads
        );
        assert!(coop.makespan <= lru.makespan);
    }

    #[test]
    fn in_sync_scans_share_even_under_lru() {
        // identical arrival + round-robin service keeps LRU queries in
        // lockstep, so sharing happens by accident; cooperative is never
        // worse
        let arrivals = vec![0u64; 2];
        let lru = simulate_scans(64, 32, &arrivals, ScanPolicy::Lru);
        let coop = simulate_scans(64, 32, &arrivals, ScanPolicy::Cooperative);
        assert!(coop.disk_reads <= lru.disk_reads);
    }

    #[test]
    fn staggered_arrivals_attach_mid_scan() {
        // the second query arrives when the first is half done; under the
        // cooperative regime it attaches to the ongoing pass and only the
        // chunks the first pass already consumed need re-reading
        let coop = simulate_scans(100, 10, &[0, 50], ScanPolicy::Cooperative);
        assert!(
            coop.disk_reads < 180,
            "shared tail should save reads: {}",
            coop.disk_reads
        );
        let lru = simulate_scans(100, 10, &[0, 50], ScanPolicy::Lru);
        assert!(coop.disk_reads <= lru.disk_reads);
    }

    #[test]
    fn all_queries_complete() {
        for policy in [ScanPolicy::Lru, ScanPolicy::Cooperative] {
            let r = simulate_scans(40, 4, &[0, 3, 9, 27], policy);
            assert_eq!(r.completion.len(), 4);
            assert!(r.makespan > 0);
            // every query saw every page
            assert!(r.disk_reads >= 40);
        }
    }
}
