//! A pin/unpin buffer manager with LRU replacement.

use mammoth_types::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Pool page size (distinct from the row-store page size on purpose —
/// scans here are column chunks).
pub const POOL_PAGE_SIZE: usize = 4096;

/// A page number on the simulated device.
pub type PageId = u64;

/// A simulated disk: a byte store that counts physical I/O.
#[derive(Debug, Default)]
pub struct SimDisk {
    pages: Mutex<HashMap<PageId, Vec<u8>>>,
    reads: Mutex<u64>,
    writes: Mutex<u64>,
}

impl SimDisk {
    pub fn new() -> Arc<SimDisk> {
        Arc::new(SimDisk::default())
    }

    pub fn write_page(&self, id: PageId, data: Vec<u8>) {
        assert!(data.len() <= POOL_PAGE_SIZE);
        *self.writes.lock() += 1;
        self.pages.lock().insert(id, data);
    }

    pub fn read_page(&self, id: PageId) -> Result<Vec<u8>> {
        *self.reads.lock() += 1;
        self.pages
            .lock()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::Io(format!("page {id} does not exist")))
    }

    /// Physical reads performed so far.
    pub fn read_count(&self) -> u64 {
        *self.reads.lock()
    }

    pub fn write_count(&self) -> u64 {
        *self.writes.lock()
    }
}

#[derive(Debug)]
struct Frame {
    page: PageId,
    data: Vec<u8>,
    pins: u32,
    last_used: u64,
    dirty: bool,
}

/// A fixed-capacity buffer pool.
#[derive(Debug)]
pub struct BufferPool {
    disk: Arc<SimDisk>,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    pub fn new(disk: Arc<SimDisk>, capacity_pages: usize) -> BufferPool {
        BufferPool {
            disk,
            frames: Vec::with_capacity(capacity_pages),
            map: HashMap::new(),
            capacity: capacity_pages.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            return 0.0;
        }
        self.hits as f64 / (self.hits + self.misses) as f64
    }

    /// Pin a page, reading it from disk if absent. The returned data is a
    /// copy; `unpin` releases the frame for replacement.
    pub fn pin(&mut self, page: PageId) -> Result<Vec<u8>> {
        self.clock += 1;
        if let Some(&f) = self.map.get(&page) {
            self.hits += 1;
            self.frames[f].pins += 1;
            self.frames[f].last_used = self.clock;
            return Ok(self.frames[f].data.clone());
        }
        self.misses += 1;
        let data = self.disk.read_page(page)?;
        let idx = self.allocate_frame(page)?;
        self.frames[idx] = Frame {
            page,
            data: data.clone(),
            pins: 1,
            last_used: self.clock,
            dirty: false,
        };
        self.map.insert(page, idx);
        Ok(data)
    }

    /// Release a pin; `dirty` writes back on eviction.
    pub fn unpin(&mut self, page: PageId, dirty: bool) -> Result<()> {
        let &f = self
            .map
            .get(&page)
            .ok_or_else(|| Error::Internal(format!("unpin of unmapped page {page}")))?;
        let frame = &mut self.frames[f];
        if frame.pins == 0 {
            return Err(Error::Internal(format!("unpin of unpinned page {page}")));
        }
        frame.pins -= 1;
        frame.dirty |= dirty;
        Ok(())
    }

    fn allocate_frame(&mut self, _for_page: PageId) -> Result<usize> {
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page: u64::MAX,
                data: Vec::new(),
                pins: 0,
                last_used: 0,
                dirty: false,
            });
            return Ok(self.frames.len() - 1);
        }
        // LRU among unpinned frames
        let victim = self
            .frames
            .iter()
            .enumerate()
            .filter(|(_, fr)| fr.pins == 0)
            .min_by_key(|(_, fr)| fr.last_used)
            .map(|(i, _)| i)
            .ok_or_else(|| Error::Internal("all frames pinned".into()))?;
        let old = &self.frames[victim];
        if old.dirty {
            self.disk.write_page(old.page, old.data.clone());
        }
        self.map.remove(&old.page);
        Ok(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_disk(pages: u64) -> Arc<SimDisk> {
        let d = SimDisk::new();
        for p in 0..pages {
            d.write_page(p, vec![p as u8; 16]);
        }
        d
    }

    #[test]
    fn pin_reads_through_once() {
        let disk = seeded_disk(4);
        let base_reads = disk.read_count();
        let mut pool = BufferPool::new(Arc::clone(&disk), 2);
        let d = pool.pin(1).unwrap();
        assert_eq!(d, vec![1u8; 16]);
        pool.unpin(1, false).unwrap();
        pool.pin(1).unwrap();
        pool.unpin(1, false).unwrap();
        assert_eq!(disk.read_count() - base_reads, 1, "second pin is a hit");
        assert_eq!(pool.hit_rate(), 0.5);
    }

    #[test]
    fn lru_evicts_coldest_unpinned() {
        let disk = seeded_disk(4);
        let mut pool = BufferPool::new(Arc::clone(&disk), 2);
        pool.pin(0).unwrap();
        pool.unpin(0, false).unwrap();
        pool.pin(1).unwrap();
        pool.unpin(1, false).unwrap();
        pool.pin(1).unwrap(); // refresh page 1
        pool.unpin(1, false).unwrap();
        let r = disk.read_count();
        pool.pin(2).unwrap(); // evicts page 0 (LRU)
        pool.unpin(2, false).unwrap();
        pool.pin(1).unwrap(); // still resident
        pool.unpin(1, false).unwrap();
        assert_eq!(disk.read_count(), r + 1);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let disk = seeded_disk(4);
        let mut pool = BufferPool::new(Arc::clone(&disk), 2);
        pool.pin(0).unwrap();
        pool.pin(1).unwrap();
        // all frames pinned: next allocation fails
        assert!(pool.pin(2).is_err());
        pool.unpin(0, false).unwrap();
        assert!(pool.pin(2).is_ok());
    }

    #[test]
    fn dirty_pages_write_back() {
        let disk = seeded_disk(4);
        let mut pool = BufferPool::new(Arc::clone(&disk), 1);
        pool.pin(0).unwrap();
        pool.unpin(0, true).unwrap();
        let w = disk.write_count();
        pool.pin(1).unwrap(); // evicts dirty page 0
        assert_eq!(disk.write_count(), w + 1);
    }

    #[test]
    fn unpin_errors() {
        let disk = seeded_disk(2);
        let mut pool = BufferPool::new(disk, 2);
        assert!(pool.unpin(0, false).is_err());
        pool.pin(0).unwrap();
        pool.unpin(0, false).unwrap();
        assert!(pool.unpin(0, false).is_err(), "double unpin");
        assert!(pool.pin(99).is_err(), "missing page");
    }
}
