//! Buffer management and cooperative scans (§5).
//!
//! "Rather than relying on memory-mapped files for I/O, X100 uses an
//! explicit buffer manager optimized for sequential I/O … as well as the
//! cooperative scan I/O scheduling where multiple active queries cooperate
//! to create synergy rather than competition for I/O resources."
//!
//! * [`pool`] — a conventional pin/unpin buffer manager with LRU
//!   replacement over a simulated disk that counts physical reads
//!   (substitution documented in DESIGN.md: a virtual device instead of a
//!   spindle — the *policy* is what the experiment measures).
//! * [`coop`] — a discrete-event model of N concurrent scans under (a) the
//!   traditional LRU demand-paging regime, where each query insists on its
//!   own sequential position, and (b) the Active Buffer Manager regime of
//!   cooperative scans, where queries attach to whatever relevant chunk is
//!   resident and the scheduler loads the chunk wanted by the most queries.

pub mod coop;
pub mod pool;

pub use coop::{simulate_scans, ScanPolicy, ScanReport};
pub use pool::{BufferPool, PageId, SimDisk, POOL_PAGE_SIZE};
