//! The coordinator's network front end.
//!
//! Speaks the same framed protocol as `mammoth-server`, so every existing
//! client (including [`mammoth_server::Client`]) talks to a shard cluster
//! unchanged — the coordinator *is* just another server from the outside.
//! Differences from the single-node server:
//!
//! * thread-per-connection, no admission queue — the shards themselves
//!   apply admission control; the coordinator's job is fan-out, and its
//!   per-statement deadline already bounds how long a connection can hold
//!   a thread inside a statement;
//! * `Fragment` and `Subscribe` are refused: the coordinator is the top
//!   of the tree, not a scatter target or a replication primary;
//! * statement failures carry the coordinator's typed codes —
//!   `SHARD_UNAVAILABLE` for a dead or deadline-blown shard, shard error
//!   frames passed through verbatim.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use mammoth_server::frame::{read_frame, write_frame};
use mammoth_server::{ClientMsg, ErrorCode, ServerMsg, MIN_PROTO_VERSION, PROTO_VERSION};
use mammoth_types::{Error, Result};

use crate::coordinator::{CoordError, Coordinator};

/// What the coordinator's listener advertises in its `Hello`.
pub const COORDINATOR_NAME: &str = "mammoth-shard";

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Require this token at login when set.
    pub auth_token: Option<String>,
    /// Honor [`ClientMsg::Shutdown`] from clients (daemon mode).
    pub allow_remote_shutdown: bool,
}

impl FrontConfig {
    pub fn new(addr: impl Into<String>) -> FrontConfig {
        FrontConfig {
            addr: addr.into(),
            auth_token: None,
            allow_remote_shutdown: false,
        }
    }
}

struct Inner {
    coordinator: Arc<Coordinator>,
    cfg: FrontConfig,
    shutdown: AtomicBool,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running coordinator front end. Call [`FrontEnd::shutdown`] (or
/// [`FrontEnd::wait`]) to drain and join; dropping it leaks the listener
/// thread until process exit, like `Server`.
pub struct FrontEnd {
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl FrontEnd {
    /// Bind, start the acceptor, return immediately.
    pub fn start(cfg: FrontConfig, coordinator: Arc<Coordinator>) -> Result<FrontEnd> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            coordinator,
            cfg,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("shard-acceptor".into())
                .spawn(move || acceptor_loop(&inner, listener))?
        };
        Ok(FrontEnd {
            inner,
            acceptor: Some(acceptor),
            local_addr,
        })
    }

    /// The bound address (port 0 resolved to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Flip the drain flag; returns immediately. Idempotent.
    pub fn request_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until a client requests shutdown (or a local
    /// [`FrontEnd::request_shutdown`]), then drain and finish.
    pub fn wait(self) -> Result<()> {
        while !self.inner.draining() {
            std::thread::sleep(Duration::from_millis(25));
        }
        self.shutdown()
    }

    /// Stop accepting, let in-flight statements finish, join every
    /// connection thread, and flush the coordinator's trace.
    pub fn shutdown(mut self) -> Result<()> {
        self.request_shutdown();
        if let Some(a) = self.acceptor.take() {
            a.join()
                .map_err(|_| Error::Internal("shard acceptor thread panicked".into()))?;
        }
        let conns: Vec<JoinHandle<()>> = {
            let mut g = self.inner.conns.lock().unwrap_or_else(|e| e.into_inner());
            g.drain(..).collect()
        };
        for c in conns {
            c.join()
                .map_err(|_| Error::Internal("shard connection thread panicked".into()))?;
        }
        self.inner.coordinator.stop_health_monitor();
        self.inner.coordinator.flush_trace()?;
        Ok(())
    }
}

fn acceptor_loop(inner: &Arc<Inner>, listener: TcpListener) {
    loop {
        if inner.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let inner2 = inner.clone();
                let handle =
                    std::thread::Builder::new()
                        .name("shard-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(&inner2, stream);
                        });
                if let Ok(h) = handle {
                    inner
                        .conns
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(h);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

enum Wait {
    Data,
    Closed,
    Drain,
}

/// Idle-poll for the next frame without consuming bytes (same discipline
/// as the server): the drain flag is observed between statements, but a
/// read timeout can never fire mid-frame and desynchronize the stream.
fn wait_for_data(stream: &TcpStream, inner: &Inner) -> io::Result<Wait> {
    stream.set_read_timeout(Some(Duration::from_millis(25)))?;
    let mut b = [0u8; 1];
    loop {
        match stream.peek(&mut b) {
            Ok(0) => return Ok(Wait::Closed),
            Ok(_) => {
                stream.set_read_timeout(Some(Duration::from_secs(30)))?;
                return Ok(Wait::Data);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if inner.draining() {
                    return Ok(Wait::Drain);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn send(stream: &mut TcpStream, msg: &ServerMsg) -> Result<()> {
    write_frame(stream, &msg.encode())
}

fn refuse(stream: &mut TcpStream, code: ErrorCode, msg: &str) {
    let _ = write_frame(
        stream,
        &ServerMsg::Err {
            code,
            message: msg.into(),
        }
        .encode(),
    );
}

/// Map a coordinator outcome onto a protocol frame.
fn response_frame(out: std::result::Result<mammoth_sql::QueryOutput, CoordError>) -> ServerMsg {
    match out {
        Ok(out) => ServerMsg::from_output(out),
        Err(CoordError::Unavailable(m)) => ServerMsg::Err {
            code: ErrorCode::ShardUnavailable,
            message: m,
        },
        Err(CoordError::Remote { code, message }) => ServerMsg::Err { code, message },
        Err(CoordError::Sql(e)) => ServerMsg::Err {
            code: ErrorCode::Sql,
            message: e.to_string(),
        },
    }
}

fn serve_connection(inner: &Inner, mut stream: TcpStream) -> Result<()> {
    if inner.draining() {
        refuse(
            &mut stream,
            ErrorCode::ShuttingDown,
            "coordinator shutting down",
        );
        return Ok(());
    }
    send(
        &mut stream,
        &ServerMsg::Hello {
            version: PROTO_VERSION,
            server: COORDINATOR_NAME.into(),
        },
    )?;
    match wait_for_data(&stream, inner)? {
        Wait::Data => {}
        Wait::Closed => return Ok(()),
        Wait::Drain => {
            refuse(
                &mut stream,
                ErrorCode::ShuttingDown,
                "coordinator shutting down",
            );
            return Ok(());
        }
    }
    let payload = read_frame(&mut stream)?;
    match ClientMsg::decode(&payload) {
        Ok(ClientMsg::Login { version, token, .. }) => {
            if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) {
                refuse(
                    &mut stream,
                    ErrorCode::Protocol,
                    &format!(
                        "protocol version {version} unsupported (coordinator speaks \
                         {MIN_PROTO_VERSION}..={PROTO_VERSION})"
                    ),
                );
                return Ok(());
            }
            if let Some(expected) = &inner.cfg.auth_token {
                if &token != expected {
                    refuse(&mut stream, ErrorCode::AuthFailed, "bad auth token");
                    return Ok(());
                }
            }
        }
        Ok(_) => {
            refuse(
                &mut stream,
                ErrorCode::Protocol,
                "expected Login after Hello",
            );
            return Ok(());
        }
        Err(e) => {
            refuse(
                &mut stream,
                ErrorCode::Protocol,
                &format!("bad login frame: {e}"),
            );
            return Ok(());
        }
    }
    send(&mut stream, &ServerMsg::Ready)?;

    loop {
        match wait_for_data(&stream, inner)? {
            Wait::Data => {
                if inner.draining() {
                    refuse(
                        &mut stream,
                        ErrorCode::ShuttingDown,
                        "coordinator shutting down",
                    );
                    return Ok(());
                }
            }
            Wait::Closed => return Ok(()),
            Wait::Drain => {
                refuse(
                    &mut stream,
                    ErrorCode::ShuttingDown,
                    "coordinator shutting down",
                );
                return Ok(());
            }
        }
        let payload = read_frame(&mut stream)?;
        match ClientMsg::decode(&payload) {
            Ok(ClientMsg::Query { sql }) => {
                let msg = response_frame(inner.coordinator.execute(&sql));
                send(&mut stream, &msg)?;
            }
            Ok(ClientMsg::Quit) => return Ok(()),
            Ok(ClientMsg::Shutdown) => {
                if inner.cfg.allow_remote_shutdown {
                    send(&mut stream, &ServerMsg::Ok)?;
                    inner.shutdown.store(true, Ordering::SeqCst);
                } else {
                    refuse(
                        &mut stream,
                        ErrorCode::Protocol,
                        "remote shutdown disabled on this coordinator",
                    );
                }
            }
            // The v4 prepared-statement verbs are sugar over the SQL
            // forms, so the coordinator's own prepared registry (see
            // `Coordinator::dispatch`) serves wire clients too.
            Ok(ClientMsg::Prepare { name, sql }) => {
                let text = format!("PREPARE {name} AS {sql}");
                let msg = match response_frame(inner.coordinator.execute(&text)) {
                    ServerMsg::Ok => {
                        let nparams = mammoth_sql::parse_sql(&text)
                            .map(|s| s.param_count() as u32)
                            .unwrap_or(0);
                        ServerMsg::Prepared { nparams }
                    }
                    other => other,
                };
                send(&mut stream, &msg)?;
            }
            Ok(ClientMsg::ExecutePrepared { name, args }) => {
                let lits: Vec<String> = args.iter().map(mammoth_sql::sql_literal).collect();
                let text = if lits.is_empty() {
                    format!("EXECUTE {name}")
                } else {
                    format!("EXECUTE {name} ({})", lits.join(", "))
                };
                let msg = response_frame(inner.coordinator.execute(&text));
                send(&mut stream, &msg)?;
            }
            Ok(ClientMsg::Deallocate { name }) => {
                let msg = response_frame(inner.coordinator.execute(&format!("DEALLOCATE {name}")));
                send(&mut stream, &msg)?;
            }
            Ok(ClientMsg::Fragment { .. }) => {
                refuse(
                    &mut stream,
                    ErrorCode::Protocol,
                    "the coordinator is not a scatter target; send Query",
                );
            }
            Ok(ClientMsg::Subscribe { .. }) => {
                refuse(
                    &mut stream,
                    ErrorCode::Protocol,
                    "the coordinator does not serve a WAL stream",
                );
            }
            Ok(ClientMsg::Login { .. }) => {
                refuse(&mut stream, ErrorCode::Protocol, "already logged in");
            }
            Err(e) => {
                refuse(&mut stream, ErrorCode::Protocol, &format!("bad frame: {e}"));
                return Ok(());
            }
        }
    }
}
