//! The scatter-gather coordinator.
//!
//! A [`Coordinator`] owns one client connection per shard (`mammoth-server`
//! processes it does not manage) plus a **planning catalog**: the sharded
//! schemas with no rows. Every statement is parsed and compiled exactly
//! once, here, and verified with the MAL analysis tier before any fragment
//! touches the network — a shard never sees a plan the coordinator could
//! not prove well-formed.
//!
//! Execution strategies, in the order [`Coordinator::execute`] tries them:
//!
//! * **DDL** (`CREATE`/`DROP TABLE`, `CHECKPOINT`) broadcasts the raw
//!   statement to every shard and mirrors the change into the planning
//!   catalog and partition map.
//! * **DML** routes by partition key: an `INSERT` splits its rows by
//!   [`shard_of`] and ships each shard only its subset (durable via that
//!   shard's WAL); a `DELETE` whose predicate pins the key goes to the one
//!   owning shard, anything else broadcasts.
//! * **SELECT** scatters read-only fragments (protocol v3 `Fragment`
//!   messages) and merges through the same `mat.pack` / `mat.packsum`
//!   machinery the in-process mergetable uses — see
//!   [`mammoth_mal::combine`]. Lossless scalar aggregates merge from
//!   one-row partials; everything else gathers column fragments and
//!   re-runs the original verified plan against the recombined catalog.
//!
//! **Partial failure is typed, never silent**: if any shard is
//! unreachable or times out mid-scatter the statement fails with
//! [`CoordError::Unavailable`] (wire code `SHARD_UNAVAILABLE`); no
//! truncated result table is ever returned. Each statement is bounded by
//! the configured deadline via per-connection read timeouts.
//!
//! A subtlety worth keeping: the gather path optimizes the *original*
//! plan with [`column_facts`] of the **rebuilt** catalog (real gathered
//! rows), never the planning catalog — empty-table facts (0 rows,
//! degenerate min/max) would license rewrites that are unsound for the
//! data actually shipped back.
//!
//! **High availability** (opt-in via [`CoordinatorConfig::replicas`]): a
//! background health monitor ([`Coordinator::start_health_monitor`])
//! probes every primary each `probe_interval`; `suspect_after`
//! consecutive misses confirm a death (`ha.suspect` → `ha.degraded`
//! trace events). While a shard is degraded its **reads** are served by
//! its replica — bounded staleness, never a torn result — and its
//! **writes** fail fast with `SHARD_UNAVAILABLE` rather than land on a
//! WAL that would not survive failover. The monitor then drives the
//! replica's `PROMOTE` path (`ha.promote`), polls `EXPLAIN REPLICATION`
//! until `role=primary`, and swaps the promoted replica in as the
//! shard's new primary (`ha.recovered`), restoring write availability.
//! `EXPLAIN SHARDING` surfaces the whole state machine in its `health`
//! and `replica` columns.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mammoth_algebra::CmpOp;
use mammoth_mal::{
    aggregate_combine, column_facts, default_pipeline, default_pipeline_with_props, gather_combine,
    partial_column, shard_partials_table, shard_table_name, verify_with_catalog, GatherColumn,
    Interpreter, MalValue, PartialMerge, Program,
};
use mammoth_planner::normalize_sql;
use mammoth_server::{Client, ClientError, ErrorCode, Response, RetryPolicy};
use mammoth_sql::{
    classify, compile_select, delete_sql, insert_sql, parse_sql, render_outputs, select_sql,
    wants_sharding_status, GatherTable, Predicate, QueryOutput, ScatterPlan, SelectStmt, Statement,
};
use mammoth_storage::{Bat, Catalog, Table};
use mammoth_types::{
    ColumnDef, Error, EventKind, LogicalType, ProfiledRun, TableSchema, TraceEvent, Value,
};

use crate::partition::{shard_of, PartitionMap, PartitionSpec};

/// How to reach and pace the shard set.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Shard addresses (`host:port`), one `mammoth-server` each. Shard
    /// index in this vector is the shard id the partitioner targets — the
    /// order must be stable across coordinator restarts.
    pub shards: Vec<String>,
    /// Auth token forwarded to every shard (empty when shards run open).
    pub token: String,
    /// Per-statement bound: read timeout on every shard connection. A
    /// shard that dies mid-scatter surfaces as `SHARD_UNAVAILABLE` within
    /// roughly this bound, never as a hang.
    pub deadline: Duration,
    /// Reconnect discipline for (re)dialing a shard. Keep it short — the
    /// retries run inside the statement's deadline budget.
    pub retry: RetryPolicy,
    /// Optional replica address per shard, index-aligned with `shards`
    /// (missing or `None` entries leave that shard without a failover
    /// target). A replica serves degraded reads while its primary is
    /// down and is the `PROMOTE` target once the health monitor confirms
    /// the death.
    pub replicas: Vec<Option<String>>,
    /// How often the health monitor probes each primary; also bounds one
    /// probe's connect timeout.
    pub probe_interval: Duration,
    /// Consecutive missed probes before a primary is declared dead. The
    /// first miss marks the shard *suspect* (`ha.suspect`); this many
    /// marks it *degraded* (`ha.degraded`) and starts failover when a
    /// replica is configured.
    pub suspect_after: u32,
    /// Budget for a replica to reach `role=primary` after `PROMOTE`.
    pub promote_timeout: Duration,
}

impl CoordinatorConfig {
    /// Sensible defaults for `shards`: 2 s deadline, 2 quick dial
    /// attempts, no replicas, 100 ms probes, death after 3 misses.
    pub fn new(shards: Vec<String>) -> CoordinatorConfig {
        CoordinatorConfig {
            shards,
            token: String::new(),
            deadline: Duration::from_secs(2),
            retry: RetryPolicy {
                attempts: 2,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(50),
                seed: 0,
            },
            replicas: Vec::new(),
            probe_interval: Duration::from_millis(100),
            suspect_after: 3,
            promote_timeout: Duration::from_secs(5),
        }
    }
}

/// Per-shard availability as the health monitor sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    /// Probes succeed; every statement routes to the primary.
    Healthy,
    /// `n` consecutive probes missed, still below the death threshold.
    /// Statements keep routing to the primary (it may just be slow).
    Suspect(u32),
    /// Confirmed unreachable: reads degrade to the replica, writes fail
    /// fast with `SHARD_UNAVAILABLE`.
    Degraded,
    /// Failover in flight: the replica has been told to `PROMOTE`; reads
    /// still degrade to it (promotion never blocks its read path).
    Promoting,
}

impl Health {
    fn label(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Suspect(_) => "suspect",
            Health::Degraded => "degraded",
            Health::Promoting => "promoting",
        }
    }

    /// Is the primary confirmed dead (reads reroute, writes fail fast)?
    fn is_down(self) -> bool {
        matches!(self, Health::Degraded | Health::Promoting)
    }
}

/// How a coordinated statement fails.
#[derive(Debug)]
pub enum CoordError {
    /// A shard could not be dialed, died mid-statement, or blew the
    /// deadline. Maps to the wire code `SHARD_UNAVAILABLE`; the statement
    /// has no (even partial) result.
    Unavailable(String),
    /// A shard answered with an error frame; passed through verbatim.
    Remote { code: ErrorCode, message: String },
    /// The statement itself is wrong (parse, bind, unsupported shape) or
    /// the coordinator's own merge failed.
    Sql(Error),
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::Unavailable(m) => write!(f, "SHARD_UNAVAILABLE: {m}"),
            CoordError::Remote { code, message } => write!(f, "{code}: {message}"),
            CoordError::Sql(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoordError {}

fn internal(e: impl std::fmt::Display) -> CoordError {
    CoordError::Sql(Error::Internal(e.to_string()))
}

/// The scatter-gather coordinator. Thread-safe: the front end serves each
/// client connection from its own thread against one shared `Coordinator`.
pub struct Coordinator {
    cfg: CoordinatorConfig,
    /// One lazily-dialed connection slot per shard primary; a slot is
    /// cleared on any transport error so the next statement redials.
    pools: Vec<Mutex<Option<Client>>>,
    /// Current primary address per shard. Starts as `cfg.shards` and is
    /// swapped in place when a replica is promoted.
    addrs: Vec<Mutex<String>>,
    /// Failover target per shard; consumed (set `None`) on promotion —
    /// the promoted node is a primary now, not a replica.
    replicas: Vec<Mutex<Option<String>>>,
    /// Lazily-dialed replica connections for degraded reads.
    rpools: Vec<Mutex<Option<Client>>>,
    health: Vec<Mutex<Health>>,
    monitor: Mutex<Option<JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
    /// Schemas only — zero rows. Compilation and verification target.
    planning: Mutex<Catalog>,
    parts: Mutex<PartitionMap>,
    /// Compiled-and-verified scatter plans keyed by normalized statement
    /// text. A repeated statement — ad-hoc or `EXECUTE`d — compiles once
    /// per coordinator lifetime. No per-column premises are needed here:
    /// the planning catalog holds schemas only, so it changes exactly on
    /// DDL, which clears the cache wholesale.
    plans: Mutex<HashMap<String, Arc<PlannedSelect>>>,
    /// `PREPARE`d statements by lowercased name.
    prepared: Mutex<HashMap<String, PreparedStmt>>,
    next_frag: AtomicU64,
    events: Mutex<Vec<TraceEvent>>,
    t0: Instant,
    stmts: AtomicU64,
}

/// One cached scatter compilation: the verified single-node program, its
/// output names, the scatter strategy and the referenced table schemas.
struct PlannedSelect {
    prog: Program,
    names: Vec<String>,
    plan: ScatterPlan,
    schemas: Vec<TableSchema>,
}

/// A coordinator-side prepared statement.
#[derive(Debug, Clone)]
struct PreparedStmt {
    stmt: Statement,
    nparams: usize,
}

impl Coordinator {
    pub fn new(cfg: CoordinatorConfig) -> Coordinator {
        assert!(
            !cfg.shards.is_empty(),
            "coordinator needs at least one shard"
        );
        let n = cfg.shards.len();
        let pools = cfg.shards.iter().map(|_| Mutex::new(None)).collect();
        let addrs = cfg.shards.iter().map(|a| Mutex::new(a.clone())).collect();
        let replicas = (0..n)
            .map(|i| Mutex::new(cfg.replicas.get(i).cloned().flatten()))
            .collect();
        let rpools = (0..n).map(|_| Mutex::new(None)).collect();
        let health = (0..n).map(|_| Mutex::new(Health::Healthy)).collect();
        Coordinator {
            cfg,
            pools,
            addrs,
            replicas,
            rpools,
            health,
            monitor: Mutex::new(None),
            stop: Arc::new(AtomicBool::new(false)),
            planning: Mutex::new(Catalog::new()),
            parts: Mutex::new(PartitionMap::default()),
            plans: Mutex::new(HashMap::new()),
            prepared: Mutex::new(HashMap::new()),
            next_frag: AtomicU64::new(1),
            events: Mutex::new(Vec::new()),
            t0: Instant::now(),
            stmts: AtomicU64::new(0),
        }
    }

    pub fn nshards(&self) -> usize {
        self.cfg.shards.len()
    }

    /// Statements executed so far (including failed ones).
    pub fn statements(&self) -> u64 {
        self.stmts.load(Ordering::Relaxed)
    }

    fn trace(&self, kind: EventKind, args: String, started: Instant, rows: u64) {
        let now = Instant::now();
        let ev = TraceEvent {
            kind,
            op: kind.as_str().into(),
            args,
            start_ns: started.duration_since(self.t0).as_nanos() as u64,
            dur_ns: now.duration_since(started).as_nanos() as u64,
            rows_out: rows,
            ..TraceEvent::default()
        };
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ev);
    }

    /// Fold accumulated `shard.*` events into a [`ProfiledRun`] and append
    /// it to the `MAMMOTH_TRACE` path, mirroring the server's flush.
    pub fn flush_trace(&self) -> std::io::Result<bool> {
        let events = {
            let mut g = self.events.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *g)
        };
        let mut run = ProfiledRun::new("shard", self.nshards());
        run.executed = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ShardScatter | EventKind::ShardRoute))
            .count() as u64;
        run.elapsed_ns = self.t0.elapsed().as_nanos() as u64;
        run.events = events;
        run.export_env()
    }

    /// The shard's current primary address (swapped on failover).
    fn addr_of(&self, i: usize) -> String {
        self.addrs[i]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn health_of(&self, i: usize) -> Health {
        *self.health[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Run `f` on shard `i`'s **primary** connection, dialing if needed.
    /// A shard the monitor has confirmed dead (degraded or promoting)
    /// fails fast without touching the network: writes are never
    /// silently redirected to a replica, so an acked write always landed
    /// on a WAL that survives failover.
    fn with_shard<T>(
        &self,
        i: usize,
        f: impl FnOnce(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, CoordError> {
        let h = self.health_of(i);
        let addr = self.addr_of(i);
        if h.is_down() {
            return Err(CoordError::Unavailable(format!(
                "shard {i} ({addr}) is {}; writes are held until promotion restores a primary",
                h.label()
            )));
        }
        self.run_on(i, &self.pools[i], &addr, f)
    }

    /// Run a **read-only** `f` for shard `i`: against the primary while
    /// it answers probes, degraded to the shard's replica once the
    /// monitor confirms the primary dead. Degraded reads have bounded
    /// staleness — the replica may lag by the statements in flight at
    /// the crash, but a result is always a complete, CRC-checked frame,
    /// never torn. Without a configured replica the read fails typed
    /// like a write would.
    fn with_shard_read<T>(
        &self,
        i: usize,
        f: impl FnOnce(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, CoordError> {
        if self.health_of(i).is_down() {
            let replica = self.replicas[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            if let Some(raddr) = replica {
                return self.run_on(i, &self.rpools[i], &raddr, f);
            }
        }
        let addr = self.addr_of(i);
        self.run_on(i, &self.pools[i], &addr, f)
    }

    /// Dial-and-run against one connection slot. Transport failures —
    /// including a poisoned client after a deadline miss mid-frame —
    /// clear the slot (the next statement redials a fresh connection)
    /// and map to [`CoordError::Unavailable`]; shard-side error frames
    /// pass through and keep the connection.
    fn run_on<T>(
        &self,
        i: usize,
        slot: &Mutex<Option<Client>>,
        addr: &str,
        f: impl FnOnce(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, CoordError> {
        let mut slot = slot.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            let started = Instant::now();
            match Client::connect_with_retry(
                addr,
                "mammoth-shard",
                &self.cfg.token,
                &self.cfg.retry,
            ) {
                Ok(c) => {
                    if let Err(e) = c.set_read_timeout(Some(self.cfg.deadline)) {
                        self.trace(
                            EventKind::ShardUnavailable,
                            format!("shard={i} addr={addr}"),
                            started,
                            0,
                        );
                        return Err(CoordError::Unavailable(format!("shard {i} ({addr}): {e}")));
                    }
                    *slot = Some(c);
                }
                Err(e) => {
                    self.trace(
                        EventKind::ShardUnavailable,
                        format!("shard={i} addr={addr}"),
                        started,
                        0,
                    );
                    return Err(CoordError::Unavailable(format!("shard {i} ({addr}): {e}")));
                }
            }
        }
        let started = Instant::now();
        let out = f(slot.as_mut().expect("dialed above"));
        match out {
            Ok(v) => Ok(v),
            Err(ClientError::Server {
                code: ErrorCode::ShuttingDown,
                message,
            }) => {
                // A draining shard is as gone as a dead one for this
                // statement; reclassify so clients see the typed code.
                *slot = None;
                self.trace(
                    EventKind::ShardUnavailable,
                    format!("shard={i} addr={addr}"),
                    started,
                    0,
                );
                Err(CoordError::Unavailable(format!(
                    "shard {i} ({addr}): {message}"
                )))
            }
            Err(ClientError::Server { code, message }) => {
                // The shard answered; the connection is still in protocol.
                Err(CoordError::Remote { code, message })
            }
            Err(e) => {
                *slot = None;
                self.trace(
                    EventKind::ShardUnavailable,
                    format!("shard={i} addr={addr}"),
                    started,
                    0,
                );
                Err(CoordError::Unavailable(format!("shard {i} ({addr}): {e}")))
            }
        }
    }

    /// Run `f(i)` for every shard concurrently; one OS thread per leg so a
    /// slow shard cannot starve the others of its deadline budget.
    fn scatter<T: Send>(
        &self,
        f: impl Fn(usize) -> Result<T, CoordError> + Sync,
    ) -> Vec<Result<T, CoordError>> {
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.nshards()).map(|i| s.spawn(move || f(i))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter leg panicked"))
                .collect()
        })
    }

    /// Broadcast a raw statement to every shard, failing on the first
    /// error (in shard order).
    fn broadcast(&self, sql: &str) -> Result<Vec<Response>, CoordError> {
        let legs = self.scatter(|i| self.with_shard(i, |c| c.query(sql)));
        legs.into_iter().collect()
    }

    // ---------------------------------------------------------------- DDL

    fn create_table(
        &self,
        sql: &str,
        name: &str,
        columns: &[(String, LogicalType, bool)],
    ) -> Result<QueryOutput, CoordError> {
        let defs: Vec<ColumnDef> = columns
            .iter()
            .map(|(n, ty, nullable)| {
                let d = ColumnDef::new(n.clone(), *ty);
                if *nullable {
                    d
                } else {
                    d.not_null()
                }
            })
            .collect();
        let schema = TableSchema::new(name, defs);
        {
            let mut planning = self.planning.lock().unwrap_or_else(|e| e.into_inner());
            let table = Table::new(schema.clone()).map_err(CoordError::Sql)?;
            planning.create_table(table).map_err(CoordError::Sql)?;
            if let Err(e) = self
                .parts
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .add_table(&schema)
            {
                let _ = planning.drop_table(name);
                return Err(CoordError::Sql(e));
            }
        }
        self.invalidate_plans();
        self.broadcast(sql)?;
        Ok(QueryOutput::Ok)
    }

    fn drop_table(&self, sql: &str, name: &str) -> Result<QueryOutput, CoordError> {
        self.planning
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drop_table(name)
            .map_err(CoordError::Sql)?;
        self.parts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove_table(name);
        self.invalidate_plans();
        self.broadcast(sql)?;
        Ok(QueryOutput::Ok)
    }

    /// DDL changed the planning catalog: every cached plan's premises are
    /// void, so the whole cache goes.
    fn invalidate_plans(&self) {
        self.plans.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    // ---------------------------------------------------------------- DML

    fn insert(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<QueryOutput, CoordError> {
        let spec = self.spec_for(table)?;
        let n = self.nshards();
        let started = Instant::now();
        let mut per_shard: Vec<Vec<Vec<Value>>> = vec![Vec::new(); n];
        for row in rows {
            let key = row.get(spec.key_index).ok_or_else(|| {
                CoordError::Sql(Error::Internal(format!(
                    "INSERT row has no value for partition key column {}",
                    spec.key_column
                )))
            })?;
            per_shard[shard_of(key, n)].push(row);
        }
        let mut total: u64 = 0;
        let mut touched = 0usize;
        for (i, shard_rows) in per_shard.iter().enumerate() {
            if shard_rows.is_empty() {
                continue;
            }
            touched += 1;
            let frag = insert_sql(table, shard_rows);
            match self.with_shard(i, |c| c.query(&frag))? {
                Response::Affected(k) => total += k,
                other => {
                    return Err(internal(format!(
                        "shard {i} answered INSERT with {other:?}"
                    )))
                }
            }
        }
        self.trace(
            EventKind::ShardRoute,
            format!("insert table={table} shards_touched={touched}"),
            started,
            total,
        );
        Ok(QueryOutput::Affected(total as usize))
    }

    fn delete(
        &self,
        sql: &str,
        table: &str,
        where_: &[Predicate],
    ) -> Result<QueryOutput, CoordError> {
        let spec = self.spec_for(table)?;
        let n = self.nshards();
        let started = Instant::now();
        // A predicate that pins the partition key to one literal means
        // only the owning shard can hold matching rows.
        let pinned = where_.iter().find_map(|p| {
            if p.op == CmpOp::Eq
                && p.col.column.eq_ignore_ascii_case(&spec.key_column)
                && p.col
                    .table
                    .as_ref()
                    .is_none_or(|t| t.eq_ignore_ascii_case(table))
            {
                p.value.as_lit()
            } else {
                None
            }
        });
        let (total, routed) = match pinned {
            Some(v) => {
                let target = shard_of(v, n);
                let resp = self.with_shard(target, |c| c.query(sql))?;
                match resp {
                    Response::Affected(k) => (k, format!("shard={target}")),
                    other => {
                        return Err(internal(format!(
                            "shard {target} answered DELETE with {other:?}"
                        )))
                    }
                }
            }
            None => {
                let mut total = 0;
                for resp in self.broadcast(sql)? {
                    match resp {
                        Response::Affected(k) => total += k,
                        other => {
                            return Err(internal(format!("a shard answered DELETE with {other:?}")))
                        }
                    }
                }
                (total, "broadcast".into())
            }
        };
        self.trace(
            EventKind::ShardRoute,
            format!("delete table={table} {routed}"),
            started,
            total,
        );
        Ok(QueryOutput::Affected(total as usize))
    }

    fn spec_for(&self, table: &str) -> Result<PartitionSpec, CoordError> {
        self.parts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .spec(table)
            .cloned()
            .ok_or_else(|| {
                CoordError::Sql(Error::NotFound {
                    kind: "table",
                    name: table.to_string(),
                })
            })
    }

    // ------------------------------------------------------------- health

    /// Per-shard health labels, index-aligned with shard ids — the same
    /// strings the `health` column of `EXPLAIN SHARDING` reports.
    pub fn shard_health(&self) -> Vec<&'static str> {
        self.health
            .iter()
            .map(|h| h.lock().unwrap_or_else(|e| e.into_inner()).label())
            .collect()
    }

    /// Start the background health monitor: probe every primary each
    /// `probe_interval`, declare a death after `suspect_after`
    /// consecutive misses, and drive replica promotion to restore write
    /// availability. The thread holds only a [`std::sync::Weak`]
    /// reference, so dropping the coordinator (without
    /// [`Coordinator::stop_health_monitor`]) also ends it. Idempotent.
    pub fn start_health_monitor(self: &Arc<Coordinator>) {
        let mut guard = self.monitor.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_some() {
            return;
        }
        self.stop.store(false, Ordering::SeqCst);
        let weak = Arc::downgrade(self);
        let stop = Arc::clone(&self.stop);
        let interval = self.cfg.probe_interval;
        let handle = std::thread::Builder::new()
            .name("shard-health".into())
            .spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let Some(c) = weak.upgrade() else { return };
                    c.health_tick();
                    drop(c);
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn shard health monitor");
        *guard = Some(handle);
    }

    /// Stop and join the health monitor (waits out an in-flight
    /// promotion attempt, bounded by `promote_timeout`). Idempotent.
    pub fn stop_health_monitor(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let handle = self
            .monitor
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// One probe round over every shard, advancing the health state
    /// machine: Healthy → Suspect(1..) → Degraded → (replica configured)
    /// Promoting → Healthy-under-new-address. A primary that answers a
    /// probe while merely suspect or degraded recovers without failover.
    fn health_tick(&self) {
        for i in 0..self.nshards() {
            let addr = self.addr_of(i);
            let started = Instant::now();
            if probe(
                &addr,
                self.cfg.probe_interval.max(Duration::from_millis(10)),
            ) {
                let recovered = {
                    let mut h = self.health[i].lock().unwrap_or_else(|e| e.into_inner());
                    let was_down = matches!(*h, Health::Suspect(_) | Health::Degraded);
                    if was_down {
                        *h = Health::Healthy;
                    }
                    was_down
                };
                if recovered {
                    self.trace(
                        EventKind::HaRecovered,
                        format!("shard={i} addr={addr} probe answered"),
                        started,
                        0,
                    );
                }
                continue;
            }
            let (event, confirmed_dead) = {
                let mut h = self.health[i].lock().unwrap_or_else(|e| e.into_inner());
                match *h {
                    Health::Healthy => {
                        *h = Health::Suspect(1);
                        (Some((EventKind::HaSuspect, 1)), false)
                    }
                    Health::Suspect(k) if k + 1 >= self.cfg.suspect_after => {
                        *h = Health::Degraded;
                        (Some((EventKind::HaDegraded, k + 1)), true)
                    }
                    Health::Suspect(k) => {
                        *h = Health::Suspect(k + 1);
                        (None, false)
                    }
                    // Still degraded: keep retrying failover each tick.
                    Health::Degraded => (None, true),
                    Health::Promoting => (None, false),
                }
            };
            if let Some((kind, misses)) = event {
                self.trace(
                    kind,
                    format!("shard={i} addr={addr} misses={misses}"),
                    started,
                    0,
                );
            }
            if confirmed_dead {
                self.try_failover(i, &addr);
            }
        }
    }

    /// Drive the replica-promotion path for shard `i` and swap the
    /// promoted node in as the new primary. Leaves the shard degraded
    /// (retried next tick) if promotion fails; a no-op without a
    /// configured replica.
    fn try_failover(&self, i: usize, dead: &str) {
        let Some(raddr) = self.replicas[i]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
        else {
            return;
        };
        *self.health[i].lock().unwrap_or_else(|e| e.into_inner()) = Health::Promoting;
        let started = Instant::now();
        self.trace(
            EventKind::HaPromote,
            format!("shard={i} dead={dead} replica={raddr}"),
            started,
            0,
        );
        match self.drive_promotion(&raddr) {
            Ok(()) => {
                *self.addrs[i].lock().unwrap_or_else(|e| e.into_inner()) = raddr.clone();
                *self.pools[i].lock().unwrap_or_else(|e| e.into_inner()) = None;
                *self.rpools[i].lock().unwrap_or_else(|e| e.into_inner()) = None;
                *self.replicas[i].lock().unwrap_or_else(|e| e.into_inner()) = None;
                *self.health[i].lock().unwrap_or_else(|e| e.into_inner()) = Health::Healthy;
                self.trace(
                    EventKind::HaRecovered,
                    format!("shard={i} promoted={raddr}"),
                    started,
                    0,
                );
            }
            Err(e) => {
                *self.health[i].lock().unwrap_or_else(|e| e.into_inner()) = Health::Degraded;
                self.trace(
                    EventKind::ShardUnavailable,
                    format!("shard={i} promotion of {raddr} failed: {e}"),
                    started,
                    0,
                );
            }
        }
    }

    /// Tell the replica to `PROMOTE`, then poll `EXPLAIN REPLICATION`
    /// until it reports `role=primary` — the in-place WAL drain finished
    /// and the read-only gate lifted — within `promote_timeout`.
    /// `PROMOTE` is idempotent on the replica, so redialing after a
    /// transport hiccup mid-poll is safe.
    fn drive_promotion(&self, raddr: &str) -> std::result::Result<(), String> {
        let deadline = Instant::now() + self.cfg.promote_timeout;
        let dial = || -> std::result::Result<Client, String> {
            let c =
                Client::connect_with_retry(raddr, "mammoth-ha", &self.cfg.token, &self.cfg.retry)
                    .map_err(|e| format!("dial: {e}"))?;
            c.set_read_timeout(Some(self.cfg.deadline))
                .map_err(|e| format!("set timeout: {e}"))?;
            Ok(c)
        };
        let mut client = dial()?;
        client
            .query("PROMOTE")
            .map_err(|e| format!("PROMOTE: {e}"))?;
        loop {
            let role = match client.query("EXPLAIN REPLICATION") {
                Ok(Response::Table { rows, .. }) => {
                    rows.iter().find_map(|r| match (r.first(), r.get(1)) {
                        (Some(Value::Str(k)), Some(Value::Str(v))) if k == "role" => {
                            Some(v.clone())
                        }
                        _ => None,
                    })
                }
                Ok(_) => None,
                Err(_) => {
                    // Poisoned or dropped connection: redial, keep polling.
                    if let Ok(c) = dial() {
                        client = c;
                    }
                    None
                }
            };
            if role.as_deref() == Some("primary") {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "replica {raddr} did not reach role=primary within {:?}",
                    self.cfg.promote_timeout
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    // ------------------------------------------------------------- SELECT

    fn select(&self, sel: &SelectStmt) -> Result<QueryOutput, CoordError> {
        let planned = self.planned_select(sel)?;
        match &planned.plan {
            ScatterPlan::Aggregates {
                fragment_sql,
                merges,
            } => self.select_aggregates(planned.names.clone(), fragment_sql, merges),
            ScatterPlan::Gather { tables } => self.select_gather(
                planned.prog.clone(),
                planned.names.clone(),
                tables,
                &planned.schemas,
            ),
        }
    }

    /// Fetch or build the scatter compilation for `sel`. A hit skips
    /// parse-free recompilation *and* re-verification; a miss compiles,
    /// verifies and classifies against the planning catalog with the lock
    /// released before any network hop. Both outcomes trace
    /// (`plan.cache_hit` / `plan.compile`) so the one-compile-per-
    /// coordinator-lifetime property is testable from the outside.
    fn planned_select(&self, sel: &SelectStmt) -> Result<Arc<PlannedSelect>, CoordError> {
        let key = normalize_sql(&select_sql(sel));
        let started = Instant::now();
        let hit = self
            .plans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .cloned();
        if let Some(p) = hit {
            self.trace(EventKind::PlanCacheHit, format!("stmt={key}"), started, 0);
            return Ok(p);
        }
        let planned = {
            let planning = self.planning.lock().unwrap_or_else(|e| e.into_inner());
            let (prog, names) = compile_select(&planning, sel).map_err(CoordError::Sql)?;
            verify_with_catalog(&prog, &planning)
                .map_err(|e| internal(format!("coordinator plan failed verification: {e}")))?;
            let plan = classify(&planning, sel);
            let schemas: Vec<TableSchema> = match &plan {
                ScatterPlan::Gather { tables } => tables
                    .iter()
                    .map(|t| planning.table(&t.table).map(|tb| tb.schema.clone()))
                    .collect::<mammoth_types::Result<_>>()
                    .map_err(CoordError::Sql)?,
                ScatterPlan::Aggregates { .. } => Vec::new(),
            };
            Arc::new(PlannedSelect {
                prog,
                names,
                plan,
                schemas,
            })
        };
        self.plans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key.clone(), Arc::clone(&planned));
        self.trace(EventKind::PlanCompile, format!("stmt={key}"), started, 0);
        Ok(planned)
    }

    /// Lossless scalar aggregates: ship the statement whole, merge the
    /// one-row partials with the verified [`aggregate_combine`] plan.
    fn select_aggregates(
        &self,
        names: Vec<String>,
        fragment_sql: &str,
        merges: &[PartialMerge],
    ) -> Result<QueryOutput, CoordError> {
        let n = self.nshards();
        let m = merges.len();
        let id = self.next_frag.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        self.trace(
            EventKind::ShardScatter,
            format!("id={id} aggregate shards={n}"),
            started,
            0,
        );
        let legs = self.scatter(|i| self.with_shard_read(i, |c| c.fragment(id, fragment_sql)));
        let mut partials: Vec<Vec<Value>> = Vec::with_capacity(n);
        for (i, leg) in legs.into_iter().enumerate() {
            let (cols, mut rows) = leg?;
            if rows.len() != 1 || cols.len() != m {
                return Err(internal(format!(
                    "shard {i} partial has shape {}x{}, expected 1x{m}",
                    rows.len(),
                    cols.len()
                )));
            }
            partials.push(rows.pop().expect("one row"));
        }
        // The engine types every lossless partial I64 or F64; a column is
        // F64 iff some shard produced a float (all-NULL defaults to I64,
        // which packsum/pack treat identically for nil).
        let types: Vec<LogicalType> = (0..m)
            .map(|j| {
                if partials.iter().any(|r| matches!(r[j], Value::F64(_))) {
                    LogicalType::F64
                } else {
                    LogicalType::I64
                }
            })
            .collect();
        let gather_started = Instant::now();
        let mut stage = Catalog::new();
        for (i, row) in partials.iter().enumerate() {
            let defs = types
                .iter()
                .enumerate()
                .map(|(j, ty)| ColumnDef::new(partial_column(j), *ty))
                .collect();
            let mut t =
                Table::new(TableSchema::new(shard_partials_table(i), defs)).map_err(internal)?;
            t.insert_row(row).map_err(internal)?;
            stage.create_table(t).map_err(internal)?;
        }
        let comb = aggregate_combine(merges, n).map_err(internal)?;
        verify_with_catalog(&comb, &stage)
            .map_err(|e| internal(format!("combine plan failed verification: {e}")))?;
        let outs = Interpreter::new(&stage).run(&comb).map_err(internal)?;
        self.trace(
            EventKind::ShardGather,
            format!("id={id} partials={n}"),
            gather_started,
            1,
        );
        render_outputs(names, outs).map_err(internal)
    }

    /// Everything else: gather each referenced table's column fragments,
    /// rebuild the tables, and re-run the original verified plan.
    fn select_gather(
        &self,
        prog: Program,
        names: Vec<String>,
        tables: &[GatherTable],
        schemas: &[TableSchema],
    ) -> Result<QueryOutput, CoordError> {
        let n = self.nshards();
        let id = self.next_frag.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        self.trace(
            EventKind::ShardScatter,
            format!("id={id} gather tables={}", tables.len()),
            started,
            0,
        );
        let legs = self.scatter(|i| {
            self.with_shard_read(i, |c| {
                let mut per_table = Vec::with_capacity(tables.len());
                for t in tables {
                    per_table.push(c.fragment(id, &t.fragment_sql)?);
                }
                Ok(per_table)
            })
        });
        let mut per_shard = Vec::with_capacity(n);
        for leg in legs {
            per_shard.push(leg?);
        }
        let gather_started = Instant::now();
        // Stage every shard's fragments under __shard{i}__{table} so the
        // verified gather plan can pack them in shard order.
        let mut stage = Catalog::new();
        for (i, shard_tables) in per_shard.iter().enumerate() {
            for ((t, schema), (_, rows)) in tables.iter().zip(schemas).zip(shard_tables.iter()) {
                let mut s = schema.clone();
                s.name = shard_table_name(i, &t.table);
                let mut tb = Table::new(s).map_err(internal)?;
                for row in rows {
                    tb.insert_row(row).map_err(internal)?;
                }
                stage.create_table(tb).map_err(internal)?;
            }
        }
        let columns: Vec<GatherColumn> = tables
            .iter()
            .flat_map(|t| {
                t.columns.iter().map(|c| GatherColumn {
                    table: t.table.clone(),
                    column: c.clone(),
                })
            })
            .collect();
        let comb = gather_combine(&columns, n).map_err(internal)?;
        verify_with_catalog(&comb, &stage)
            .map_err(|e| internal(format!("gather plan failed verification: {e}")))?;
        let packed = Interpreter::new(&stage).run(&comb).map_err(internal)?;
        // Rebuild each table whole from its packed columns.
        let mut gathered = Catalog::new();
        let mut packed = packed.into_iter();
        let mut total_rows: u64 = 0;
        for (t, schema) in tables.iter().zip(schemas) {
            let bats: Vec<Bat> = t
                .columns
                .iter()
                .map(|c| match packed.next() {
                    Some(MalValue::Bat(b)) => {
                        Ok(Arc::try_unwrap(b).unwrap_or_else(|a| (*a).clone()))
                    }
                    other => Err(internal(format!(
                        "gather of {}.{c} produced {other:?}, expected a BAT",
                        t.table
                    ))),
                })
                .collect::<Result<_, _>>()?;
            total_rows += bats.first().map_or(0, |b| b.len() as u64);
            gathered
                .create_table(Table::from_bats(schema.clone(), bats).map_err(internal)?)
                .map_err(internal)?;
        }
        // Optimize the original plan with facts of the REAL gathered data;
        // planning-catalog facts (0 rows) would be unsound here.
        let facts = column_facts(&gathered);
        let opt = default_pipeline_with_props(facts)
            .try_optimize(prog)
            .map_err(|e| internal(format!("optimizer rejected gathered plan: {e}")))?;
        let outs = Interpreter::new(&gathered).run(&opt).map_err(internal)?;
        self.trace(
            EventKind::ShardGather,
            format!("id={id} rows={total_rows}"),
            gather_started,
            total_rows,
        );
        render_outputs(names, outs).map_err(internal)
    }

    // ---------------------------------------------------------- utilities

    fn explain(&self, sel: &SelectStmt) -> Result<QueryOutput, CoordError> {
        let planning = self.planning.lock().unwrap_or_else(|e| e.into_inner());
        let (prog, _) = compile_select(&planning, sel).map_err(CoordError::Sql)?;
        drop(planning);
        // Display only: the coordinator's single-node view of the plan.
        // Fact-dependent rewrites are skipped (no real rows here).
        let opt = default_pipeline()
            .try_optimize(prog)
            .map_err(|e| internal(format!("optimizer rejected plan: {e}")))?;
        let rows = opt
            .to_string()
            .lines()
            .map(|l| vec![Value::Str(l.to_string())])
            .collect();
        Ok(QueryOutput::Table {
            columns: vec!["mal".to_string()],
            rows,
        })
    }

    /// `EXPLAIN SHARDING`: the partition map plus live per-shard row
    /// counts — one result row per (table, shard).
    fn explain_sharding(&self) -> Result<QueryOutput, CoordError> {
        let specs: Vec<(String, PartitionSpec)> = self
            .parts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(t, s)| (t.clone(), s.clone()))
            .collect();
        let mut rows = Vec::new();
        for (table, spec) in &specs {
            let id = self.next_frag.fetch_add(1, Ordering::Relaxed);
            let frag = format!("SELECT COUNT(*) FROM {table}");
            let legs = self.scatter(|i| self.with_shard_read(i, |c| c.fragment(id, &frag)));
            for (i, leg) in legs.into_iter().enumerate() {
                let (_, mut count_rows) = leg?;
                let count = count_rows
                    .pop()
                    .and_then(|mut r| r.pop())
                    .ok_or_else(|| internal("COUNT(*) fragment returned no rows"))?;
                rows.push(vec![
                    Value::Str(table.clone()),
                    Value::Str(spec.key_column.clone()),
                    Value::I64(i as i64),
                    Value::Str(self.addr_of(i)),
                    count,
                    Value::Str(self.health_of(i).label().into()),
                    Value::Str(
                        self.replicas[i]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .clone()
                            .unwrap_or_default(),
                    ),
                ]);
            }
        }
        Ok(QueryOutput::Table {
            columns: vec![
                "table".into(),
                "key_column".into(),
                "shard".into(),
                "addr".into(),
                "rows".into(),
                "health".into(),
                "replica".into(),
            ],
            rows,
        })
    }

    /// Execute one SQL statement across the shard set.
    pub fn execute(&self, sql: &str) -> Result<QueryOutput, CoordError> {
        self.stmts.fetch_add(1, Ordering::Relaxed);
        let sql = sql.trim();
        if wants_sharding_status(sql) {
            return self.explain_sharding();
        }
        let stmt = parse_sql(sql).map_err(CoordError::Sql)?;
        if !matches!(stmt, Statement::Prepare { .. }) && stmt.param_count() > 0 {
            return Err(CoordError::Sql(Error::Bind(
                "placeholders (?) are only allowed inside PREPARE; supply values with EXECUTE"
                    .into(),
            )));
        }
        match stmt {
            Statement::CreateTable { name, columns } => self.create_table(sql, &name, &columns),
            Statement::DropTable { name } => self.drop_table(sql, &name),
            Statement::Checkpoint => {
                self.broadcast(sql)?;
                Ok(QueryOutput::Ok)
            }
            Statement::Trace(_) => Err(CoordError::Sql(Error::Unsupported(
                "TRACE profiles a single node; connect to a shard directly".into(),
            ))),
            Statement::Explain(sel) => self.explain(&sel),
            other => self.dispatch(other),
        }
    }

    /// Route a parsed (and, for `EXECUTE`, parameter-bound) statement.
    /// The statements reachable here are exactly the ones that do not
    /// need the original text verbatim: `INSERT`/`DELETE` are re-rendered
    /// per shard anyway, and `SELECT` scatters compiled fragments.
    fn dispatch(&self, stmt: Statement) -> Result<QueryOutput, CoordError> {
        match stmt {
            Statement::Select(sel) => self.select(&sel),
            Statement::Insert { table, rows } => {
                let rows: Vec<Vec<Value>> = rows
                    .into_iter()
                    .map(|r| r.into_iter().map(|s| s.bind(&[])).collect())
                    .collect::<mammoth_types::Result<_>>()
                    .map_err(CoordError::Sql)?;
                self.insert(&table, rows)
            }
            Statement::Delete { table, where_ } => {
                let sql = delete_sql(&table, &where_);
                self.delete(&sql, &table, &where_)
            }
            Statement::Prepare { name, stmt } => self.prepare_statement(name, *stmt),
            Statement::Execute { name, args } => {
                let p = self
                    .prepared
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .get(&name.to_lowercase())
                    .cloned()
                    .ok_or(CoordError::Sql(Error::NotFound {
                        kind: "prepared statement",
                        name: name.clone(),
                    }))?;
                if args.len() != p.nparams {
                    return Err(CoordError::Sql(Error::Bind(format!(
                        "prepared statement {name} takes {} argument(s), EXECUTE supplies {}",
                        p.nparams,
                        args.len()
                    ))));
                }
                let bound = p.stmt.bind_params(&args).map_err(CoordError::Sql)?;
                self.dispatch(bound)
            }
            Statement::Deallocate { name } => {
                match self
                    .prepared
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&name.to_lowercase())
                {
                    Some(_) => Ok(QueryOutput::Ok),
                    None => Err(CoordError::Sql(Error::NotFound {
                        kind: "prepared statement",
                        name,
                    })),
                }
            }
            other => Err(CoordError::Sql(Error::Unsupported(format!(
                "the coordinator cannot route {other:?} through EXECUTE"
            )))),
        }
    }

    /// Register a coordinator-side prepared statement. Fully-bound
    /// SELECTs warm the scatter-plan cache at `PREPARE` time, so the
    /// first `EXECUTE` is already a `plan.cache_hit`.
    fn prepare_statement(&self, name: String, stmt: Statement) -> Result<QueryOutput, CoordError> {
        let key = name.to_lowercase();
        if self
            .prepared
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(&key)
        {
            return Err(CoordError::Sql(Error::AlreadyExists {
                kind: "prepared statement",
                name,
            }));
        }
        if !matches!(
            stmt,
            Statement::Select(_) | Statement::Insert { .. } | Statement::Delete { .. }
        ) {
            return Err(CoordError::Sql(Error::Unsupported(
                "the coordinator prepares SELECT, INSERT and DELETE statements".into(),
            )));
        }
        let nparams = stmt.param_count();
        if let (Statement::Select(sel), 0) = (&stmt, nparams) {
            self.planned_select(sel)?;
        }
        self.prepared
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, PreparedStmt { stmt, nparams });
        Ok(QueryOutput::Ok)
    }
}

/// Liveness probe: can a TCP connect to `addr` complete within
/// `timeout`? Deliberately below the protocol layer — it costs the shard
/// one accept and no session, and it bypasses FaultNet's connect hook so
/// the chaos tier's scheduled faults land on real statements, never on
/// probes.
fn probe(addr: &str, timeout: Duration) -> bool {
    use std::net::ToSocketAddrs;
    let Ok(mut resolved) = addr.to_socket_addrs() else {
        return false;
    };
    resolved
        .next()
        .is_some_and(|sa| std::net::TcpStream::connect_timeout(&sa, timeout).is_ok())
}
