//! Hash partitioning: which shard owns a row.
//!
//! Every sharded table is hash-partitioned on a single **partition key**
//! column (by convention the table's first column). A row lives on exactly
//! one shard, chosen by hashing the canonical encoding of its key value
//! with FNV-1a and reducing modulo the shard count. The encoding is
//! deliberately type-class based — `I32(5)` and `I64(5)` hash identically —
//! so that routing a literal from SQL text agrees with routing the stored
//! value regardless of which integer width the parser picked.
//!
//! The map is pure arithmetic over the key value and the shard count:
//! restarting the coordinator (or building a second coordinator over the
//! same shard list) reproduces the same placement, which is what the
//! partitioner proptests in `tests/sharding.rs` pin down.

use std::collections::BTreeMap;

use mammoth_types::{Error, Result, TableSchema, Value};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// FNV-1a over the canonical encoding of a value.
///
/// Each type class gets a tag byte so `Str("")` and `Null` cannot collide
/// structurally; integers normalise to `i64` little-endian so the two
/// integer widths route identically.
pub fn hash_value(v: &Value) -> u64 {
    let mut h = FNV_OFFSET;
    match v {
        Value::Null => fnv1a(&mut h, &[0]),
        Value::Bool(b) => fnv1a(&mut h, &[1, u8::from(*b)]),
        Value::I8(x) => {
            fnv1a(&mut h, &[2]);
            fnv1a(&mut h, &i64::from(*x).to_le_bytes());
        }
        Value::I16(x) => {
            fnv1a(&mut h, &[2]);
            fnv1a(&mut h, &i64::from(*x).to_le_bytes());
        }
        Value::I32(x) => {
            fnv1a(&mut h, &[2]);
            fnv1a(&mut h, &i64::from(*x).to_le_bytes());
        }
        Value::I64(x) => {
            fnv1a(&mut h, &[2]);
            fnv1a(&mut h, &x.to_le_bytes());
        }
        Value::F64(x) => {
            fnv1a(&mut h, &[3]);
            fnv1a(&mut h, &x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            fnv1a(&mut h, &[4]);
            fnv1a(&mut h, s.as_bytes());
        }
        Value::Oid(o) => {
            fnv1a(&mut h, &[5]);
            fnv1a(&mut h, &o.to_le_bytes());
        }
    }
    h
}

/// The shard that owns a row whose partition key is `v`, out of `nshards`.
pub fn shard_of(v: &Value, nshards: usize) -> usize {
    debug_assert!(nshards > 0);
    (hash_value(v) % nshards as u64) as usize
}

/// How one table is partitioned.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    /// Name of the partition key column.
    pub key_column: String,
    /// Index of the key column in the table's schema (and in INSERT rows,
    /// which mammoth requires to list every column in schema order).
    pub key_index: usize,
}

/// Partition specs for every sharded table, keyed by lowercased name.
#[derive(Debug, Clone, Default)]
pub struct PartitionMap {
    specs: BTreeMap<String, PartitionSpec>,
}

impl PartitionMap {
    /// Register a table: its first column becomes the partition key.
    pub fn add_table(&mut self, schema: &TableSchema) -> Result<()> {
        let first = schema
            .columns
            .first()
            .ok_or_else(|| Error::Unsupported("cannot shard a table with no columns".into()))?;
        self.specs.insert(
            schema.name.to_ascii_lowercase(),
            PartitionSpec {
                key_column: first.name.clone(),
                key_index: 0,
            },
        );
        Ok(())
    }

    /// Forget a dropped table.
    pub fn remove_table(&mut self, name: &str) {
        self.specs.remove(&name.to_ascii_lowercase());
    }

    /// The partition spec for `table`, if it is sharded.
    pub fn spec(&self, table: &str) -> Option<&PartitionSpec> {
        self.specs.get(&table.to_ascii_lowercase())
    }

    /// Iterate `(table, spec)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &PartitionSpec)> {
        self.specs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mammoth_types::{ColumnDef, LogicalType};

    #[test]
    fn integer_widths_route_identically() {
        for n in 1..8usize {
            for x in [-3i64, 0, 5, 41, i32::MAX as i64] {
                assert_eq!(
                    shard_of(&Value::I32(x as i32), n),
                    shard_of(&Value::I64(x), n),
                    "I32/I64 {x} disagree at n={n}"
                );
            }
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        for v in [Value::Null, Value::Str("abc".into()), Value::I64(99)] {
            assert_eq!(shard_of(&v, 1), 0);
        }
    }

    #[test]
    fn spread_is_not_degenerate() {
        // 1000 consecutive keys over 3 shards: each shard gets a
        // non-trivial share. FNV-1a is not cryptographic, but it must not
        // collapse onto one shard for the workloads the tests generate.
        let mut counts = [0usize; 3];
        for k in 0..1000i64 {
            counts[shard_of(&Value::I64(k), 3)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(*c > 100, "shard {i} got only {c}/1000 keys: {counts:?}");
        }
    }

    #[test]
    fn map_tracks_first_column_and_drops() {
        let schema = TableSchema::new(
            "T",
            vec![
                ColumnDef::new("id", LogicalType::I64),
                ColumnDef::new("v", LogicalType::Str),
            ],
        );
        let mut map = PartitionMap::default();
        map.add_table(&schema).unwrap();
        let spec = map.spec("t").expect("lowercased lookup");
        assert_eq!(spec.key_column, "id");
        assert_eq!(spec.key_index, 0);
        map.remove_table("T");
        assert!(map.spec("t").is_none());
    }
}
