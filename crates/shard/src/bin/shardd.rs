//! The mammoth-shardd daemon: a scatter-gather coordinator in front of a
//! set of `mammoth-server` shards.
//!
//! ```text
//! mammoth-shardd --shard HOST:PORT [--shard HOST:PORT ...]
//!                [--replica IDX=HOST:PORT ...]
//!                [--addr HOST:PORT] [--auth TOKEN] [--shard-auth TOKEN]
//!                [--deadline-ms N] [--port-file PATH]
//!                [--probe-ms N] [--suspect-after N]
//!                [--promote-timeout-ms N]
//! ```
//!
//! `--shard` repeats once per shard; **order defines shard ids**, so a
//! restarted coordinator must list the same shards in the same order for
//! routing to stay stable. `--auth` gates logins to the coordinator
//! itself; `--shard-auth` is forwarded to the shards. `--deadline-ms`
//! bounds every scatter leg (default 2000). `--port-file` writes the
//! bound address (useful with `--addr 127.0.0.1:0`).
//!
//! `--replica IDX=HOST:PORT` names a `mammoth-replica` of shard `IDX`
//! (index into the `--shard` list) and arms high availability: the
//! coordinator starts a health monitor that probes each primary every
//! `--probe-ms` (default 100), declares it dead after `--suspect-after`
//! consecutive misses (default 3), serves the dead shard's reads from
//! its replica, and drives `PROMOTE` on the replica — waiting up to
//! `--promote-timeout-ms` (default 5000) for `role=primary` — to
//! restore writes. See `docs/ha.md`.
//!
//! Exits 0 after a graceful shutdown (a client sent `SHUTDOWN`), 2 on bad
//! usage, 1 on runtime errors.

use std::sync::Arc;
use std::time::Duration;

use mammoth_shard::{Coordinator, CoordinatorConfig, FrontConfig, FrontEnd};

fn usage() -> ! {
    eprintln!(
        "usage: mammoth-shardd --shard HOST:PORT [--shard HOST:PORT ...] \
         [--replica IDX=HOST:PORT ...] \
         [--addr HOST:PORT] [--auth TOKEN] [--shard-auth TOKEN] \
         [--deadline-ms N] [--port-file PATH] \
         [--probe-ms N] [--suspect-after N] [--promote-timeout-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut shards: Vec<String> = Vec::new();
    let mut replica_specs: Vec<(usize, String)> = Vec::new();
    let mut addr = "127.0.0.1:0".to_string();
    let mut auth: Option<String> = None;
    let mut shard_auth = String::new();
    let mut deadline_ms = 2000u64;
    let mut port_file: Option<String> = None;
    let mut probe_ms = 100u64;
    let mut suspect_after = 3u32;
    let mut promote_timeout_ms = 5000u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match arg.as_str() {
            "--shard" => shards.push(val("--shard")),
            "--replica" => {
                let v = val("--replica");
                let Some((idx, raddr)) = v.split_once('=') else {
                    eprintln!("--replica wants IDX=HOST:PORT, got {v:?}");
                    usage();
                };
                replica_specs.push((parse(idx, "--replica"), raddr.to_string()));
            }
            "--addr" => addr = val("--addr"),
            "--auth" => auth = Some(val("--auth")),
            "--shard-auth" => shard_auth = val("--shard-auth"),
            "--deadline-ms" => deadline_ms = parse(&val("--deadline-ms"), "--deadline-ms"),
            "--port-file" => port_file = Some(val("--port-file")),
            "--probe-ms" => probe_ms = parse(&val("--probe-ms"), "--probe-ms"),
            "--suspect-after" => suspect_after = parse(&val("--suspect-after"), "--suspect-after"),
            "--promote-timeout-ms" => {
                promote_timeout_ms = parse(&val("--promote-timeout-ms"), "--promote-timeout-ms")
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if shards.is_empty() {
        eprintln!("at least one --shard is required");
        usage();
    }
    let mut replicas: Vec<Option<String>> = vec![None; shards.len()];
    for (idx, raddr) in replica_specs {
        if idx >= shards.len() {
            eprintln!(
                "--replica shard index {idx} out of range ({} shards configured)",
                shards.len()
            );
            usage();
        }
        replicas[idx] = Some(raddr);
    }
    let has_replicas = replicas.iter().any(Option::is_some);

    let mut cfg = CoordinatorConfig::new(shards);
    cfg.token = shard_auth;
    cfg.deadline = Duration::from_millis(deadline_ms.max(1));
    cfg.replicas = replicas;
    cfg.probe_interval = Duration::from_millis(probe_ms.max(1));
    cfg.suspect_after = suspect_after.max(1);
    cfg.promote_timeout = Duration::from_millis(promote_timeout_ms.max(1));
    let coordinator = Arc::new(Coordinator::new(cfg));
    if has_replicas {
        coordinator.start_health_monitor();
    }

    let mut front_cfg = FrontConfig::new(addr);
    front_cfg.auth_token = auth;
    front_cfg.allow_remote_shutdown = true;
    let front = match FrontEnd::start(front_cfg, coordinator) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mammoth-shardd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    let local = front.local_addr();
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, local.to_string()) {
            eprintln!("mammoth-shardd: cannot write port file {path}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("mammoth-shardd: coordinating on {local}");

    match front.wait() {
        Ok(()) => eprintln!("mammoth-shardd: graceful shutdown"),
        Err(e) => {
            eprintln!("mammoth-shardd: shutdown failed: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {flag}");
        usage()
    })
}
