//! The mammoth-shardd daemon: a scatter-gather coordinator in front of a
//! set of `mammoth-server` shards.
//!
//! ```text
//! mammoth-shardd --shard HOST:PORT [--shard HOST:PORT ...]
//!                [--addr HOST:PORT] [--auth TOKEN] [--shard-auth TOKEN]
//!                [--deadline-ms N] [--port-file PATH]
//! ```
//!
//! `--shard` repeats once per shard; **order defines shard ids**, so a
//! restarted coordinator must list the same shards in the same order for
//! routing to stay stable. `--auth` gates logins to the coordinator
//! itself; `--shard-auth` is forwarded to the shards. `--deadline-ms`
//! bounds every scatter leg (default 2000). `--port-file` writes the
//! bound address (useful with `--addr 127.0.0.1:0`).
//!
//! Exits 0 after a graceful shutdown (a client sent `SHUTDOWN`), 2 on bad
//! usage, 1 on runtime errors.

use std::sync::Arc;
use std::time::Duration;

use mammoth_shard::{Coordinator, CoordinatorConfig, FrontConfig, FrontEnd};

fn usage() -> ! {
    eprintln!(
        "usage: mammoth-shardd --shard HOST:PORT [--shard HOST:PORT ...] \
         [--addr HOST:PORT] [--auth TOKEN] [--shard-auth TOKEN] \
         [--deadline-ms N] [--port-file PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut shards: Vec<String> = Vec::new();
    let mut addr = "127.0.0.1:0".to_string();
    let mut auth: Option<String> = None;
    let mut shard_auth = String::new();
    let mut deadline_ms = 2000u64;
    let mut port_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match arg.as_str() {
            "--shard" => shards.push(val("--shard")),
            "--addr" => addr = val("--addr"),
            "--auth" => auth = Some(val("--auth")),
            "--shard-auth" => shard_auth = val("--shard-auth"),
            "--deadline-ms" => deadline_ms = parse(&val("--deadline-ms"), "--deadline-ms"),
            "--port-file" => port_file = Some(val("--port-file")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if shards.is_empty() {
        eprintln!("at least one --shard is required");
        usage();
    }

    let mut cfg = CoordinatorConfig::new(shards);
    cfg.token = shard_auth;
    cfg.deadline = Duration::from_millis(deadline_ms.max(1));
    let coordinator = Arc::new(Coordinator::new(cfg));

    let mut front_cfg = FrontConfig::new(addr);
    front_cfg.auth_token = auth;
    front_cfg.allow_remote_shutdown = true;
    let front = match FrontEnd::start(front_cfg, coordinator) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mammoth-shardd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    let local = front.local_addr();
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, local.to_string()) {
            eprintln!("mammoth-shardd: cannot write port file {path}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("mammoth-shardd: coordinating on {local}");

    match front.wait() {
        Ok(()) => eprintln!("mammoth-shardd: graceful shutdown"),
        Err(e) => {
            eprintln!("mammoth-shardd: shutdown failed: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {flag}");
        usage()
    })
}
