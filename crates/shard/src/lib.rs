//! Sharded scale-out for mammoth: hash-partitioned tables behind a
//! scatter-gather coordinator.
//!
//! MonetDB's mitosis/mergetable optimizer showed that a column store
//! parallelizes by *plan rewriting*: slice the columns, run the plan per
//! slice, recombine with `mat.pack` / `mat.packsum`. This crate applies
//! the identical recipe one level up — the slices live in other
//! *processes*:
//!
//! * [`partition`] decides row placement: FNV-1a over the canonical
//!   encoding of each table's partition key (its first column), modulo
//!   the shard count. Pure arithmetic, stable across restarts.
//! * [`coordinator`] compiles each statement once against a schemas-only
//!   planning catalog, verifies the plan with the MAL analysis tier,
//!   scatters read-only fragments over protocol-v3 `Fragment` messages,
//!   and merges the results through the same combine plans the
//!   in-process mergetable uses ([`mammoth_mal::combine`]). DML routes
//!   to owning shards by partition key; each shard's WAL makes it
//!   durable. Partial failure is typed (`SHARD_UNAVAILABLE`), bounded by
//!   a per-statement deadline, and never returns truncated rows.
//! * [`front`] serves the whole thing over the ordinary mammoth wire
//!   protocol, so any existing client talks to a cluster unchanged; the
//!   `mammoth-shardd` binary wraps it as a daemon.
//!
//! `EXPLAIN SHARDING` reports the partition map, live per-shard row
//! counts, and each shard's health/replica state; `shard.*` trace events
//! profile scatter, route, and gather through the standard
//! `MAMMOTH_TRACE` machinery, and `ha.*` events record the health
//! monitor's suspect → degraded → promote → recovered state machine
//! (see `docs/ha.md` and [`coordinator::CoordinatorConfig::replicas`]).

pub mod coordinator;
pub mod front;
pub mod partition;

pub use coordinator::{CoordError, Coordinator, CoordinatorConfig};
pub use front::{FrontConfig, FrontEnd, COORDINATOR_NAME};
pub use partition::{hash_value, shard_of, PartitionMap, PartitionSpec};
