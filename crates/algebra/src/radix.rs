//! Radix-Cluster, Partitioned Hash-Join and Radix-Decluster (§4).
//!
//! * [`radix_cluster`] divides a column into `H = 2^B` clusters on the lower
//!   `B` bits of its key image using `P` passes, "starting with the leftmost
//!   bits" (§4.2, Figure 2). Keeping the per-pass cluster count below the
//!   number of cache lines and TLB entries avoids thrashing while still
//!   reaching a high overall `H`.
//! * [`partitioned_hash_join`] clusters both sides, then hash-joins the
//!   matching cluster pairs — each pair's working set fits the cache.
//! * [`radix_decluster`] performs cache-friendly positional projection
//!   through an arbitrarily-ordered join index ([28], §4.3): cluster the
//!   index by fetch-position region, gather per region, then merge back to
//!   output order in one sequential pass with `H` bounded cursors.

use crate::join::{JoinIndex, JoinKeys};
use mammoth_storage::{Bat, TailHeap};
use mammoth_types::{Error, NativeType, Oid, Result};

/// Build the nil-aware u64 key image of a tail column.
///
/// Integer types are sign-extended through i64 so that, e.g., an `i32`
/// column joins correctly against an `i64` column. The image is injective
/// ("exact") for all fixed-width types; strings use a content hash and must
/// be re-verified on match.
pub fn mix_key_bat(b: &Bat) -> Result<JoinKeys> {
    fn ints<T: NativeType>(v: &[T], widen: impl Fn(&T) -> u64) -> JoinKeys {
        JoinKeys {
            keys: v.iter().map(&widen).collect(),
            nils: v.iter().map(|x| x.is_nil()).collect(),
            exact: true,
        }
    }
    Ok(match b.tail() {
        TailHeap::Bool(v) => ints(v, |x| *x as u64),
        TailHeap::I8(v) => ints(v, |x| *x as i64 as u64),
        TailHeap::I16(v) => ints(v, |x| *x as i64 as u64),
        TailHeap::I32(v) => ints(v, |x| *x as i64 as u64),
        TailHeap::I64(v) => ints(v, |x| *x as u64),
        TailHeap::Oid(v) => ints(v, |x| *x),
        TailHeap::F64(v) => JoinKeys {
            keys: v
                .iter()
                .map(|x| if *x == 0.0 { 0.0f64 } else { *x }.to_bits())
                .collect(),
            nils: v.iter().map(|x| x.is_nil()).collect(),
            exact: true,
        },
        TailHeap::Str(h) => {
            let mut keys = Vec::with_capacity(h.len());
            let mut nils = Vec::with_capacity(h.len());
            for i in 0..h.len() {
                match h.get(i) {
                    Some(s) => {
                        keys.push(fnv1a(s.as_bytes()));
                        nils.push(false);
                    }
                    None => {
                        keys.push(0);
                        nils.push(true);
                    }
                }
            }
            JoinKeys {
                keys,
                nils,
                exact: false,
            }
        }
    })
}

fn fnv1a(b: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &x in b {
        h ^= x as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A column clustered on the lower `bits` of its key image.
#[derive(Debug, Clone)]
pub struct ClusteredColumn {
    /// Key images, arranged cluster by cluster.
    pub keys: Vec<u64>,
    /// Original oids, aligned with `keys`.
    pub oids: Vec<Oid>,
    /// Total radix bits; clusters appear in increasing bit-value order.
    pub bits: u32,
    /// `2^bits + 1` boundaries: cluster `c` occupies `bounds[c]..bounds[c+1]`.
    pub bounds: Vec<usize>,
}

impl ClusteredColumn {
    pub fn cluster_count(&self) -> usize {
        self.bounds.len() - 1
    }

    pub fn cluster(&self, c: usize) -> (&[u64], &[Oid]) {
        let (s, e) = (self.bounds[c], self.bounds[c + 1]);
        (&self.keys[s..e], &self.oids[s..e])
    }
}

/// Multi-pass radix-cluster of `(key, oid)` pairs on
/// `B = Σ bits_per_pass` bits, as in Figure 2.
///
/// Pass `p` clusters on the most significant `bits_per_pass[p]` bits of the
/// remaining low-`B` window, sub-dividing each existing cluster. Every pass
/// is a stable counting sort, so tuples with equal low bits stay in input
/// order.
pub fn radix_cluster(keys: &[u64], oids: &[Oid], bits_per_pass: &[u32]) -> ClusteredColumn {
    assert_eq!(keys.len(), oids.len());
    let total_bits: u32 = bits_per_pass.iter().sum();
    assert!(total_bits <= 32, "more than 2^32 clusters is unreasonable");
    let n = keys.len();
    let h = 1usize << total_bits;

    let mut src_k = keys.to_vec();
    let mut src_o = oids.to_vec();
    let mut dst_k = vec![0u64; n];
    let mut dst_o = vec![0 as Oid; n];
    let mut bounds = vec![0, n];
    let mut shift_high = total_bits;

    for &b in bits_per_pass {
        let shift = shift_high - b;
        let mask = (1u64 << b) - 1;
        let sub = 1usize << b;
        let mut new_bounds = Vec::with_capacity((bounds.len() - 1) * sub + 1);
        new_bounds.push(0);
        // each existing cluster is sub-divided independently: the later
        // passes operate on (cache-sized) fragments, which is the whole
        // point of multi-pass clustering
        for w in bounds.windows(2) {
            let (s, e) = (w[0], w[1]);
            let mut hist = vec![0usize; sub];
            for &k in &src_k[s..e] {
                hist[((k >> shift) & mask) as usize] += 1;
            }
            let mut cursors = Vec::with_capacity(sub);
            let mut acc = s;
            for c in hist {
                cursors.push(acc);
                acc += c;
                new_bounds.push(acc);
            }
            for i in s..e {
                let d = ((src_k[i] >> shift) & mask) as usize;
                dst_k[cursors[d]] = src_k[i];
                dst_o[cursors[d]] = src_o[i];
                cursors[d] += 1;
            }
        }
        std::mem::swap(&mut src_k, &mut dst_k);
        std::mem::swap(&mut src_o, &mut dst_o);
        bounds = new_bounds;
        shift_high = shift;
    }

    // with zero passes there is a single cluster
    if bits_per_pass.is_empty() {
        return ClusteredColumn {
            keys: src_k,
            oids: src_o,
            bits: 0,
            bounds: vec![0, n],
        };
    }
    debug_assert_eq!(bounds.len(), h + 1);
    ClusteredColumn {
        keys: src_k,
        oids: src_o,
        bits: total_bits,
        bounds,
    }
}

/// Split `bits` into passes of at most `max_per_pass` bits each.
pub fn even_passes(bits: u32, max_per_pass: u32) -> Vec<u32> {
    if bits == 0 {
        return vec![];
    }
    let m = max_per_pass.max(1);
    let np = bits.div_ceil(m);
    let base = bits / np;
    let extra = bits % np;
    (0..np).map(|i| base + u32::from(i < extra)).collect()
}

/// Radix-clustered partitioned hash-join (§4.1–4.2, Figure 2).
///
/// Both relations are clustered on the same `bits` (in `P` passes of at
/// most `max_bits_per_pass`), then corresponding clusters are hash-joined.
pub fn partitioned_hash_join(
    l: &Bat,
    r: &Bat,
    bits: u32,
    max_bits_per_pass: u32,
) -> Result<JoinIndex> {
    let lk = mix_key_bat(l)?;
    let rk = mix_key_bat(r)?;
    let exact = lk.exact && rk.exact;
    let passes = even_passes(bits, max_bits_per_pass);

    let l_oids: Vec<Oid> = (0..l.len()).map(|i| l.oid_at(i)).collect();
    let r_oids: Vec<Oid> = (0..r.len()).map(|i| r.oid_at(i)).collect();
    // nil rows are excluded before clustering (they never match)
    let (lkeys, loids) = strip_nils(&lk, &l_oids);
    let (rkeys, roids) = strip_nils(&rk, &r_oids);

    let lc = radix_cluster(&lkeys, &loids, &passes);
    let rc = radix_cluster(&rkeys, &roids, &passes);

    let mut out = JoinIndex::default();
    out.left.reserve(lkeys.len().min(rkeys.len()));
    out.right.reserve(lkeys.len().min(rkeys.len()));

    // One scratch bucket-chained table shared by all clusters: buckets are
    // validated by an epoch stamp instead of being cleared, so per-cluster
    // setup is O(cluster), not O(buckets). This is the "CPU optimization"
    // half of §4.2 applied to our own inner loop.
    let max_cluster = (0..rc.cluster_count())
        .map(|c| rc.bounds[c + 1] - rc.bounds[c])
        .max()
        .unwrap_or(0);
    let nbuckets = max_cluster.next_power_of_two().max(4);
    let mask = (nbuckets - 1) as u64;
    let mut bucket_head = vec![0u32; nbuckets];
    let mut bucket_epoch = vec![0u32; nbuckets];
    let mut next = vec![0u32; max_cluster];
    let mut epoch = 0u32;

    #[inline(always)]
    fn bucket_of(key: u64, mask: u64) -> usize {
        ((key.wrapping_mul(0x9E3779B97F4A7C15) >> 32) & mask) as usize
    }

    for c in 0..lc.cluster_count() {
        let (lks, los) = lc.cluster(c);
        let (rks, ros) = rc.cluster(c);
        if lks.is_empty() || rks.is_empty() {
            continue;
        }
        epoch = epoch.wrapping_add(1);
        if epoch == 0 {
            bucket_epoch.fill(0);
            epoch = 1;
        }
        // build on the right cluster
        for (j, &key) in rks.iter().enumerate() {
            let b = bucket_of(key, mask);
            next[j] = if bucket_epoch[b] == epoch {
                bucket_head[b]
            } else {
                0
            };
            bucket_head[b] = (j + 1) as u32;
            bucket_epoch[b] = epoch;
        }
        // probe with the left cluster
        for (i, &key) in lks.iter().enumerate() {
            let b = bucket_of(key, mask);
            if bucket_epoch[b] != epoch {
                continue;
            }
            let mut cur = bucket_head[b];
            while cur != 0 {
                let j = (cur - 1) as usize;
                if rks[j] == key && verify_pair(l, r, los[i], ros[j], exact) {
                    out.left.push(los[i]);
                    out.right.push(ros[j]);
                }
                cur = next[j];
            }
        }
    }
    Ok(out)
}

fn strip_nils(k: &JoinKeys, oids: &[Oid]) -> (Vec<u64>, Vec<Oid>) {
    let mut keys = Vec::with_capacity(k.keys.len());
    let mut os = Vec::with_capacity(oids.len());
    for ((&key, &nil), &oid) in k.keys.iter().zip(&k.nils).zip(oids) {
        if !nil {
            keys.push(key);
            os.push(oid);
        }
    }
    (keys, os)
}

fn verify_pair(l: &Bat, r: &Bat, lo: Oid, ro: Oid, exact: bool) -> bool {
    if exact {
        return true;
    }
    match (l.find_oid(lo), r.find_oid(ro)) {
        (Some(i), Some(j)) => match (l.tail().as_str_heap(), r.tail().as_str_heap()) {
            (Some(a), Some(b)) => a.get(i) == b.get(j),
            _ => true,
        },
        _ => false,
    }
}

/// Cache-conscious positional projection through an arbitrary join index.
///
/// `index` is a BAT whose tail holds fetch oids into `column` in *output
/// order* (e.g. the probe-side join index). A naive fetch reads `column` at
/// random; radix-decluster bounds every random access:
///
/// 1. **cluster** the index entries into `2^bits` buffers by fetch-position
///    region (one sequential read, `2^bits` cursors);
/// 2. **fetch** per buffer — each buffer's positions fall in one
///    `len/2^bits` slice of `column`, which fits the cache;
/// 3. **merge** back to output order in one sequential pass that replays the
///    cluster function (again `2^bits` cursors, no random access).
///
/// Unlike radix-cluster this is single-pass, hence the scalability limit
/// §4.3 notes: `2^bits` must stay below the cache-line budget.
pub fn radix_decluster(index: &Bat, column: &Bat, bits: u32) -> Result<Bat> {
    let oids = index.tail_slice::<Oid>()?;
    let n = column.len();
    let seqbase = match column.head() {
        mammoth_storage::HeadColumn::Void { seqbase } => *seqbase,
        mammoth_storage::HeadColumn::Oids(_) => {
            return Err(Error::Unsupported(
                "radix_decluster needs a void-headed column".into(),
            ))
        }
    };
    // region shift so that position >> shift < 2^bits
    let need_bits = usize::BITS - n.max(1).leading_zeros();
    let shift = need_bits.saturating_sub(bits);
    let h = 1usize << bits;

    // phase 1: cluster positions (and remember each entry's cluster by
    // replaying the radix function in phase 3 — nothing extra to store)
    let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); h];
    for &o in oids {
        if o < seqbase || (o - seqbase) as usize >= n {
            return Err(Error::OutOfRange {
                index: o,
                len: n as u64,
            });
        }
        let pos = (o - seqbase) as usize;
        clusters[pos >> shift].push(pos as u32);
    }

    // phase 2: per-cluster gather (bounded region of `column`)
    let positions_by_cluster: Vec<Vec<usize>> = clusters
        .iter()
        .map(|c| c.iter().map(|&p| p as usize).collect())
        .collect();
    let fetched: Vec<TailHeap> = positions_by_cluster
        .iter()
        .map(|pos| column.tail().take(pos))
        .collect();

    // phase 3: merge back to output order
    let mut cursors = vec![0usize; h];
    let mut out = TailHeap::with_capacity(column.ty(), oids.len());
    for &o in oids {
        let pos = (o - seqbase) as usize;
        let c = pos >> shift;
        let k = cursors[c];
        cursors[c] += 1;
        out.push_value(&fetched[c].value(k))?;
    }
    Ok(Bat::dense(0, out))
}

/// Fast typed variant of [`radix_decluster`] for fixed-width columns,
/// avoiding the dynamic `Value` path in the merge phase. This is the
/// version the benchmarks exercise: flat counting-sort buffers, no
/// per-cluster allocation.
pub fn radix_decluster_fixed<T: NativeType + mammoth_storage::FixedTail>(
    positions: &[u32],
    column: &[T],
    bits: u32,
) -> Vec<T> {
    let n = column.len();
    let need_bits = usize::BITS - n.max(1).leading_zeros();
    let shift = need_bits.saturating_sub(bits);
    let h = 1usize << bits;
    let m = positions.len();

    // histogram + prefix sums: one flat cluster-major buffer
    let mut offsets = vec![0u32; h + 1];
    for &p in positions {
        offsets[((p as usize) >> shift) + 1] += 1;
    }
    for c in 0..h {
        offsets[c + 1] += offsets[c];
    }

    // phase 1: scatter positions into cluster order (h bounded cursors)
    let mut clustered: Vec<u32> = vec![0; m];
    {
        let mut cursors = offsets[..h].to_vec();
        for &p in positions {
            let c = (p as usize) >> shift;
            clustered[cursors[c] as usize] = p;
            cursors[c] += 1;
        }
    }

    // phase 2: gather values per cluster — each cluster's positions fall in
    // one n/2^bits slice of `column`, which is cache resident
    let mut vals: Vec<T> = Vec::with_capacity(m);
    // SAFETY-free version: plain iteration (LLVM elides the bounds checks
    // because `clustered` holds values we just wrote from `positions`)
    for &p in &clustered {
        vals.push(column[p as usize]);
    }

    // phase 3: merge back to output order (h bounded read cursors,
    // sequential write)
    let mut out: Vec<T> = Vec::with_capacity(m);
    let mut cursors = offsets[..h].to_vec();
    for &p in positions {
        let c = (p as usize) >> shift;
        out.push(vals[cursors[c] as usize]);
        cursors[c] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::fetch_join;
    use crate::join::hash_join;
    use proptest::prelude::*;

    /// The exact Figure 2 example: relation L, lower 3 bits, 2-pass (2+1).
    #[test]
    fn figure2_left_relation() {
        let l: Vec<u64> = vec![57, 17, 3, 47, 92, 81, 20, 6, 96, 37, 66, 75];
        let oids: Vec<Oid> = (0..l.len() as u64).collect();
        let cc = radix_cluster(&l, &oids, &[2, 1]);
        assert_eq!(cc.cluster_count(), 8);
        // every cluster holds values agreeing on the lower 3 bits,
        // clusters appear in increasing bit order
        for c in 0..8 {
            let (keys, _) = cc.cluster(c);
            for &k in keys {
                assert_eq!((k & 7) as usize, c, "value {k} in cluster {c}");
            }
        }
        // nothing lost
        let mut all = cc.keys.clone();
        all.sort_unstable();
        let mut orig = l.clone();
        orig.sort_unstable();
        assert_eq!(all, orig);
    }

    #[test]
    fn passes_are_stable() {
        let keys = vec![8u64, 0, 8, 0, 8];
        let oids: Vec<Oid> = (0..5).collect();
        let cc = radix_cluster(&keys, &oids, &[1, 1, 1, 1]);
        // cluster 0: the 0s in original order
        let (k0, o0) = cc.cluster(0);
        assert_eq!(k0, &[0, 0]);
        assert_eq!(o0, &[1, 3]);
        let (k8, o8) = cc.cluster(8);
        assert_eq!(k8, &[8, 8, 8]);
        assert_eq!(o8, &[0, 2, 4]);
    }

    #[test]
    fn single_and_multi_pass_agree() {
        let keys: Vec<u64> = (0..512u64).map(|i| i.wrapping_mul(2654435761)).collect();
        let oids: Vec<Oid> = (0..512).collect();
        let one = radix_cluster(&keys, &oids, &[6]);
        let two = radix_cluster(&keys, &oids, &[3, 3]);
        let three = radix_cluster(&keys, &oids, &[2, 2, 2]);
        assert_eq!(one.keys, two.keys);
        assert_eq!(one.oids, two.oids);
        assert_eq!(one.bounds, three.bounds);
        assert_eq!(two.oids, three.oids);
    }

    #[test]
    fn zero_bits_is_one_cluster() {
        let keys = vec![3u64, 1, 2];
        let oids = vec![0 as Oid, 1, 2];
        let cc = radix_cluster(&keys, &oids, &[]);
        assert_eq!(cc.cluster_count(), 1);
        assert_eq!(cc.keys, keys);
        assert_eq!(cc.oids, oids);
    }

    #[test]
    fn even_pass_split() {
        assert_eq!(even_passes(7, 3), vec![3, 2, 2]);
        assert_eq!(even_passes(6, 6), vec![6]);
        assert_eq!(even_passes(0, 4), Vec::<u32>::new());
    }

    #[test]
    fn partitioned_join_matches_hash_join() {
        let l = Bat::from_vec(vec![5i64, 1, 9, 1, 7, 3, -4, 5]);
        let r = Bat::from_vec(vec![1i64, 3, 3, 9, 2, -4]);
        let expect = hash_join(&l, &r).unwrap().sorted();
        for bits in [0u32, 2, 4] {
            let got = partitioned_hash_join(&l, &r, bits, 2).unwrap().sorted();
            assert_eq!(got, expect, "bits={bits}");
        }
    }

    #[test]
    fn partitioned_join_strings() {
        let l = Bat::from_strings([Some("a"), Some("b"), None, Some("a")]);
        let r = Bat::from_strings([Some("b"), Some("a")]);
        let got = partitioned_hash_join(&l, &r, 2, 2).unwrap().sorted();
        let expect = hash_join(&l, &r).unwrap().sorted();
        assert_eq!(got, expect);
    }

    #[test]
    fn decluster_equals_fetch_join() {
        let column = Bat::from_vec((0..1000i64).map(|i| i * 3).collect::<Vec<_>>());
        let idx: Vec<Oid> = (0..500).map(|i| (i * 977) % 1000).collect();
        let index = Bat::from_vec(idx);
        for bits in [0u32, 2, 5] {
            let a = radix_decluster(&index, &column, bits).unwrap();
            let b = fetch_join(&index, &column).unwrap();
            assert_eq!(
                a.tail_slice::<i64>().unwrap(),
                b.tail_slice::<i64>().unwrap(),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn decluster_fixed_matches_naive() {
        let column: Vec<i64> = (0..257).map(|i| i * 7).collect();
        let positions: Vec<u32> = (0..100).map(|i| (i * 89) % 257).collect();
        let naive: Vec<i64> = positions.iter().map(|&p| column[p as usize]).collect();
        for bits in [0u32, 1, 3, 6] {
            assert_eq!(radix_decluster_fixed(&positions, &column, bits), naive);
        }
    }

    #[test]
    fn decluster_bounds_checked() {
        let column = Bat::from_vec(vec![1i32, 2]);
        let index = Bat::from_vec(vec![5u64 as Oid]);
        assert!(radix_decluster(&index, &column, 2).is_err());
    }

    #[test]
    fn mix_widens_integers() {
        let a = mix_key_bat(&Bat::from_vec(vec![-2i32])).unwrap();
        let b = mix_key_bat(&Bat::from_vec(vec![-2i64])).unwrap();
        assert_eq!(a.keys[0], b.keys[0]);
        assert!(a.exact && b.exact);
        let s = mix_key_bat(&Bat::from_strings([Some("x"), None])).unwrap();
        assert!(!s.exact);
        assert!(s.nils[1]);
    }

    proptest! {
        #[test]
        fn prop_cluster_is_partition(keys in proptest::collection::vec(0u64..1000, 0..200),
                                     bits in 0u32..6) {
            let oids: Vec<Oid> = (0..keys.len() as u64).collect();
            let cc = radix_cluster(&keys, &oids, &even_passes(bits, 2));
            // lengths preserved
            prop_assert_eq!(cc.keys.len(), keys.len());
            prop_assert_eq!(*cc.bounds.last().unwrap(), keys.len());
            // oids map back to their original keys
            for (k, o) in cc.keys.iter().zip(&cc.oids) {
                prop_assert_eq!(*k, keys[*o as usize]);
            }
            // cluster membership respects the radix
            let mask = (1u64 << bits) - 1;
            for c in 0..cc.cluster_count() {
                let (ks, _) = cc.cluster(c);
                for k in ks {
                    prop_assert_eq!(k & mask, c as u64);
                }
            }
        }

        #[test]
        fn prop_partitioned_equals_hash(
            lv in proptest::collection::vec(-30i64..30, 0..80),
            rv in proptest::collection::vec(-30i64..30, 0..80),
            bits in 0u32..5,
        ) {
            let l = Bat::from_vec(lv);
            let r = Bat::from_vec(rv);
            let got = partitioned_hash_join(&l, &r, bits, 2).unwrap().sorted();
            let expect = hash_join(&l, &r).unwrap().sorted();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn prop_decluster_equals_naive(
            n in 1usize..300,
            picks in proptest::collection::vec(0usize..300, 0..150),
            bits in 0u32..5,
        ) {
            let column = Bat::from_vec((0..n as i64).collect::<Vec<_>>());
            let idx: Vec<Oid> = picks.iter().map(|&p| (p % n) as Oid).collect();
            let index = Bat::from_vec(idx);
            let a = radix_decluster(&index, &column, bits).unwrap();
            let b = fetch_join(&index, &column).unwrap();
            prop_assert_eq!(a.tail_slice::<i64>().unwrap(), b.tail_slice::<i64>().unwrap());
        }
    }
}
