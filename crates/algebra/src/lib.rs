//! The BAT Algebra (§3).
//!
//! "Each BAT Algebra operator maps to a simple MAL instruction, which has
//! zero degrees of freedom: it does not take complex expressions as
//! parameter. Rather, complex expressions are broken into a sequence of BAT
//! Algebra operators that each perform a simple operation on an entire
//! column of values ('bulk processing')."
//!
//! Operators consume [`Bat`]s and produce new, fully materialized [`Bat`]s —
//! column-at-a-time, never tuple-at-a-time. Inner loops are monomorphized
//! per type and free of interpretation, which is what the paper credits for
//! the instruction-locality advantage over iterator engines.
//!
//! Selections produce *candidate* BATs: a void-headed BAT whose tail holds
//! the qualifying positions (oids) in ascending order, matching the
//! `R:bat[:oid,:oid] := select(B, V)` convention of §3.
//!
//! [`Bat`]: mammoth_storage::Bat

#![deny(unsafe_code)]

pub mod agg;
pub mod arith;
pub mod fetch;
pub mod join;
pub mod mat;
pub mod radix;
pub mod select;
pub mod sort;

pub use agg::{aggregate_scalar, group_by, group_refine, grouped_aggregate, AggKind};
pub use arith::{arith_bat, arith_const, ArithOp};
pub use fetch::{fetch_join, fetch_join_with_head, gather, positions_of, scatter};
pub use join::{hash_join, merge_join, nested_loop_join, JoinIndex};
pub use mat::{pack, packsum};
pub use radix::{
    even_passes, mix_key_bat, partitioned_hash_join, radix_cluster, radix_decluster,
    radix_decluster_fixed, ClusteredColumn,
};
pub use select::{select_cmp, select_eq, select_range, CmpOp};
pub use sort::{order, sort_bat, sort_bat_dir};
