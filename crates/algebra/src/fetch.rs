//! Positional projection (MonetDB `leftfetchjoin`).
//!
//! After a selection or join produced oids, tuple reconstruction fetches the
//! other columns *by position* — the O(1) array lookup that void heads make
//! possible (§3). This is the DSM "post-projection" building block that
//! experiment E05 stresses.

use mammoth_storage::{Bat, Properties, TailHeap};
use mammoth_types::{Error, Oid, Result};

/// Resolve candidate oids (tail of `cands`) to physical positions in `base`.
pub fn positions_of(cands: &Bat, base: &Bat) -> Result<Vec<usize>> {
    let oids = cands.tail_slice::<Oid>()?;
    let mut out = Vec::with_capacity(oids.len());
    match base.head() {
        mammoth_storage::HeadColumn::Void { seqbase } => {
            let len = base.len() as u64;
            for &o in oids {
                if o < *seqbase || o - seqbase >= len {
                    return Err(Error::OutOfRange { index: o, len });
                }
                out.push((o - seqbase) as usize);
            }
        }
        mammoth_storage::HeadColumn::Oids(_) => {
            for &o in oids {
                let p = base.find_oid(o).ok_or(Error::OutOfRange {
                    index: o,
                    len: base.len() as u64,
                })?;
                out.push(p);
            }
        }
    }
    Ok(out)
}

/// `fetch_join(cands, values)`: for each candidate oid, fetch the value at
/// that position of `values`. The result is dense and aligned with `cands`.
pub fn fetch_join(cands: &Bat, values: &Bat) -> Result<Bat> {
    let pos = positions_of(cands, values)?;
    let tail = values.tail().take(&pos);
    let mut out = Bat::dense(0, tail);
    // A fetch through ascending positions preserves sortedness facts.
    if cands.props().sorted {
        out.set_props(values.props().after_filter());
    } else {
        out.set_props(Properties::unknown());
    }
    Ok(out)
}

/// Materialize a candidate BAT over `values` into `<oid, value>` pairs with
/// the candidate oids as an explicit head (useful for result rendering).
pub fn fetch_join_with_head(cands: &Bat, values: &Bat) -> Result<Bat> {
    let pos = positions_of(cands, values)?;
    let tail = values.tail().take(&pos);
    let head: Vec<Oid> = cands.tail_slice::<Oid>()?.to_vec();
    Bat::with_head(head, tail)
}

/// Project a dense BAT through an arbitrary position vector (gather).
pub fn gather(values: &Bat, positions: &[usize]) -> Result<Bat> {
    for &p in positions {
        if p >= values.len() {
            return Err(Error::OutOfRange {
                index: p as u64,
                len: values.len() as u64,
            });
        }
    }
    Ok(Bat::dense(0, values.tail().take(positions)))
}

/// The inverse of gather: `scatter(values, positions, n)` builds a BAT of
/// length `n` with `out[positions[i]] = values[i]`. Unfilled slots are nil.
pub fn scatter(values: &Bat, positions: &[usize], n: usize) -> Result<Bat> {
    if values.len() != positions.len() {
        return Err(Error::LengthMismatch {
            left: values.len(),
            right: positions.len(),
        });
    }
    let mut out = TailHeap::with_capacity(values.ty(), n);
    // fill with nils first (dynamic path: scatter is not a hot primitive)
    for _ in 0..n {
        out.push_value(&mammoth_types::Value::Null)?;
    }
    let mut bat = Bat::dense(0, out);
    {
        let tail = bat.tail_mut();
        for (i, &p) in positions.iter().enumerate() {
            if p >= n {
                return Err(Error::OutOfRange {
                    index: p as u64,
                    len: n as u64,
                });
            }
            let v = values.value_at(i);
            // overwrite slot p
            match tail {
                TailHeap::Bool(v_) => v_[p] = matches!(v, mammoth_types::Value::Bool(true)),
                TailHeap::I8(v_) => {
                    v_[p] = i8::try_from(v.as_i64().unwrap_or(i8::MIN as i64)).unwrap_or(i8::MIN)
                }
                TailHeap::I16(v_) => {
                    v_[p] = i16::try_from(v.as_i64().unwrap_or(i16::MIN as i64)).unwrap_or(i16::MIN)
                }
                TailHeap::I32(v_) => {
                    v_[p] = i32::try_from(v.as_i64().unwrap_or(i32::MIN as i64)).unwrap_or(i32::MIN)
                }
                TailHeap::I64(v_) => v_[p] = v.as_i64().unwrap_or(i64::MIN),
                TailHeap::F64(v_) => v_[p] = v.as_f64().unwrap_or(f64::NAN),
                TailHeap::Oid(v_) => v_[p] = v.as_i64().map(|x| x as u64).unwrap_or(u64::MAX),
                TailHeap::Str(_) => {
                    return Err(Error::Unsupported("scatter over string heaps".into()))
                }
            }
        }
    }
    Ok(bat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mammoth_types::{NativeType, Value};

    #[test]
    fn figure1_reconstruction() {
        // Figure 1: select(age,1927) -> {1,2}; fetch names at those oids.
        let name = Bat::from_strings([
            Some("John Wayne"),
            Some("Roger Moore"),
            Some("Bob Fosse"),
            Some("Will Smith"),
        ]);
        let cands = Bat::from_vec(vec![1u64 as Oid, 2]);
        let r = fetch_join(&cands, &name).unwrap();
        assert_eq!(r.value_at(0), Value::Str("Roger Moore".into()));
        assert_eq!(r.value_at(1), Value::Str("Bob Fosse".into()));
    }

    #[test]
    fn respects_seqbase() {
        let base = Bat::from_vec(vec![10i32, 20, 30, 40]).slice(2, 4).unwrap(); // oids 2,3
        let cands = Bat::from_vec(vec![3u64 as Oid]);
        let r = fetch_join(&cands, &base).unwrap();
        assert_eq!(r.value_at(0), Value::I32(40));
        // oid below the view's seqbase errors
        let bad = Bat::from_vec(vec![0u64 as Oid]);
        assert!(fetch_join(&bad, &base).is_err());
    }

    #[test]
    fn out_of_range_errors() {
        let base = Bat::from_vec(vec![1i32]);
        let cands = Bat::from_vec(vec![5u64 as Oid]);
        assert!(fetch_join(&cands, &base).is_err());
    }

    #[test]
    fn with_head_keeps_oids() {
        let base = Bat::from_vec(vec![5i32, 6, 7]);
        let cands = Bat::from_vec(vec![2u64 as Oid, 0]);
        let r = fetch_join_with_head(&cands, &base).unwrap();
        assert_eq!(r.oid_at(0), 2);
        assert_eq!(r.value_at(0), Value::I32(7));
        assert_eq!(r.oid_at(1), 0);
    }

    #[test]
    fn gather_and_scatter_roundtrip() {
        let b = Bat::from_vec(vec![10i64, 20, 30, 40]);
        let g = gather(&b, &[3, 1]).unwrap();
        assert_eq!(g.tail_slice::<i64>().unwrap(), &[40, 20]);
        let s = scatter(&g, &[3, 1], 4).unwrap();
        let out = s.tail_slice::<i64>().unwrap();
        assert_eq!(out[3], 40);
        assert_eq!(out[1], 20);
        assert!(out[0].is_nil() && out[2].is_nil());
        assert!(gather(&b, &[9]).is_err());
        assert!(scatter(&g, &[9, 1], 4).is_err());
    }
}
