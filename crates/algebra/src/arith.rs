//! Bulk arithmetic and comparison maps.
//!
//! Each operation is a zero-degrees-of-freedom primitive: one operator, one
//! type, one tight loop. The MAL layer strings these together instead of
//! interpreting expression trees per tuple.

use mammoth_storage::{Bat, FixedTail, TailHeap};
use mammoth_types::{Error, LogicalType, NativeType, Result, Value};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

trait ArithNative: NativeType + FixedTail {
    fn apply(op: ArithOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_arith_int {
    ($t:ty) => {
        impl ArithNative for $t {
            #[inline(always)]
            fn apply(op: ArithOp, a: Self, b: Self) -> Self {
                if a.is_nil() || b.is_nil() {
                    return Self::NIL;
                }
                match op {
                    ArithOp::Add => a.wrapping_add(b),
                    ArithOp::Sub => a.wrapping_sub(b),
                    ArithOp::Mul => a.wrapping_mul(b),
                    ArithOp::Div => {
                        if b == 0 {
                            Self::NIL
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    ArithOp::Mod => {
                        if b == 0 {
                            Self::NIL
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                }
            }
        }
    };
}

impl_arith_int!(i8);
impl_arith_int!(i16);
impl_arith_int!(i32);
impl_arith_int!(i64);

impl ArithNative for f64 {
    #[inline(always)]
    fn apply(op: ArithOp, a: Self, b: Self) -> Self {
        // NaN (nil) propagates naturally through float arithmetic
        match op {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
            ArithOp::Mod => a % b,
        }
    }
}

fn map_binary<T: ArithNative>(op: ArithOp, a: &[T], b: &[T]) -> TailHeap {
    debug_assert_eq!(a.len(), b.len());
    let mut out = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        out.push(T::apply(op, a[i], b[i]));
    }
    TailHeap::from_vec(out)
}

fn map_const<T: ArithNative>(op: ArithOp, a: &[T], c: T) -> TailHeap {
    let mut out = Vec::with_capacity(a.len());
    for &x in a {
        out.push(T::apply(op, x, c));
    }
    TailHeap::from_vec(out)
}

fn coerce_bat(b: &Bat, ty: LogicalType) -> Result<Bat> {
    if b.ty() == ty {
        return Ok(b.clone());
    }
    let mut out = TailHeap::with_capacity(ty, b.len());
    for i in 0..b.len() {
        out.push_value(&b.value_at(i))
            .map_err(|_| Error::TypeMismatch {
                expected: ty.name().into(),
                found: b.ty().name().into(),
            })?;
    }
    Ok(Bat::dense(0, out))
}

/// `[op](a, b)`: element-wise arithmetic between two aligned BATs, widening
/// to the common numeric type.
pub fn arith_bat(op: ArithOp, a: &Bat, b: &Bat) -> Result<Bat> {
    if a.len() != b.len() {
        return Err(Error::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    let ty = LogicalType::widen(a.ty(), b.ty()).ok_or_else(|| Error::TypeMismatch {
        expected: "numeric".into(),
        found: format!("{} vs {}", a.ty().name(), b.ty().name()),
    })?;
    let (a, b) = (coerce_bat(a, ty)?, coerce_bat(b, ty)?);
    let heap = match ty {
        LogicalType::I8 => map_binary::<i8>(op, a.tail_slice()?, b.tail_slice()?),
        LogicalType::I16 => map_binary::<i16>(op, a.tail_slice()?, b.tail_slice()?),
        LogicalType::I32 => map_binary::<i32>(op, a.tail_slice()?, b.tail_slice()?),
        LogicalType::I64 => map_binary::<i64>(op, a.tail_slice()?, b.tail_slice()?),
        LogicalType::F64 => map_binary::<f64>(op, a.tail_slice()?, b.tail_slice()?),
        other => {
            return Err(Error::TypeMismatch {
                expected: "numeric".into(),
                found: other.name().into(),
            })
        }
    };
    Ok(Bat::dense(0, heap))
}

/// `[op](a, c)`: element-wise arithmetic against a constant.
pub fn arith_const(op: ArithOp, a: &Bat, c: &Value) -> Result<Bat> {
    let cty = c.logical_type().ok_or_else(|| Error::TypeMismatch {
        expected: "non-null constant".into(),
        found: "NULL".into(),
    })?;
    let ty = LogicalType::widen(a.ty(), cty).ok_or_else(|| Error::TypeMismatch {
        expected: "numeric".into(),
        found: format!("{} vs {}", a.ty().name(), cty.name()),
    })?;
    let a = coerce_bat(a, ty)?;
    let c = c.coerce(ty).ok_or_else(|| Error::TypeMismatch {
        expected: ty.name().into(),
        found: format!("{c:?}"),
    })?;
    let heap = match ty {
        LogicalType::I8 => map_const::<i8>(op, a.tail_slice()?, i8::from_value(&c).unwrap()),
        LogicalType::I16 => map_const::<i16>(op, a.tail_slice()?, i16::from_value(&c).unwrap()),
        LogicalType::I32 => map_const::<i32>(op, a.tail_slice()?, i32::from_value(&c).unwrap()),
        LogicalType::I64 => map_const::<i64>(op, a.tail_slice()?, i64::from_value(&c).unwrap()),
        LogicalType::F64 => map_const::<f64>(op, a.tail_slice()?, f64::from_value(&c).unwrap()),
        other => {
            return Err(Error::TypeMismatch {
                expected: "numeric".into(),
                found: other.name().into(),
            })
        }
    };
    Ok(Bat::dense(0, heap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bat_bat_arithmetic() {
        let a = Bat::from_vec(vec![1i32, 2, 3]);
        let b = Bat::from_vec(vec![10i32, 20, 30]);
        let r = arith_bat(ArithOp::Add, &a, &b).unwrap();
        assert_eq!(r.tail_slice::<i32>().unwrap(), &[11, 22, 33]);
        let r = arith_bat(ArithOp::Mul, &a, &b).unwrap();
        assert_eq!(r.tail_slice::<i32>().unwrap(), &[10, 40, 90]);
    }

    #[test]
    fn widening() {
        let a = Bat::from_vec(vec![1i32, 2]);
        let b = Bat::from_vec(vec![0.5f64, 0.25]);
        let r = arith_bat(ArithOp::Mul, &a, &b).unwrap();
        assert_eq!(r.tail_slice::<f64>().unwrap(), &[0.5, 0.5]);
        assert_eq!(r.ty(), LogicalType::F64);
    }

    #[test]
    fn nil_propagates() {
        let a = Bat::from_vec(vec![1i64, i64::NIL, 3]);
        let r = arith_const(ArithOp::Add, &a, &Value::I64(10)).unwrap();
        let s = r.tail_slice::<i64>().unwrap();
        assert_eq!(s[0], 11);
        assert!(s[1].is_nil());
        assert_eq!(s[2], 13);
    }

    #[test]
    fn division_by_zero_yields_nil() {
        let a = Bat::from_vec(vec![10i32, 20]);
        let r = arith_const(ArithOp::Div, &a, &Value::I32(0)).unwrap();
        assert!(r.tail_slice::<i32>().unwrap().iter().all(|x| x.is_nil()));
        let f = Bat::from_vec(vec![1.0f64]);
        let r = arith_const(ArithOp::Div, &f, &Value::F64(0.0)).unwrap();
        assert!(r.tail_slice::<f64>().unwrap()[0].is_infinite());
    }

    #[test]
    fn mod_and_sub() {
        let a = Bat::from_vec(vec![10i32, 21]);
        let r = arith_const(ArithOp::Mod, &a, &Value::I32(7)).unwrap();
        assert_eq!(r.tail_slice::<i32>().unwrap(), &[3, 0]);
        let r = arith_const(ArithOp::Sub, &a, &Value::I32(1)).unwrap();
        assert_eq!(r.tail_slice::<i32>().unwrap(), &[9, 20]);
    }

    #[test]
    fn errors() {
        let a = Bat::from_vec(vec![1i32]);
        let b = Bat::from_vec(vec![1i32, 2]);
        assert!(arith_bat(ArithOp::Add, &a, &b).is_err());
        let s = Bat::from_strings([Some("x")]);
        assert!(arith_bat(ArithOp::Add, &a, &s).is_err());
        assert!(arith_const(ArithOp::Add, &a, &Value::Null).is_err());
    }
}
