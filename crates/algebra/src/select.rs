//! Bulk selections.
//!
//! The C-level sketch in §3 is the contract:
//!
//! ```c
//! for (i = j = 0; i < n; i++)
//!     if (B.tail[i] == V) R.tail[j++] = i;
//! ```
//!
//! — a tight, branch-predictable loop over a native array with no expression
//! interpreter in sight. Results are candidate BATs (void head, ascending
//! oid tail). When the input's `sorted` property holds, range selections
//! switch to binary search (§3.1: properties "gear the selection of
//! subsequent algorithms").

use mammoth_storage::{Bat, FixedTail, Properties, TailHeap};
use mammoth_types::{Error, NativeType, Oid, Result, Value};

/// Comparison operators supported by [`select_cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Wrap qualifying positions into a candidate BAT with full properties.
fn candidates(b: &Bat, positions: Vec<Oid>) -> Bat {
    // positions are produced in scan order, hence strictly ascending
    debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
    let void_head = b.head().is_void();
    let oids: Vec<Oid> = match b.head() {
        mammoth_storage::HeadColumn::Void { seqbase } => {
            positions.into_iter().map(|p| p + seqbase).collect()
        }
        // with a materialized head, candidates carry the head oids (not the
        // physical positions), and ascending order is no longer guaranteed
        mammoth_storage::HeadColumn::Oids(_) => positions
            .into_iter()
            .map(|p| b.oid_at(p as usize))
            .collect(),
    };
    let mut out = Bat::dense(0, TailHeap::from_vec(oids));
    out.set_props(Properties {
        sorted: void_head,
        revsorted: out.len() <= 1,
        key: void_head,
        nonil: true,
        min: None,
        max: None,
    });
    out
}

fn scan_select<T: NativeType + FixedTail>(data: &[T], pred: impl Fn(&T) -> bool) -> Vec<Oid> {
    let mut out = Vec::new();
    for (i, v) in data.iter().enumerate() {
        // nil never qualifies (SQL three-valued logic collapses to false)
        if !v.is_nil() && pred(v) {
            out.push(i as Oid);
        }
    }
    out
}

fn typed_const<T: NativeType>(v: &Value) -> Result<T> {
    T::from_value(v)
        .or_else(|| v.coerce(T::LOGICAL).as_ref().and_then(T::from_value))
        .ok_or_else(|| Error::TypeMismatch {
            expected: T::LOGICAL.name().into(),
            found: format!("{v:?}"),
        })
}

fn select_cmp_fixed<T: NativeType + FixedTail>(b: &Bat, op: CmpOp, v: &Value) -> Result<Bat> {
    let c: T = typed_const(v)?;
    if c.is_nil() {
        // comparisons with NULL select nothing
        return Ok(candidates(b, Vec::new()));
    }
    let data = b.tail_slice::<T>()?;
    use std::cmp::Ordering::*;
    let pos = match op {
        CmpOp::Eq => scan_select(data, |x| x.nil_cmp(&c) == Equal),
        CmpOp::Ne => scan_select(data, |x| x.nil_cmp(&c) != Equal),
        CmpOp::Lt => scan_select(data, |x| x.nil_cmp(&c) == Less),
        CmpOp::Le => scan_select(data, |x| x.nil_cmp(&c) != Greater),
        CmpOp::Gt => scan_select(data, |x| x.nil_cmp(&c) == Greater),
        CmpOp::Ge => scan_select(data, |x| x.nil_cmp(&c) != Less),
    };
    Ok(candidates(b, pos))
}

/// `select(b, op, v)`: candidate positions where `tail op v` holds.
pub fn select_cmp(b: &Bat, op: CmpOp, v: &Value) -> Result<Bat> {
    match b.tail() {
        TailHeap::Bool(_) => select_cmp_fixed::<bool>(b, op, v),
        TailHeap::I8(_) => select_cmp_fixed::<i8>(b, op, v),
        TailHeap::I16(_) => select_cmp_fixed::<i16>(b, op, v),
        TailHeap::I32(_) => select_cmp_fixed::<i32>(b, op, v),
        TailHeap::I64(_) => select_cmp_fixed::<i64>(b, op, v),
        TailHeap::F64(_) => select_cmp_fixed::<f64>(b, op, v),
        TailHeap::Oid(_) => select_cmp_fixed::<Oid>(b, op, v),
        TailHeap::Str(h) => {
            let needle = match v {
                Value::Null => return Ok(candidates(b, Vec::new())),
                Value::Str(s) => s.as_str(),
                other => {
                    return Err(Error::TypeMismatch {
                        expected: "string".into(),
                        found: format!("{other:?}"),
                    })
                }
            };
            let mut pos = Vec::new();
            for i in 0..h.len() {
                if let Some(s) = h.get(i) {
                    let keep = match op {
                        CmpOp::Eq => s == needle,
                        CmpOp::Ne => s != needle,
                        CmpOp::Lt => s < needle,
                        CmpOp::Le => s <= needle,
                        CmpOp::Gt => s > needle,
                        CmpOp::Ge => s >= needle,
                    };
                    if keep {
                        pos.push(i as Oid);
                    }
                }
            }
            Ok(candidates(b, pos))
        }
    }
}

/// `select(b, v)`: equality selection, the canonical §3 example.
pub fn select_eq(b: &Bat, v: &Value) -> Result<Bat> {
    select_cmp(b, CmpOp::Eq, v)
}

fn range_fixed<T: NativeType + FixedTail>(
    b: &Bat,
    lo: Option<&Value>,
    hi: Option<&Value>,
    lo_incl: bool,
    hi_incl: bool,
) -> Result<Bat> {
    let data = b.tail_slice::<T>()?;
    let lo_t: Option<T> = lo.map(typed_const).transpose()?;
    let hi_t: Option<T> = hi.map(typed_const).transpose()?;

    // Binary-search fast path on sorted, nil-free tails.
    if b.props().sorted && b.props().nonil {
        use std::cmp::Ordering::*;
        let from = match &lo_t {
            None => 0,
            Some(c) => data.partition_point(|x| {
                let ord = x.nil_cmp(c);
                ord == Less || (!lo_incl && ord == Equal)
            }),
        };
        let to = match &hi_t {
            None => data.len(),
            Some(c) => data.partition_point(|x| {
                let ord = x.nil_cmp(c);
                ord == Less || (hi_incl && ord == Equal)
            }),
        };
        let positions: Vec<Oid> = (from.min(to) as Oid..to as Oid).collect();
        return Ok(candidates(b, positions));
    }

    use std::cmp::Ordering::*;
    let pos = scan_select(data, |x| {
        let lo_ok = match &lo_t {
            None => true,
            Some(c) => {
                let ord = x.nil_cmp(c);
                ord == Greater || (lo_incl && ord == Equal)
            }
        };
        let hi_ok = match &hi_t {
            None => true,
            Some(c) => {
                let ord = x.nil_cmp(c);
                ord == Less || (hi_incl && ord == Equal)
            }
        };
        lo_ok && hi_ok
    });
    Ok(candidates(b, pos))
}

/// Range selection `lo .. hi` with open bounds expressed as `None`.
pub fn select_range(
    b: &Bat,
    lo: Option<&Value>,
    hi: Option<&Value>,
    lo_incl: bool,
    hi_incl: bool,
) -> Result<Bat> {
    if matches!(lo, Some(Value::Null)) || matches!(hi, Some(Value::Null)) {
        return Ok(candidates(b, Vec::new()));
    }
    match b.tail() {
        TailHeap::Bool(_) => range_fixed::<bool>(b, lo, hi, lo_incl, hi_incl),
        TailHeap::I8(_) => range_fixed::<i8>(b, lo, hi, lo_incl, hi_incl),
        TailHeap::I16(_) => range_fixed::<i16>(b, lo, hi, lo_incl, hi_incl),
        TailHeap::I32(_) => range_fixed::<i32>(b, lo, hi, lo_incl, hi_incl),
        TailHeap::I64(_) => range_fixed::<i64>(b, lo, hi, lo_incl, hi_incl),
        TailHeap::F64(_) => range_fixed::<f64>(b, lo, hi, lo_incl, hi_incl),
        TailHeap::Oid(_) => range_fixed::<Oid>(b, lo, hi, lo_incl, hi_incl),
        TailHeap::Str(h) => {
            let lo_s = match lo {
                None => None,
                Some(Value::Str(s)) => Some(s.as_str()),
                Some(other) => {
                    return Err(Error::TypeMismatch {
                        expected: "string".into(),
                        found: format!("{other:?}"),
                    })
                }
            };
            let hi_s = match hi {
                None => None,
                Some(Value::Str(s)) => Some(s.as_str()),
                Some(other) => {
                    return Err(Error::TypeMismatch {
                        expected: "string".into(),
                        found: format!("{other:?}"),
                    })
                }
            };
            let mut pos = Vec::new();
            for i in 0..h.len() {
                if let Some(s) = h.get(i) {
                    let lo_ok = lo_s.is_none_or(|c| if lo_incl { s >= c } else { s > c });
                    let hi_ok = hi_s.is_none_or(|c| if hi_incl { s <= c } else { s < c });
                    if lo_ok && hi_ok {
                        pos.push(i as Oid);
                    }
                }
            }
            Ok(candidates(b, pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mammoth_storage::Bat;

    #[test]
    fn figure1_select() {
        // Figure 1: select(age, 1927) over [1907, 1927, 1927, 1968] -> {1, 2}
        let age = Bat::from_vec(vec![1907i32, 1927, 1927, 1968]);
        let r = select_eq(&age, &Value::I32(1927)).unwrap();
        assert_eq!(r.tail_slice::<Oid>().unwrap(), &[1, 2]);
        assert!(r.props().sorted && r.props().key);
    }

    #[test]
    fn comparison_ops() {
        let b = Bat::from_vec(vec![5i64, 1, 3, 5, 9]);
        let pos = |op| {
            select_cmp(&b, op, &Value::I64(5))
                .unwrap()
                .tail_slice::<Oid>()
                .unwrap()
                .to_vec()
        };
        assert_eq!(pos(CmpOp::Eq), vec![0, 3]);
        assert_eq!(pos(CmpOp::Ne), vec![1, 2, 4]);
        assert_eq!(pos(CmpOp::Lt), vec![1, 2]);
        assert_eq!(pos(CmpOp::Le), vec![0, 1, 2, 3]);
        assert_eq!(pos(CmpOp::Gt), vec![4]);
        assert_eq!(pos(CmpOp::Ge), vec![0, 3, 4]);
    }

    #[test]
    fn nil_never_matches() {
        let b = Bat::from_vec(vec![1i32, i32::NIL, 3]);
        assert_eq!(select_cmp(&b, CmpOp::Ne, &Value::I32(99)).unwrap().len(), 2);
        assert_eq!(select_cmp(&b, CmpOp::Lt, &Value::I32(99)).unwrap().len(), 2);
        // comparing against NULL selects nothing
        assert_eq!(select_eq(&b, &Value::Null).unwrap().len(), 0);
    }

    #[test]
    fn range_scan_and_bounds() {
        let b = Bat::from_vec(vec![10i32, 20, 30, 40, 50]);
        let r = select_range(&b, Some(&Value::I32(20)), Some(&Value::I32(40)), true, true).unwrap();
        assert_eq!(r.tail_slice::<Oid>().unwrap(), &[1, 2, 3]);
        let r = select_range(
            &b,
            Some(&Value::I32(20)),
            Some(&Value::I32(40)),
            false,
            false,
        )
        .unwrap();
        assert_eq!(r.tail_slice::<Oid>().unwrap(), &[2]);
        let r = select_range(&b, None, Some(&Value::I32(25)), true, true).unwrap();
        assert_eq!(r.tail_slice::<Oid>().unwrap(), &[0, 1]);
        let r = select_range(&b, Some(&Value::I32(45)), None, true, true).unwrap();
        assert_eq!(r.tail_slice::<Oid>().unwrap(), &[4]);
    }

    #[test]
    fn sorted_fast_path_equals_scan() {
        let mut sorted = Bat::from_vec((0..1000i64).map(|i| i / 3).collect::<Vec<_>>());
        sorted.compute_props();
        assert!(sorted.props().sorted);
        let unsorted = Bat::from_vec(sorted.tail_slice::<i64>().unwrap().to_vec());
        for (lo, hi, li, hi_i) in [
            (10, 50, true, true),
            (0, 0, true, false),
            (5, 7, false, true),
        ] {
            let a = select_range(
                &sorted,
                Some(&Value::I64(lo)),
                Some(&Value::I64(hi)),
                li,
                hi_i,
            )
            .unwrap();
            let b = select_range(
                &unsorted,
                Some(&Value::I64(lo)),
                Some(&Value::I64(hi)),
                li,
                hi_i,
            )
            .unwrap();
            assert_eq!(
                a.tail_slice::<Oid>().unwrap(),
                b.tail_slice::<Oid>().unwrap()
            );
        }
    }

    #[test]
    fn string_selects() {
        let b = Bat::from_strings([Some("apple"), Some("pear"), None, Some("fig")]);
        let r = select_eq(&b, &Value::Str("pear".into())).unwrap();
        assert_eq!(r.tail_slice::<Oid>().unwrap(), &[1]);
        let r = select_range(
            &b,
            Some(&Value::Str("a".into())),
            Some(&Value::Str("g".into())),
            true,
            true,
        )
        .unwrap();
        assert_eq!(r.tail_slice::<Oid>().unwrap(), &[0, 3]);
        assert!(select_eq(&b, &Value::I32(3)).is_err());
    }

    #[test]
    fn seqbase_offsets_candidates() {
        let b = Bat::from_vec(vec![7i32, 8, 7]).slice(1, 3).unwrap(); // seqbase 1
        let r = select_eq(&b, &Value::I32(7)).unwrap();
        assert_eq!(r.tail_slice::<Oid>().unwrap(), &[2]);
    }

    #[test]
    fn coercion_of_constants() {
        let b = Bat::from_vec(vec![1i32, 2, 3]);
        // i64 constant against i32 column coerces
        let r = select_eq(&b, &Value::I64(2)).unwrap();
        assert_eq!(r.tail_slice::<Oid>().unwrap(), &[1]);
        // out-of-range constant cannot coerce
        assert!(select_eq(&b, &Value::I64(i64::MAX)).is_err());
    }
}
