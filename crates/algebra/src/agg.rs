//! Grouping and aggregation.
//!
//! `group_by` assigns dense group ids in first-appearance order (the
//! MonetDB `group` operator); `grouped_aggregate` then folds a value column
//! per group in one tight pass. Like everything in the BAT Algebra the two
//! phases are separate bulk operators, not a single streaming pipeline.

use mammoth_storage::{Bat, TailHeap};
use mammoth_types::{Error, NativeType, Oid, Result, Value};
use std::collections::HashMap;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Count of non-nil values.
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// `group(b)`: a BAT mapping each row to a dense group id (0-based, in
/// first-appearance order), plus the number of groups and one representative
/// row position per group ("extents").
pub fn group_by(b: &Bat) -> Result<(Bat, usize, Vec<usize>)> {
    let n = b.len();
    let mut ids = Vec::with_capacity(n);
    let mut extents = Vec::new();

    match b.tail() {
        TailHeap::Str(h) => {
            // within one heap, dedup guarantees equal strings share their
            // offset, so the offset is an exact group key; nil gets its own
            // group like any other value (SQL GROUP BY semantics)
            let mut seen: HashMap<u64, u32> = HashMap::new();
            for i in 0..n {
                let key = h.offset(i);
                let next = seen.len() as u32;
                let id = *seen.entry(key).or_insert_with(|| {
                    extents.push(i);
                    next
                });
                ids.push(id as Oid);
            }
        }
        _ => {
            let jk = crate::radix::mix_key_bat(b)?;
            let mut seen: HashMap<Option<u64>, u32> = HashMap::new();
            for i in 0..n {
                let key = if jk.nils[i] { None } else { Some(jk.keys[i]) };
                let next = seen.len() as u32;
                let id = *seen.entry(key).or_insert_with(|| {
                    extents.push(i);
                    next
                });
                ids.push(id as Oid);
            }
        }
    }
    let ngroups = extents.len();
    Ok((Bat::dense(0, TailHeap::from_vec(ids)), ngroups, extents))
}

/// Refine an existing grouping by a second column: rows are in the same
/// output group iff they agree on both the old group and `b`'s value.
/// This is how multi-column GROUP BY composes out of unary operators.
pub fn group_refine(groups: &Bat, b: &Bat) -> Result<(Bat, usize, Vec<usize>)> {
    if groups.len() != b.len() {
        return Err(Error::LengthMismatch {
            left: groups.len(),
            right: b.len(),
        });
    }
    let gid = groups.tail_slice::<Oid>()?;
    let jk = crate::radix::mix_key_bat(b)?;
    let mut seen: HashMap<(Oid, Option<u64>), u32> = HashMap::new();
    let mut ids = Vec::with_capacity(b.len());
    let mut extents = Vec::new();
    // strings: refine on heap offset (exact within one heap)
    let str_heap = b.tail().as_str_heap();
    #[allow(clippy::needless_range_loop)] // i indexes three parallel arrays
    for i in 0..b.len() {
        let key = match str_heap {
            Some(h) => Some(h.offset(i)),
            None => {
                if jk.nils[i] {
                    None
                } else {
                    Some(jk.keys[i])
                }
            }
        };
        let next = seen.len() as u32;
        let id = *seen.entry((gid[i], key)).or_insert_with(|| {
            extents.push(i);
            next
        });
        ids.push(id as Oid);
    }
    let n = extents.len();
    Ok((Bat::dense(0, TailHeap::from_vec(ids)), n, extents))
}

#[derive(Clone, Copy)]
struct Acc {
    count: u64,
    sum: f64,
    sum_i: i64,
    min: f64,
    max: f64,
    min_i: i64,
    max_i: i64,
}

impl Acc {
    fn new() -> Acc {
        Acc {
            count: 0,
            sum: 0.0,
            sum_i: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            min_i: i64::MAX,
            max_i: i64::MIN,
        }
    }

    #[inline]
    fn add_i(&mut self, v: i64) {
        self.count += 1;
        self.sum_i = self.sum_i.wrapping_add(v);
        self.sum += v as f64;
        self.min_i = self.min_i.min(v);
        self.max_i = self.max_i.max(v);
    }

    #[inline]
    fn add_f(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

fn accumulate(values: &Bat, gid: &[Oid], ngroups: usize) -> Result<(Vec<Acc>, bool)> {
    let mut accs = vec![Acc::new(); ngroups];
    let float = match values.tail() {
        TailHeap::I8(v) => {
            for (i, x) in v.iter().enumerate() {
                if !x.is_nil() {
                    accs[gid[i] as usize].add_i(*x as i64);
                }
            }
            false
        }
        TailHeap::I16(v) => {
            for (i, x) in v.iter().enumerate() {
                if !x.is_nil() {
                    accs[gid[i] as usize].add_i(*x as i64);
                }
            }
            false
        }
        TailHeap::I32(v) => {
            for (i, x) in v.iter().enumerate() {
                if !x.is_nil() {
                    accs[gid[i] as usize].add_i(*x as i64);
                }
            }
            false
        }
        TailHeap::I64(v) => {
            for (i, x) in v.iter().enumerate() {
                if !x.is_nil() {
                    accs[gid[i] as usize].add_i(*x);
                }
            }
            false
        }
        TailHeap::F64(v) => {
            for (i, x) in v.iter().enumerate() {
                if !x.is_nil() {
                    accs[gid[i] as usize].add_f(*x);
                }
            }
            true
        }
        TailHeap::Oid(v) => {
            // oids aggregate as unsigned integers (used for COUNT(*) via
            // the never-nil group-id column)
            for (i, x) in v.iter().enumerate() {
                if !x.is_nil() {
                    accs[gid[i] as usize].add_i(*x as i64);
                }
            }
            false
        }
        TailHeap::Str(h) => {
            // only COUNT is meaningful on strings
            for i in 0..h.len() {
                if h.get(i).is_some() {
                    accs[gid[i] as usize].count += 1;
                }
            }
            false
        }
        other => {
            return Err(Error::Unsupported(format!(
                "aggregation over {} columns",
                other.ty().name()
            )))
        }
    };
    Ok((accs, float))
}

/// `agg(kind, values, groups, ngroups)`: one output row per group.
///
/// `groups` must be aligned with `values` (same length). SUM/MIN/MAX over
/// integers stay integral (i64); AVG is always f64; empty groups yield nil.
pub fn grouped_aggregate(kind: AggKind, values: &Bat, groups: &Bat, ngroups: usize) -> Result<Bat> {
    if values.len() != groups.len() {
        return Err(Error::LengthMismatch {
            left: values.len(),
            right: groups.len(),
        });
    }
    let gid = groups.tail_slice::<Oid>()?;
    if let Some(&bad) = gid.iter().find(|&&g| g as usize >= ngroups) {
        return Err(Error::OutOfRange {
            index: bad,
            len: ngroups as u64,
        });
    }
    let (accs, float) = accumulate(values, gid, ngroups)?;

    let heap = match kind {
        AggKind::Count => {
            TailHeap::from_vec(accs.iter().map(|a| a.count as i64).collect::<Vec<_>>())
        }
        AggKind::Avg => TailHeap::from_vec(
            accs.iter()
                .map(|a| {
                    if a.count == 0 {
                        f64::NIL
                    } else {
                        a.sum / a.count as f64
                    }
                })
                .collect::<Vec<_>>(),
        ),
        AggKind::Sum => {
            if float {
                TailHeap::from_vec(
                    accs.iter()
                        .map(|a| if a.count == 0 { f64::NIL } else { a.sum })
                        .collect::<Vec<_>>(),
                )
            } else {
                TailHeap::from_vec(
                    accs.iter()
                        .map(|a| if a.count == 0 { i64::NIL } else { a.sum_i })
                        .collect::<Vec<_>>(),
                )
            }
        }
        AggKind::Min => {
            if float {
                TailHeap::from_vec(
                    accs.iter()
                        .map(|a| if a.count == 0 { f64::NIL } else { a.min })
                        .collect::<Vec<_>>(),
                )
            } else {
                TailHeap::from_vec(
                    accs.iter()
                        .map(|a| if a.count == 0 { i64::NIL } else { a.min_i })
                        .collect::<Vec<_>>(),
                )
            }
        }
        AggKind::Max => {
            if float {
                TailHeap::from_vec(
                    accs.iter()
                        .map(|a| if a.count == 0 { f64::NIL } else { a.max })
                        .collect::<Vec<_>>(),
                )
            } else {
                TailHeap::from_vec(
                    accs.iter()
                        .map(|a| if a.count == 0 { i64::NIL } else { a.max_i })
                        .collect::<Vec<_>>(),
                )
            }
        }
    };
    Ok(Bat::dense(0, heap))
}

/// Aggregate a whole column to a single value.
pub fn aggregate_scalar(kind: AggKind, values: &Bat) -> Result<Value> {
    let groups = Bat::dense(0, TailHeap::from_vec(vec![0 as Oid; values.len()]));
    let out = grouped_aggregate(kind, values, &groups, 1)?;
    Ok(out.value_at(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_ids_first_appearance() {
        let b = Bat::from_vec(vec![7i32, 3, 7, 9, 3]);
        let (g, n, extents) = group_by(&b).unwrap();
        assert_eq!(n, 3);
        assert_eq!(g.tail_slice::<Oid>().unwrap(), &[0, 1, 0, 2, 1]);
        assert_eq!(extents, vec![0, 1, 3]);
    }

    #[test]
    fn nil_forms_its_own_group() {
        let b = Bat::from_vec(vec![1i32, i32::NIL, 1, i32::NIL]);
        let (g, n, _) = group_by(&b).unwrap();
        assert_eq!(n, 2);
        assert_eq!(g.tail_slice::<Oid>().unwrap(), &[0, 1, 0, 1]);
    }

    #[test]
    fn string_groups_use_heap_dedup() {
        let b = Bat::from_strings([Some("x"), Some("y"), Some("x"), None, None]);
        let (g, n, _) = group_by(&b).unwrap();
        assert_eq!(n, 3);
        assert_eq!(g.tail_slice::<Oid>().unwrap(), &[0, 1, 0, 2, 2]);
    }

    #[test]
    fn refine_composes_multi_column() {
        let a = Bat::from_vec(vec![1i32, 1, 2, 2, 1]);
        let b = Bat::from_vec(vec![9i32, 8, 9, 9, 9]);
        let (g1, _, _) = group_by(&a).unwrap();
        let (g2, n, _) = group_refine(&g1, &b).unwrap();
        // groups: (1,9) (1,8) (2,9) (2,9) (1,9)
        assert_eq!(n, 3);
        assert_eq!(g2.tail_slice::<Oid>().unwrap(), &[0, 1, 2, 2, 0]);
    }

    #[test]
    fn aggregates_per_group() {
        let v = Bat::from_vec(vec![10i32, 20, 30, 40]);
        let g = Bat::from_vec(vec![0 as Oid, 1, 0, 1]);
        let sum = grouped_aggregate(AggKind::Sum, &v, &g, 2).unwrap();
        assert_eq!(sum.tail_slice::<i64>().unwrap(), &[40, 60]);
        let min = grouped_aggregate(AggKind::Min, &v, &g, 2).unwrap();
        assert_eq!(min.tail_slice::<i64>().unwrap(), &[10, 20]);
        let max = grouped_aggregate(AggKind::Max, &v, &g, 2).unwrap();
        assert_eq!(max.tail_slice::<i64>().unwrap(), &[30, 40]);
        let avg = grouped_aggregate(AggKind::Avg, &v, &g, 2).unwrap();
        assert_eq!(avg.tail_slice::<f64>().unwrap(), &[20.0, 30.0]);
        let cnt = grouped_aggregate(AggKind::Count, &v, &g, 2).unwrap();
        assert_eq!(cnt.tail_slice::<i64>().unwrap(), &[2, 2]);
    }

    #[test]
    fn nils_skipped_and_empty_groups_nil() {
        use mammoth_types::NativeType;
        let v = Bat::from_vec(vec![10i32, i32::NIL]);
        let g = Bat::from_vec(vec![0 as Oid, 1]);
        let sum = grouped_aggregate(AggKind::Sum, &v, &g, 3).unwrap();
        let s = sum.tail_slice::<i64>().unwrap();
        assert_eq!(s[0], 10);
        assert!(s[1].is_nil(), "group of only nil");
        assert!(s[2].is_nil(), "empty group");
        let cnt = grouped_aggregate(AggKind::Count, &v, &g, 3).unwrap();
        assert_eq!(cnt.tail_slice::<i64>().unwrap(), &[1, 0, 0]);
    }

    #[test]
    fn float_aggregates() {
        let v = Bat::from_vec(vec![1.5f64, 2.5, f64::NAN]);
        let s = aggregate_scalar(AggKind::Sum, &v).unwrap();
        assert_eq!(s, Value::F64(4.0));
        let a = aggregate_scalar(AggKind::Avg, &v).unwrap();
        assert_eq!(a, Value::F64(2.0));
        let m = aggregate_scalar(AggKind::Max, &v).unwrap();
        assert_eq!(m, Value::F64(2.5));
    }

    #[test]
    fn scalar_count_on_strings() {
        let b = Bat::from_strings([Some("a"), None, Some("b")]);
        assert_eq!(aggregate_scalar(AggKind::Count, &b).unwrap(), Value::I64(2));
    }

    #[test]
    fn errors() {
        let v = Bat::from_vec(vec![1i32]);
        let g = Bat::from_vec(vec![0 as Oid, 1]);
        assert!(grouped_aggregate(AggKind::Sum, &v, &g, 2).is_err());
        let g = Bat::from_vec(vec![5 as Oid]);
        assert!(grouped_aggregate(AggKind::Sum, &v, &g, 2).is_err());
    }
}
