//! Sorting and order indices.
//!
//! `order(b)` produces the permutation that sorts the tail (nil first, like
//! MonetDB); `sort_bat(b)` materializes the sorted column with its
//! properties set, enabling the binary-search select fast path downstream.

use mammoth_storage::{Bat, FixedTail, Properties, TailHeap};
use mammoth_types::{NativeType, Oid, Result};

/// The stable permutation (as positions) that sorts `b`'s tail ascending,
/// nil first.
pub fn order(b: &Bat) -> Result<Vec<usize>> {
    fn argsort<T: NativeType + FixedTail>(v: &[T]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].nil_cmp(&v[b]));
        idx
    }
    Ok(match b.tail() {
        TailHeap::Bool(v) => argsort(v),
        TailHeap::I8(v) => argsort(v),
        TailHeap::I16(v) => argsort(v),
        TailHeap::I32(v) => argsort(v),
        TailHeap::I64(v) => argsort(v),
        TailHeap::F64(v) => argsort(v),
        TailHeap::Oid(v) => argsort(v),
        TailHeap::Str(h) => {
            let mut idx: Vec<usize> = (0..h.len()).collect();
            idx.sort_by(|&a, &b| match (h.get(a), h.get(b)) {
                (None, None) => std::cmp::Ordering::Equal,
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                (Some(x), Some(y)) => x.cmp(y),
            });
            idx
        }
    })
}

/// Sort the tail of `b`, returning `(sorted BAT, order index)`.
///
/// The order index is a BAT of the original oids in sorted order — exactly
/// what tuple reconstruction needs to fetch sibling columns.
pub fn sort_bat(b: &Bat) -> Result<(Bat, Bat)> {
    sort_bat_dir(b, false)
}

/// [`sort_bat`] with a direction: `descending = true` reverses the order
/// (nil last in that case).
pub fn sort_bat_dir(b: &Bat, descending: bool) -> Result<(Bat, Bat)> {
    let mut perm = order(b)?;
    if descending {
        perm.reverse();
    }
    let tail = b.tail().take(&perm);
    let oids: Vec<Oid> = perm.iter().map(|&p| b.oid_at(p)).collect();
    let mut sorted = Bat::dense(0, tail);
    let len = sorted.len();
    let nonil = len == 0 || !sorted.tail().is_nil(if descending { len - 1 } else { 0 });
    sorted.set_props(Properties {
        sorted: !descending,
        revsorted: descending || len <= 1,
        key: false,
        nonil,
        min: None,
        max: None,
    });
    Ok((sorted, Bat::dense(0, TailHeap::from_vec(oids))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::fetch_join;
    use proptest::prelude::*;

    #[test]
    fn sorts_with_nil_first() {
        let b = Bat::from_vec(vec![3i32, i32::NIL, 1, 2]);
        let (s, idx) = sort_bat(&b).unwrap();
        assert_eq!(s.tail_slice::<i32>().unwrap(), &[i32::NIL, 1, 2, 3]);
        assert_eq!(idx.tail_slice::<Oid>().unwrap(), &[1, 2, 3, 0]);
        assert!(s.props().sorted);
        assert!(!s.props().nonil);
    }

    #[test]
    fn descending_sort() {
        let b = Bat::from_vec(vec![3i32, i32::NIL, 1, 2]);
        let (s, idx) = sort_bat_dir(&b, true).unwrap();
        assert_eq!(s.tail_slice::<i32>().unwrap(), &[3, 2, 1, i32::NIL]);
        assert_eq!(idx.tail_slice::<Oid>().unwrap(), &[0, 3, 2, 1]);
        assert!(s.props().revsorted && !s.props().sorted);
        assert!(!s.props().nonil);
    }

    #[test]
    fn stable_on_duplicates() {
        let b = Bat::from_vec(vec![2i32, 1, 2, 1]);
        let perm = order(&b).unwrap();
        assert_eq!(perm, vec![1, 3, 0, 2]);
    }

    #[test]
    fn string_sort() {
        let b = Bat::from_strings([Some("pear"), None, Some("apple")]);
        let (s, _) = sort_bat(&b).unwrap();
        assert_eq!(s.value_at(0), mammoth_types::Value::Null);
        assert_eq!(s.value_at(1), mammoth_types::Value::Str("apple".into()));
        assert_eq!(s.value_at(2), mammoth_types::Value::Str("pear".into()));
    }

    #[test]
    fn float_sort_with_nan_nil() {
        let b = Bat::from_vec(vec![2.0f64, f64::NAN, 1.0]);
        let (s, _) = sort_bat(&b).unwrap();
        let v = s.tail_slice::<f64>().unwrap();
        assert!(v[0].is_nan());
        assert_eq!(&v[1..], &[1.0, 2.0]);
    }

    #[test]
    fn order_index_reconstructs_siblings() {
        // the classic tuple-reconstruction flow: sort one column, fetch the
        // other through the order index
        let age = Bat::from_vec(vec![1968i32, 1907, 1927]);
        let name = Bat::from_strings([Some("Will Smith"), Some("John Wayne"), Some("Bob Fosse")]);
        let (_, idx) = sort_bat(&age).unwrap();
        let names_sorted = fetch_join(&idx, &name).unwrap();
        assert_eq!(
            names_sorted.value_at(0),
            mammoth_types::Value::Str("John Wayne".into())
        );
        assert_eq!(
            names_sorted.value_at(2),
            mammoth_types::Value::Str("Will Smith".into())
        );
    }

    proptest! {
        #[test]
        fn prop_sorted_output(v in proptest::collection::vec(-100i64..100, 0..200)) {
            let b = Bat::from_vec(v.clone());
            let (s, idx) = sort_bat(&b).unwrap();
            let out = s.tail_slice::<i64>().unwrap();
            prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
            // permutation property
            let mut expect = v.clone();
            expect.sort_unstable();
            prop_assert_eq!(out, &expect[..]);
            prop_assert_eq!(idx.len(), v.len());
        }
    }
}
