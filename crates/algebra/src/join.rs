//! Equi-joins over BAT tails.
//!
//! A join's result is a *join index* (Valduriez [39], §4.3): two aligned oid
//! vectors pairing matching tuples. Column projection happens afterwards by
//! positional fetch — the DSM post-projection strategy.
//!
//! Three algorithms, selected by properties and size:
//! * [`nested_loop_join`] — tiny inputs;
//! * [`merge_join`] — both tails sorted;
//! * [`hash_join`] — the default bucket-chained hash join (build on the
//!   smaller side). The cache-conscious partitioned variant lives in
//!   [`crate::radix`].

use crate::radix::mix_key_bat;
use mammoth_index::HashTable;
use mammoth_storage::Bat;
use mammoth_types::{Oid, Result};

/// Aligned `(left oid, right oid)` match pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinIndex {
    pub left: Vec<Oid>,
    pub right: Vec<Oid>,
}

impl JoinIndex {
    pub fn len(&self) -> usize {
        self.left.len()
    }

    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }

    /// Swap the two sides.
    pub fn flipped(self) -> JoinIndex {
        JoinIndex {
            left: self.right,
            right: self.left,
        }
    }

    /// Canonical ordering for comparisons in tests.
    pub fn sorted(mut self) -> JoinIndex {
        let mut pairs: Vec<(Oid, Oid)> = self
            .left
            .iter()
            .copied()
            .zip(self.right.iter().copied())
            .collect();
        pairs.sort_unstable();
        self.left = pairs.iter().map(|p| p.0).collect();
        self.right = pairs.iter().map(|p| p.1).collect();
        self
    }
}

/// Join keys: a nil-aware u64 image of a tail column. `None` marks nil
/// (never matches); for strings `verify` must re-check real equality.
pub struct JoinKeys {
    pub keys: Vec<u64>,
    pub nils: Vec<bool>,
    /// u64 image is injective (ints, floats, oids) — no verify needed.
    pub exact: bool,
}

/// O(n·m) reference join; used for tiny inputs and as the test oracle.
pub fn nested_loop_join(l: &Bat, r: &Bat) -> Result<JoinIndex> {
    let lk = mix_key_bat(l)?;
    let rk = mix_key_bat(r)?;
    let mut out = JoinIndex::default();
    for i in 0..lk.keys.len() {
        if lk.nils[i] {
            continue;
        }
        for j in 0..rk.keys.len() {
            if rk.nils[j] {
                continue;
            }
            if lk.keys[i] == rk.keys[j] && verify_eq(l, r, i, j, lk.exact && rk.exact) {
                out.left.push(l.oid_at(i));
                out.right.push(r.oid_at(j));
            }
        }
    }
    Ok(out)
}

#[inline]
fn verify_eq(l: &Bat, r: &Bat, i: usize, j: usize, exact: bool) -> bool {
    if exact {
        return true;
    }
    // strings: compare payloads (hash image may collide)
    match (l.tail().as_str_heap(), r.tail().as_str_heap()) {
        (Some(a), Some(b)) => a.get(i) == b.get(j),
        _ => true,
    }
}

/// Bucket-chained hash join; builds on the right side.
pub fn hash_join(l: &Bat, r: &Bat) -> Result<JoinIndex> {
    let lk = mix_key_bat(l)?;
    let rk = mix_key_bat(r)?;
    let exact = lk.exact && rk.exact;
    let table = HashTable::build(&rk.keys);
    let mut out = JoinIndex::default();
    out.left.reserve(lk.keys.len().min(rk.keys.len()));
    out.right.reserve(lk.keys.len().min(rk.keys.len()));
    for i in 0..lk.keys.len() {
        if lk.nils[i] {
            continue;
        }
        let key = lk.keys[i];
        for j in table.candidates(key) {
            if !rk.nils[j] && rk.keys[j] == key && verify_eq(l, r, i, j, exact) {
                out.left.push(l.oid_at(i));
                out.right.push(r.oid_at(j));
            }
        }
    }
    Ok(out)
}

/// Merge join for tails that are both sorted (checked via properties; falls
/// back to [`hash_join`] when not).
pub fn merge_join(l: &Bat, r: &Bat) -> Result<JoinIndex> {
    if !(l.props().sorted && r.props().sorted) {
        return hash_join(l, r);
    }
    let lk = mix_key_bat(l)?;
    let rk = mix_key_bat(r)?;
    let exact = lk.exact && rk.exact;
    // sortedness of the tail implies sortedness of the u64 image for
    // unsigned images only; compare via the original order instead:
    // walk both sides with two cursors using dynamic compare when inexact.
    let mut out = JoinIndex::default();
    let (mut i, mut j) = (0usize, 0usize);
    let n = l.len();
    let m = r.len();
    while i < n && j < m {
        if lk.nils[i] {
            i += 1;
            continue;
        }
        if rk.nils[j] {
            j += 1;
            continue;
        }
        let ord = cmp_at(l, r, i, j);
        match ord {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // emit the cross product of the two equal runs
                let i_end = run_end(l, i);
                let j_end = run_end(r, j);
                for a in i..i_end {
                    for b in j..j_end {
                        if verify_eq(l, r, a, b, exact) {
                            out.left.push(l.oid_at(a));
                            out.right.push(r.oid_at(b));
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Ok(out)
}

fn cmp_at(l: &Bat, r: &Bat, i: usize, j: usize) -> std::cmp::Ordering {
    l.value_at(i)
        .sql_cmp(&r.value_at(j))
        .unwrap_or(std::cmp::Ordering::Equal)
}

fn run_end(b: &Bat, start: usize) -> usize {
    let v = b.value_at(start);
    let mut e = start + 1;
    while e < b.len() && b.value_at(e) == v {
        e += 1;
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use mammoth_types::NativeType;
    use proptest::prelude::*;

    fn pairs(ji: &JoinIndex) -> Vec<(Oid, Oid)> {
        ji.clone()
            .sorted()
            .left
            .iter()
            .copied()
            .zip(ji.clone().sorted().right.iter().copied())
            .collect()
    }

    #[test]
    fn basic_equijoin() {
        let l = Bat::from_vec(vec![1i32, 2, 3, 2]);
        let r = Bat::from_vec(vec![2i32, 4, 1]);
        let ji = hash_join(&l, &r).unwrap().sorted();
        assert_eq!(pairs(&ji), vec![(0, 2), (1, 0), (3, 0)]);
    }

    #[test]
    fn all_algorithms_agree() {
        let mut lv = vec![5i64, 1, 9, 1, 7, 3];
        let mut rv = vec![1i64, 3, 3, 9, 2];
        let l = Bat::from_vec(lv.clone());
        let r = Bat::from_vec(rv.clone());
        let nl = nested_loop_join(&l, &r).unwrap().sorted();
        let hj = hash_join(&l, &r).unwrap().sorted();
        assert_eq!(nl, hj);
        // merge join needs sorted inputs
        lv.sort_unstable();
        rv.sort_unstable();
        let mut ls = Bat::from_vec(lv);
        let mut rs = Bat::from_vec(rv);
        ls.compute_props();
        rs.compute_props();
        let mj = merge_join(&ls, &rs).unwrap().sorted();
        let oracle = nested_loop_join(&ls, &rs).unwrap().sorted();
        assert_eq!(mj, oracle);
    }

    #[test]
    fn nils_never_match() {
        let l = Bat::from_vec(vec![1i32, i32::NIL, 3]);
        let r = Bat::from_vec(vec![i32::NIL, 1]);
        let ji = hash_join(&l, &r).unwrap();
        assert_eq!(pairs(&ji), vec![(0, 1)]);
    }

    #[test]
    fn string_joins_verify_payload() {
        let l = Bat::from_strings([Some("ann"), Some("bob"), None]);
        let r = Bat::from_strings([Some("bob"), Some("cid"), Some("ann"), None]);
        let ji = hash_join(&l, &r).unwrap().sorted();
        assert_eq!(pairs(&ji), vec![(0, 2), (1, 0)]);
        let nl = nested_loop_join(&l, &r).unwrap().sorted();
        assert_eq!(ji, nl);
    }

    #[test]
    fn type_widening_in_join() {
        // i32 column joined with i64 column: images must align
        let l = Bat::from_vec(vec![1i32, -2]);
        let r = Bat::from_vec(vec![-2i64, 1]);
        let ji = hash_join(&l, &r).unwrap().sorted();
        assert_eq!(pairs(&ji), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn empty_inputs() {
        let l = Bat::from_vec(Vec::<i32>::new());
        let r = Bat::from_vec(vec![1i32]);
        assert!(hash_join(&l, &r).unwrap().is_empty());
        assert!(hash_join(&r, &l).unwrap().is_empty());
    }

    #[test]
    fn merge_join_falls_back_when_unsorted() {
        let l = Bat::from_vec(vec![3i32, 1]);
        let r = Bat::from_vec(vec![1i32, 3]);
        let ji = merge_join(&l, &r).unwrap().sorted();
        assert_eq!(pairs(&ji), vec![(0, 1), (1, 0)]);
    }

    proptest! {
        #[test]
        fn prop_hash_equals_nested_loop(
            lv in proptest::collection::vec(-20i64..20, 0..60),
            rv in proptest::collection::vec(-20i64..20, 0..60),
        ) {
            let l = Bat::from_vec(lv);
            let r = Bat::from_vec(rv);
            let hj = hash_join(&l, &r).unwrap().sorted();
            let nl = nested_loop_join(&l, &r).unwrap().sorted();
            prop_assert_eq!(hj, nl);
        }

        #[test]
        fn prop_merge_equals_nested_loop(
            mut lv in proptest::collection::vec(-20i64..20, 0..60),
            mut rv in proptest::collection::vec(-20i64..20, 0..60),
        ) {
            lv.sort_unstable();
            rv.sort_unstable();
            let mut l = Bat::from_vec(lv);
            let mut r = Bat::from_vec(rv);
            l.compute_props();
            r.compute_props();
            let mj = merge_join(&l, &r).unwrap().sorted();
            let nl = nested_loop_join(&l, &r).unwrap().sorted();
            prop_assert_eq!(mj, nl);
        }
    }
}
