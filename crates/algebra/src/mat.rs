//! Fragment merge operators (MonetDB's `mat` module).
//!
//! The mitosis optimizer slices a base BAT into k horizontal range
//! fragments; after slice-wise operators ran over the fragments, `mat.pack`
//! concatenates the partial results back into a single BAT. Packing is
//! order-preserving: fragment i's rows precede fragment i+1's, so packing
//! range-aligned fragments reproduces the parent BAT exactly.

use mammoth_storage::{Bat, HeadColumn};
use mammoth_types::{Error, Oid, Result, Value};

/// Concatenate fragments into one BAT.
///
/// The head stays void when every fragment is void-headed and the seqbases
/// are contiguous (`next.seqbase == prev.seqbase + prev.len`) — the
/// re-assembled parent keeps O(1) positional lookup. Otherwise the result
/// is a fresh dense BAT (seqbase 0), which is what select-style fragment
/// outputs need: their tails carry the absolute oids.
pub fn pack(parts: &[&Bat]) -> Result<Bat> {
    let Some(first) = parts.first() else {
        return Err(Error::Internal("mat.pack of zero fragments".into()));
    };
    let ty = first.ty();
    for p in parts {
        if p.ty() != ty {
            return Err(Error::TypeMismatch {
                expected: ty.name().into(),
                found: p.ty().name().into(),
            });
        }
    }
    // contiguous void fragments re-assemble into a void-headed parent
    let mut contiguous = true;
    let mut next_seq: Option<Oid> = None;
    for p in parts {
        match p.head() {
            HeadColumn::Void { seqbase } => {
                if let Some(n) = next_seq {
                    contiguous &= *seqbase == n;
                }
                next_seq = Some(seqbase + p.len() as Oid);
            }
            HeadColumn::Oids(_) => {
                contiguous = false;
                break;
            }
        }
    }
    let mut tail = first.tail().slice_range(0, first.len());
    for p in &parts[1..] {
        tail.extend_from(p.tail())?;
    }
    if contiguous {
        let HeadColumn::Void { seqbase } = first.head() else {
            unreachable!("contiguous implies void heads");
        };
        Ok(Bat::dense(*seqbase, tail))
    } else {
        Ok(Bat::dense(0, tail))
    }
}

/// Merge per-fragment partial aggregates: the nil-skipping sum.
///
/// Matches the scalar aggregator's conventions: an empty fragment's partial
/// is NIL and is skipped; when every partial is NIL the merged aggregate is
/// NIL; integer partials accumulate in wrapping i64, floats in f64, and one
/// float partial widens the whole sum to f64.
pub fn packsum(parts: &[Value]) -> Result<Value> {
    let mut sum_i: i64 = 0;
    let mut sum_f: f64 = 0.0;
    let mut float = false;
    let mut seen = false;
    for v in parts {
        if v.is_null() {
            continue;
        }
        match v {
            Value::F64(x) => {
                float = true;
                seen = true;
                sum_f += x;
            }
            other => match other.as_i64() {
                Some(x) => {
                    seen = true;
                    sum_i = sum_i.wrapping_add(x);
                }
                None => {
                    return Err(Error::TypeMismatch {
                        expected: "numeric scalar".into(),
                        found: format!("{other:?}"),
                    })
                }
            },
        }
    }
    Ok(if !seen {
        Value::Null
    } else if float {
        Value::F64(sum_f + sum_i as f64)
    } else {
        Value::I64(sum_i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mammoth_storage::TailHeap;

    #[test]
    fn pack_of_contiguous_slices_reproduces_parent() {
        let b = Bat::from_vec((0..100i64).collect::<Vec<_>>());
        for k in [1usize, 2, 3, 7, 100, 128] {
            let mut parts = Vec::new();
            for i in 0..k {
                let lo = i * b.len() / k;
                let hi = (i + 1) * b.len() / k;
                parts.push(b.slice(lo, hi).unwrap());
            }
            let refs: Vec<&Bat> = parts.iter().collect();
            let packed = pack(&refs).unwrap();
            assert_eq!(packed.len(), b.len());
            assert!(matches!(packed.head(), HeadColumn::Void { seqbase: 0 }));
            assert_eq!(
                packed.tail_slice::<i64>().unwrap(),
                b.tail_slice::<i64>().unwrap(),
                "k={k}"
            );
        }
    }

    #[test]
    fn pack_of_candidate_fragments_rebases_to_dense() {
        // fragment selects produce dense(0) oid tails; pack concatenates
        let a = Bat::dense(0, TailHeap::from_vec(vec![1 as Oid, 3]));
        let b = Bat::dense(0, TailHeap::from_vec(vec![5 as Oid, 9]));
        let out = pack(&[&a, &b]).unwrap();
        assert!(matches!(out.head(), HeadColumn::Void { seqbase: 0 }));
        assert_eq!(out.tail_slice::<Oid>().unwrap(), &[1, 3, 5, 9]);
    }

    #[test]
    fn pack_rejects_mixed_types() {
        let a = Bat::from_vec(vec![1i64]);
        let b = Bat::from_vec(vec![1i32]);
        assert!(pack(&[&a, &b]).is_err());
    }

    #[test]
    fn pack_of_strings() {
        let b = Bat::from_strings([Some("a"), None, Some("c"), Some("d")]);
        let parts = [b.slice(0, 2).unwrap(), b.slice(2, 4).unwrap()];
        let refs: Vec<&Bat> = parts.iter().collect();
        let out = pack(&refs).unwrap();
        assert_eq!(out.value_at(1), Value::Null);
        assert_eq!(out.value_at(3), Value::Str("d".into()));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn packsum_skips_nil_and_widens() {
        assert_eq!(
            packsum(&[Value::I64(3), Value::Null, Value::I64(4)]).unwrap(),
            Value::I64(7)
        );
        assert_eq!(packsum(&[Value::Null, Value::Null]).unwrap(), Value::Null);
        assert_eq!(
            packsum(&[Value::F64(0.5), Value::I64(2)]).unwrap(),
            Value::F64(2.5)
        );
        assert_eq!(packsum(&[Value::I64(i64::MAX), Value::I64(1)]).unwrap(), {
            Value::I64(i64::MIN)
        });
    }
}
