//! Zero-degree-of-freedom vector primitives.
//!
//! Each primitive does exactly one thing to one vector: compare against a
//! constant producing a selection vector, compute an arithmetic map, fold
//! an aggregate. Complex expressions are *sequences* of primitives — the
//! X100/MonetDB answer to per-tuple expression interpretation.
//!
//! Selection vectors (`&[u32]` of qualifying positions within the current
//! vector) connect the primitives without copying data.

/// Comparison operators (mirrors the algebra crate, kept separate so this
/// crate stays dependency-light).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

#[inline(always)]
fn keep(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

/// `out = positions i where data[i] op c`, intersected with `sel`.
pub fn sel_cmp_i64(op: CmpOp, data: &[i64], c: i64, sel: Option<&[u32]>, out: &mut Vec<u32>) {
    out.clear();
    match sel {
        None => {
            for (i, &v) in data.iter().enumerate() {
                if keep(op, v.cmp(&c)) {
                    out.push(i as u32);
                }
            }
        }
        Some(sel) => {
            for &i in sel {
                if keep(op, data[i as usize].cmp(&c)) {
                    out.push(i);
                }
            }
        }
    }
}

/// `out = positions i where data[i] op c` on f64 data.
pub fn sel_cmp_f64(op: CmpOp, data: &[f64], c: f64, sel: Option<&[u32]>, out: &mut Vec<u32>) {
    out.clear();
    let test = |v: f64| v.partial_cmp(&c).is_some_and(|ord| keep(op, ord));
    match sel {
        None => {
            for (i, &v) in data.iter().enumerate() {
                if test(v) {
                    out.push(i as u32);
                }
            }
        }
        Some(sel) => {
            for &i in sel {
                if test(data[i as usize]) {
                    out.push(i);
                }
            }
        }
    }
}

/// Arithmetic operators for map primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOp {
    Add,
    Sub,
    Mul,
    Div,
}

#[inline(always)]
fn apply_i64(op: MapOp, a: i64, b: i64) -> i64 {
    match op {
        MapOp::Add => a.wrapping_add(b),
        MapOp::Sub => a.wrapping_sub(b),
        MapOp::Mul => a.wrapping_mul(b),
        MapOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
    }
}

/// `out[i] = a[i] op b[i]` at selected positions (`out` is full-length;
/// unselected slots are left as-is / zero).
pub fn map_arith_i64(op: MapOp, a: &[i64], b: &[i64], sel: Option<&[u32]>, out: &mut Vec<i64>) {
    out.clear();
    out.resize(a.len(), 0);
    match sel {
        None => {
            for i in 0..a.len() {
                out[i] = apply_i64(op, a[i], b[i]);
            }
        }
        Some(sel) => {
            for &i in sel {
                out[i as usize] = apply_i64(op, a[i as usize], b[i as usize]);
            }
        }
    }
}

/// `out[i] = a[i] op c` at selected positions.
pub fn map_arith_i64_const(op: MapOp, a: &[i64], c: i64, sel: Option<&[u32]>, out: &mut Vec<i64>) {
    out.clear();
    out.resize(a.len(), 0);
    match sel {
        None => {
            for i in 0..a.len() {
                out[i] = apply_i64(op, a[i], c);
            }
        }
        Some(sel) => {
            for &i in sel {
                out[i as usize] = apply_i64(op, a[i as usize], c);
            }
        }
    }
}

/// Σ data over the selection.
pub fn sum_i64(data: &[i64], sel: Option<&[u32]>) -> i64 {
    match sel {
        None => data.iter().fold(0i64, |acc, &v| acc.wrapping_add(v)),
        Some(sel) => sel
            .iter()
            .fold(0i64, |acc, &i| acc.wrapping_add(data[i as usize])),
    }
}

/// Σ data over the selection (f64).
pub fn sum_f64(data: &[f64], sel: Option<&[u32]>) -> f64 {
    match sel {
        None => data.iter().sum(),
        Some(sel) => sel.iter().map(|&i| data[i as usize]).sum(),
    }
}

/// Count of selected rows.
pub fn count(len: usize, sel: Option<&[u32]>) -> usize {
    sel.map_or(len, |s| s.len())
}

/// Min over the selection.
pub fn min_i64(data: &[i64], sel: Option<&[u32]>) -> Option<i64> {
    match sel {
        None => data.iter().copied().min(),
        Some(sel) => sel.iter().map(|&i| data[i as usize]).min(),
    }
}

/// Max over the selection.
pub fn max_i64(data: &[i64], sel: Option<&[u32]>) -> Option<i64> {
    match sel {
        None => data.iter().copied().max(),
        Some(sel) => sel.iter().map(|&i| data[i as usize]).max(),
    }
}

/// Grouped sum into a dense accumulator array: `acc[gid[i]] += data[i]`.
/// `gid` values must be < `acc.len()`.
pub fn grouped_sum_i64(data: &[i64], gid: &[u32], sel: Option<&[u32]>, acc: &mut [i64]) {
    match sel {
        None => {
            for i in 0..data.len() {
                acc[gid[i] as usize] = acc[gid[i] as usize].wrapping_add(data[i]);
            }
        }
        Some(sel) => {
            for &i in sel {
                let i = i as usize;
                acc[gid[i] as usize] = acc[gid[i] as usize].wrapping_add(data[i]);
            }
        }
    }
}

/// Grouped count.
pub fn grouped_count(gid: &[u32], sel: Option<&[u32]>, acc: &mut [i64]) {
    match sel {
        None => {
            for &g in gid {
                acc[g as usize] += 1;
            }
        }
        Some(sel) => {
            for &i in sel {
                acc[gid[i as usize] as usize] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_chain() {
        let data = vec![5i64, 1, 9, 3, 7];
        let mut s1 = Vec::new();
        sel_cmp_i64(CmpOp::Gt, &data, 2, None, &mut s1);
        assert_eq!(s1, vec![0, 2, 3, 4]);
        let mut s2 = Vec::new();
        sel_cmp_i64(CmpOp::Lt, &data, 8, Some(&s1), &mut s2);
        assert_eq!(s2, vec![0, 3, 4]);
    }

    #[test]
    fn float_selection_ignores_nan() {
        let data = vec![1.0f64, f64::NAN, 3.0];
        let mut s = Vec::new();
        sel_cmp_f64(CmpOp::Ge, &data, 0.0, None, &mut s);
        assert_eq!(s, vec![0, 2]);
        sel_cmp_f64(CmpOp::Lt, &data, 100.0, None, &mut s);
        assert_eq!(s, vec![0, 2], "NaN fails every comparison");
    }

    #[test]
    fn maps_respect_selection() {
        let a = vec![1i64, 2, 3];
        let b = vec![10i64, 20, 30];
        let mut out = Vec::new();
        map_arith_i64(MapOp::Mul, &a, &b, Some(&[0, 2]), &mut out);
        assert_eq!(out, vec![10, 0, 90]);
        map_arith_i64_const(MapOp::Add, &a, 100, None, &mut out);
        assert_eq!(out, vec![101, 102, 103]);
        map_arith_i64_const(MapOp::Div, &a, 0, None, &mut out);
        assert_eq!(out, vec![0, 0, 0], "div by zero yields 0, not panic");
    }

    #[test]
    fn aggregates() {
        let data = vec![4i64, -1, 7];
        assert_eq!(sum_i64(&data, None), 10);
        assert_eq!(sum_i64(&data, Some(&[0, 2])), 11);
        assert_eq!(count(3, Some(&[1])), 1);
        assert_eq!(min_i64(&data, None), Some(-1));
        assert_eq!(max_i64(&data, Some(&[0, 1])), Some(4));
        assert_eq!(min_i64(&data, Some(&[])), None);
        assert_eq!(sum_f64(&[0.5, 0.25], None), 0.75);
    }

    #[test]
    fn grouped() {
        let data = vec![10i64, 20, 30, 40];
        let gid = vec![0u32, 1, 0, 1];
        let mut sums = vec![0i64; 2];
        grouped_sum_i64(&data, &gid, None, &mut sums);
        assert_eq!(sums, vec![40, 60]);
        let mut counts = vec![0i64; 2];
        grouped_count(&gid, Some(&[0, 1, 2]), &mut counts);
        assert_eq!(counts, vec![2, 1]);
    }
}
