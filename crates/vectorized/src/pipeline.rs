//! The vectorized pipeline driver.
//!
//! A [`Pipeline`] is a source column set, a list of [`Stage`]s and a
//! [`Sink`]. [`Pipeline::run`] pulls one `vector_size` window at a time
//! through all stages — selection vectors narrowing as filters apply,
//! computed vectors appearing as maps run — and folds the survivors into
//! the sink. All per-vector state (selection + computed vectors) is sized
//! by `vector_size`: that is the working set the §5 tuning argument is
//! about, and what experiment E07 sweeps.

use crate::primitives::{self, CmpOp, MapOp};
use crate::vector::{ColumnSet, VectorWindow};
use mammoth_types::{Error, Result};

/// Reference to a column visible inside the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColRef {
    /// A source column by index.
    Source(usize),
    /// A computed vector by slot.
    Computed(usize),
}

/// Right-hand operand of a map stage.
#[derive(Debug, Clone, Copy)]
pub enum Operand {
    Col(ColRef),
    Const(i64),
}

/// One vectorized operator.
#[derive(Debug, Clone)]
pub enum Stage {
    /// Narrow the selection: keep rows where `col op c` (i64).
    FilterI64 { col: ColRef, op: CmpOp, c: i64 },
    /// Narrow the selection on an f64 source column.
    FilterF64 { col: usize, op: CmpOp, c: f64 },
    /// Compute `out := l mapop r` into computed slot `out`.
    MapI64 {
        op: MapOp,
        l: ColRef,
        r: Operand,
        out: usize,
    },
}

/// An aggregate to fold in the sink.
#[derive(Debug, Clone, Copy)]
pub enum AggSpec {
    CountStar,
    SumI64(ColRef),
    SumF64(usize),
    MinI64(ColRef),
    MaxI64(ColRef),
}

/// Where the vectors end up.
#[derive(Debug, Clone)]
pub enum Sink {
    /// Global aggregates.
    Aggregate(Vec<AggSpec>),
    /// `sums[key] += value` with dense i64 keys in `0..groups`.
    GroupedSum {
        key: ColRef,
        value: ColRef,
        groups: usize,
    },
}

/// A complete vectorized query.
#[derive(Debug, Clone)]
pub struct Pipeline {
    pub stages: Vec<Stage>,
    pub sink: Sink,
    /// Number of computed-vector slots the stages use.
    pub computed_slots: usize,
}

/// Results of a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    Aggregates(Vec<AggOut>),
    GroupedSums(Vec<i64>),
}

/// One aggregate output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggOut {
    I64(i64),
    F64(f64),
    /// MIN/MAX over zero rows.
    Empty,
}

struct AggState {
    count: u64,
    sum_i: i64,
    sum_f: f64,
    min: Option<i64>,
    max: Option<i64>,
}

impl Pipeline {
    /// Execute over `columns` with the given vector size.
    pub fn run(&self, columns: &ColumnSet, vector_size: usize) -> Result<QueryResult> {
        let vector_size = vector_size.max(1);
        let n = columns.len();
        let mut window = VectorWindow::new(columns.arity());
        let mut computed: Vec<Vec<i64>> = vec![Vec::new(); self.computed_slots];
        let mut sel: Vec<u32> = Vec::with_capacity(vector_size);
        let mut sel_next: Vec<u32> = Vec::with_capacity(vector_size);

        let mut agg_states: Vec<AggState> = match &self.sink {
            Sink::Aggregate(specs) => specs
                .iter()
                .map(|_| AggState {
                    count: 0,
                    sum_i: 0,
                    sum_f: 0.0,
                    min: None,
                    max: None,
                })
                .collect(),
            Sink::GroupedSum { .. } => Vec::new(),
        };
        let mut group_sums: Vec<i64> = match &self.sink {
            Sink::GroupedSum { groups, .. } => vec![0; *groups],
            _ => Vec::new(),
        };

        let mut start = 0usize;
        while start < n {
            let len = vector_size.min(n - start);
            window.set(columns, start, len);

            // resolve a ColRef to a borrowed i64 slice (computed slots are
            // mem::taken while written, so reads see consistent data)
            let mut have_sel = false;
            sel.clear();
            for stage in &self.stages {
                match stage {
                    Stage::FilterI64 { col, op, c } => {
                        let data = resolve(&window, columns, &computed, *col)?;
                        primitives::sel_cmp_i64(
                            *op,
                            data,
                            *c,
                            have_sel.then_some(&sel[..]),
                            &mut sel_next,
                        );
                        std::mem::swap(&mut sel, &mut sel_next);
                        have_sel = true;
                    }
                    Stage::FilterF64 { col, op, c } => {
                        let data = window.f64_slice(columns, *col)?;
                        primitives::sel_cmp_f64(
                            *op,
                            data,
                            *c,
                            have_sel.then_some(&sel[..]),
                            &mut sel_next,
                        );
                        std::mem::swap(&mut sel, &mut sel_next);
                        have_sel = true;
                    }
                    Stage::MapI64 { op, l, r, out } => {
                        let mut buf = std::mem::take(&mut computed[*out]);
                        {
                            let ldata = resolve(&window, columns, &computed, *l)?;
                            let s = have_sel.then_some(&sel[..]);
                            match r {
                                Operand::Const(c) => {
                                    primitives::map_arith_i64_const(*op, ldata, *c, s, &mut buf)
                                }
                                Operand::Col(rc) => {
                                    let rdata = resolve(&window, columns, &computed, *rc)?;
                                    primitives::map_arith_i64(*op, ldata, rdata, s, &mut buf);
                                }
                            }
                        }
                        computed[*out] = buf;
                    }
                }
            }

            let s = have_sel.then_some(&sel[..]);
            match &self.sink {
                Sink::Aggregate(specs) => {
                    for (spec, st) in specs.iter().zip(&mut agg_states) {
                        match spec {
                            AggSpec::CountStar => {
                                st.count += primitives::count(len, s) as u64;
                            }
                            AggSpec::SumI64(c) => {
                                let data = resolve(&window, columns, &computed, *c)?;
                                st.sum_i = st.sum_i.wrapping_add(primitives::sum_i64(data, s));
                            }
                            AggSpec::SumF64(c) => {
                                let data = window.f64_slice(columns, *c)?;
                                st.sum_f += primitives::sum_f64(data, s);
                            }
                            AggSpec::MinI64(c) => {
                                let data = resolve(&window, columns, &computed, *c)?;
                                if let Some(m) = primitives::min_i64(data, s) {
                                    st.min = Some(st.min.map_or(m, |x| x.min(m)));
                                }
                            }
                            AggSpec::MaxI64(c) => {
                                let data = resolve(&window, columns, &computed, *c)?;
                                if let Some(m) = primitives::max_i64(data, s) {
                                    st.max = Some(st.max.map_or(m, |x| x.max(m)));
                                }
                            }
                        }
                    }
                }
                Sink::GroupedSum { key, value, groups } => {
                    let keys = resolve(&window, columns, &computed, *key)?;
                    // dense key vector: convert to u32 gids, bounds-checked
                    let mut gids = Vec::with_capacity(len);
                    for &k in keys {
                        if k < 0 || k as usize >= *groups {
                            return Err(Error::OutOfRange {
                                index: k as u64,
                                len: *groups as u64,
                            });
                        }
                        gids.push(k as u32);
                    }
                    let vals = resolve(&window, columns, &computed, *value)?;
                    primitives::grouped_sum_i64(vals, &gids, s, &mut group_sums);
                }
            }
            start += len;
        }

        Ok(match &self.sink {
            Sink::Aggregate(specs) => QueryResult::Aggregates(
                specs
                    .iter()
                    .zip(agg_states)
                    .map(|(spec, st)| match spec {
                        AggSpec::CountStar => AggOut::I64(st.count as i64),
                        AggSpec::SumI64(_) => AggOut::I64(st.sum_i),
                        AggSpec::SumF64(_) => AggOut::F64(st.sum_f),
                        AggSpec::MinI64(_) => st.min.map_or(AggOut::Empty, AggOut::I64),
                        AggSpec::MaxI64(_) => st.max.map_or(AggOut::Empty, AggOut::I64),
                    })
                    .collect(),
            ),
            Sink::GroupedSum { .. } => QueryResult::GroupedSums(group_sums),
        })
    }
}

fn resolve<'a>(
    window: &'a VectorWindow,
    columns: &'a ColumnSet,
    computed: &'a [Vec<i64>],
    c: ColRef,
) -> Result<&'a [i64]> {
    match c {
        ColRef::Source(i) => window.i64_slice(columns, i),
        ColRef::Computed(j) => {
            let v = computed.get(j).ok_or(Error::OutOfRange {
                index: j as u64,
                len: computed.len() as u64,
            })?;
            Ok(&v[..])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Column;

    fn lineitem() -> ColumnSet {
        // qty, price, tax-class
        ColumnSet::new(vec![
            Column::I64((0..1000).map(|i| i % 50).collect()),
            Column::I64((0..1000).map(|i| 100 + (i % 7)).collect()),
            Column::I64((0..1000).map(|i| i % 4).collect()),
        ])
        .unwrap()
    }

    fn q1() -> Pipeline {
        // SELECT count(*), sum(qty * price) WHERE qty < 25
        Pipeline {
            stages: vec![
                Stage::FilterI64 {
                    col: ColRef::Source(0),
                    op: CmpOp::Lt,
                    c: 25,
                },
                Stage::MapI64 {
                    op: MapOp::Mul,
                    l: ColRef::Source(0),
                    r: Operand::Col(ColRef::Source(1)),
                    out: 0,
                },
            ],
            sink: Sink::Aggregate(vec![
                AggSpec::CountStar,
                AggSpec::SumI64(ColRef::Computed(0)),
            ]),
            computed_slots: 1,
        }
    }

    fn oracle(cs: &ColumnSet) -> (i64, i64) {
        let qty = cs.column(0).to_i64().unwrap();
        let price = cs.column(1).to_i64().unwrap();
        let mut count = 0;
        let mut sum = 0;
        for i in 0..qty.len() {
            if qty[i] < 25 {
                count += 1;
                sum += qty[i] * price[i];
            }
        }
        (count, sum)
    }

    #[test]
    fn vector_size_does_not_change_results() {
        let cs = lineitem();
        let (count, sum) = oracle(&cs);
        for vs in [1usize, 7, 100, 1000, 4096] {
            let r = q1().run(&cs, vs).unwrap();
            assert_eq!(
                r,
                QueryResult::Aggregates(vec![AggOut::I64(count), AggOut::I64(sum)]),
                "vector size {vs}"
            );
        }
    }

    #[test]
    fn compressed_scan_agrees_with_plain() {
        let values: Vec<i64> = (0..5000).map(|i| i % 50).collect();
        let plain = ColumnSet::new(vec![
            Column::I64(values.clone()),
            Column::I64(vec![2; 5000]),
            Column::I64(vec![0; 5000]),
        ])
        .unwrap();
        let compressed = ColumnSet::new(vec![
            Column::compressed(&values, mammoth_compression::Scheme::Rle),
            Column::I64(vec![2; 5000]),
            Column::I64(vec![0; 5000]),
        ])
        .unwrap();
        let a = q1().run(&plain, 512).unwrap();
        let b = q1().run(&compressed, 512).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn chained_filters_intersect() {
        let cs = lineitem();
        let p = Pipeline {
            stages: vec![
                Stage::FilterI64 {
                    col: ColRef::Source(0),
                    op: CmpOp::Ge,
                    c: 10,
                },
                Stage::FilterI64 {
                    col: ColRef::Source(0),
                    op: CmpOp::Lt,
                    c: 12,
                },
            ],
            sink: Sink::Aggregate(vec![AggSpec::CountStar]),
            computed_slots: 0,
        };
        let r = p.run(&cs, 128).unwrap();
        // qty in {10, 11}: 20 rows per 50-cycle, 1000 rows -> 40
        assert_eq!(r, QueryResult::Aggregates(vec![AggOut::I64(40)]));
    }

    #[test]
    fn grouped_sums() {
        let cs = lineitem();
        let p = Pipeline {
            stages: vec![],
            sink: Sink::GroupedSum {
                key: ColRef::Source(2),
                value: ColRef::Source(0),
                groups: 4,
            },
            computed_slots: 0,
        };
        let QueryResult::GroupedSums(sums) = p.run(&cs, 256).unwrap() else {
            panic!("wrong result kind");
        };
        assert_eq!(sums.len(), 4);
        // oracle
        let qty = cs.column(0).to_i64().unwrap();
        let cls = cs.column(2).to_i64().unwrap();
        let mut expect = vec![0i64; 4];
        for i in 0..qty.len() {
            expect[cls[i] as usize] += qty[i];
        }
        assert_eq!(sums, expect);
    }

    #[test]
    fn min_max_and_empty() {
        let cs = ColumnSet::new(vec![Column::I64(vec![5, -3, 9])]).unwrap();
        let p = Pipeline {
            stages: vec![Stage::FilterI64 {
                col: ColRef::Source(0),
                op: CmpOp::Gt,
                c: 100,
            }],
            sink: Sink::Aggregate(vec![
                AggSpec::MinI64(ColRef::Source(0)),
                AggSpec::MaxI64(ColRef::Source(0)),
                AggSpec::CountStar,
            ]),
            computed_slots: 0,
        };
        assert_eq!(
            p.run(&cs, 2).unwrap(),
            QueryResult::Aggregates(vec![AggOut::Empty, AggOut::Empty, AggOut::I64(0)])
        );
        let p2 = Pipeline {
            stages: vec![],
            sink: Sink::Aggregate(vec![
                AggSpec::MinI64(ColRef::Source(0)),
                AggSpec::MaxI64(ColRef::Source(0)),
            ]),
            computed_slots: 0,
        };
        assert_eq!(
            p2.run(&cs, 2).unwrap(),
            QueryResult::Aggregates(vec![AggOut::I64(-3), AggOut::I64(9)])
        );
    }

    #[test]
    fn f64_filter_and_sum() {
        let cs = ColumnSet::new(vec![
            Column::F64(vec![0.5, 1.5, 2.5, 3.5]),
            Column::I64(vec![1, 2, 3, 4]),
        ])
        .unwrap();
        let p = Pipeline {
            stages: vec![Stage::FilterF64 {
                col: 0,
                op: CmpOp::Gt,
                c: 1.0,
            }],
            sink: Sink::Aggregate(vec![AggSpec::SumF64(0), AggSpec::SumI64(ColRef::Source(1))]),
            computed_slots: 0,
        };
        assert_eq!(
            p.run(&cs, 3).unwrap(),
            QueryResult::Aggregates(vec![AggOut::F64(7.5), AggOut::I64(9)])
        );
    }

    #[test]
    fn bad_group_key_errors() {
        let cs = ColumnSet::new(vec![Column::I64(vec![0, 5])]).unwrap();
        let p = Pipeline {
            stages: vec![],
            sink: Sink::GroupedSum {
                key: ColRef::Source(0),
                value: ColRef::Source(0),
                groups: 2,
            },
            computed_slots: 0,
        };
        assert!(p.run(&cs, 8).is_err());
    }
}
